"""Tests for SEV guest policy bits (NODBG / NOSEND)."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import SevError
from repro.core.migration import migrate_guest, send_guest
from repro.sev.state import POLICY_NODBG, POLICY_NOSEND
from repro.system import GuestOwner, System, paired_systems
from repro.xen import hypercalls as hc


class TestDbgDecrypt:
    def _guest(self, system, policy=0):
        owner = GuestOwner(seed=0xD6, policy=policy)
        domain, ctx = system.boot_protected_guest(
            "dbg", owner, payload=b"x", guest_frames=32)
        ctx.set_page_encrypted(5)
        ctx.write(5 * PAGE_SIZE, b"debuggable secret")
        ctx.hypercall(hc.HC_SCHED_YIELD)
        return domain, ctx

    def test_debug_decrypt_works_without_nodbg(self):
        system = System.create(fidelius=True, frames=2048, seed=0xD60)
        domain, _ = self._guest(system, policy=0)
        pa = system.hypervisor.guest_frame_hpfn(domain, 5) * PAGE_SIZE
        plaintext = system.fidelius.firmware_call(
            "dbg_decrypt", domain.sev_handle, pa, 17)
        assert plaintext == b"debuggable secret"

    def test_nodbg_policy_refuses_forever(self):
        system = System.create(fidelius=True, frames=2048, seed=0xD61)
        domain, _ = self._guest(system, policy=POLICY_NODBG)
        pa = system.hypervisor.guest_frame_hpfn(domain, 5) * PAGE_SIZE
        with pytest.raises(SevError):
            system.fidelius.firmware_call(
                "dbg_decrypt", domain.sev_handle, pa, 17)

    def test_policy_travels_in_the_image(self):
        system = System.create(fidelius=True, frames=2048, seed=0xD62)
        domain, _ = self._guest(system, policy=POLICY_NODBG)
        assert system.firmware.guest_policy(domain.sev_handle) \
            & POLICY_NODBG


class TestNoSend:
    def _guest(self, system, policy):
        owner = GuestOwner(seed=0xD7, policy=policy)
        domain, ctx = system.boot_protected_guest(
            "pinned", owner, payload=b"x", guest_frames=32)
        ctx.hypercall(hc.HC_SCHED_YIELD)
        return domain, ctx

    def test_nosend_guest_cannot_migrate(self):
        source, target = paired_systems(frames=2048, seed=0xD70)
        domain, _ = self._guest(source, POLICY_NOSEND)
        with pytest.raises(SevError):
            send_guest(source.fidelius, domain,
                       target.firmware.platform_public_key)

    def test_nosend_guest_keeps_running_after_refusal(self):
        source, target = paired_systems(frames=2048, seed=0xD71)
        domain, ctx = self._guest(source, POLICY_NOSEND)
        with pytest.raises(SevError):
            send_guest(source.fidelius, domain,
                       target.firmware.platform_public_key)
        ctx.write(0x3000, b"still alive")
        assert ctx.read(0x3000, 11) == b"still alive"

    def test_policy_survives_migration(self):
        """A NODBG guest stays NODBG on the target host."""
        source, target = paired_systems(frames=2048, seed=0xD72)
        domain, ctx = self._guest(source, POLICY_NODBG)
        new_domain, _ = migrate_guest(source.fidelius, domain,
                                      target.fidelius)
        assert target.firmware.guest_policy(new_domain.sev_handle) \
            & POLICY_NODBG
        pa = target.hypervisor.guest_frame_hpfn(new_domain, 0) * PAGE_SIZE
        with pytest.raises(SevError):
            target.fidelius.firmware_call(
                "dbg_decrypt", new_domain.sev_handle, pa, 16)

    def test_plain_guest_migrates_fine(self):
        source, target = paired_systems(frames=2048, seed=0xD73)
        domain, _ = self._guest(source, policy=0)
        new_domain, new_ctx = migrate_guest(source.fidelius, domain,
                                            target.fidelius)
        assert new_domain in target.fidelius.protected_domains
