"""Tests for the SEV-ES configuration: Section 2.2's exact claim
structure — ES eliminates the runtime-state attack surface, but the
mapping / key-management / grant / I/O surfaces all remain."""

import pytest

from repro.attacks.grants import grant_permission_widening
from repro.attacks.io import driver_domain_io_snoop
from repro.attacks.keys import handle_asid_keyshare
from repro.attacks.memory import cpu_ciphertext_replay, \
    inter_vm_remap_cache_leak
from repro.attacks.state import (
    register_steal,
    register_tamper,
    vmcb_disable_protection,
    vmcb_read_guest_state,
    vmcb_rip_hijack,
)
from repro.common.errors import ReproError
from repro.system import System
from repro.xen import hypercalls as hc


def _es_system(seed):
    return System.create(fidelius=False, frames=2048, seed=seed,
                         sev_es=True)


class TestConfiguration:
    def test_es_guests_flagged(self):
        system = _es_system(1)
        domain, _ = system.create_baseline_sev_guest("g", guest_frames=16)
        assert domain.sev_es

    def test_guest_still_runs_normally(self):
        system = _es_system(2)
        _, ctx = system.create_baseline_sev_guest("g", guest_frames=16)
        ctx.set_page_encrypted(3)
        ctx.write(3 * 4096, b"es guest data")
        assert ctx.read(3 * 4096, 13) == b"es guest data"
        assert ctx.hypercall(hc.HC_VOID) == hc.E_OK
        assert ctx.cpuid(0)[0] == 0x00A20F10


class TestStateSurfaceEliminated:
    """'SEV-ES can disallow the above-mentioned attack surfaces.'"""

    @pytest.mark.parametrize("attack_fn", [
        register_steal, register_tamper, vmcb_read_guest_state,
        vmcb_rip_hijack,
    ], ids=lambda f: f.attack_name)
    def test_runtime_state_attacks_blocked_by_hardware(self, attack_fn):
        result = attack_fn(_es_system(seed=31))
        assert result.blocked, result.detail

    def test_tampered_save_state_silently_discarded(self):
        """Unlike Fidelius, ES does not *detect* tampering — hardware
        just reloads the real VMSA, so the write evaporates without an
        abort (no audit trail to show the owner)."""
        system = _es_system(seed=32)
        domain, ctx = system.create_baseline_sev_guest("g", guest_frames=16)
        ctx._ensure_guest()

        def tamper(vcpu, *args):
            vcpu.vmcb.write("rip", 0x41414141)
            return hc.E_OK

        system.hypervisor.register_hypercall(220, tamper)
        ctx.hypercall(220)  # no exception: silently ineffective
        assert domain.vcpu0.vmcb.read("rip") != 0x41414141


class TestRemainingProblems:
    """'There are still at least two potential weaknesses' — and the
    grant/I/O issues 'not considered by AMD memory encryption'."""

    @pytest.mark.parametrize("attack_fn", [
        cpu_ciphertext_replay,        # second-level mapping still host-owned
        inter_vm_remap_cache_leak,
        handle_asid_keyshare,         # handle-ASID still host-managed
        grant_permission_widening,    # grant table still host-maintained
        driver_domain_io_snoop,       # I/O still plaintext in flight
        vmcb_disable_protection,      # the control area is not the VMSA
    ], ids=lambda f: f.attack_name)
    def test_surface_remains_open_under_es(self, attack_fn):
        result = attack_fn(_es_system(seed=33))
        assert result.succeeded, \
            "%s should survive SEV-ES: %s" % (attack_fn.attack_name,
                                              result.detail)
