"""Exhaustive state-machine edge tests for the SEV firmware."""

import itertools
import random

import pytest

from repro.common import crypto
from repro.common.errors import FirmwareStateError, SevError
from repro.sev import GuestState, SevFirmware


@pytest.fixture
def fw(machine):
    firmware = SevFirmware(machine)
    firmware.init()
    return firmware


def _drive_to(fw, state):
    """Create a guest context and drive it into ``state``."""
    handle = fw.launch_start()
    if state is GuestState.LAUNCHING:
        return handle
    fw.launch_finish(handle)
    if state is GuestState.RUNNING:
        return handle
    owner = crypto.DiffieHellman(random.Random(1))
    if state is GuestState.SENDING:
        fw.send_start(handle, owner.public, b"n" * 16)
        return handle
    wrapped = fw.send_start(handle, owner.public, b"n" * 16)
    receiving = fw.receive_start(wrapped, owner.public, b"n" * 16)
    return receiving  # RECEIVING


#: command -> the single state it is legal in
_STATE_REQUIREMENTS = {
    "launch_update": GuestState.LAUNCHING,
    "launch_finish": GuestState.LAUNCHING,
    "send_start": GuestState.RUNNING,
    "send_update": GuestState.SENDING,
    "send_finish": GuestState.SENDING,
    "receive_update": GuestState.RECEIVING,
    "receive_finish": GuestState.RECEIVING,
}


def _issue(fw, command, handle):
    if command == "launch_update":
        fw.launch_update_data(handle, 0x10000, b"data" + bytes(60))
    elif command == "launch_finish":
        fw.launch_finish(handle)
    elif command == "send_start":
        owner = crypto.DiffieHellman(random.Random(2))
        fw.send_start(handle, owner.public, b"m" * 16)
    elif command == "send_update":
        fw.send_update(handle, 0x10000, 64, tweak=b"t")
    elif command == "send_finish":
        fw.send_finish(handle)
    elif command == "receive_update":
        fw.receive_update(handle, bytes(64), b"t", 0x20000)
    elif command == "receive_finish":
        fw.receive_finish(handle, bytes(32))


@pytest.mark.parametrize(
    "command,state",
    [(cmd, state)
     for cmd, state in itertools.product(
         _STATE_REQUIREMENTS,
         (GuestState.LAUNCHING, GuestState.RUNNING,
          GuestState.SENDING, GuestState.RECEIVING))
     if _STATE_REQUIREMENTS[cmd] is not state],
    ids=lambda value: getattr(value, "value", value))
def test_command_rejected_in_wrong_state(fw, command, state):
    """Every per-guest command fails cleanly in every state other than
    the one the SEV spec allows — the discipline the s-dom/r-dom design
    leans on."""
    handle = _drive_to(fw, state)
    with pytest.raises((FirmwareStateError, SevError)):
        _issue(fw, command, handle)
    # and the context state is unchanged by the rejected command
    assert fw.guest_state(handle) is state


class TestFirmwareMisc:
    def test_handles_sorted_and_stable(self, fw):
        handles = [fw.launch_start() for _ in range(3)]
        assert fw.handles() == sorted(handles)

    def test_unknown_handle_everywhere(self, fw):
        for method, args in [
            ("launch_finish", (999,)),
            ("activate", (999, 3)),
            ("deactivate", (999,)),
            ("decommission", (999,)),
            ("guest_state", (999,)),
        ]:
            with pytest.raises(SevError):
                getattr(fw, method)(*args)

    def test_platform_public_requires_init(self, machine):
        fw = SevFirmware(machine)
        with pytest.raises(SevError):
            fw.platform_public_key

    def test_sme_optional(self, machine):
        fw = SevFirmware(machine)
        fw.init(enable_sme=False)
        assert not machine.memctrl.slot_installed(0)

    def test_sector_batched_update_requires_alignment(self, fw):
        handle = _drive_to(fw, GuestState.SENDING)
        with pytest.raises(SevError):
            fw.send_update_sectors(handle, 0x10000, 100, base_sector=0)

    def test_sector_batched_roundtrip(self, fw, machine):
        handle = fw.launch_start()
        fw.launch_update_data(handle, 0x10000, b"A" * 1024)
        fw.launch_finish(handle)
        owner = crypto.DiffieHellman(random.Random(3))
        wrapped = fw.send_start(handle, owner.public, b"n" * 16)
        transport = fw.send_update_sectors(handle, 0x10000, 1024,
                                           base_sector=16)
        receiving = fw.receive_start(wrapped, owner.public, b"n" * 16)
        fw.receive_update_sectors(receiving, transport, 16, 0x30000)
        fw.activate(receiving, 9)
        assert machine.memctrl.read(0x30000, 1024, c_bit=True, asid=9) == \
            b"A" * 1024
