"""Tests for the SEV firmware model: states, keys, send/receive."""

import random

import pytest

from repro.common import crypto
from repro.common.errors import FirmwareStateError, SevError
from repro.sev import GuestState, PlatformState, SevFirmware


@pytest.fixture
def fw(machine):
    firmware = SevFirmware(machine)
    firmware.init()
    return firmware


class TestPlatform:
    def test_init_installs_sme_key(self, machine):
        fw = SevFirmware(machine)
        assert not machine.memctrl.slot_installed(0)
        fw.init()
        assert fw.platform_state is PlatformState.INIT
        assert machine.memctrl.slot_installed(0)

    def test_double_init_rejected(self, fw):
        with pytest.raises(SevError):
            fw.init()

    def test_commands_require_init(self, machine):
        fw = SevFirmware(machine)
        with pytest.raises(SevError):
            fw.launch_start()

    def test_shutdown_erases_everything(self, machine, fw):
        handle = fw.launch_start()
        fw.activate(handle, 3)
        fw.shutdown()
        assert fw.platform_state is PlatformState.UNINIT
        assert not machine.memctrl.slot_installed(3)
        assert not machine.memctrl.slot_installed(0)


class TestLaunch:
    def test_launch_lifecycle(self, machine, fw):
        handle = fw.launch_start()
        assert fw.guest_state(handle) is GuestState.LAUNCHING
        fw.launch_update_data(handle, 0x10000, b"kernel" + bytes(58))
        fw.launch_finish(handle)
        assert fw.guest_state(handle) is GuestState.RUNNING

    def test_launch_update_encrypts_in_place(self, machine, fw):
        handle = fw.launch_start()
        fw.launch_update_data(handle, 0x10000, b"kernel code here")
        assert machine.memory.read(0x10000, 16) != b"kernel code here"
        fw.activate(handle, 3)
        assert machine.memctrl.read(0x10000, 16, c_bit=True, asid=3) == \
            b"kernel code here"

    def test_measurement_covers_plaintext(self, fw):
        h1 = fw.launch_start()
        fw.launch_update_data(h1, 0x10000, b"image-A" + bytes(57))
        h2 = fw.launch_start()
        fw.launch_update_data(h2, 0x20000, b"image-B" + bytes(57))
        assert fw.launch_measure(h1) != fw.launch_measure(h2)

    def test_update_after_finish_rejected(self, fw):
        handle = fw.launch_start()
        fw.launch_finish(handle)
        with pytest.raises(FirmwareStateError):
            fw.launch_update_data(handle, 0x10000, b"late")

    def test_kvek_unique_per_guest(self, machine, fw):
        h1 = fw.launch_start()
        h2 = fw.launch_start()
        fw.launch_update_data(h1, 0x10000, b"same plaintext!!")
        fw.launch_update_data(h2, 0x10000 + 64, b"same plaintext!!")
        # same plaintext, different keys -> different ciphertext even
        # after accounting for the position tweak
        fw.activate(h1, 3)
        fw.activate(h2, 4)
        machine.memctrl.flush_cache()
        assert machine.memctrl.read(0x10000, 16, c_bit=True, asid=4) != \
            b"same plaintext!!"

    def test_share_kvek_with(self, machine, fw):
        """LAUNCH with an existing handle shares K_vek (the s-dom trick)."""
        h1 = fw.launch_start()
        fw.launch_update_data(h1, 0x10000, b"shared plaintext")
        helper = fw.launch_start(share_kvek_with=h1)
        fw.activate(h1, 3)
        machine.memctrl.flush_cache()
        fw.deactivate(h1)
        fw.activate(helper, 4)
        assert machine.memctrl.read(0x10000, 16, c_bit=True, asid=4) == \
            b"shared plaintext"


class TestActivate:
    def test_activate_installs_key_slot(self, machine, fw):
        handle = fw.launch_start()
        fw.activate(handle, 5)
        assert machine.memctrl.slot_installed(5)
        assert fw.guest_asid(handle) == 5

    def test_asid_zero_reserved_for_host(self, fw):
        handle = fw.launch_start()
        with pytest.raises(SevError):
            fw.activate(handle, 0)

    def test_asid_reuse_rejected_while_active(self, fw):
        h1 = fw.launch_start()
        h2 = fw.launch_start()
        fw.activate(h1, 5)
        with pytest.raises(SevError):
            fw.activate(h2, 5)

    def test_activate_rebinding_after_deactivate(self, machine, fw):
        """The handle-ASID binding is caller-chosen: after DEACTIVATE the
        hypervisor may bind any handle to the freed ASID — the abuse
        surface of Section 2.2."""
        victim = fw.launch_start()
        conspirator = fw.launch_start()
        fw.activate(conspirator, 7)
        fw.deactivate(conspirator)
        fw.activate(victim, 7)  # firmware does not object
        assert fw.guest_asid(victim) == 7

    def test_deactivate_uninstalls_slot(self, machine, fw):
        handle = fw.launch_start()
        fw.activate(handle, 5)
        fw.deactivate(handle)
        assert not machine.memctrl.slot_installed(5)

    def test_decommission_erases_context(self, machine, fw):
        handle = fw.launch_start()
        fw.activate(handle, 5)
        fw.decommission(handle)
        assert not machine.memctrl.slot_installed(5)
        with pytest.raises(SevError):
            fw.guest_state(handle)


class TestSendReceive:
    def _running_guest(self, fw, pa=0x10000, payload=b"top secret page!"):
        handle = fw.launch_start()
        fw.launch_update_data(handle, pa, payload)
        fw.launch_finish(handle)
        return handle

    def test_send_requires_running(self, fw):
        handle = fw.launch_start()
        owner = crypto.DiffieHellman(random.Random(3))
        with pytest.raises(FirmwareStateError):
            fw.send_start(handle, owner.public, b"n" * 16)

    def test_send_stops_guest(self, fw):
        handle = self._running_guest(fw)
        owner = crypto.DiffieHellman(random.Random(3))
        fw.send_start(handle, owner.public, b"n" * 16)
        assert fw.guest_state(handle) is GuestState.SENDING

    def test_owner_can_unwrap_and_decrypt(self, fw):
        handle = self._running_guest(fw)
        owner = crypto.DiffieHellman(random.Random(3))
        nonce = b"n" * 16
        wrapped = fw.send_start(handle, owner.public, nonce)
        transport = fw.send_update(handle, 0x10000, 16, tweak=b"r0")
        master = owner.shared_secret(fw.platform_public_key, nonce)
        kek = crypto.derive_key(master, "kek")
        tek = crypto.unwrap_key(kek, wrapped.tek)
        assert crypto.xex_decrypt(tek, b"xport|r0", transport) == b"top secret page!"

    def test_hypervisor_in_the_middle_cannot_unwrap(self, fw):
        handle = self._running_guest(fw)
        owner = crypto.DiffieHellman(random.Random(3))
        eve = crypto.DiffieHellman(random.Random(4))
        wrapped = fw.send_start(handle, owner.public, b"n" * 16)
        master = eve.shared_secret(fw.platform_public_key, b"n" * 16)
        with pytest.raises(ValueError):
            crypto.unwrap_key(crypto.derive_key(master, "kek"), wrapped.tek)

    def test_full_send_receive_roundtrip(self, machine, fw):
        handle = self._running_guest(fw)
        owner = crypto.DiffieHellman(random.Random(3))
        nonce = b"n" * 16
        wrapped = fw.send_start(handle, owner.public, nonce)
        transport = fw.send_update(handle, 0x10000, 16, tweak=b"r0")
        measurement = fw.send_finish(handle)

        h2 = fw.receive_start(wrapped, owner.public, nonce)
        fw.receive_update(h2, transport, b"r0", 0x30000)
        fw.receive_finish(h2, measurement)
        fw.activate(h2, 9)
        assert machine.memctrl.read(0x30000, 16, c_bit=True, asid=9) == \
            b"top secret page!"

    def test_receive_finish_rejects_tampered_stream(self, machine, fw):
        handle = self._running_guest(fw)
        owner = crypto.DiffieHellman(random.Random(3))
        nonce = b"n" * 16
        wrapped = fw.send_start(handle, owner.public, nonce)
        transport = fw.send_update(handle, 0x10000, 16, tweak=b"r0")
        measurement = fw.send_finish(handle)

        h2 = fw.receive_start(wrapped, owner.public, nonce)
        evil = bytes([transport[0] ^ 0x80]) + transport[1:]
        fw.receive_update(h2, evil, b"r0", 0x30000)
        with pytest.raises(SevError):
            fw.receive_finish(h2, measurement)

    def test_receive_start_bad_wrap_rejected(self, fw):
        owner = crypto.DiffieHellman(random.Random(3))
        bogus = fw.send_start(self._running_guest(fw), owner.public, b"n" * 16)
        with pytest.raises(SevError):
            # wrong nonce -> wrong KEK -> unwrap fails inside firmware
            fw.receive_start(bogus, owner.public, b"m" * 16)

    def test_send_update_requires_sending_state(self, fw):
        handle = self._running_guest(fw)
        with pytest.raises(FirmwareStateError):
            fw.send_update(handle, 0x10000, 16, tweak=b"r0")


class TestGateCheck:
    def test_gate_check_intercepts_commands(self, machine):
        fw = SevFirmware(machine)
        calls = []
        fw.gate_check = calls.append
        fw.init()
        handle = fw.launch_start()
        fw.activate(handle, 3)
        assert calls == ["INIT", "LAUNCH_START", "ACTIVATE"]

    def test_gate_check_can_block(self, machine):
        fw = SevFirmware(machine)
        fw.init()

        def deny(command):
            raise SevError("BLOCKED", "command %s not reachable" % command)

        fw.gate_check = deny
        with pytest.raises(SevError):
            fw.launch_start()
