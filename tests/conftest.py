"""Shared fixtures for the test suite."""

import pytest

from repro.hw import Machine
from repro.sev import SevFirmware


@pytest.fixture
def machine():
    m = Machine(frames=512, seed=0xC0FFEE)
    m.build_host_address_space()
    return m


@pytest.fixture
def firmware(machine):
    fw = SevFirmware(machine)
    fw.init()
    return fw
