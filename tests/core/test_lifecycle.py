"""Tests for the full VM life cycle (Section 4.3): encrypted-image
preparation, secure boot, shutdown."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError, SevError
from repro.core.lifecycle import (
    KERNEL_MAGIC,
    GuestOwner,
    read_embedded_kblk,
    read_kernel_payload,
)
from repro.sev.state import GuestState
from repro.system import System


class TestImagePreparation:
    def test_kernel_layout(self, owner):
        kernel = owner.build_kernel(b"payload bytes")
        assert kernel.startswith(KERNEL_MAGIC)
        assert owner.kblk in kernel
        assert len(kernel) % PAGE_SIZE == 0

    def test_image_is_ciphertext(self, owner, system):
        image = owner.prepare_encrypted_image(
            b"super secret app", system.firmware.platform_public_key)
        blob = b"".join(record for _, record in image.records)
        assert b"super secret app" not in blob
        assert owner.kblk not in blob

    def test_image_sealed_to_one_machine(self, owner):
        """The Section 8 limitation: an image prepared for machine A
        cannot boot on machine B (its firmware cannot unwrap the keys)."""
        sys_a = System.create(fidelius=True, frames=1024, seed=1)
        sys_b = System.create(fidelius=True, frames=1024, seed=2)
        image = owner.prepare_encrypted_image(
            b"app", sys_a.firmware.platform_public_key)
        with pytest.raises(SevError):
            with sys_b.fidelius.gates.firmware_gate():
                sys_b.firmware.receive_start(
                    image.kwrap, image.origin_public, image.nonce)

    def test_disk_image_encryption(self, owner):
        disk = owner.encrypt_disk_image(b"filesystem contents here")
        assert b"filesystem" not in disk
        assert len(disk) % 512 == 0


class TestProtectedBoot:
    def test_guest_reads_its_kernel(self, protected_guest):
        _, ctx = protected_guest
        assert ctx.read(0, len(KERNEL_MAGIC)) == KERNEL_MAGIC
        assert read_kernel_payload(ctx, 25) == b"guest application payload"

    def test_kblk_recoverable_only_in_guest(self, system, owner,
                                            protected_guest):
        domain, ctx = protected_guest
        assert read_embedded_kblk(ctx) == owner.kblk
        # the host's raw memory never holds K_blk
        dump = system.machine.cold_boot_dump()
        assert all(owner.kblk not in frame for frame in dump.values())

    def test_kernel_pages_marked_encrypted(self, protected_guest):
        domain, _ = protected_guest
        assert 0 in domain.encrypted_gfns

    def test_domain_enrolled(self, system, protected_guest):
        domain, _ = protected_guest
        assert domain in system.fidelius.protected_domains

    def test_guest_smaller_than_image_rejected(self, system, owner):
        with pytest.raises(ReproError):
            system.boot_protected_guest("tiny", owner, payload=b"x",
                                        guest_frames=0)

    def test_tampered_load_fails_measurement(self, system, owner):
        """The hypervisor's one write window (loading the image) is
        covered by the RECEIVE measurement (Section 6.2)."""
        def tamper(machine, domain):
            pa = system.hypervisor.guest_frame_hpfn(domain, 0) * PAGE_SIZE
            machine.memctrl.dma_write(pa + 100, b"\xFF\xFF\xFF\xFF")

        with pytest.raises(SevError):
            system.boot_protected_guest("evil", owner, payload=b"x",
                                        guest_frames=32, tamper=tamper)
        assert "boot-integrity-failure" in system.fidelius.audit_kinds()

    def test_boot_records_sev_metadata(self, system, protected_guest):
        domain, _ = protected_guest
        meta = system.fidelius.sev_meta[domain.domid]
        assert meta["handle"] == domain.sev_handle
        assert meta["asid"] == domain.asid


class TestShutdown:
    def test_shutdown_scrubs_and_decommissions(self, system,
                                               protected_guest):
        domain, ctx = protected_guest
        ctx.set_page_encrypted(5)
        ctx.write(5 * PAGE_SIZE, b"dying secret")
        from repro.xen import hypercalls as hc
        handle = domain.sev_handle
        hpfn = system.hypervisor.guest_frame_hpfn(domain, 5)
        ctx.hypercall(hc.HC_SHUTDOWN)
        # context erased in the firmware
        assert handle not in system.firmware.handles()
        # frame scrubbed
        assert system.machine.memory.read_frame(hpfn) == bytes(PAGE_SIZE)
        # bookkeeping cleaned
        assert domain.domid not in system.fidelius.sev_meta
        assert domain not in system.fidelius.protected_domains
        assert "domain-shutdown" in system.fidelius.audit_kinds()

    def test_pit_entries_invalidated(self, system, protected_guest):
        domain, ctx = protected_guest
        from repro.xen import hypercalls as hc
        hpfn = system.hypervisor.guest_frame_hpfn(domain, 3)
        ctx.hypercall(hc.HC_SHUTDOWN)
        assert not system.fidelius.pit.lookup(hpfn).valid
