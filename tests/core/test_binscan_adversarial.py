"""Adversarial inputs for the binary scanner (paper Section 4.1.2).

The monopoly rule only holds if the scanner sees encodings the way the
CPU does: at any byte offset, overlapping other instructions, and in
deterministic order.  These tests poke exactly those corners — and
document the one known gap (encodings straddling a page boundary).
"""

import pytest

from repro.common.constants import PAGE_SIZE, PTE_NX, PTE_PRESENT
from repro.common.types import PRIV_OPCODES, PrivOp
from repro.core.binscan import scan_bytes, scan_executable_pages
from repro.hw.machine import Machine

WRMSR = PRIV_OPCODES[PrivOp.WRMSR]
VMRUN = PRIV_OPCODES[PrivOp.VMRUN]
MOV_CR0 = PRIV_OPCODES[PrivOp.MOV_CR0]


class TestScanBytes:
    def test_unaligned_hit_inside_benign_bytes(self):
        # mov rbp, rsp; then WRMSR hidden at offset 3.
        blob = b"\x48\x89\xe5" + WRMSR + b"\x90"
        hits = scan_bytes(blob, base_va=0x4000)
        assert [(h.op, h.va) for h in hits] == [(PrivOp.WRMSR, 0x4003)]

    def test_tail_bytes_of_doubled_prefix(self):
        # A stray 0x0f before the encoding: x86 can jump one byte in and
        # fetch a real WRMSR, so the scanner must report offset 1.
        blob = b"\x0f" + WRMSR
        hits = scan_bytes(blob, base_va=0)
        assert [(h.op, h.va) for h in hits] == [(PrivOp.WRMSR, 1)]

    def test_adjacent_repeats_all_reported(self):
        blob = MOV_CR0 * 3
        hits = scan_bytes(blob, base_va=0x1000)
        assert [h.va for h in hits] == [0x1000, 0x1003, 0x1006]
        assert all(h.op is PrivOp.MOV_CR0 for h in hits)

    def test_hits_sorted_by_va_regardless_of_op_order(self):
        # Lay the ops out in the *reverse* of PRIV_OPCODES iteration
        # order; the result must still come back VA-sorted.
        ops = list(PRIV_OPCODES)
        blob = b"\x90".join(PRIV_OPCODES[op] for op in reversed(ops))
        hits = scan_bytes(blob, base_va=0)
        vas = [h.va for h in hits]
        assert vas == sorted(vas)
        assert {h.op for h in hits} == set(ops)
        # Explicitly shuffled op subset: same determinism.
        subset = scan_bytes(blob, base_va=0,
                            ops=[PrivOp.WRMSR, PrivOp.MOV_CR0])
        assert [h.va for h in subset] == sorted(h.va for h in subset)

    def test_shared_two_byte_prefix_not_confused(self):
        # LGDT (0f 01 10) and VMRUN (0f 01 d8) share a two-byte prefix;
        # a blob holding only VMRUN must not report LGDT.
        hits = scan_bytes(VMRUN, base_va=0)
        assert [h.op for h in hits] == [PrivOp.VMRUN]

    def test_empty_and_clean_blobs(self):
        assert scan_bytes(b"", base_va=0) == []
        assert scan_bytes(b"\x90" * 64, base_va=0) == []


class TestScanExecutablePages:
    @pytest.fixture
    def machine(self):
        return Machine(frames=64, seed=7)

    def _map_exec(self, machine, root, va, pfn, content):
        page = bytearray(b"\x90" * PAGE_SIZE)
        page[: len(content)] = content
        machine.memory.write_frame(pfn, bytes(page))
        machine.walker.map(root, va, pfn, PTE_PRESENT)

    def test_finds_unaligned_encoding_at_absolute_va(self, machine):
        root = machine.allocator.alloc()
        machine.memory.zero_frame(root)
        pfn = machine.allocator.alloc()
        page = bytearray(b"\x90" * PAGE_SIZE)
        offset = 0x7FB  # odd offset, deliberately unaligned
        page[offset:offset + len(WRMSR)] = WRMSR
        machine.memory.write_frame(pfn, bytes(page))
        machine.walker.map(root, 0x40000, pfn, PTE_PRESENT)
        hits = scan_executable_pages(machine, root)
        assert [(h.op, h.va) for h in hits] == [(PrivOp.WRMSR,
                                                 0x40000 + offset)]

    def test_nx_pages_are_skipped(self, machine):
        root = machine.allocator.alloc()
        machine.memory.zero_frame(root)
        pfn = machine.allocator.alloc()
        self._map_exec(machine, root, 0x5000, pfn, WRMSR)
        machine.walker.map(root, 0x5000, pfn, PTE_PRESENT | PTE_NX)
        assert scan_executable_pages(machine, root) == []

    def test_page_boundary_split_is_a_known_miss(self, machine):
        """Documented limitation: an encoding whose bytes straddle two
        virtually-contiguous executable pages is invisible to the
        page-granular scan, even though the CPU would happily fetch it.
        ``scan_bytes`` over the stitched bytes *does* see it, which is
        what a fix would have to do."""
        root = machine.allocator.alloc()
        machine.memory.zero_frame(root)
        pfn_a = machine.allocator.alloc()
        pfn_b = machine.allocator.alloc()

        page_a = bytearray(b"\x90" * PAGE_SIZE)
        page_a[-2:] = VMRUN[:2]          # 0f 01 at the tail...
        page_b = bytearray(b"\x90" * PAGE_SIZE)
        page_b[0] = VMRUN[2]             # ...d8 at the next page's head
        machine.memory.write_frame(pfn_a, bytes(page_a))
        machine.memory.write_frame(pfn_b, bytes(page_b))
        base = 0x10000
        machine.walker.map(root, base, pfn_a, PTE_PRESENT)
        machine.walker.map(root, base + PAGE_SIZE, pfn_b, PTE_PRESENT)

        # The page-granular scan misses the straddling VMRUN.
        assert scan_executable_pages(machine, root) == []

        # Ground truth: stitched together, the encoding is right there.
        stitched = bytes(page_a) + bytes(page_b)
        hits = scan_bytes(stitched, base_va=base)
        assert [(h.op, h.va) for h in hits] == [
            (PrivOp.VMRUN, base + PAGE_SIZE - 2)]
