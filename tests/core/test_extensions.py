"""Tests for the extension features: remote attestation, VM
snapshot/restore, runtime ballooning with scrubbed frame release, and
multi-vCPU guests."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.core.attestation import (
    AttestationAuthority,
    RemoteVerifier,
    golden_measurements,
)
from repro.core.migration import restore_guest, snapshot_guest
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


class TestAttestation:
    def _parties(self, seed=0xA77):
        system = System.create(fidelius=True, frames=2048, seed=seed)
        authority = AttestationAuthority(system.machine)
        golden_fid, golden_xen = golden_measurements(system)
        verifier = RemoteVerifier(golden_fid, golden_xen,
                                  authority.public_verifier())
        return system, authority, verifier

    def test_pristine_host_attests(self):
        system, authority, verifier = self._parties()
        nonce = verifier.fresh_nonce(system.machine.rng)
        quote = authority.quote(system.fidelius, nonce)
        assert verifier.check(quote, nonce)

    def test_tampered_hypervisor_text_fails(self):
        """Code injected into Xen's text changes the measurement."""
        system, authority, verifier = self._parties()
        system.machine.memory.write(
            system.hypervisor.text.base_va + 0x500, b"\xEB\xFE")
        nonce = verifier.fresh_nonce(system.machine.rng)
        quote = authority.quote(system.fidelius, nonce)
        with pytest.raises(ReproError):
            verifier.check(quote, nonce)

    def test_tampered_fidelius_text_fails(self):
        system, authority, verifier = self._parties()
        system.machine.memory.write(
            system.fidelius.text_pfns[0] * PAGE_SIZE + 0x20, b"\x90\x90\xCC")
        nonce = verifier.fresh_nonce(system.machine.rng)
        quote = authority.quote(system.fidelius, nonce)
        with pytest.raises(ReproError):
            verifier.check(quote, nonce)

    def test_replayed_quote_rejected(self):
        system, authority, verifier = self._parties()
        nonce = verifier.fresh_nonce(system.machine.rng)
        quote = authority.quote(system.fidelius, nonce)
        verifier.check(quote, nonce)
        with pytest.raises(ReproError):
            verifier.check(quote, nonce)  # nonce reuse

    def test_forged_signature_rejected(self):
        import dataclasses
        system, authority, verifier = self._parties()
        nonce = verifier.fresh_nonce(system.machine.rng)
        quote = authority.quote(system.fidelius, nonce)
        forged = dataclasses.replace(quote, signature=b"\x00" * 32)
        with pytest.raises(ReproError):
            verifier.check(forged, nonce)

    def test_quote_from_wrong_machine_rejected(self):
        """A quote signed by a different machine's key fails the
        verification oracle bound to the expected machine."""
        system_a, authority_a, verifier_a = self._parties(seed=1)
        system_b = System.create(fidelius=True, frames=2048, seed=2)
        authority_b = AttestationAuthority(system_b.machine)
        nonce = verifier_a.fresh_nonce(system_a.machine.rng)
        quote = authority_b.quote(system_b.fidelius, nonce)
        with pytest.raises(ReproError):
            verifier_a.check(quote, nonce)


class TestSnapshotRestore:
    def _guest(self, system):
        owner = GuestOwner(seed=0x55AA)
        domain, ctx = system.boot_protected_guest(
            "snap", owner, payload=b"checkpointed app", guest_frames=32)
        ctx.set_page_encrypted(7)
        ctx.write(7 * PAGE_SIZE, b"pre-snapshot state")
        ctx.hypercall(hc.HC_SCHED_YIELD)
        return domain, ctx

    def test_snapshot_restore_roundtrip(self, system):
        domain, _ = self._guest(system)
        package = snapshot_guest(system.fidelius, domain)
        system.hypervisor.destroy_domain(domain)
        restored, rctx = restore_guest(system.fidelius, package,
                                       name="snap-restored")
        assert rctx.read(7 * PAGE_SIZE, 18) == b"pre-snapshot state"
        assert restored in system.fidelius.protected_domains

    def test_snapshot_stops_the_guest(self, system):
        from repro.common.errors import GateViolation
        domain, ctx = self._guest(system)
        snapshot_guest(system.fidelius, domain)
        with pytest.raises(GateViolation):
            ctx.read(0, 4)

    def test_restored_guest_gets_fresh_key(self, system):
        domain, _ = self._guest(system)
        old_pa = system.hypervisor.guest_frame_hpfn(domain, 7) * PAGE_SIZE
        old_raw = system.machine.memory.read(old_pa, 18)
        package = snapshot_guest(system.fidelius, domain)
        system.hypervisor.destroy_domain(domain)
        restored, _ = restore_guest(system.fidelius, package)
        new_pa = system.hypervisor.guest_frame_hpfn(restored, 7) * PAGE_SIZE
        assert system.machine.memory.read(new_pa, 18) != old_raw

    def test_snapshot_package_is_ciphertext(self, system):
        domain, _ = self._guest(system)
        package = snapshot_guest(system.fidelius, domain)
        blob = b"".join(t for _, t in package.encrypted_records)
        assert b"pre-snapshot state" not in blob

    def test_audited(self, system):
        domain, _ = self._guest(system)
        package = snapshot_guest(system.fidelius, domain)
        system.hypervisor.destroy_domain(domain)
        restore_guest(system.fidelius, package)
        kinds = system.fidelius.audit_kinds()
        assert "snapshot-taken" in kinds
        assert "snapshot-restored" in kinds


class TestBallooning:
    def test_balloon_out_returns_frames(self, system, protected_guest):
        domain, ctx = protected_guest
        free_before = system.machine.allocator.free_count
        assert ctx.hypercall(hc.HC_BALLOON_OUT, 20, 4) == hc.E_OK
        assert system.machine.allocator.free_count == free_before + 4
        assert not domain.npt.maps(20 * PAGE_SIZE)

    def test_released_protected_frame_is_scrubbed(self, system,
                                                  protected_guest):
        """Section 4.3.8's page revocation, applied at runtime: no
        residue crosses a frame recycling."""
        domain, ctx = protected_guest
        ctx.set_page_encrypted(20)
        ctx.write(20 * PAGE_SIZE, b"dying balloon secret")
        hpfn = system.hypervisor.guest_frame_hpfn(domain, 20)
        assert ctx.hypercall(hc.HC_BALLOON_OUT, 20, 1) == hc.E_OK
        assert system.machine.memory.read_frame(hpfn) == bytes(PAGE_SIZE)
        assert not system.fidelius.pit.lookup(hpfn).valid
        assert "frame-released" in system.fidelius.audit_kinds()

    def test_baseline_leaks_residue_across_recycling(self):
        """The contrast: vanilla Xen recycles a frame as-is, and the
        next owner reads the previous tenant's data."""
        system = System.create(fidelius=False, frames=2048, seed=0xBA11)
        victim, vctx = system.create_plain_guest("victim", guest_frames=32)
        residue = b"residue: private key material"
        for gfn in range(18, 24):
            vctx.write(gfn * PAGE_SIZE, residue)
        released = {system.hypervisor.guest_frame_hpfn(victim, gfn)
                    for gfn in range(18, 24)}
        assert vctx.hypercall(hc.HC_BALLOON_OUT, 18, 6) == hc.E_OK
        vctx.hypercall(hc.HC_SCHED_YIELD)
        # the freed frames keep their bytes...
        assert all(residue in system.machine.memory.read_frame(pfn)
                   for pfn in released)
        # ...and recycling hands at least one to a new attacker guest,
        # which reads the previous tenant's data straight out of it
        attacker, actx = system.create_plain_guest("attacker",
                                                   guest_frames=8)
        stolen = [
            actx.read(gfn * PAGE_SIZE, len(residue))
            for gfn in range(attacker.guest_frames)
            if system.hypervisor.guest_frame_hpfn(attacker, gfn) in released
        ]
        assert stolen and any(chunk == residue for chunk in stolen)

    def test_fidelius_recycling_is_clean(self, system, protected_guest):
        domain, ctx = protected_guest
        ctx.set_page_encrypted(20)
        ctx.write(20 * PAGE_SIZE, b"dying balloon secret")
        hpfn = system.hypervisor.guest_frame_hpfn(domain, 20)
        ctx.hypercall(hc.HC_BALLOON_OUT, 20, 1)
        ctx.hypercall(hc.HC_SCHED_YIELD)
        newdom, nctx = system.create_plain_guest("next-tenant",
                                                 guest_frames=8)
        for gfn in range(newdom.guest_frames):
            if system.hypervisor.guest_frame_hpfn(newdom, gfn) == hpfn:
                assert nctx.read(gfn * PAGE_SIZE, 20) == bytes(20)

    def test_balloon_range_validated(self, system, protected_guest):
        _, ctx = protected_guest
        assert ctx.hypercall(hc.HC_BALLOON_OUT, 40, 100) == hc.E_INVAL
        assert ctx.hypercall(hc.HC_BALLOON_OUT, 5, 0) == hc.E_INVAL


class TestMultiVcpu:
    def test_two_vcpus_time_share(self, system, owner):
        domain, ctx0 = system.boot_protected_guest(
            "smp", owner, payload=b"x", guest_frames=32, vcpus=2)
        ctx1 = domain.context(vcpu_index=1)
        ctx0.write(0x5000, b"from vcpu0")
        ctx0.hypercall(hc.HC_SCHED_YIELD)
        assert ctx1.read(0x5000, 10) == b"from vcpu0"  # shared memory

    def test_vcpu_switch_requires_yield(self, system, owner):
        from repro.common.errors import XenError
        domain, ctx0 = system.boot_protected_guest(
            "smp", owner, payload=b"x", guest_frames=32, vcpus=2)
        ctx1 = domain.context(vcpu_index=1)
        ctx0.write(0x5000, b"a")
        with pytest.raises(XenError):
            ctx1.write(0x5000, b"b")

    def test_per_vcpu_shadow_state(self, system, owner):
        """Each vCPU's registers are shadowed independently."""
        domain, ctx0 = system.boot_protected_guest(
            "smp", owner, payload=b"x", guest_frames=32, vcpus=2)
        ctx1 = domain.context(vcpu_index=1)
        cpu = system.machine.cpu
        ctx0._ensure_guest()
        cpu.regs["r15"] = 0xAAAA
        ctx0.hypercall(hc.HC_VOID)
        assert cpu.regs["r15"] == 0xAAAA
        ctx0.hypercall(hc.HC_SCHED_YIELD)
        ctx1._ensure_guest()
        cpu.regs["r15"] = 0xBBBB
        ctx1.hypercall(hc.HC_VOID)
        assert cpu.regs["r15"] == 0xBBBB
        assert system.fidelius.shadow.has_shadow(domain.vcpus[0])
        assert system.fidelius.shadow.has_shadow(domain.vcpus[1])

    def test_vcpu_registers_masked_independently(self, system, owner):
        domain, ctx0 = system.boot_protected_guest(
            "smp", owner, payload=b"x", guest_frames=32, vcpus=2)
        cpu = system.machine.cpu
        ctx0._ensure_guest()
        cpu.regs["r14"] = 0x5EC0
        ctx0.hypercall(hc.HC_VOID)
        assert domain.vcpus[0].saved_gprs["r14"] == 0
