"""Tests for the Fidelius install step: non-bypassable isolation
(Section 4.1), Table 1 permissions, the binary rewrite and the PIT
classification of the whole world."""

import pytest

from repro.common.errors import PageFault, PolicyViolation, ReproError, SevError
from repro.common.types import Access, Owner, PageUsage, PRIV_OPCODES, PrivOp
from repro.core.binscan import scan_bytes, verify_monopoly
from repro.system import System


class TestInstall:
    def test_double_install_rejected(self, system):
        with pytest.raises(ReproError):
            system.fidelius.install()

    def test_xen_measured(self, fid):
        assert fid.xen_measurement is not None
        assert len(fid.xen_measurement) == 32

    def test_smep_armed(self, system):
        assert system.machine.cpu.smep_enabled

    def test_host_root_is_only_valid_root(self, system):
        assert system.fidelius.valid_roots == {system.machine.host_root}


class TestTable1Permissions:
    """Each row of the paper's Table 1, as memory behaviour."""

    def test_xen_page_tables_read_only(self, system):
        """'Page tables (Xen): read-only; PIT based policy.'"""
        machine = system.machine
        _, some_pt = machine.host_table_pages()[-1]
        with pytest.raises(PolicyViolation):
            machine.cpu.store(some_pt << 12, b"\x00" * 8)

    def test_npt_read_only(self, system):
        """'NPT (guest VM): read-only.'"""
        domain, _ = system.create_plain_guest("g", guest_frames=16)
        entry_pa = domain.npt.entry_pa(0)
        with pytest.raises(PolicyViolation):
            system.machine.cpu.store(entry_pa, b"\x00" * 8)

    def test_grant_table_read_only(self, system):
        """'Grant tables: read-only; GIT based policy.'"""
        domain, _ = system.create_plain_guest("g", guest_frames=16)
        pa = domain.grant_table.entry_pa(0)
        with pytest.raises(PolicyViolation):
            system.machine.cpu.store(pa, b"\xFF" * 16)

    def test_pit_pages_not_writable_by_xen(self, system):
        """'Page info table: read-only (Xen not writable).'"""
        fid = system.fidelius
        pit_pfn = next(iter(fid.pit.table_pfns))
        with pytest.raises(PolicyViolation):
            system.machine.cpu.store(pit_pfn << 12, b"\x00" * 4)

    def test_git_pages_not_writable_by_xen(self, system):
        fid = system.fidelius
        git_pfn = next(iter(fid.git.table_pfns))
        with pytest.raises(PolicyViolation):
            system.machine.cpu.store(git_pfn << 12, b"\x00" * 4)

    def test_shadow_area_no_access(self, system):
        """'Shadow states: no access (Xen not accessible).'"""
        fid = system.fidelius
        pfn = fid.shadow_area_pfns[0]
        with pytest.raises(PolicyViolation):
            system.machine.cpu.load(pfn << 12, 16)
        with pytest.raises(PolicyViolation):
            system.machine.cpu.store(pfn << 12, b"x")

    def test_sev_metadata_no_access(self, system):
        """'SEV metadata: no access.'"""
        fid = system.fidelius
        pfn = fid.sev_metadata_pfns[0]
        with pytest.raises(PolicyViolation):
            system.machine.cpu.load(pfn << 12, 16)

    def test_pit_knows_every_allocated_frame(self, system):
        machine = system.machine
        pit = system.fidelius.pit
        for pfn in range(machine.frames):
            if machine.allocator.is_allocated(pfn):
                assert pit.lookup(pfn).valid, "frame %#x unclassified" % pfn

    def test_pit_classification_kinds(self, system):
        pit = system.fidelius.pit
        machine = system.machine
        level, root = machine.host_table_pages()[0]
        assert pit.lookup(root).usage is PageUsage.PAGE_TABLE_L4
        text_pfn = system.hypervisor.text.base_va >> 12
        assert pit.lookup(text_pfn).usage is PageUsage.CODE
        dom0 = system.hypervisor.dom0
        assert pit.lookup(dom0.grant_table.frame_pfn).usage is \
            PageUsage.GRANT_TABLE


class TestBinaryRewrite:
    def test_xen_text_contains_no_privileged_encodings(self, system):
        machine = system.machine
        text = system.hypervisor.text
        for va in text.page_vas():
            blob = machine.memory.read_frame(va >> 12)
            assert scan_bytes(blob, va) == []

    def test_monopoly_verified(self, system):
        fid = system.fidelius
        allowed = {op: fid.text_image.va_of(op) for op in PrivOp}
        assert verify_monopoly(system.machine, system.machine.host_root,
                               allowed) == []

    def test_direct_exec_at_old_xen_location_fails(self, system):
        """The Xen copies were NOPed out: executing there fetches NOPs,
        not the privileged encoding."""
        from repro.common.constants import CR0_PG, CR0_WP
        machine = system.machine
        # the default image used to place MOV_CR0 at text + 0x100
        old_va = system.hypervisor.text.base_va + 0x100
        with pytest.raises(PageFault):
            machine.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG | CR0_WP,
                                        rip=old_va)

    def test_vmrun_page_unmapped_from_xen(self, system):
        fid = system.fidelius
        vmrun_va = fid.text_image.va_of(PrivOp.VMRUN)
        assert not system.machine.cpu.can_fetch(vmrun_va)

    def test_unaligned_hidden_encoding_detected_by_scanner(self, system):
        """Plant a VMRUN encoding inside other bytes at an unaligned
        offset; the scanner must still find it."""
        machine = system.machine
        text = system.hypervisor.text
        target_va = text.base_va + 0x301
        machine.memory.write(target_va, PRIV_OPCODES[PrivOp.VMRUN])
        fid = system.fidelius
        allowed = {op: fid.text_image.va_of(op) for op in PrivOp}
        hits = verify_monopoly(machine, machine.host_root, allowed)
        assert any(h.va == target_va and h.op is PrivOp.VMRUN for h in hits)


class TestFirmwareSealing:
    def test_direct_firmware_command_blocked(self, system):
        """SEV commands are only reachable through the type 3 gate."""
        with pytest.raises(SevError):
            system.firmware.launch_start()

    def test_gated_firmware_command_works(self, system):
        handle = system.fidelius.firmware_call("launch_start")
        assert handle in system.firmware.handles()

    def test_sev_metadata_synced_to_unmapped_frames(self, system, owner):
        domain, _ = system.boot_protected_guest(
            "meta", owner, payload=b"x", guest_frames=32)
        fid = system.fidelius
        pa = fid.sev_metadata_pfns[0] << 12
        blob = system.machine.memory.read(pa, 256)
        assert b"handle" in blob
