"""Tests for the three gate types and the Table 2 checking loops."""

import pytest

from repro.common.constants import (
    CR0_PG,
    CR0_WP,
    CR4_SMEP,
    EFER_NXE,
    EFER_SVME,
    GATE1_CYCLES,
    GATE2_CYCLES,
    GATE3_CYCLES,
    MSR_EFER,
)
from repro.common.errors import GateViolation, PageFault
from repro.common.types import PrivOp


class TestType1Gate:
    def test_wp_cleared_inside_restored_after(self, system):
        fid = system.fidelius
        cpu = system.machine.cpu
        assert cpu.wp_enabled
        with fid.gates.type1():
            assert not cpu.wp_enabled
            assert cpu.gate_active == "type1"
        assert cpu.wp_enabled
        assert cpu.gate_active is None

    def test_interrupts_disabled_and_stack_switched(self, system):
        fid = system.fidelius
        cpu = system.machine.cpu
        with fid.gates.type1():
            assert not cpu.interrupts_enabled
            assert cpu.current_stack == "fidelius"
        assert cpu.interrupts_enabled
        assert cpu.current_stack == "xen"

    def test_nested_gate_rejected(self, system):
        fid = system.fidelius
        with pytest.raises(GateViolation):
            with fid.gates.type1():
                with fid.gates.type1():
                    pass

    def test_gate1_charges_measured_cycles(self, system):
        fid = system.fidelius
        snap = system.machine.cycles.snapshot()
        with fid.gates.type1():
            pass
        assert snap.delta(system.machine.cycles)["gate1"] == GATE1_CYCLES

    def test_state_restored_on_policy_violation(self, system):
        from repro.common.errors import PolicyViolation
        fid = system.fidelius
        cpu = system.machine.cpu
        pit_pfn = next(iter(fid.pit.table_pfns))
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(pit_pfn << 12, b"\x00" * 4)
        assert cpu.wp_enabled
        assert cpu.interrupts_enabled
        assert cpu.gate_active is None


class TestType2CheckingLoops:
    """The policies of Table 2, enforced by the checking loops."""

    def test_mov_cr0_cannot_clear_wp(self, system):
        fid = system.fidelius
        cpu = system.machine.cpu
        before = cpu.cr0
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.MOV_CR0, CR0_PG)  # WP clear
        assert cpu.cr0 == before

    def test_mov_cr0_cannot_clear_pg(self, system):
        fid = system.fidelius
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.MOV_CR0, CR0_WP)  # PG clear

    def test_mov_cr0_benign_update_allowed(self, system):
        fid = system.fidelius
        fid.exec_monopolized(PrivOp.MOV_CR0, CR0_PG | CR0_WP | 1)
        assert system.machine.cpu.cr0 & 1

    def test_mov_cr4_cannot_clear_smep(self, system):
        fid = system.fidelius
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.MOV_CR4, 0)
        assert system.machine.cpu.smep_enabled

    def test_wrmsr_cannot_clear_nxe(self, system):
        fid = system.fidelius
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.WRMSR, (MSR_EFER, EFER_SVME))
        assert system.machine.cpu.nxe_enabled

    def test_wrmsr_cannot_clear_svme(self, system):
        fid = system.fidelius
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.WRMSR, (MSR_EFER, EFER_NXE))
        assert system.machine.cpu.svme_enabled

    def test_lgdt_lidt_execute_once_consumed(self, system):
        """Executed once at Xen init; any later run is denied."""
        fid = system.fidelius
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.LGDT, 0xDEAD000)
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.LIDT, 0xDEAD000)

    def test_checking_loop_cost(self, system):
        fid = system.fidelius
        snap = system.machine.cycles.snapshot()
        fid.exec_monopolized(PrivOp.MOV_CR0, CR0_PG | CR0_WP)
        assert snap.delta(system.machine.cycles)["gate2"] == GATE2_CYCLES

    def test_denials_audited(self, system):
        fid = system.fidelius
        with pytest.raises(GateViolation):
            fid.exec_monopolized(PrivOp.MOV_CR4, 0)
        assert "denied" in fid.audit_kinds()


class TestType3Gate:
    def test_vmrun_page_mapped_only_inside_gate(self, system):
        fid = system.fidelius
        cpu = system.machine.cpu
        vmrun_va = fid.text_image.va_of(PrivOp.VMRUN)
        assert not cpu.can_fetch(vmrun_va)
        with fid.gates.type3(fid.text_pfns[1], executable=True):
            assert cpu.can_fetch(vmrun_va)
        assert not cpu.can_fetch(vmrun_va)

    def test_mov_cr3_outside_gate_denied(self, system):
        fid = system.fidelius
        cpu = system.machine.cpu
        root = system.machine.host_root
        with fid.gates.type3(fid.text_pfns[1], executable=True):
            pass
        with pytest.raises((GateViolation, PageFault)):
            # even if the attacker could reach the instruction, the
            # checking loop runs without the gate being active
            cpu.exec_privileged(PrivOp.MOV_CR3, root,
                                rip=fid.text_image.va_of(PrivOp.MOV_CR3))

    def test_mov_cr3_to_rogue_root_denied(self, system):
        from repro.common.constants import PAGE_SIZE, PTE_WRITABLE
        fid = system.fidelius
        machine = system.machine
        # A rogue space that *does* map the instruction's continuation —
        # so the hardware can proceed and the checking loop gets to run.
        rogue_root = machine.allocator.alloc()
        machine.memory.zero_frame(rogue_root)
        for pfn in fid.text_pfns:
            machine.walker.map(rogue_root, pfn * PAGE_SIZE, pfn, PTE_WRITABLE)
        with pytest.raises(GateViolation):
            fid._gated_priv(PrivOp.MOV_CR3, rogue_root)
        assert machine.cpu.cr3_root == machine.host_root

    def test_mov_cr3_to_empty_space_cannot_continue(self, system):
        """Switching to a space that does not map the following
        instruction crashes immediately (the end-of-page placement
        discussion of Section 4.1.2) — blocked before any policy runs."""
        fid = system.fidelius
        rogue_root = system.machine.allocator.alloc()
        system.machine.memory.zero_frame(rogue_root)
        with pytest.raises(PageFault):
            fid._gated_priv(PrivOp.MOV_CR3, rogue_root)
        assert system.machine.cpu.cr3_root == system.machine.host_root

    def test_mov_cr3_to_valid_root_allowed(self, system):
        fid = system.fidelius
        root = system.machine.host_root
        fid._gated_priv(PrivOp.MOV_CR3, root)
        assert system.machine.cpu.cr3_root == root

    def test_gate3_cost(self, system):
        fid = system.fidelius
        snap = system.machine.cycles.snapshot()
        with fid.gates.type3(fid.text_pfns[1]):
            pass
        delta = snap.delta(system.machine.cycles)
        total = delta.get("gate3", 0) + delta.get("tlb-flush-entry", 0)
        assert total == GATE3_CYCLES

    def test_firmware_gate_maps_metadata(self, system):
        fid = system.fidelius
        with fid.gates.firmware_gate():
            data = system.machine.cpu.load(
                fid.sev_metadata_pfns[0] << 12, 4)
        assert isinstance(data, bytes)
