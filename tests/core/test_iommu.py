"""Tests for the IOMMU extension: device DMA behind a Fidelius-policed
device table closes the DMA window the paper concedes (Section 8)."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import PolicyViolation
from repro.hw.iommu import IommuFault
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


@pytest.fixture
def iommu_system():
    return System.create(fidelius=True, frames=2048, seed=0x10, iommu=True)


@pytest.fixture
def iommu_guest(iommu_system):
    owner = GuestOwner(seed=0x10)
    domain, ctx = iommu_system.boot_protected_guest(
        "g", owner, payload=b"x", guest_frames=48)
    return domain, ctx


class TestIommuMechanics:
    def test_unmapped_bus_address_faults(self, iommu_system):
        with pytest.raises(IommuFault):
            iommu_system.machine.dma.read(0x5000, 16)
        assert iommu_system.hypervisor.iommu.faults == 1

    def test_mapped_window_works(self):
        system = System.create(fidelius=False, frames=1024, seed=0x11,
                               iommu=True)
        pfn = system.machine.allocator.alloc()
        system.machine.memory.write(pfn * PAGE_SIZE, b"device data")
        system.hypervisor.iommu_map(5, pfn)
        assert system.machine.dma.read(5 * PAGE_SIZE, 11) == b"device data"
        system.machine.dma.write(5 * PAGE_SIZE + 64, b"written")
        assert system.machine.memory.read(pfn * PAGE_SIZE + 64, 7) == \
            b"written"

    def test_readonly_mapping_blocks_device_writes(self):
        system = System.create(fidelius=False, frames=1024, seed=0x12,
                               iommu=True)
        pfn = system.machine.allocator.alloc()
        system.hypervisor.iommu_map(5, pfn, writable=False)
        system.machine.dma.read(5 * PAGE_SIZE, 8)
        with pytest.raises(IommuFault):
            system.machine.dma.write(5 * PAGE_SIZE, b"x")

    def test_unmap(self):
        system = System.create(fidelius=False, frames=1024, seed=0x13,
                               iommu=True)
        pfn = system.machine.allocator.alloc()
        system.hypervisor.iommu_map(5, pfn)
        system.hypervisor.iommu_unmap(5)
        with pytest.raises(IommuFault):
            system.machine.dma.read(5 * PAGE_SIZE, 8)


class TestFideliusIommuPolicy:
    def test_device_table_write_protected(self, iommu_system):
        root = iommu_system.hypervisor.iommu.table.root_pfn
        with pytest.raises(PolicyViolation):
            iommu_system.machine.cpu.store(root << 12, b"\x00" * 8)

    def test_mapping_protected_guest_ram_denied(self, iommu_system,
                                                iommu_guest):
        """The hypervisor cannot point the device at a protected guest's
        private frame."""
        domain, ctx = iommu_guest
        ctx.hypercall(hc.HC_SCHED_YIELD)
        hpfn = iommu_system.hypervisor.guest_frame_hpfn(domain, 3)
        with pytest.raises(PolicyViolation):
            iommu_system.hypervisor.iommu_map(9, hpfn)

    def test_mapping_declared_buffer_allowed(self, iommu_system,
                                             iommu_guest):
        """The legitimate path: the PV stack maps the declared shared
        buffers into the device table and I/O still works end to end."""
        domain, ctx = iommu_guest
        encoder = iommu_system.aesni_encoder_for(ctx)
        disk, fe, be = iommu_system.attach_disk(domain, ctx,
                                                encoder=encoder)
        fe.write(4, b"dma-visible ciphertext")
        assert fe.read(4, 1).startswith(b"dma-visible ciphertext")

    def test_mapping_fidelius_frame_denied(self, iommu_system):
        fid = iommu_system.fidelius
        with pytest.raises(PolicyViolation):
            iommu_system.hypervisor.iommu_map(9, fid.shadow_area_pfns[0])

    def test_mapping_npt_page_denied(self, iommu_system, iommu_guest):
        domain, ctx = iommu_guest
        ctx.hypercall(hc.HC_SCHED_YIELD)
        with pytest.raises(PolicyViolation):
            iommu_system.hypervisor.iommu_map(9, domain.npt.root_pfn)

    def test_invariants_hold_with_iommu(self, iommu_system, iommu_guest):
        from repro.core.invariants import check_invariants
        domain, ctx = iommu_guest
        ctx.hypercall(hc.HC_SCHED_YIELD)
        assert check_invariants(iommu_system) == []


class TestDmaReplayClosedByIommu:
    def test_dma_replay_blocked_with_iommu(self):
        """The attack the paper concedes: with the extension armed, the
        stale-ciphertext write has no bus path to the victim's frame."""
        from repro.attacks.memory import dma_ciphertext_replay
        system = System.create(fidelius=True, frames=2048, seed=0x14,
                               iommu=True)
        result = dma_ciphertext_replay(system)
        assert result.blocked
        assert result.blocked_by in ("IommuFault", "AttackFailed",
                                     "PageFault", "PolicyViolation")

    def test_dma_buffer_snoop_still_sees_only_buffers(self):
        """Even what the device *can* reach is only encoder ciphertext."""
        from repro.attacks.io import dma_buffer_snoop
        system = System.create(fidelius=True, frames=2048, seed=0x15,
                               iommu=True)
        result = dma_buffer_snoop(system)
        assert result.blocked
