"""Tests for the PIT/GIT write-policy engine and the write-once /
write-forbidding policies (Sections 5.2, 5.3)."""

import pytest

from repro.common.constants import PAGE_SIZE, PTE_PRESENT, PTE_WRITABLE
from repro.common.errors import PolicyViolation
from repro.common.types import Owner, PageUsage
from repro.hw.pagetable import make_entry


def _pte_bytes(pfn, flags=PTE_PRESENT | PTE_WRITABLE):
    return make_entry(pfn, flags).to_bytes(8, "little")


class TestHostPtePolicies:
    def test_mapping_fidelius_frame_denied(self, system):
        fid = system.fidelius
        machine = system.machine
        shadow_pfn = fid.shadow_area_pfns[0]
        _, pt_page = machine.host_table_pages()[-1]
        entry_pa = machine.walker.entry_pa(machine.host_root, 0x2000)
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(entry_pa, _pte_bytes(shadow_pfn))

    def test_mapping_protected_guest_frame_denied(self, system,
                                                  protected_guest):
        domain, _ = protected_guest
        fid = system.fidelius
        machine = system.machine
        guest_pfn = system.hypervisor.guest_frame_hpfn(domain, 0)
        entry_pa = machine.walker.entry_pa(machine.host_root, 0x2000)
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(entry_pa, _pte_bytes(guest_pfn))

    def test_remapping_protected_structure_writable_denied(self, system):
        fid = system.fidelius
        machine = system.machine
        _, some_pt = machine.host_table_pages()[-1]
        entry_pa = machine.walker.entry_pa(machine.host_root, 0x2000)
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(entry_pa, _pte_bytes(some_pt))

    def test_benign_data_mapping_allowed(self, system):
        fid = system.fidelius
        machine = system.machine
        data_pfn = machine.allocator.alloc()
        fid.pit.classify(data_pfn, Owner.XEN, PageUsage.DATA)
        entry_pa = machine.walker.entry_pa(machine.host_root,
                                           data_pfn * PAGE_SIZE)
        fid.gates.guarded_write(entry_pa, _pte_bytes(data_pfn))

    def test_unmapping_always_allowed(self, system):
        fid = system.fidelius
        machine = system.machine
        entry_pa = machine.walker.entry_pa(machine.host_root, 0x2000)
        fid.gates.guarded_write(entry_pa, bytes(8))

    def test_wrong_size_write_rejected(self, system):
        fid = system.fidelius
        machine = system.machine
        entry_pa = machine.walker.entry_pa(machine.host_root, 0x2000)
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(entry_pa, b"\x00" * 4)


class TestNptPolicies:
    def test_npt_mapping_hypervisor_page_table_denied(self, system):
        domain, _ = system.create_plain_guest("g", guest_frames=16)
        fid = system.fidelius
        machine = system.machine
        _, xen_pt = machine.host_table_pages()[0]
        entry_pa = domain.npt.entry_pa(3 * PAGE_SIZE)
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(entry_pa, _pte_bytes(xen_pt))

    def test_npt_replay_redirect_denied(self, system, protected_guest):
        """Redirecting a present NPT leaf of a protected guest to a
        different frame — the replay attack — is denied even through
        the gate."""
        domain, _ = protected_guest
        fid = system.fidelius
        other_pfn = system.hypervisor.guest_frame_hpfn(domain, 7)
        entry_pa = domain.npt.entry_pa(3 * PAGE_SIZE)
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(entry_pa, _pte_bytes(other_pfn))

    def test_npt_double_mapping_denied(self, system, protected_guest):
        domain, ctx = protected_guest
        from repro.xen import hypercalls as hc
        ctx.hypercall(hc.HC_SCHED_YIELD)
        fid = system.fidelius
        hypervisor = system.hypervisor
        mapped_pfn = hypervisor.guest_frame_hpfn(domain, 7)
        hypervisor.unmap_npt(domain, 3)  # free slot 3
        entry_pa = domain.npt.entry_pa(3 * PAGE_SIZE)
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(entry_pa, _pte_bytes(mapped_pfn))

    def test_npt_flag_update_same_frame_allowed(self, system,
                                                protected_guest):
        domain, ctx = protected_guest
        from repro.xen import hypercalls as hc
        ctx.hypercall(hc.HC_SCHED_YIELD)
        from repro.common.constants import PTE_C_BIT
        system.hypervisor.set_npt_flags(domain, 3, set_mask=PTE_C_BIT)
        assert domain.npt.c_bit_of(3 * PAGE_SIZE)

    def test_unprotected_guest_npt_remap_allowed(self, system):
        """Baseline remapping semantics survive for unenrolled guests."""
        domain, _ = system.create_plain_guest("g", guest_frames=16)
        hypervisor = system.hypervisor
        other = hypervisor.guest_frame_hpfn(domain, 7)
        entry_pa = domain.npt.entry_pa(3 * PAGE_SIZE)
        system.fidelius.gates.guarded_write(entry_pa, _pte_bytes(other))
        assert hypervisor.guest_frame_hpfn(domain, 3) == other


class TestWriteOnceExecuteOnce:
    def test_write_once_first_write_mediated(self, system):
        fid = system.fidelius
        machine = system.machine
        pfn = machine.allocator.alloc()
        machine.memory.zero_frame(pfn)
        base = pfn * PAGE_SIZE
        fid.register_write_once_region(base, PAGE_SIZE,
                                       PageUsage.START_INFO, "start-info")
        machine.tlb.flush_all("test")
        machine.cpu.store(base, b"boot parameters")
        assert machine.memory.read(base, 15) == b"boot parameters"

    def test_write_once_second_write_denied(self, system):
        fid = system.fidelius
        machine = system.machine
        pfn = machine.allocator.alloc()
        machine.memory.zero_frame(pfn)
        base = pfn * PAGE_SIZE
        fid.register_write_once_region(base, PAGE_SIZE,
                                       PageUsage.START_INFO, "start-info")
        machine.tlb.flush_all("test")
        machine.cpu.store(base, b"first")
        with pytest.raises(PolicyViolation):
            machine.cpu.store(base, b"second")
        assert "write-once-denied" in system.fidelius.audit_kinds()

    def test_disjoint_offsets_each_writable_once(self, system):
        fid = system.fidelius
        machine = system.machine
        pfn = machine.allocator.alloc()
        machine.memory.zero_frame(pfn)
        base = pfn * PAGE_SIZE
        fid.register_write_once_region(base, PAGE_SIZE,
                                       PageUsage.SHARED_INFO, "shared-info")
        machine.tlb.flush_all("test")
        machine.cpu.store(base, b"aaaa")
        machine.cpu.store(base + 16, b"bbbb")
        with pytest.raises(PolicyViolation):
            machine.cpu.store(base + 2, b"cc")  # overlaps the first write


class TestWriteForbidding:
    def test_code_page_write_via_gate_denied(self, system):
        fid = system.fidelius
        text_va = system.hypervisor.text.base_va
        with pytest.raises(PolicyViolation):
            fid.gates.guarded_write(text_va, b"\xCC" * 8)

    def test_code_page_direct_write_faults(self, system):
        with pytest.raises(PolicyViolation):
            system.machine.cpu.store(system.hypervisor.text.base_va, b"\xCC")
        assert "fault-blocked" in system.fidelius.audit_kinds()
