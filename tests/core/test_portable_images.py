"""Tests for portable encrypted images over the customized-key
extension — Section 8's fix for single-machine image sealing."""

import pytest

from repro.common.errors import ReproError, SevError
from repro.core.hwext import (
    boot_portable_guest,
    prepare_portable_image,
    wrap_gek_for_platform,
)
from repro.core.lifecycle import read_kernel_payload
from repro.system import GuestOwner, System


@pytest.fixture
def owner():
    return GuestOwner(seed=0x6EC)


@pytest.fixture
def portable(owner):
    return prepare_portable_image(owner, b"portable app v2")


class TestImagePreparation:
    def test_image_is_ciphertext(self, owner, portable):
        image, gek = portable
        blob = b"".join(ct for _, ct in image.records)
        assert b"portable app v2" not in blob
        assert owner.kblk not in blob

    def test_single_image_many_wraps(self, owner, portable):
        _, gek = portable
        a = System.create(fidelius=True, frames=1024, seed=1)
        b = System.create(fidelius=True, frames=1024, seed=2)
        wrap_a = wrap_gek_for_platform(owner, gek,
                                       a.firmware.platform_public_key)
        wrap_b = wrap_gek_for_platform(owner, gek,
                                       b.firmware.platform_public_key)
        assert wrap_a != wrap_b  # per-platform wrapping of the same key


class TestPortableBoot:
    def test_same_image_boots_on_two_machines(self, owner, portable):
        """The Section 8 payoff: one image, two hosts — impossible with
        the SEND-sealed flow (see test_image_sealed_to_one_machine)."""
        image, gek = portable
        for seed in (11, 12):
            system = System.create(fidelius=True, frames=2048, seed=seed)
            wrapped = wrap_gek_for_platform(
                owner, gek, system.firmware.platform_public_key)
            domain, ctx = boot_portable_guest(
                system.fidelius, "portable", image, wrapped,
                owner.dh.public, owner.nonce, guest_frames=32)
            assert read_kernel_payload(ctx, 15) == b"portable app v2"
            assert domain in system.fidelius.protected_domains

    def test_wrong_platform_wrap_fails(self, owner, portable):
        image, gek = portable
        a = System.create(fidelius=True, frames=2048, seed=21)
        b = System.create(fidelius=True, frames=2048, seed=22)
        wrapped_for_a = wrap_gek_for_platform(
            owner, gek, a.firmware.platform_public_key)
        with pytest.raises((SevError, ValueError)):
            boot_portable_guest(b.fidelius, "x", image, wrapped_for_a,
                                owner.dh.public, owner.nonce,
                                guest_frames=32)

    def test_tampered_image_fails_measurement(self, owner, portable):
        import dataclasses
        image, gek = portable
        system = System.create(fidelius=True, frames=2048, seed=23)
        wrapped = wrap_gek_for_platform(
            owner, gek, system.firmware.platform_public_key)
        index, ct = image.records[0]
        evil = ((index, bytes([ct[0] ^ 1]) + ct[1:]),) + image.records[1:]
        image = dataclasses.replace(image, records=evil)
        with pytest.raises(ReproError):
            boot_portable_guest(system.fidelius, "x", image, wrapped,
                                owner.dh.public, owner.nonce,
                                guest_frames=32)

    def test_policy_applies_to_portable_guests(self):
        from repro.sev.state import POLICY_NODBG
        owner = GuestOwner(seed=0x6ED, policy=POLICY_NODBG)
        image, gek = prepare_portable_image(owner, b"locked down")
        system = System.create(fidelius=True, frames=2048, seed=24)
        wrapped = wrap_gek_for_platform(
            owner, gek, system.firmware.platform_public_key)
        domain, _ = boot_portable_guest(
            system.fidelius, "locked", image, wrapped,
            owner.dh.public, owner.nonce, guest_frames=32)
        assert system.firmware.guest_policy(domain.sev_handle) \
            & POLICY_NODBG

    def test_guest_memory_protected_after_portable_boot(self, owner,
                                                        portable):
        from repro.common.errors import PolicyViolation
        image, gek = portable
        system = System.create(fidelius=True, frames=2048, seed=25)
        wrapped = wrap_gek_for_platform(
            owner, gek, system.firmware.platform_public_key)
        domain, ctx = boot_portable_guest(
            system.fidelius, "p", image, wrapped, owner.dh.public,
            owner.nonce, guest_frames=32)
        with pytest.raises(PolicyViolation):
            system.machine.cpu.load(
                system.hypervisor.guest_frame_hpfn(domain, 0) * 4096, 8)
