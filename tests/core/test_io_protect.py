"""Tests for the two I/O protection paths of Section 4.3.5."""

import pytest

from repro.common.constants import SECTOR_SIZE
from repro.common.errors import ReproError
from repro.core.io_protect import (
    AesNiIoEncoder,
    SevApiIoEncoder,
    SoftwareIoEncoder,
)
from repro.sev.state import GuestState

SECRET = b"TOP SECRET DATABASE ROW: salary=1000000"


@pytest.fixture
def aesni_dev(system, protected_guest):
    domain, ctx = protected_guest
    encoder = system.aesni_encoder_for(ctx)
    disk, frontend, backend = system.attach_disk(domain, ctx, encoder=encoder)
    return disk, frontend, backend


@pytest.fixture
def sev_dev(system, protected_guest):
    domain, ctx = protected_guest
    encoder = system.sev_encoder_for(domain, ctx, pages=2)
    disk, frontend, backend = system.attach_disk(
        domain, ctx, encoder=encoder, buffer_pages=2)
    return disk, frontend, backend


class TestAesNiPath:
    def test_roundtrip(self, aesni_dev):
        _, frontend, _ = aesni_dev
        frontend.write(10, SECRET)
        assert frontend.read(10, 1).startswith(SECRET)

    def test_driver_domain_sees_only_ciphertext(self, aesni_dev):
        disk, frontend, backend = aesni_dev
        frontend.write(10, SECRET)
        frontend.read(10, 1)
        assert SECRET[:16] not in backend.everything_observed()

    def test_disk_at_rest_is_ciphertext(self, aesni_dev):
        disk, frontend, _ = aesni_dev
        frontend.write(10, SECRET)
        assert SECRET[:16] not in disk.raw_sector(10)

    def test_random_access_decodes_any_sector(self, aesni_dev):
        _, frontend, _ = aesni_dev
        payload = bytes(range(256)) * 8  # 4 sectors
        frontend.write(100, payload)
        # read the third sector alone
        third = frontend.read(102, 1)
        assert third == payload[2 * SECTOR_SIZE:3 * SECTOR_SIZE]

    def test_owner_encrypted_disk_image_readable(self, system, owner,
                                                 protected_guest):
        """Section 4.3.3 step 4: the mounted disk image, encrypted
        offline with K_blk, decodes through the front end."""
        domain, ctx = protected_guest
        image = owner.encrypt_disk_image(b"etc/passwd: root:x:0:0" + bytes(100))
        encoder = system.aesni_encoder_for(ctx)
        disk, frontend, _ = system.attach_disk(
            domain, ctx, encoder=encoder, image=image)
        assert frontend.read(0, 1).startswith(b"etc/passwd: root:x:0:0")

    def test_cycle_accounting_read_heavier_than_write(self, system,
                                                      aesni_dev):
        """Table 3's asymmetry: decryption is on the read critical path
        while write encryption is batched off it."""
        _, frontend, _ = aesni_dev
        cycles = system.machine.cycles
        snap = cycles.snapshot()
        frontend.write(0, bytes(8 * SECTOR_SIZE))
        write_cost = snap.delta(cycles).get("io-encrypt-aes-ni", 0)
        snap = cycles.snapshot()
        frontend.read(0, 8)
        read_cost = snap.delta(cycles).get("io-decrypt-aes-ni", 0)
        assert read_cost > 3 * write_cost


class TestSevApiPath:
    def test_helper_domains_pinned_in_states(self, system, protected_guest):
        domain, ctx = protected_guest
        encoder = system.sev_encoder_for(domain, ctx)
        firmware = system.firmware
        assert firmware.guest_state(encoder.s_handle) is GuestState.SENDING
        assert firmware.guest_state(encoder.r_handle) is GuestState.RECEIVING
        # and the guest itself keeps RUNNING
        assert firmware.guest_state(domain.sev_handle) is GuestState.RUNNING

    def test_roundtrip(self, sev_dev):
        _, frontend, _ = sev_dev
        frontend.write(10, SECRET)
        assert frontend.read(10, 1).startswith(SECRET)

    def test_driver_domain_sees_only_ciphertext(self, sev_dev):
        _, frontend, backend = sev_dev
        frontend.write(10, SECRET)
        frontend.read(10, 1)
        assert SECRET[:16] not in backend.everything_observed()

    def test_random_access(self, sev_dev):
        _, frontend, _ = sev_dev
        payload = bytes([7]) * SECTOR_SIZE + bytes([9]) * SECTOR_SIZE
        frontend.write(50, payload)
        assert frontend.read(51, 1) == bytes([9]) * SECTOR_SIZE

    def test_oversized_request_rejected(self, system, protected_guest):
        domain, ctx = protected_guest
        encoder = system.sev_encoder_for(domain, ctx, pages=1)
        with pytest.raises(ReproError):
            encoder.encode_write(bytes(2 * 4096), 0)

    def test_teardown_decommissions_helpers(self, system, protected_guest):
        domain, ctx = protected_guest
        encoder = system.sev_encoder_for(domain, ctx)
        encoder.teardown()
        assert encoder.s_handle not in system.firmware.handles()
        assert encoder.r_handle not in system.firmware.handles()

    def test_metadata_records_helper_handles(self, system, protected_guest):
        domain, ctx = protected_guest
        encoder = system.sev_encoder_for(domain, ctx)
        meta = system.fidelius.sev_meta[domain.domid]
        assert meta["s_dom"] == encoder.s_handle
        assert meta["r_dom"] == encoder.r_handle


class TestEncoderCosts:
    def test_software_much_slower_than_aesni(self, system, protected_guest):
        """The >20x software-crypto gap of the Section 7.2 micro
        benchmark, visible at the encoder level."""
        _, ctx = protected_guest
        cycles = system.machine.cycles
        data = bytes(16 * SECTOR_SIZE)
        aesni = AesNiIoEncoder(b"k" * 16, cycles)
        software = SoftwareIoEncoder(b"k" * 16, cycles)
        snap = cycles.snapshot()
        aesni.decode_read(data, 0)
        aesni_cost = cycles.since(snap)
        snap = cycles.snapshot()
        software.decode_read(data, 0)
        software_cost = cycles.since(snap)
        assert software_cost > 20 * aesni_cost * 0.8

    def test_interoperable_formats(self, system, protected_guest):
        """AES-NI encode / software decode must agree (same K_blk and
        sector tweaks): a guest can switch paths between boots."""
        cycles = system.machine.cycles
        a = AesNiIoEncoder(b"k" * 16, cycles)
        s = SoftwareIoEncoder(b"k" * 16, cycles)
        data = bytes(range(256)) * 2
        assert s.decode_read(a.encode_write(data, 5), 5) == data
