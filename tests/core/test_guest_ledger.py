"""The per-guest performance ledger survives migration and restore.

A tenant's lifetime accounting (VMRUNs, VMEXITs, cycles spent in guest
mode) must travel with its memory image: a migrated or restored guest
that restarts its counters from zero lies to the operator.  The TLB
epoch moves the other way — it *must* advance on every new incarnation
(each starts on a cold TLB) and never reset.
"""

from repro.core.migration import migrate_guest, restore_guest, snapshot_guest
from repro.system import GuestOwner, paired_systems
from repro.xen import hypercalls as hc


def _booted(system, name="led"):
    owner = GuestOwner(seed=0x1ED6)
    domain, ctx = system.boot_protected_guest(
        name, owner, payload=b"ledger payload", guest_frames=32)
    ctx.write(0, b"hello ledger")
    ctx.hypercall(hc.HC_SCHED_YIELD)
    return domain, ctx


class TestGuestLedger:
    def test_world_switches_are_accounted(self, system):
        domain, _ctx = _booted(system)
        stats = domain.perf_stats()
        assert stats["vmruns"] > 0
        assert stats["vmexits"] > 0
        assert stats["cycles_in_guest"] > 0
        assert stats["tlb_epoch"] == 0

    def test_snapshot_restore_roundtrips_ledger(self, system):
        domain, _ctx = _booted(system)
        before = domain.perf_stats()
        package = snapshot_guest(system.fidelius, domain)
        system.hypervisor.destroy_domain(domain)
        restored, rctx = restore_guest(system.fidelius, package)
        after = restored.perf_stats()
        assert after["vmruns"] == before["vmruns"]
        assert after["vmexits"] == before["vmexits"]
        assert after["cycles_in_guest"] == before["cycles_in_guest"]
        assert after["tlb_epoch"] == before["tlb_epoch"] + 1
        # ...and the restored incarnation keeps accumulating on top.
        rctx.hypercall(hc.HC_SCHED_YIELD)
        assert restored.perf_stats()["vmruns"] > after["vmruns"]

    def test_migration_accumulates_and_bumps_epoch(self):
        source, target = paired_systems(frames=2048)
        domain, _ctx = _booted(source)
        before = domain.perf_stats()
        moved, moved_ctx = migrate_guest(
            source.fidelius, domain, target.fidelius)
        stats = moved.perf_stats()
        assert stats["vmruns"] == before["vmruns"]
        assert stats["cycles_in_guest"] == before["cycles_in_guest"]
        assert stats["tlb_epoch"] == 1
        moved_ctx.hypercall(hc.HC_SCHED_YIELD)
        # A second hop: counters still cumulative, epoch at 2 (never
        # reset — it counts cold-TLB incarnations over the lifetime).
        back, _back_ctx = migrate_guest(
            target.fidelius, moved, source.fidelius)
        stats = back.perf_stats()
        assert stats["vmruns"] > before["vmruns"]
        assert stats["tlb_epoch"] == 2
