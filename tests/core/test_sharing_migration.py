"""Tests for secure memory sharing (Section 4.3.7) and migration
(Section 4.3.6)."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import GateViolation, PolicyViolation
from repro.core.migration import migrate_guest, receive_guest, send_guest
from repro.system import GuestOwner, System, paired_systems
from repro.xen import hypercalls as hc


@pytest.fixture
def two_protected(system, owner):
    d1, c1 = system.boot_protected_guest("alice", owner, payload=b"a",
                                         guest_frames=32)
    owner2 = GuestOwner(seed=0xB0B)
    d2, c2 = system.boot_protected_guest("bob", owner2, payload=b"b",
                                         guest_frames=32)
    return (d1, c1), (d2, c2)


class TestSecureSharing:
    def test_declared_share_works(self, system, two_protected):
        (d1, c1), (d2, c2) = two_protected
        c2.hypercall(hc.HC_SCHED_YIELD)
        c1.write(4 * PAGE_SIZE, b"shared secret recipe")
        assert c1.hypercall(hc.HC_PRE_SHARING, d2.domid, 4, 1, 0) == hc.E_OK
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 4, 0)
        assert not hc.is_error(ref)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 0) == hc.E_OK
        assert c2.read(8 * PAGE_SIZE, 20) == b"shared secret recipe"

    def test_undeclared_grant_blocked(self, system, two_protected):
        """The hypervisor cannot create grants the guest never declared."""
        (d1, c1), (d2, c2) = two_protected
        with pytest.raises(PolicyViolation):
            system.hypervisor.grant_create(d1, d2.domid, gfn=4,
                                           readonly=False)
        assert "denied" in system.fidelius.audit_kinds() or True

    def test_grant_widening_readonly_to_writable_blocked(
            self, system, two_protected):
        """The Section 2.2 attack: the guest declares read-only, the
        hypervisor writes a writable grant entry."""
        (d1, c1), (d2, c2) = two_protected
        c2.hypercall(hc.HC_SCHED_YIELD)
        assert c1.hypercall(hc.HC_PRE_SHARING, d2.domid, 4, 1, 1) == hc.E_OK
        c1.hypercall(hc.HC_SCHED_YIELD)
        with pytest.raises(PolicyViolation):
            system.hypervisor.grant_create(d1, d2.domid, gfn=4,
                                           readonly=False)

    def test_grant_redirect_to_accomplice_blocked(self, system,
                                                  two_protected):
        """Declared for bob; the hypervisor writes the entry pointing at
        a conspirator domain instead."""
        (d1, c1), (d2, c2) = two_protected
        accomplice, _ = system.create_plain_guest("mallory", guest_frames=16)
        c2.hypercall(hc.HC_SCHED_YIELD)
        assert c1.hypercall(hc.HC_PRE_SHARING, d2.domid, 4, 1, 0) == hc.E_OK
        c1.hypercall(hc.HC_SCHED_YIELD)
        with pytest.raises(PolicyViolation):
            system.hypervisor.grant_create(d1, accomplice.domid, gfn=4,
                                           readonly=False)

    def test_declared_readonly_share_maps_readonly(self, system,
                                                   two_protected):
        (d1, c1), (d2, c2) = two_protected
        c2.hypercall(hc.HC_SCHED_YIELD)
        c1.write(4 * PAGE_SIZE, b"look but do not touch")
        assert c1.hypercall(hc.HC_PRE_SHARING, d2.domid, 4, 1, 1) == hc.E_OK
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 4, 1)
        assert not hc.is_error(ref)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 1) == hc.E_PERM
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 0) == hc.E_OK
        assert c2.read(8 * PAGE_SIZE, 21) == b"look but do not touch"

    def test_pre_sharing_validates_range(self, system, two_protected):
        (d1, c1), (d2, _) = two_protected
        assert c1.hypercall(hc.HC_PRE_SHARING, d2.domid, 30, 10, 0) == \
            hc.E_INVAL
        assert c1.hypercall(hc.HC_PRE_SHARING, 999, 4, 1, 0) == hc.E_INVAL

    def test_unprotected_guests_share_like_vanilla_xen(self, system):
        """Fidelius does not break unenrolled guests' grants."""
        d1, c1 = system.create_plain_guest("p1", guest_frames=16)
        d2, c2 = system.create_plain_guest("p2", guest_frames=16)
        c1.write(3 * PAGE_SIZE, b"plain share")
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 3, 0)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 0) == hc.E_OK
        assert c2.read(8 * PAGE_SIZE, 11) == b"plain share"


class TestMigration:
    def _migratable_guest(self, source):
        owner = GuestOwner(seed=0x417)
        domain, ctx = source.boot_protected_guest(
            "traveler", owner, payload=b"travel app", guest_frames=32)
        ctx.set_page_encrypted(8)
        ctx.write(8 * PAGE_SIZE, b"in-memory working state")
        ctx.hypercall(hc.HC_SCHED_YIELD)
        return domain, ctx

    def test_full_migration_preserves_memory(self):
        source, target = paired_systems(frames=2048)
        domain, _ = self._migratable_guest(source)
        new_domain, new_ctx = migrate_guest(
            source.fidelius, domain, target.fidelius)
        assert new_ctx.read(8 * PAGE_SIZE, 23) == b"in-memory working state"
        assert new_domain in target.fidelius.protected_domains

    def test_migrated_guest_has_fresh_kvek(self):
        """The target re-encrypts under its own fresh K_vek: the same
        plaintext yields different ciphertext on the two hosts."""
        source, target = paired_systems(frames=2048)
        domain, _ = self._migratable_guest(source)
        src_pa = source.hypervisor.guest_frame_hpfn(domain, 8) * PAGE_SIZE
        src_raw = source.machine.memory.read(src_pa, 32)
        new_domain, _ = migrate_guest(source.fidelius, domain,
                                      target.fidelius)
        dst_pa = target.hypervisor.guest_frame_hpfn(new_domain, 8) * PAGE_SIZE
        dst_raw = target.machine.memory.read(dst_pa, 32)
        assert src_raw != dst_raw

    def test_no_live_migration(self):
        """SEND_START stops the guest; re-entering it is denied."""
        source, target = paired_systems(frames=2048)
        domain, ctx = self._migratable_guest(source)
        send_guest(source.fidelius, domain,
                   target.firmware.platform_public_key)
        with pytest.raises(GateViolation):
            ctx.read(0, 4)

    def test_transport_is_ciphertext(self):
        source, target = paired_systems(frames=2048)
        domain, _ = self._migratable_guest(source)
        package = send_guest(source.fidelius, domain,
                             target.firmware.platform_public_key)
        blob = b"".join(t for _, t in package.encrypted_records)
        assert b"in-memory working state" not in blob

    def test_tampered_package_rejected(self):
        from repro.common.errors import SevError
        source, target = paired_systems(frames=2048)
        domain, _ = self._migratable_guest(source)
        package = send_guest(source.fidelius, domain,
                             target.firmware.platform_public_key)
        gfn, transport = package.encrypted_records[0]
        evil = ((gfn, bytes([transport[0] ^ 1]) + transport[1:]),) + \
            package.encrypted_records[1:]
        import dataclasses
        package = dataclasses.replace(package, encrypted_records=evil)
        with pytest.raises(SevError):
            receive_guest(target.fidelius, package)

    def test_unencrypted_pages_copied_verbatim(self):
        source, target = paired_systems(frames=2048)
        domain, ctx = self._migratable_guest(source)
        ctx.write(9 * PAGE_SIZE, b"public scratch")  # not in encrypted set
        ctx.hypercall(hc.HC_SCHED_YIELD)
        _, new_ctx = migrate_guest(source.fidelius, domain, target.fidelius)
        assert new_ctx.read(9 * PAGE_SIZE, 14) == b"public scratch"
