"""Fixtures for the Fidelius core tests."""

import pytest

from repro.system import GuestOwner, System


@pytest.fixture
def system():
    """A Fidelius-hardened host."""
    return System.create(fidelius=True, frames=2048, seed=0xF1D)


@pytest.fixture
def fid(system):
    return system.fidelius


@pytest.fixture
def owner():
    return GuestOwner(seed=0x0E12)


@pytest.fixture
def protected_guest(system, owner):
    domain, ctx = system.boot_protected_guest(
        "protected", owner, payload=b"guest application payload",
        guest_frames=48)
    return domain, ctx
