"""Tests for the page information table and grant information table."""

import pytest
from hypothesis import given, strategies as st

from repro.common.types import Owner, PageUsage
from repro.core.git import GitEntry, GrantInfoTable
from repro.core.pit import FREE_ENTRY, PageInfoTable, PitEntry
from repro.hw import Machine


@pytest.fixture
def machine():
    m = Machine(frames=1024, seed=3)
    m.build_host_address_space()
    return m


@pytest.fixture
def pit(machine):
    return PageInfoTable(machine, machine.allocator.alloc)


@pytest.fixture
def git(machine):
    return GrantInfoTable(machine, machine.allocator.alloc)


class TestPitEntryCodec:
    def test_roundtrip(self):
        entry = PitEntry(Owner.GUEST, PageUsage.GUEST_RAM, tag=37, valid=True)
        assert PitEntry.unpack(entry.pack()) == entry

    @given(owner=st.sampled_from(list(Owner)),
           usage=st.sampled_from(list(PageUsage)),
           tag=st.integers(0, 0xFFFF))
    def test_property_roundtrip(self, owner, usage, tag):
        entry = PitEntry(owner, usage, tag, valid=True)
        assert PitEntry.unpack(entry.pack()) == entry


class TestPageInfoTable:
    def test_unclassified_is_free(self, pit):
        assert pit.lookup(500) == FREE_ENTRY

    def test_classify_lookup(self, pit):
        pit.classify(500, Owner.XEN, PageUsage.NPT_PAGE, tag=3)
        info = pit.lookup(500)
        assert info.owner is Owner.XEN
        assert info.usage is PageUsage.NPT_PAGE
        assert info.tag == 3
        assert info.valid

    def test_invalidate(self, pit):
        pit.classify(500, Owner.GUEST, PageUsage.GUEST_RAM, tag=1)
        pit.invalidate(500)
        assert pit.lookup(500) == FREE_ENTRY

    def test_reclassify_overwrites(self, pit):
        pit.classify(500, Owner.GUEST, PageUsage.GUEST_RAM, tag=1)
        pit.classify(500, Owner.XEN, PageUsage.DATA)
        assert pit.lookup(500).owner is Owner.XEN

    def test_tree_grows_lazily(self, machine, pit):
        before = len(pit.table_pfns)
        pit.classify(0, Owner.XEN, PageUsage.DATA)
        pit.classify(1023, Owner.XEN, PageUsage.DATA)
        pit.classify(1024, Owner.XEN, PageUsage.DATA)  # next leaf
        assert len(pit.table_pfns) > before

    def test_entries_live_in_real_frames(self, machine, pit):
        """The PIT is memory, not a Python dict: its bytes are in frames
        the install step can write-protect."""
        pit.classify(500, Owner.FIDELIUS, PageUsage.PIT_PAGE)
        pa = pit.entry_pa(500)
        raw = int.from_bytes(machine.memory.read(pa, 4), "little")
        assert PitEntry.unpack(raw).owner is Owner.FIDELIUS

    def test_classify_many_and_scan(self, pit):
        pit.classify_many([5, 6, 7], Owner.GUEST, PageUsage.GUEST_RAM, tag=9)
        found = pit.frames_with(
            lambda e: e.valid and e.owner is Owner.GUEST and e.tag == 9,
            limit_pfn=32)
        assert found == [5, 6, 7]

    @given(pfns=st.sets(st.integers(0, 5000), min_size=1, max_size=30))
    def test_property_disjoint_classification(self, pfns):
        machine = Machine(frames=256, seed=1)
        pit = PageInfoTable(machine, machine.allocator.alloc)
        for pfn in pfns:
            pit.classify(pfn, Owner.GUEST, PageUsage.GUEST_RAM,
                         tag=pfn % 100)
        for pfn in pfns:
            assert pit.lookup(pfn).tag == pfn % 100


class TestGrantInfoTable:
    def _entry(self, **kw):
        defaults = dict(initiator_domid=1, target_domid=2, first_gfn=10,
                        nframes=4, readonly=False)
        defaults.update(kw)
        return GitEntry(**defaults)

    def test_record_and_find(self, git):
        git.record(self._entry())
        match = git.find_match(1, 2, 12)
        assert match is not None
        assert match.nframes == 4

    def test_range_boundaries(self, git):
        git.record(self._entry())
        assert git.find_match(1, 2, 10) is not None
        assert git.find_match(1, 2, 13) is not None
        assert git.find_match(1, 2, 14) is None
        assert git.find_match(1, 2, 9) is None

    def test_wrong_parties_do_not_match(self, git):
        git.record(self._entry())
        assert git.find_match(1, 3, 12) is None
        assert git.find_match(2, 2, 12) is None

    def test_remove_for_domain(self, git):
        git.record(self._entry())
        git.record(self._entry(initiator_domid=5, target_domid=1))
        removed = git.remove_for_domain(1)
        assert removed == 2
        assert git.find_match(1, 2, 12) is None

    def test_entries_for(self, git):
        git.record(self._entry())
        git.record(self._entry(first_gfn=40))
        assert len(git.entries_for(1)) == 2
        assert git.entries_for(7) == []

    def test_readonly_flag_roundtrip(self, git):
        git.record(self._entry(readonly=True))
        assert git.find_match(1, 2, 10).readonly

    def test_capacity_and_reuse(self, git):
        index = git.record(self._entry())
        git.remove(index)
        assert git.record(self._entry(first_gfn=99)) == index
