"""The hybrid configuration: Fidelius on SEV-ES hardware.

The paper anticipates it: "shadowing VMCB and registers can be regarded
as a software version of SEV-ES, while others will solve the remaining
issues" (Section 3.1).  With ES in silicon, Fidelius delegates the
state boundary to hardware (dropping the 661-cycle shadow round trip)
and keeps every other mechanism — so the *union* of both attack
families stays blocked, cheaper.
"""

import pytest

from repro.attacks.grants import grant_permission_widening
from repro.attacks.keys import handle_asid_keyshare, sev_command_forgery
from repro.attacks.memory import cpu_ciphertext_replay
from repro.attacks.state import (
    iago_return_value,
    register_steal,
    vmcb_rip_hijack,
)
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


def _hybrid(seed):
    return System.create(fidelius=True, sev_es=True, frames=2048, seed=seed)


class TestHybridConfiguration:
    def test_fidelius_knows_about_the_hardware(self):
        system = _hybrid(1)
        assert system.fidelius.hardware_es

    def test_protected_guests_marked_es(self):
        system = _hybrid(2)
        owner = GuestOwner(seed=2)
        domain, _ = system.boot_protected_guest("g", owner, payload=b"x",
                                                guest_frames=32)
        assert domain.sev_es

    def test_guest_runs_normally(self):
        system = _hybrid(3)
        owner = GuestOwner(seed=3)
        _, ctx = system.boot_protected_guest("g", owner, payload=b"x",
                                             guest_frames=32)
        ctx.set_page_encrypted(5)
        ctx.write(5 * 4096, b"hybrid data")
        assert ctx.read(5 * 4096, 11) == b"hybrid data"
        assert ctx.hypercall(hc.HC_VOID) == hc.E_OK


class TestUnionOfDefences:
    @pytest.mark.parametrize("attack_fn", [
        register_steal,            # blocked by the ES hardware
        vmcb_rip_hijack,           # VMSA reload discards the hijack
        iago_return_value,         # Fidelius's entry-path validator
        cpu_ciphertext_replay,     # Fidelius: guest RAM unmapped
        handle_asid_keyshare,      # Fidelius: gated SEV commands
        sev_command_forgery,
        grant_permission_widening,  # Fidelius: GIT policy
    ], ids=lambda f: f.attack_name)
    def test_attack_blocked_in_hybrid(self, attack_fn):
        result = attack_fn(_hybrid(seed=41))
        assert result.blocked, "%s: %s" % (attack_fn.attack_name,
                                           result.detail)


class TestCostSaving:
    def test_no_shadow_cost_on_es_hardware(self):
        """The hybrid saves the measured 661-cycle software round trip."""
        software = System.create(fidelius=True, frames=2048, seed=51)
        hybrid = _hybrid(seed=51)

        def roundtrip_cost(system):
            owner = GuestOwner(seed=51)
            _, ctx = system.boot_protected_guest(
                "bench", owner, payload=b"x", guest_frames=32)
            ctx._ensure_guest()
            cycles = system.machine.cycles
            snapshot = cycles.snapshot()
            for _ in range(50):
                ctx.hypercall(hc.HC_VOID)
            delta = snapshot.delta(cycles)
            per_call = cycles.since(snapshot) / 50
            shadow = (delta.get("shadow-exit", 0)
                      + delta.get("shadow-verify", 0)) / 50
            return per_call, shadow

        software_cost, software_shadow = roundtrip_cost(software)
        hybrid_cost, hybrid_shadow = roundtrip_cost(hybrid)
        assert software_shadow == pytest.approx(661, abs=1)
        assert hybrid_shadow == 0
        assert software_cost - hybrid_cost == pytest.approx(661, abs=40)
