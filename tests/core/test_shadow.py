"""Tests for VMCB/register shadowing with exit-reason policies
(Sections 4.2.1, 5.1) — the software SEV-ES."""

import pytest

from repro.common.errors import PolicyViolation
from repro.common.types import ExitReason
from repro.core.policies import EXIT_POLICIES, exit_policy
from repro.xen import hypercalls as hc


class TestExitPolicyTable:
    def test_cpuid_masks_all_but_four_writable_registers(self):
        policy = EXIT_POLICIES[ExitReason.CPUID]
        assert policy.writable_regs == {"rax", "rbx", "rcx", "rdx"}

    def test_npf_exposes_nothing(self):
        policy = EXIT_POLICIES[ExitReason.NPF]
        assert not policy.visible_regs
        assert not policy.writable_regs

    def test_hypercall_return_channel_is_rax_only(self):
        policy = EXIT_POLICIES[ExitReason.HYPERCALL]
        assert policy.writable_regs == {"rax"}

    def test_unknown_exit_fails_closed(self):
        policy = exit_policy("bogus")
        assert not policy.visible_regs and not policy.writable_regs


class TestRegisterShadowing:
    def test_secret_registers_masked_from_hypervisor(self, system,
                                                     protected_guest):
        """On a hypercall exit, registers outside the policy's visible
        set reach the hypervisor as zeros."""
        domain, ctx = protected_guest
        ctx._ensure_guest()
        cpu = system.machine.cpu
        cpu.regs["r14"] = 0x5EC2E7C0DE  # a guest secret
        ctx.hypercall(hc.HC_VOID)
        # the hypervisor-visible copy was masked...
        assert domain.vcpu0.saved_gprs["r14"] == 0
        # ...but the guest's register came back intact
        assert cpu.regs["r14"] == 0x5EC2E7C0DE

    def test_hypercall_args_visible(self, system, protected_guest):
        domain, ctx = protected_guest
        seen = {}

        def spy(vcpu, a1, a2, *rest):
            seen["args"] = (a1, a2)
            return hc.E_OK

        system.hypervisor.register_hypercall(77, spy)
        ctx.hypercall(77, 123, 456)
        assert seen["args"] == (123, 456)

    def test_hypercall_return_flows_back(self, system, protected_guest):
        _, ctx = protected_guest
        system.hypervisor.register_hypercall(78, lambda *a: 0xFEED)
        assert ctx.hypercall(78) == 0xFEED

    def test_cpuid_results_flow_back(self, system, protected_guest):
        _, ctx = protected_guest
        rax, rbx, rcx, rdx = ctx.cpuid(3)
        assert rax == 0x00A20F10
        assert rbx == 3

    def test_hypervisor_tampering_nonwritable_reg_reverted(
            self, system, protected_guest):
        """The hypervisor rewrites a register the policy does not allow;
        Fidelius restores the shadow on entry."""
        domain, ctx = protected_guest
        ctx._ensure_guest()
        cpu = system.machine.cpu
        cpu.regs["r9"] = 1111

        def evil(vcpu, *args):
            vcpu.saved_gprs["r9"] = 0xE11  # tamper attempt
            return hc.E_OK

        system.hypervisor.register_hypercall(79, evil)
        ctx.hypercall(79)
        assert cpu.regs["r9"] == 1111

    def test_unprotected_guest_keeps_baseline_exposure(self, system):
        domain, ctx = system.create_plain_guest("plain", guest_frames=16)
        ctx._ensure_guest()
        system.machine.cpu.regs["r14"] = 0xCAFE
        ctx.hypercall(hc.HC_VOID)
        assert domain.vcpu0.saved_gprs["r14"] == 0xCAFE


class TestVmcbVerification:
    def _hypercall_with(self, system, ctx, mutator):
        def handler(vcpu, *args):
            mutator(vcpu)
            return hc.E_OK
        system.hypervisor.register_hypercall(80, handler)
        return ctx.hypercall(80)

    def test_benign_rip_update_allowed(self, system, protected_guest):
        """Advancing RIP past the trapping instruction is legitimate."""
        _, ctx = protected_guest
        result = self._hypercall_with(
            system, ctx,
            lambda vcpu: vcpu.vmcb.write("rip", vcpu.vmcb.read("rip") + 3))
        assert result == hc.E_OK

    def test_rip_hijack_detected(self, system, protected_guest):
        """A RIP update that is not an instruction-length advance is a
        guest control-flow hijack and aborts the entry."""
        _, ctx = protected_guest
        with pytest.raises(PolicyViolation):
            self._hypercall_with(
                system, ctx,
                lambda vcpu: vcpu.vmcb.write("rip", 0xDEAD0000))

    def test_nested_cr3_tamper_detected(self, system, protected_guest):
        """Redirecting the guest's NPT root from the VMCB — the classic
        pre-SEV-ES attack — aborts the entry."""
        _, ctx = protected_guest
        with pytest.raises(PolicyViolation):
            self._hypercall_with(
                system, ctx,
                lambda vcpu: vcpu.vmcb.write("nested_cr3", 0xBAD))

    def test_asid_tamper_detected(self, system, protected_guest):
        _, ctx = protected_guest
        with pytest.raises(PolicyViolation):
            self._hypercall_with(
                system, ctx, lambda vcpu: vcpu.vmcb.write("asid", 99))

    def test_intercept_disable_detected(self, system, protected_guest):
        """Clearing intercepts would let the guest run unmonitored and
        the protection silently lapse (Section 2.2)."""
        _, ctx = protected_guest
        with pytest.raises(PolicyViolation):
            self._hypercall_with(
                system, ctx,
                lambda vcpu: vcpu.vmcb.write("intercepts", frozenset()))

    def test_masked_guest_state_zero_in_handler(self, system,
                                                protected_guest):
        domain, ctx = protected_guest
        seen = {}

        def peek(vcpu, *args):
            seen["cr3"] = vcpu.vmcb.read("cr3")
            seen["rip"] = vcpu.vmcb.read("rip")
            return hc.E_OK

        system.hypervisor.register_hypercall(81, peek)
        ctx._ensure_guest()
        # give the guest VMCB state that must not leak
        domain.vcpu0.vmcb.write("cr3", 0x123000)
        ctx.hypercall(81)
        assert seen["cr3"] == 0
        assert seen["rip"] == 0

    def test_event_injection_always_writable(self, system, protected_guest):
        _, ctx = protected_guest
        result = self._hypercall_with(
            system, ctx,
            lambda vcpu: vcpu.vmcb.write("event_injection", 0x80000030))
        assert result == hc.E_OK

    def test_tamper_is_audited(self, system, protected_guest):
        _, ctx = protected_guest
        with pytest.raises(PolicyViolation):
            self._hypercall_with(
                system, ctx, lambda vcpu: vcpu.vmcb.write("asid", 99))
        assert "vmcb-tamper" in system.fidelius.audit_kinds()
