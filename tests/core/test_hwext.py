"""Tests for the Section 8 hardware-suggestion implementations."""

import pytest

from repro.common import crypto
from repro.common.constants import PAGE_SIZE
from repro.common.errors import SevError
from repro.core.hwext import BonsaiMerkleTree, CustomKeyEngine


@pytest.fixture
def engine(system):
    return CustomKeyEngine(system.firmware)


class TestCustomKeyEngine:
    def test_enc_dec_roundtrip(self, system, engine):
        machine = system.machine
        pfn = machine.allocator.alloc()
        pa = pfn * PAGE_SIZE
        machine.memory.write(pa, b"bulk data to protect")
        gek = engine.setenc_gek()
        blob = engine.enc(gek, pa, 20, tweak=b"t0")
        assert blob != b"bulk data to protect"
        engine.dec(gek, blob, b"t0", pa + 256)
        assert machine.memory.read(pa + 256, 20) == b"bulk data to protect"

    def test_unknown_gek_rejected(self, engine):
        with pytest.raises(SevError):
            engine.enc(42, 0, 8, tweak=b"t")

    def test_no_state_machine_needed(self, system, engine):
        """Unlike SEND/RECEIVE_UPDATE, ENC/DEC have no guest-state
        prerequisites: interleave freely."""
        machine = system.machine
        pa = machine.allocator.alloc() * PAGE_SIZE
        machine.memory.write(pa, b"x" * 64)
        gek = engine.setenc_gek()
        for i in range(4):
            blob = engine.enc(gek, pa, 64, tweak=bytes([i]))
            engine.dec(gek, blob, bytes([i]), pa)
        assert machine.memory.read(pa, 64) == b"x" * 64

    def test_gek_portable_across_machines(self, system):
        """The customized-key fix for image sealing: one GEK can be
        wrapped for many platforms."""
        from repro.system import System
        other = System.create(fidelius=False, frames=512, seed=77)
        engine_a = CustomKeyEngine(system.firmware)
        engine_b = CustomKeyEngine(other.firmware)
        gek = engine_a.setenc_gek()
        kek = b"transport-kek!!!"
        wrapped = engine_a.export_wrapped(gek, kek)
        imported = engine_b.import_wrapped(wrapped, kek)
        pa_a = system.machine.allocator.alloc() * PAGE_SIZE
        system.machine.memory.write(pa_a, b"cross machine payload")
        blob = engine_a.enc(gek, pa_a, 21, tweak=b"t")
        pa_b = other.machine.allocator.alloc() * PAGE_SIZE
        engine_b.dec(imported, blob, b"t", pa_b)
        assert other.machine.memory.read(pa_b, 21) == b"cross machine payload"

    def test_enc_guest_region_replaces_sdom(self, system, protected_guest):
        """One ENC call does what the s-dom SEND_UPDATE dance does."""
        domain, ctx = protected_guest
        ctx.set_page_encrypted(5)
        ctx.write(5 * PAGE_SIZE, b"guest secret for io!")
        from repro.xen import hypercalls as hc
        ctx.hypercall(hc.HC_SCHED_YIELD)
        engine = CustomKeyEngine(system.firmware)
        gek = engine.setenc_gek()
        guest_key = system.firmware._contexts[domain.sev_handle].kvek
        pa = system.hypervisor.guest_frame_hpfn(domain, 5) * PAGE_SIZE
        blob = engine.enc_guest_region(gek, guest_key, pa, 20, tweak=b"s")
        plaintext = crypto.xex_decrypt(
            engine._geks[gek], b"gek|s", blob)
        assert plaintext == b"guest secret for io!"


class TestBonsaiMerkleTree:
    def _covered_frames(self, system, n=4):
        machine = system.machine
        pfns = machine.allocator.alloc_many(n)
        for i, pfn in enumerate(pfns):
            machine.memory.write(pfn * PAGE_SIZE, bytes([i]) * 64)
        return pfns

    def test_intact_after_build(self, system):
        pfns = self._covered_frames(system)
        tree = BonsaiMerkleTree(system.machine, pfns)
        assert tree.intact()

    def test_detects_single_bit_flip(self, system):
        """Rowhammer detection — the integrity gap Section 8 fixes."""
        pfns = self._covered_frames(system)
        tree = BonsaiMerkleTree(system.machine, pfns)
        victim = pfns[2]
        pa = victim * PAGE_SIZE + 17
        byte = system.machine.memory.read(pa, 1)[0]
        system.machine.memory.write(pa, bytes([byte ^ 0x04]))
        assert tree.verify() == [victim]

    def test_legitimate_update_keeps_intact(self, system):
        pfns = self._covered_frames(system)
        tree = BonsaiMerkleTree(system.machine, pfns)
        system.machine.memory.write(pfns[0] * PAGE_SIZE, b"new data")
        tree.update(pfns[0])
        assert tree.intact()

    def test_root_changes_with_content(self, system):
        pfns = self._covered_frames(system)
        tree = BonsaiMerkleTree(system.machine, pfns)
        old_root = tree.root
        system.machine.memory.write(pfns[1] * PAGE_SIZE, b"changed")
        tree.update(pfns[1])
        assert tree.root != old_root

    def test_uncovered_frame_update_rejected(self, system):
        from repro.common.errors import ReproError
        pfns = self._covered_frames(system)
        tree = BonsaiMerkleTree(system.machine, pfns)
        with pytest.raises(ReproError):
            tree.update(pfns[-1] + 100)

    def test_empty_tree_rejected(self, system):
        from repro.common.errors import ReproError
        with pytest.raises(ReproError):
            BonsaiMerkleTree(system.machine, [])
