"""Tests for the tamper-evident audit chain."""

import pytest

from repro.common.errors import PolicyViolation
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


@pytest.fixture
def busy_system():
    system = System.create(fidelius=True, frames=2048, seed=0xAD17)
    owner = GuestOwner(seed=0xAD17)
    domain, ctx = system.boot_protected_guest(
        "busy", owner, payload=b"x", guest_frames=32)
    with pytest.raises(PolicyViolation):
        system.machine.cpu.load(
            system.hypervisor.guest_frame_hpfn(domain, 0) * 4096, 8)
    return system


class TestAuditChain:
    def test_fresh_chain_verifies(self, busy_system):
        assert busy_system.fidelius.verify_audit_chain()

    def test_head_pins_the_log(self, busy_system):
        fid = busy_system.fidelius
        head = fid.audit_head
        assert fid.verify_audit_chain(expected_head=head)
        fid.audit_event("extra", note=1)
        assert not fid.verify_audit_chain(expected_head=head)
        assert fid.verify_audit_chain(expected_head=fid.audit_head)

    def test_rewriting_history_detected(self, busy_system):
        fid = busy_system.fidelius
        kind, details = fid.audit[0]
        fid.audit[0] = (kind, dict(details, forged=True))
        assert not fid.verify_audit_chain()

    def test_deleting_an_entry_detected(self, busy_system):
        fid = busy_system.fidelius
        del fid.audit[1]
        del fid._audit_digests[1]
        assert not fid.verify_audit_chain()

    def test_reordering_detected(self, busy_system):
        fid = busy_system.fidelius
        fid.audit[0], fid.audit[1] = fid.audit[1], fid.audit[0]
        assert not fid.verify_audit_chain()

    def test_head_changes_every_event(self, busy_system):
        fid = busy_system.fidelius
        heads = set()
        for i in range(5):
            fid.audit_event("tick", i=i)
            heads.add(fid.audit_head)
        assert len(heads) == 5
