"""Tests for the fleet orchestration layer and interrupt injection."""

import pytest

from repro.cloud import Cloud
from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.core.invariants import check_invariants
from repro.system import GuestOwner
from repro.xen import hypercalls as hc


@pytest.fixture(scope="module")
def cloud():
    return Cloud(hosts=3, frames=2048, seed=0xC10D)


class TestAttestation:
    def test_fresh_fleet_attests(self, cloud):
        assert cloud.attested_hosts() == [0, 1, 2]

    def test_tampered_host_dropped(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xBAD0)
        host1 = cloud.host(1)
        host1.machine.memory.write(
            host1.hypervisor.text.base_va + 0x600, b"\xCC\xCC")
        assert cloud.attested_hosts() == [0]
        assert cloud.pick_host() == 0

    def test_no_attested_hosts_refuses_placement(self):
        cloud = Cloud(hosts=1, frames=2048, seed=0xBAD1)
        host = cloud.host(0)
        host.machine.memory.write(
            host.hypervisor.text.base_va + 0x600, b"\xCC")
        with pytest.raises(ReproError):
            cloud.pick_host()


class TestPlacementAndMobility:
    def test_least_loaded_placement(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xC33D)
        t1 = cloud.launch_tenant("t1", GuestOwner(seed=1), payload=b"a")
        t1.ctx.hypercall(hc.HC_SCHED_YIELD)
        t2 = cloud.launch_tenant("t2", GuestOwner(seed=2), payload=b"b")
        t2.ctx.hypercall(hc.HC_SCHED_YIELD)
        assert {t1.host_index, t2.host_index} == {0, 1}

    def test_duplicate_name_rejected(self):
        cloud = Cloud(hosts=1, frames=2048, seed=0xC33E)
        cloud.launch_tenant("dup", GuestOwner(seed=1))
        with pytest.raises(ReproError):
            cloud.launch_tenant("dup", GuestOwner(seed=2))

    def test_migration_preserves_tenant_state(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xC33F)
        tenant = cloud.launch_tenant("mover", GuestOwner(seed=3),
                                     payload=b"app")
        tenant.ctx.set_page_encrypted(9)
        tenant.ctx.write(9 * PAGE_SIZE, b"tenant state")
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        origin = tenant.host_index
        cloud.migrate_tenant("mover", 1 - origin)
        assert tenant.host_index == 1 - origin
        assert tenant.ctx.read(9 * PAGE_SIZE, 12) == b"tenant state"
        assert cloud.inventory()[origin] == []

    def test_evacuation_drains_host(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xC340)
        for i in range(2):
            t = cloud.launch_tenant("t%d" % i, GuestOwner(seed=10 + i),
                                    host_index=0)
            t.ctx.hypercall(hc.HC_SCHED_YIELD)
        moved = cloud.evacuate(0)
        assert sorted(moved) == ["t0", "t1"]
        assert cloud.inventory() == {0: [], 1: ["t0", "t1"]}

    def test_invariants_across_fleet_operations(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xC341)
        tenant = cloud.launch_tenant("inv", GuestOwner(seed=42))
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        cloud.migrate_tenant("inv", 1 - tenant.host_index)
        cloud.shutdown_tenant("inv")
        for host in cloud.hosts:
            assert check_invariants(host) == []

    def test_shutdown_removes_tenant(self):
        cloud = Cloud(hosts=1, frames=2048, seed=0xC342)
        tenant = cloud.launch_tenant("gone", GuestOwner(seed=5))
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        cloud.shutdown_tenant("gone")
        assert "gone" not in cloud.tenants
        assert tenant.domain.domid not in \
            cloud.host(0).hypervisor.domains


class TestInterruptInjection:
    def test_injected_vector_delivered(self, cloud):
        host = cloud.host(0)
        domain, ctx = host.create_plain_guest("irq", guest_frames=16)
        ctx._ensure_guest()
        host.hypervisor.inject_interrupt(domain.vcpu0, 0x2F)
        ctx.hypercall(hc.HC_VOID)  # exit + re-entry delivers it
        assert ctx.take_interrupts() == [0x2F]
        assert ctx.take_interrupts() == []

    def test_injection_works_for_protected_guest(self, cloud):
        """event_injection is the one always-writable VMCB field: the
        shadow verification lets legitimate interrupt delivery through."""
        host = cloud.host(1)
        owner = GuestOwner(seed=0x1E0)
        domain, ctx = host.boot_protected_guest(
            "irq-prot", owner, payload=b"x", guest_frames=32)
        ctx._ensure_guest()

        def inject_during_exit(vcpu, *args):
            host.hypervisor.inject_interrupt(vcpu, 0x20)
            return hc.E_OK

        host.hypervisor.register_hypercall(210, inject_during_exit)
        ctx.hypercall(210)
        assert 0x20 in ctx.take_interrupts()
        ctx.hypercall(hc.HC_SCHED_YIELD)

    def test_bad_vector_rejected(self, cloud):
        from repro.common.errors import XenError
        host = cloud.host(0)
        domain, _ = host.create_plain_guest("irq2", guest_frames=8)
        with pytest.raises(XenError):
            host.hypervisor.inject_interrupt(domain.vcpu0, 4242)


class TestEventRingBuffer:
    def test_log_is_bounded(self):
        cloud = Cloud(hosts=1, frames=1024, seed=0xE17, event_log_limit=4)
        for i in range(10):
            cloud._record("synthetic", index=i)
        assert len(cloud.events) == 4
        assert cloud.events_recorded == 10
        assert cloud.events_dropped == 6

    def test_newest_events_survive(self):
        cloud = Cloud(hosts=1, frames=1024, seed=0xE18, event_log_limit=3)
        for i in range(7):
            cloud._record("k%d" % i)
        assert cloud.event_kinds() == ["k4", "k5", "k6"]

    def test_default_limit_keeps_small_logs_whole(self):
        cloud = Cloud(hosts=1, frames=1024, seed=0xE19)
        for i in range(5):
            cloud._record("keep", index=i)
        assert len(cloud.events) == 5
        assert cloud.events_dropped == 0
        assert cloud.events.maxlen == Cloud.DEFAULT_EVENT_LOG_LIMIT

    def test_real_events_still_recorded(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xE1A, event_log_limit=8)
        host1 = cloud.host(1)
        host1.machine.memory.write(
            host1.hypervisor.text.base_va + 0x600, b"\xCC")
        assert cloud.attested_hosts() == [0]
        assert "host-quarantined" in cloud.event_kinds()
        assert cloud.events_recorded >= 1


class TestFleetPerfStats:
    def test_aggregates_across_hosts(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xF00)
        cloud.launch_tenant("t0", GuestOwner(seed=1), payload=b"s",
                            guest_frames=32)
        stats = cloud.perf_stats()
        assert stats["hosts"] == 2
        per_host = [h.machine.perf_stats() for h in cloud.hosts]
        for key in ("hits", "misses", "evictions", "entries", "roots"):
            assert stats["tlb"][key] == sum(s["tlb"][key] for s in per_host)
        assert stats["tlb"]["root_index_entries"] == sum(
            sum(s["tlb"]["root_index_sizes"].values()) for s in per_host)
        for key in per_host[0]["memctrl"]:
            assert stats["memctrl"][key] == sum(
                s["memctrl"][key] for s in per_host)

    def test_keystream_cache_reported_once_not_summed(self):
        from repro.common import crypto
        cloud = Cloud(hosts=3, frames=2048, seed=0xF01)
        assert cloud.perf_stats()["keystream_cache"] == \
            crypto.keystream_cache_stats()

    def test_event_counters_surface_in_perf_stats(self):
        cloud = Cloud(hosts=1, frames=1024, seed=0xF02, event_log_limit=4)
        for i in range(9):
            cloud._record("synthetic", index=i)
        events = cloud.perf_stats()["events"]
        assert events == {"recorded": 9, "retained": 4, "dropped": 5}


class TestLoadIndex:
    """The sorted free-capacity index behind ``pick_host`` must mirror
    the O(n) truth (tenant counts over non-quarantined hosts) across
    every mutation path."""

    @staticmethod
    def _rebuilt(cloud):
        counts = {i: 0 for i in range(len(cloud.hosts))}
        for tenant in cloud.tenants.values():
            counts[tenant.host_index] += 1
        return sorted((counts[i], i) for i in range(len(cloud.hosts))
                      if i not in cloud.quarantined)

    def test_index_tracks_launch_migrate_shutdown(self):
        cloud = Cloud(hosts=3, frames=2048, seed=0x1DE0)
        assert cloud._load_index == self._rebuilt(cloud)
        for i in range(3):
            t = cloud.launch_tenant("t%d" % i, GuestOwner(seed=20 + i))
            t.ctx.hypercall(hc.HC_SCHED_YIELD)
            assert cloud._load_index == self._rebuilt(cloud)
        cloud.migrate_tenant("t0")
        assert cloud._load_index == self._rebuilt(cloud)
        cloud.shutdown_tenant("t1")
        assert cloud._load_index == self._rebuilt(cloud)

    def test_quarantined_host_leaves_the_index(self):
        cloud = Cloud(hosts=3, frames=2048, seed=0x1DE1)
        host2 = cloud.host(2)
        host2.machine.memory.write(
            host2.hypervisor.text.base_va + 0x600, b"\xCC")
        assert not cloud.attest_host(2)
        assert cloud._load_index == self._rebuilt(cloud)
        assert all(index != 2 for _load, index in cloud._load_index)

    def test_lift_restores_the_index_entry(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0x1DE2)
        cloud.quarantined.add(1)
        cloud._index_discard(1)
        assert cloud.lift_quarantine(1)
        assert cloud._load_index == self._rebuilt(cloud)

    def test_load_moves_while_quarantined(self):
        # a quarantined host's tenant count still moves (shutdowns of
        # residents), and the host re-enters the index with the right key
        cloud = Cloud(hosts=2, frames=2048, seed=0x1DE3)
        t = cloud.launch_tenant("t", GuestOwner(seed=9), host_index=1)
        t.ctx.hypercall(hc.HC_SCHED_YIELD)
        cloud.quarantined.add(1)
        cloud._index_discard(1)
        cloud.shutdown_tenant("t")
        cloud.quarantined.discard(1)
        cloud._index_add(1)
        assert cloud._load_index == self._rebuilt(cloud)

    def test_pick_host_is_least_loaded_lowest_index(self):
        cloud = Cloud(hosts=3, frames=2048, seed=0x1DE4)
        assert cloud.pick_host() == 0
        t = cloud.launch_tenant("t", GuestOwner(seed=1))
        t.ctx.hypercall(hc.HC_SCHED_YIELD)
        assert cloud.pick_host() == 1          # 0 now carries a tenant
        assert cloud.pick_host(exclude={1}) == 2

    def test_pick_host_skips_hosts_that_fail_attestation(self):
        cloud = Cloud(hosts=3, frames=2048, seed=0x1DE5)
        host0 = cloud.host(0)
        host0.machine.memory.write(
            host0.hypervisor.text.base_va + 0x600, b"\xCC")
        assert cloud.pick_host() == 1
        assert 0 in cloud.quarantined          # discovered and removed
        assert cloud._load_index == self._rebuilt(cloud)

    def test_evacuate_uses_the_index(self):
        cloud = Cloud(hosts=3, frames=2048, seed=0x1DE6)
        for i in range(2):
            t = cloud.launch_tenant("t%d" % i, GuestOwner(seed=30 + i),
                                    host_index=0)
            t.ctx.hypercall(hc.HC_SCHED_YIELD)
        moved = cloud.evacuate(0)
        assert sorted(moved) == ["t0", "t1"]
        # spread, not pile-up: the drain re-picks per tenant
        assert cloud.inventory() == {0: [], 1: ["t0"], 2: ["t1"]}
        assert cloud._load_index == self._rebuilt(cloud)


class TestIncrementalPerfStats:
    def test_incremental_equals_full_rewalk(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xF03)
        cloud.perf_stats()                     # prime the caches
        t = cloud.launch_tenant("t", GuestOwner(seed=4), payload=b"p",
                                guest_frames=32)
        t.ctx.hypercall(hc.HC_SCHED_YIELD)
        incremental = cloud.perf_stats()
        per_host = [h.machine.perf_stats() for h in cloud.hosts]
        for key in ("hits", "misses", "evictions", "entries", "roots"):
            assert incremental["tlb"][key] == \
                sum(s["tlb"][key] for s in per_host)
        for key in per_host[0]["memctrl"]:
            assert incremental["memctrl"][key] == \
                sum(s["memctrl"][key] for s in per_host)

    def test_quiescent_fleet_answers_from_cache(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xF04)
        first = cloud.perf_stats()
        probes = {i: cloud._perf_cache[i][0] for i in range(2)}
        second = cloud.perf_stats()
        assert second["tlb"] == first["tlb"]
        assert second["memctrl"] == first["memctrl"]
        # nothing moved, so no contribution was recomputed
        assert {i: cloud._perf_cache[i][0] for i in range(2)} == probes

    def test_only_the_active_host_is_rewalked(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xF05)
        cloud.perf_stats()
        stale_probe = cloud._perf_cache[1][0]
        t = cloud.launch_tenant("t", GuestOwner(seed=5), host_index=0)
        t.ctx.hypercall(hc.HC_SCHED_YIELD)
        cloud.perf_stats()
        assert cloud._perf_cache[1][0] == stale_probe
        assert cloud._perf_cache[0][0] != stale_probe

    def test_repeated_updates_stay_integer_exact(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xF06)
        for i in range(3):
            t = cloud.launch_tenant("t%d" % i, GuestOwner(seed=40 + i))
            t.ctx.hypercall(hc.HC_SCHED_YIELD)
            cloud.perf_stats()                 # interleave reads
        cloud.migrate_tenant("t0")
        final = cloud.perf_stats()
        per_host = [h.machine.perf_stats() for h in cloud.hosts]
        assert final["tlb"]["hits"] == \
            sum(s["tlb"]["hits"] for s in per_host)
        assert final["tlb"]["root_index_entries"] == sum(
            sum(s["tlb"]["root_index_sizes"].values()) for s in per_host)
        for key in per_host[0]["memctrl"]:
            assert final["memctrl"][key] == \
                sum(s["memctrl"][key] for s in per_host)


class TestQuarantineLiftAudit:
    def test_rejected_lift_is_recorded(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xBAD2)
        host1 = cloud.host(1)
        host1.machine.memory.write(
            host1.hypervisor.text.base_va + 0x600, b"\xCC")
        assert not cloud.attest_host(1)
        assert not cloud.lift_quarantine(1)
        kinds = cloud.event_kinds()
        # the audit trail shows the attempt: re-quarantine + rejection
        assert kinds.count("host-quarantined") == 2
        assert kinds[-1] == "quarantine-lift-rejected"
        assert 1 in cloud.quarantined

    def test_successful_lift_still_recorded(self):
        cloud = Cloud(hosts=1, frames=1024, seed=0xBAD3)
        cloud.quarantined.add(0)
        assert cloud.lift_quarantine(0)
        assert cloud.event_kinds()[-1] == "quarantine-lifted"
        assert not cloud.quarantined
