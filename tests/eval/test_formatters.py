"""Tests for the table/figure text formatters."""

import pytest

from repro.eval import run_figure, run_table3
from repro.eval.tables import (
    _bar,
    format_figure,
    format_table3,
    format_xsa,
)


class TestBar:
    def test_full_scale(self):
        assert _bar(10, 10, width=10) == "#" * 10

    def test_half_scale(self):
        assert _bar(5, 10, width=10) == "#" * 5

    def test_zero_value(self):
        assert _bar(0, 10) == ""

    def test_zero_scale_safe(self):
        assert _bar(5, 0) == ""

    def test_clamped_to_width(self):
        assert len(_bar(100, 10, width=8)) == 8


class TestFigureFormatting:
    @pytest.fixture(scope="class")
    def text(self):
        return format_figure(run_figure("fig5"), "Figure 5 test")

    def test_title_and_rows(self, text):
        assert text.startswith("Figure 5 test")
        for name in ("perlbench", "mcf", "average"):
            assert name in text

    def test_bars_scale_with_overhead(self, text):
        lines = {line.split()[0]: line for line in text.splitlines()
                 if line and line.split()[0] in ("mcf", "hmmer")}
        assert lines["mcf"].count("#") > lines["hmmer"].count("#")


class TestTable3Formatting:
    def test_rows_and_percentages(self):
        text = format_table3(run_table3(frames=2048))
        assert "seq-read" in text
        assert "%" in text


class TestXsaFormatting:
    def test_headline_numbers_rendered(self):
        from repro.attacks import analyze_xsa
        text = format_xsa(analyze_xsa())
        assert "31 (17.5%)" in text
        assert "22 (12.4%)" in text
