"""Shape tests for every reproduced table and figure.

Per the reproduction contract, absolute numbers need not match the
authors' Ryzen testbed, but the *shape* must: who wins, by roughly what
factor, and where the outliers sit.
"""

import pytest

from repro.eval import (
    average_overheads,
    crypto_copy_benchmark,
    gate_cost_benchmark,
    permission_matrix,
    priv_instruction_matrix,
    run_figure,
    run_table3,
    shadow_cost_benchmark,
)


@pytest.fixture(scope="module")
def fig5():
    return run_figure("fig5")


@pytest.fixture(scope="module")
def fig6():
    return run_figure("fig6")


@pytest.fixture(scope="module")
def table3():
    return run_table3(frames=4096)


class TestFigure5:
    def test_fidelius_average_under_one_percent(self, fig5):
        fid_avg, _ = average_overheads(fig5)
        assert fid_avg < 1.5  # paper: "less than 1%"

    def test_fidelius_enc_average_near_paper(self, fig5):
        _, enc_avg = average_overheads(fig5)
        assert 3.5 < enc_avg < 8.0  # paper: 5.38%

    def test_mcf_and_omnetpp_are_the_outliers(self, fig5):
        by_enc = sorted(fig5, key=lambda r: r.fidelius_enc_overhead_pct)
        assert {by_enc[-1].name, by_enc[-2].name} == {"mcf", "omnetpp"}

    def test_mcf_magnitude(self, fig5):
        mcf = next(r for r in fig5 if r.name == "mcf")
        assert mcf.fidelius_enc_overhead_pct == pytest.approx(17.3, abs=3.0)

    def test_cpu_bound_programs_nearly_free(self, fig5):
        """bzip2, hmmer, h264ref: 'nearly no overhead'."""
        for name in ("bzip2", "hmmer", "h264ref"):
            row = next(r for r in fig5 if r.name == name)
            assert row.fidelius_enc_overhead_pct < 3.0

    def test_enc_always_costs_at_least_fidelius(self, fig5):
        for row in fig5:
            assert row.fidelius_enc_overhead_pct >= \
                row.fidelius_overhead_pct

    def test_deterministic(self, fig5):
        again = run_figure("fig5")
        assert [r.fidelius_enc_overhead_pct for r in again] == \
            [r.fidelius_enc_overhead_pct for r in fig5]


class TestFigure6:
    def test_fidelius_average_negligible(self, fig6):
        fid_avg, _ = average_overheads(fig6)
        assert fid_avg < 1.0  # paper: 0.43%

    def test_enc_average_near_paper(self, fig6):
        _, enc_avg = average_overheads(fig6)
        assert 1.0 < enc_avg < 4.0  # paper: 1.97%

    def test_canneal_is_the_single_outlier(self, fig6):
        by_enc = sorted(fig6, key=lambda r: r.fidelius_enc_overhead_pct)
        assert by_enc[-1].name == "canneal"
        assert by_enc[-1].fidelius_enc_overhead_pct == \
            pytest.approx(14.27, abs=3.0)
        # and the runner-up is far behind
        assert by_enc[-2].fidelius_enc_overhead_pct < 6.0


class TestTable3:
    def test_row_order(self, table3):
        assert [r.name for r in table3] == \
            ["rand-read", "seq-read", "rand-write", "seq-write"]

    def test_seq_read_is_the_worst_case(self, table3):
        rows = {r.name: r.slowdown_pct for r in table3}
        assert rows["seq-read"] == max(rows.values())
        assert rows["seq-read"] == pytest.approx(22.91, abs=6.0)

    def test_write_cheaper_than_read(self, table3):
        """Batched off-critical-path encryption vs waiting for decrypt."""
        rows = {r.name: r.slowdown_pct for r in table3}
        assert rows["seq-write"] < rows["seq-read"]
        assert rows["rand-write"] < rows["rand-read"]

    def test_random_ops_barely_affected(self, table3):
        rows = {r.name: r.slowdown_pct for r in table3}
        assert rows["rand-read"] < 4.0    # paper: 1.38%
        assert rows["rand-write"] < 3.0   # paper: 0.70%

    def test_seq_write_magnitude(self, table3):
        rows = {r.name: r.slowdown_pct for r in table3}
        assert rows["seq-write"] == pytest.approx(3.61, abs=2.0)

    def test_all_slowdowns_positive(self, table3):
        assert all(r.slowdown_pct > 0 for r in table3)


class TestMicroBenchmarks:
    def test_gate_costs_match_paper_exactly(self):
        costs = gate_cost_benchmark(iterations=200)
        assert costs.type1_cycles == pytest.approx(306)
        assert costs.type2_cycles == pytest.approx(16)
        assert costs.type3_cycles == pytest.approx(339)
        assert costs.type3_tlb_flush_cycles == pytest.approx(128)
        assert costs.write_into_cache_cycles <= 2

    def test_cr3_switch_alternative_far_costlier(self):
        costs = gate_cost_benchmark(iterations=50)
        assert costs.cr3_switch_alternative_cycles > 5 * costs.type3_cycles

    def test_shadow_roundtrip_661(self):
        costs = shadow_cost_benchmark(iterations=100)
        assert costs.shadow_check_cycles == pytest.approx(661, abs=1)
        assert costs.added_cycles == pytest.approx(661, abs=30)

    def test_crypto_copy_matches_paper(self):
        costs = crypto_copy_benchmark(megabytes=16)
        assert costs.aesni_slowdown_pct == pytest.approx(11.49, abs=0.1)
        assert costs.sev_engine_slowdown_pct == pytest.approx(8.69, abs=0.5)
        assert costs.software_slowdown_x > 20.0

    def test_sev_engine_cheaper_than_aesni(self):
        """'the SEV based I/O protection is more attractive' (§7.2)."""
        costs = crypto_copy_benchmark(megabytes=16)
        assert costs.sev_engine_slowdown_pct < costs.aesni_slowdown_pct


class TestObservedTables12:
    def test_table1_rows(self):
        rows = {r.resource: r.xen_permission for r in permission_matrix()}
        assert rows["Page tables (Xen)"] == "read-only"
        assert rows["NPT (guest VM)"] == "read-only"
        assert rows["Grant tables"] == "read-only"
        assert rows["Page info table"] == "read-only"
        assert rows["Grant info table"] == "read-only"
        assert rows["Shadow states"] == "no access"
        assert rows["SEV metadata"] == "no access"

    def test_table2_rows(self):
        rows = {r.instruction: r for r in priv_instruction_matrix()}
        assert rows["mov-cr0"].observed == "executable"
        assert rows["mov-cr4"].observed == "executable"
        assert rows["wrmsr"].observed == "executable"
        assert "inaccessible" in rows["vmrun"].observed
        assert "inaccessible" in rows["mov-cr3"].observed
