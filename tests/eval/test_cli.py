"""Tests for the ``python -m repro.eval`` command-line interface."""

import pytest

from repro.eval.__main__ import COMMANDS, main


class TestCli:
    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "fig5", "fig6", "table3", "micro-gates", "micro-shadow",
            "micro-crypto", "xsa", "attacks", "tables12", "sensitivity",
            "report", "functional", "export",
        }

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_xsa_command_output(self, capsys):
        assert main(["xsa"]) == 0
        out = capsys.readouterr().out
        assert "235" in out and "17.5%" in out

    def test_micro_gates_output(self, capsys):
        assert main(["micro-gates"]) == 0
        out = capsys.readouterr().out
        assert "306" in out and "339" in out

    def test_micro_crypto_output(self, capsys):
        assert main(["micro-crypto"]) == 0
        out = capsys.readouterr().out
        assert "11.49%" in out

    def test_tables12_output(self, capsys):
        assert main(["tables12"]) == 0
        out = capsys.readouterr().out
        assert "read-only" in out and "no access" in out
        assert "mov-cr3" in out

    def test_fig6_output(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "canneal" in out and "average" in out
