"""Unit tests for the fio runner itself (the Table 3 driver)."""

import pytest

from repro.system import System
from repro.workloads.fio import FioRunner, FioSpec, TABLE3_SPECS


@pytest.fixture
def runner():
    system = System.create(fidelius=False, frames=4096, seed=0xF10A)
    domain, ctx = system.create_plain_guest("fio", guest_frames=96)
    return FioRunner(system, domain, ctx, encoder=None, seed=0xF10A)


class TestFioRunner:
    def test_sequential_sectors_advance(self, runner):
        spec = next(s for s in TABLE3_SPECS if s.name == "seq-read")
        sectors = [runner._sector_for(spec, i) for i in range(4)]
        assert sectors == sorted(sectors)
        assert sectors[1] - sectors[0] == spec.sectors_per_op

    def test_random_sectors_vary(self, runner):
        spec = next(s for s in TABLE3_SPECS if s.name == "rand-read")
        sectors = {runner._sector_for(spec, i) for i in range(16)}
        assert len(sectors) > 8

    def test_matching_seeds_match_streams(self):
        def one(seed):
            system = System.create(fidelius=False, frames=4096, seed=seed)
            domain, ctx = system.create_plain_guest("fio", guest_frames=96)
            runner = FioRunner(system, domain, ctx, encoder=None, seed=7)
            spec = next(s for s in TABLE3_SPECS if s.name == "rand-write")
            return [runner._sector_for(spec, i) for i in range(8)]
        assert one(1) == one(2)

    def test_run_returns_positive_cycles(self, runner):
        spec = FioSpec("mini", "seq", "write", 4096, ops=3)
        assert runner.run(spec) > 0

    def test_throughput_positive(self, runner):
        spec = FioSpec("mini", "rand", "read", 4096, ops=3)
        assert runner.throughput(spec) > 0

    def test_write_then_read_consistent_through_runner_disk(self, runner):
        runner.frontend.write(100, b"fio payload")
        assert runner.frontend.read(100, 1).startswith(b"fio payload")

    def test_spec_properties(self):
        spec = FioSpec("x", "seq", "read", 8192, ops=10)
        assert spec.sectors_per_op == 16
        assert spec.total_bytes == 81920
