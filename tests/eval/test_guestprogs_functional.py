"""Tests for the guest-program library and the functional cross-check."""

import pytest

from repro.common.errors import ReproError
from repro.eval.functional import format_functional, run_functional
from repro.system import GuestOwner, System
from repro.workloads.guestprogs import (
    CryptoWorker,
    KeyValueStore,
    SessionServer,
)
from repro.xen import hypercalls as hc


@pytest.fixture
def protected_io():
    system = System.create(fidelius=True, frames=2048, seed=0x6E57)
    owner = GuestOwner(seed=0x6E57)
    domain, ctx = system.boot_protected_guest(
        "apps", owner, payload=b"apps", guest_frames=64)
    encoder = system.aesni_encoder_for(ctx)
    disk, frontend, backend = system.attach_disk(domain, ctx,
                                                 encoder=encoder)
    return system, ctx, frontend, backend, disk


class TestKeyValueStore:
    def test_put_get(self, protected_io):
        _, ctx, frontend, _, _ = protected_io
        store = KeyValueStore(ctx, frontend)
        store.put(b"user:1", b"alice")
        store.put(b"user:2", b"bob")
        assert store.get(b"user:1") == b"alice"
        assert store.get(b"user:2") == b"bob"
        assert store.get(b"user:3") is None

    def test_update_in_place(self, protected_io):
        _, ctx, frontend, _, _ = protected_io
        store = KeyValueStore(ctx, frontend)
        slot1 = store.put(b"k", b"v1")
        slot2 = store.put(b"k", b"v2")
        assert slot1 == slot2
        assert store.get(b"k") == b"v2"

    def test_recover_index_from_disk(self, protected_io):
        """The persistence property migrations rely on: the index is
        reconstructible from disk alone."""
        _, ctx, frontend, _, _ = protected_io
        store = KeyValueStore(ctx, frontend)
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        fresh = KeyValueStore(ctx, frontend)
        assert fresh.recover_index() == 2
        assert fresh.get(b"b") == b"2"

    def test_nothing_leaks_to_the_host(self, protected_io):
        _, ctx, frontend, backend, disk = protected_io
        store = KeyValueStore(ctx, frontend)
        store.put(b"card", b"4242-4242-4242-4242")
        observed = backend.everything_observed()
        assert b"4242-4242" not in observed
        assert all(b"4242-4242" not in disk.raw_sector(s)
                   for s in range(64, 64 + 4))

    def test_limits(self, protected_io):
        _, ctx, frontend, _, _ = protected_io
        store = KeyValueStore(ctx, frontend)
        with pytest.raises(ReproError):
            store.put(b"x" * 32, b"v")
        with pytest.raises(ReproError):
            store.put(b"k", b"v" * 1000)


class TestCryptoWorker:
    def test_deterministic(self, protected_io):
        _, ctx, _, _, _ = protected_io
        a = CryptoWorker(ctx, first_gfn=40, pages=2).run(3)
        b = CryptoWorker(ctx, first_gfn=44, pages=2).run(3)
        assert a == b

    def test_rounds_change_state(self, protected_io):
        _, ctx, _, _, _ = protected_io
        worker = CryptoWorker(ctx, first_gfn=40, pages=2)
        assert worker.round() != worker.round()


class TestSessionServer:
    def test_counts_requests(self, protected_io):
        _, ctx, _, _, _ = protected_io
        server = SessionServer(ctx)
        assert server.serve(5) == 5
        assert server.handled == 5

    def test_counter_survives_in_encrypted_memory(self, protected_io):
        system, ctx, _, _, _ = protected_io
        server = SessionServer(ctx)
        server.serve(3)
        hpa = system.hypervisor.guest_frame_hpfn(
            ctx._domain, server.state_gfn) * 4096
        raw = system.machine.memory.read(hpa, 8)
        assert raw != (3).to_bytes(8, "little")  # ciphertext on the bus


class TestFunctionalCrossCheck:
    @pytest.fixture(scope="class")
    def results(self):
        return run_functional(rounds=3, requests=30)

    def test_compute_bound_nearly_free(self, results):
        compute = next(r for r in results if "compute" in r.workload)
        assert compute.overhead_pct < 2.0

    def test_exit_heavy_pays_the_shadow_tax(self, results):
        server = next(r for r in results if "exit-heavy" in r.workload)
        assert server.overhead_pct > 10.0

    def test_agrees_with_the_model_story(self, results):
        """The functional measurement and the analytic model tell the
        same story: overhead ordering compute << exit-heavy."""
        compute = next(r for r in results if "compute" in r.workload)
        server = next(r for r in results if "exit-heavy" in r.workload)
        assert server.overhead_pct > 5 * max(compute.overhead_pct, 0.1)

    def test_formatting(self, results):
        assert "Functional cross-check" in format_functional(results)
