"""Smoke tests for ``repro.eval.fleetbench`` at CI sizes.

As with perfbench, nothing here asserts wall-clock numbers — CI boxes
are noisy.  What must never be flaky is the report schema, the
deterministic-digest contract (serial and sharded runs agree byte for
byte once the measured ``sharding`` section is stripped), and the
``--check`` gate's ability to actually fail.
"""

import json

from repro.eval import fleetbench
from repro.fleet import load_cost_table


def _report(**kwargs):
    kwargs.setdefault("lockstep", False)
    return fleetbench.run_profile("smoke", **kwargs)


class TestReportSchema:
    def test_smoke_profile_schema(self):
        report = _report()
        assert report["schema"] == fleetbench.SCHEMA
        assert report["profile"] == "smoke"
        spec = report["spec"]
        assert spec["hosts"] == 200 and spec["guests"] == 1_000
        fleet = report["fleet"]
        assert fleet["hosts"] >= spec["hosts"]     # autoscale adds some
        assert fleet["events"] > spec["guests"]
        assert fleet["digest"]
        assert len(report["regions"]) == spec["regions"]
        assert report["costs"]["source"] == "default"
        sharding = report["sharding"]
        assert sharding["jobs"] == 1
        assert sharding["wall_s"] > 0
        assert sharding["events_per_s"] > 0
        assert sharding["peak_rss_mib"] > 0

    def test_unknown_profile_is_refused(self):
        try:
            fleetbench.run_profile("galactic")
            assert False, "expected ValueError"
        except ValueError as exc:
            assert "smoke" in str(exc)

    def test_calibrated_costs_ride_into_the_report(self, tmp_path):
        bench = {"benchmarks": {
            "enc_rw_mix": {"ops": 1000, "optimized_s": 0.02},
            "walker_tlb": {"per_translation_us": 5.0},
            "guest_macro": {"rounds": 4, "optimized_s": 0.012},
        }}
        path = tmp_path / "BENCH_simulator.json"
        path.write_text(json.dumps(bench))
        report = _report(costs=load_cost_table(str(path)))
        assert report["costs"]["source"] == "bench"
        assert report["costs"]["line_op_ns"] == 20_000
        assert report["costs"]["translation_ns"] == 5_000


class TestDeterministicDigest:
    def test_serial_and_sharded_digests_agree(self):
        serial = _report(jobs=1)
        sharded = _report(jobs=2, reuse_workers=False)
        assert fleetbench.deterministic_digest(serial) == \
            fleetbench.deterministic_digest(sharded)
        # ...even though the measured section genuinely differs
        assert serial["sharding"]["jobs"] != sharded["sharding"]["jobs"]

    def test_digest_ignores_measured_but_not_modelled_values(self):
        report = _report()
        before = fleetbench.deterministic_digest(report)
        report["sharding"]["wall_s"] *= 100
        assert fleetbench.deterministic_digest(report) == before
        report["fleet"]["digest"] = "tampered"
        assert fleetbench.deterministic_digest(report) != before


class TestCheckGate:
    def test_passing_report_has_no_problems(self):
        report = _report()
        assert fleetbench.check_targets(report) == []
        assert "PASS" in fleetbench.format_report(report)

    def test_wall_and_rss_misses_are_reported(self):
        report = _report()
        report["sharding"]["wall_s"] = report["targets"]["max_wall_s"] + 1
        report["sharding"]["peak_rss_mib"] = \
            report["targets"]["max_rss_mib"] + 1
        problems = fleetbench.check_targets(report)
        assert len(problems) == 2
        assert any("wall" in p for p in problems)
        assert any("RSS" in p for p in problems)

    def test_lockstep_divergence_fails_the_gate(self):
        report = _report()
        report["lockstep"] = {"ok": False,
                              "mismatches": ["placement of x"]}
        problems = fleetbench.check_targets(report)
        assert any("lockstep" in p for p in problems)


class TestCli:
    def test_json_artifact_round_trips(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fleet.json"
        rc = fleetbench.main(["--profile", "smoke", "--no-lockstep",
                              "--json", "--out", str(out), "--check"])
        assert rc == 0
        written = json.loads(out.read_text())
        assert written["schema"] == fleetbench.SCHEMA
        assert written == json.loads(capsys.readouterr().out)

    def test_human_output_mentions_the_fleet(self, capsys):
        rc = fleetbench.main(["--profile", "smoke", "--no-lockstep"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Fleet benchmark (smoke profile)" in text
        assert "digest:" in text
