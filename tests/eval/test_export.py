"""Tests for the machine-readable experiment exports."""

import csv
import json

import pytest

from repro.eval.export import (
    ARTEFACTS,
    export_all,
    figure_rows,
    micro_rows,
    table3_rows,
    to_csv,
)


class TestRowProducers:
    def test_fig5_rows_schema(self):
        rows = figure_rows("fig5")
        assert rows[-1]["benchmark"] == "average"
        assert {"benchmark", "fidelius_overhead_pct",
                "fidelius_enc_overhead_pct"} <= set(rows[0])
        assert len(rows) == 12  # 11 benchmarks + average

    def test_table3_rows(self):
        rows = table3_rows()
        assert [r["operation"] for r in rows] == \
            ["rand-read", "seq-read", "rand-write", "seq-write"]
        assert all(r["slowdown_pct"] > 0 for r in rows)

    def test_micro_rows(self):
        rows = {r["quantity"]: r["value"] for r in micro_rows()}
        assert rows["gate1_cycles"] == 306
        assert rows["shadow_check_cycles"] == 661

    def test_csv_roundtrip(self):
        rows = micro_rows()
        text = to_csv(rows)
        parsed = list(csv.DictReader(text.splitlines()))
        assert len(parsed) == len(rows)
        assert parsed[0]["quantity"] == "gate1_cycles"

    def test_empty_csv(self):
        assert to_csv([]) == ""


class TestExportAll:
    def test_writes_every_artefact(self, tmp_path):
        written = export_all(str(tmp_path))
        assert len(written) == 2 * len(ARTEFACTS)
        fig5 = json.loads((tmp_path / "fig5.json").read_text())
        assert any(row["benchmark"] == "mcf" for row in fig5)
        table3 = (tmp_path / "table3.csv").read_text()
        assert "seq-read" in table3
