"""Tests for the workload models: trace generation, cache behaviour,
fio specs and the disk timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cycles import CycleCounter
from repro.common.constants import CACHE_LINE_SHIFT
from repro.workloads import (
    CacheModel,
    DiskTimingModel,
    PARSEC_PROFILES,
    SPEC_PROFILES,
    TABLE3_SPECS,
    generate_span_trace,
    generate_trace,
    simulate_misses,
)
from repro.workloads.fio import DISK_SEEK_CYCLES
from repro.workloads.profiles import profile_by_name


class TestProfiles:
    def test_figure5_has_eleven_benchmarks(self):
        assert len(SPEC_PROFILES) == 11

    def test_figure6_has_thirteen_benchmarks(self):
        assert len(PARSEC_PROFILES) == 13

    def test_memory_bound_programs_stand_out(self):
        """mcf, omnetpp and canneal are the encryption-sensitive ones."""
        by_suite = sorted(SPEC_PROFILES, key=lambda p: p.mpki_dram)
        assert by_suite[-1].name == "mcf"
        assert by_suite[-2].name == "omnetpp"
        parsec = sorted(PARSEC_PROFILES, key=lambda p: p.mpki_dram)
        assert parsec[-1].name == "canneal"

    def test_lookup_by_name(self):
        assert profile_by_name("mcf").suite == "speccpu2006"
        with pytest.raises(KeyError):
            profile_by_name("doom3")


class TestCacheModel:
    def test_repeat_access_hits(self):
        cache = CacheModel(lines=8)
        assert cache.access(0x1000) is True
        assert cache.access(0x1000) is False
        assert cache.access(0x1010) is False  # same line

    def test_lru_eviction(self):
        cache = CacheModel(lines=2)
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x0)     # refresh line 0
        cache.access(0x80)    # evicts line 0x40
        assert cache.access(0x40) is True
        assert cache.access(0x0) is False or True  # 0x0 may have been evicted

    def test_miss_ratio_property(self):
        cache = CacheModel(lines=4)
        for _ in range(10):
            cache.access(0x0)
        assert cache.miss_ratio == pytest.approx(0.1)


class TestTraceGeneration:
    @pytest.mark.parametrize("name", ["mcf", "canneal", "gcc"])
    def test_measured_miss_ratio_matches_profile(self, name):
        """The honest-simulation invariant: the cache measurement must
        converge on the characterized MPKI, it is never plugged in."""
        profile = profile_by_name(name)
        misses, accesses = simulate_misses(profile, accesses=40_000)
        measured = misses / accesses
        assert measured == pytest.approx(profile.miss_ratio, rel=0.15)

    def test_trace_deterministic_per_seed(self):
        profile = profile_by_name("mcf")
        assert generate_trace(profile, 1000, seed=5) == \
            generate_trace(profile, 1000, seed=5)
        assert generate_trace(profile, 1000, seed=5) != \
            generate_trace(profile, 1000, seed=6)

    @settings(max_examples=10)
    @given(st.sampled_from([p.name for p in SPEC_PROFILES]))
    def test_property_misses_bounded_by_accesses(self, name):
        profile = profile_by_name(name)
        misses, accesses = simulate_misses(profile, accesses=5_000)
        assert 0 <= misses <= accesses


class TestSpanTrace:
    """The span-level trace/cache path is defined to be exactly the
    per-access one — these differentials pin the definition."""

    @pytest.mark.parametrize("name", ["mcf", "gcc", "canneal"])
    def test_span_trace_flattens_to_the_per_access_trace(self, name):
        profile = profile_by_name(name)
        flat = generate_trace(profile, 3000, seed=9)
        spans = generate_span_trace(profile, 3000, seed=9)
        line_bytes = 1 << CACHE_LINE_SHIFT
        rebuilt = []
        for address, length in spans:
            for off in range(0, length, line_bytes):
                rebuilt.append(address + off)
        assert rebuilt == flat

    def test_access_span_equals_per_access_calls(self):
        a, b = CacheModel(lines=8), CacheModel(lines=8)
        line_bytes = 1 << CACHE_LINE_SHIFT
        # spans larger than the cache force mid-span evictions too
        for address, length in [(0, 4 * line_bytes),
                                (2 * line_bytes, 16 * line_bytes),
                                (0, 2 * line_bytes),
                                (64 * line_bytes, 12 * line_bytes)]:
            misses = a.access_span(address, length)
            per_access = sum(b.access(address + off)
                             for off in range(0, length, line_bytes))
            assert misses == per_access
            assert (a.hits, a.misses, a._order) == (b.hits, b.misses,
                                                    b._order)

    @pytest.mark.parametrize("name", ["mcf", "canneal"])
    def test_simulate_misses_batched_equals_per_access(self, name):
        profile = profile_by_name(name)
        assert simulate_misses(profile, accesses=8_000, batched=True) \
            == simulate_misses(profile, accesses=8_000, batched=False)


class TestFioSpecs:
    def test_four_rows(self):
        assert [s.name for s in TABLE3_SPECS] == \
            ["rand-read", "seq-read", "rand-write", "seq-write"]

    def test_sequential_blocks_larger_than_random(self):
        seq = next(s for s in TABLE3_SPECS if s.name == "seq-read")
        rand = next(s for s in TABLE3_SPECS if s.name == "rand-read")
        assert seq.block_bytes > rand.block_bytes

    def test_sector_alignment(self):
        assert all(s.block_bytes % 512 == 0 for s in TABLE3_SPECS)


class TestDiskTimingModel:
    def test_random_pays_seek(self):
        cycles = CycleCounter()
        model = DiskTimingModel(cycles)
        model.request(1000, 4096, "rand")
        assert cycles.total >= DISK_SEEK_CYCLES

    def test_sequential_streams(self):
        cycles = CycleCounter()
        model = DiskTimingModel(cycles)
        model.request(0, 4096, "seq")
        model.request(8, 4096, "seq")
        assert cycles.total < DISK_SEEK_CYCLES

    def test_contiguous_random_skips_seek(self):
        cycles = CycleCounter()
        model = DiskTimingModel(cycles)
        model.request(0, 4096, "rand")
        first = cycles.total
        model.request(8, 4096, "rand")  # head is already there
        assert cycles.total - first < DISK_SEEK_CYCLES
