"""Smoke tests for ``repro.eval.perfbench`` at CI sizes.

These do not assert speedup ratios — quick sizes on shared CI boxes
are too noisy for that.  They assert the things that must never be
flaky: the report schema, the in-run equivalence flags (the benches
themselves raise if the fast path diverges from the reference twin),
and the ``--json`` artifact contract that ``BENCH_simulator.json``
consumers rely on.
"""

import json

from repro.eval import perfbench

BENCH_NAMES = ("keystream", "enc_rw_mix", "walker_tlb", "guest_macro")


def test_run_all_quick_schema():
    report = perfbench.run_all(quick=True)
    assert report["schema"] == perfbench.SCHEMA
    assert report["quick"] is True
    assert set(report["benchmarks"]) == set(BENCH_NAMES)
    for name in ("keystream", "enc_rw_mix", "guest_macro"):
        bench = report["benchmarks"][name]
        assert bench["optimized_s"] > 0
        assert bench["reference_s"] > 0
        assert bench["speedup"] > 0
    assert report["benchmarks"]["walker_tlb"]["per_translation_us"] > 0
    # the benches assert equivalence internally; the flags record it
    assert report["benchmarks"]["enc_rw_mix"]["equivalent"] is True
    assert report["benchmarks"]["guest_macro"]["digest_equal"] is True
    assert report["benchmarks"]["guest_macro"]["cycles_equal"] is True
    # counters come from the macro run's fast path
    assert "keystream_cache" in report["counters"]
    assert "memctrl" in report["counters"]
    assert "tlb" in report["counters"]
    # schema/2: the sharding section carries cross-machine context
    sharding = report["sharding"]
    assert sharding["jobs"] == 1
    assert sharding["host_cpus"] >= 1
    assert sharding["wall_s"] > 0
    assert [s["key"] for s in sharding["shards"]] == list(BENCH_NAMES)
    assert all(s["ok"] and s["elapsed_s"] > 0 for s in sharding["shards"])


def test_format_report_mentions_every_bench():
    report = perfbench.run_all(quick=True)
    text = perfbench.format_report(report)
    for name in BENCH_NAMES:
        assert name in text


def test_cli_json_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_simulator.json"
    rc = perfbench.main(["--quick", "--json", "--out", str(out)])
    assert rc == 0
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == perfbench.SCHEMA
    assert set(on_disk["benchmarks"]) == set(BENCH_NAMES)
    # stdout carries the same JSON for log scraping
    printed = json.loads(capsys.readouterr().out)
    assert printed == on_disk
