"""Tests for the sensitivity analysis."""

import pytest

from repro.eval.sensitivity import (
    encryption_latency_sweep,
    exit_rate_sweep,
    format_exit_rate_sweep,
    format_latency_sweep,
    shape_is_robust,
)


class TestLatencySweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return encryption_latency_sweep()

    def test_zero_latency_zero_overhead(self, sweep):
        for series in sweep.values():
            assert series[0].overhead_pct == pytest.approx(0.0, abs=0.01)

    def test_monotonic_in_latency(self, sweep):
        for series in sweep.values():
            values = [p.overhead_pct for p in series]
            assert values == sorted(values)

    def test_memory_bound_scales_fastest(self, sweep):
        assert sweep["mcf"][-1].overhead_pct > \
            sweep["gcc"][-1].overhead_pct > \
            sweep["hmmer"][-1].overhead_pct

    def test_shape_robust_across_latencies(self, sweep):
        """The figure-5 conclusions do not depend on the exact engine
        latency: the benchmark ordering is invariant."""
        assert shape_is_robust(sweep)

    def test_formatting(self, sweep):
        text = format_latency_sweep(sweep)
        assert "mcf" in text and "%" in text


class TestExitRateSweep:
    def test_monotonic_in_rate(self):
        series = exit_rate_sweep()
        values = [p.overhead_pct for p in series]
        assert values == sorted(values)

    def test_negligible_at_realistic_rates(self):
        """At the exit rates compute workloads actually show, the
        shadowing tax stays under 1% — the paper's headline."""
        series = exit_rate_sweep(rates=(0.01,))
        assert series[0].overhead_pct < 1.0

    def test_formatting(self):
        text = format_exit_rate_sweep(exit_rate_sweep(rates=(0.01, 0.1)))
        assert "rate" in text
