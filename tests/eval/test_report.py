"""Tests for the one-shot reproduction report."""

import pytest

from repro.eval.report import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report()


class TestReport:
    def test_contains_all_sections(self, report):
        for heading in ("Figure 5", "Figure 6", "Table 3",
                        "Micro benchmarks", "XSA analysis",
                        "Shape verdicts"):
            assert heading in report

    def test_all_shape_verdicts_pass(self, report):
        assert "- [ ]" not in report

    def test_key_rows_present(self, report):
        assert "mcf" in report
        assert "canneal" in report
        assert "seq-read" in report
        assert "177 hypervisor-related" in report

    def test_is_markdown_table_formatted(self, report):
        assert report.count("|---|") >= 4
