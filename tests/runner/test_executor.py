"""Executor behaviour: ordering, fault isolation, retries, timeouts.

The worker functions live at module level so shards can run them under
any multiprocessing start method.
"""

import os
import time

import pytest

from repro.runner import (
    RunnerError,
    ShardPlan,
    WorkUnit,
    execute,
)


def _identity(value):
    return value


def _pid(_key):
    return os.getpid()


def _sleep_then(value, delay):
    time.sleep(delay)
    return value


def _raise_for(key, bad):
    if key == bad:
        raise ValueError("unit %r is bad" % key)
    return key * 10


def _hard_exit(_key):
    os._exit(3)


def _crash_once_then(value, sentinel_path):
    if not os.path.exists(sentinel_path):
        with open(sentinel_path, "w") as fh:
            fh.write("attempt")
        os._exit(1)
    return value


def _sleep_forever(_key):
    time.sleep(60)


class TestSerial:
    def test_runs_in_process(self):
        report = execute([WorkUnit.of(0, _pid, 0)], jobs=1)
        assert report.values() == [os.getpid()]
        assert report.results[0].worker == "serial"

    def test_clean_exception_fails_only_its_unit(self):
        units = [WorkUnit.of(i, _raise_for, i, 1) for i in range(3)]
        report = execute(units, jobs=1)
        assert [r.ok for r in report.results] == [True, False, True]
        assert "unit 1 is bad" in report.results[1].error
        with pytest.raises(RunnerError):
            report.values()


class TestParallel:
    def test_runs_out_of_process(self):
        report = execute([WorkUnit.of(0, _pid, 0)], jobs=2)
        assert report.values() != [os.getpid()]
        assert report.results[0].worker.startswith("pid:")

    def test_results_in_submission_order_despite_finish_order(self):
        # later units finish first; the merge must re-sort by plan order
        units = [WorkUnit.of(i, _sleep_then, i, (3 - i) * 0.08)
                 for i in range(4)]
        report = execute(units, jobs=4)
        assert report.values() == [0, 1, 2, 3]

    def test_clean_exception_is_isolated(self):
        units = [WorkUnit.of(i, _raise_for, i, 2) for i in range(4)]
        report = execute(units, jobs=2)
        assert [r.ok for r in report.results] == [True, True, False, True]
        assert report.results[0].value == 0

    def test_shard_grouping_respected(self):
        plan = ShardPlan.chunked(
            [WorkUnit.of(i, _identity, i) for i in range(6)], 2)
        report = execute(plan, jobs=2)
        assert report.values() == list(range(6))
        # both units of a chunk ran in the same worker
        workers = [r.worker for r in report.results]
        assert workers[0] == workers[1] == workers[2]
        assert workers[3] == workers[4] == workers[5]


class TestFaultIsolation:
    def test_dead_worker_fails_only_its_shard(self):
        units = [WorkUnit.of(0, _identity, 42),
                 WorkUnit.of(1, _hard_exit, 1),
                 WorkUnit.of(2, _identity, 43)]
        report = execute(units, jobs=2, retries=1)
        assert [r.ok for r in report.results] == [True, False, True]
        assert report.results[1].attempts == 2      # retried once
        assert "crashed" in report.results[1].error
        kinds = [kind for kind, _ in report.events]
        assert "worker-crashed" in kinds
        assert "shard-retried" in kinds
        assert "shard-failed" in kinds

    def test_crash_then_success_on_retry(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        report = execute(
            [WorkUnit.of(0, _crash_once_then, 7, sentinel)],
            jobs=2, retries=2)
        assert report.values() == [7]
        assert report.results[0].attempts == 2

    def test_retries_zero_fails_immediately(self):
        report = execute([WorkUnit.of(0, _hard_exit, 0)],
                         jobs=2, retries=0)
        assert not report.results[0].ok
        assert report.results[0].attempts == 1

    def test_timeout_kills_and_fails_shard(self):
        report = execute([WorkUnit.of(0, _sleep_forever, 0)],
                         jobs=2, timeout_s=0.3, retries=0)
        assert not report.results[0].ok
        assert "timed out" in report.results[0].error
        kinds = [kind for kind, _ in report.events]
        assert "shard-timeout" in kinds

    def test_straggler_flagged_but_allowed_to_finish(self):
        units = [WorkUnit.of(0, _identity, 0),
                 WorkUnit.of(1, _sleep_then, 1, 0.5)]
        report = execute(units, jobs=2, straggler_factor=2.0,
                         straggler_min_s=0.2)
        assert report.values() == [0, 1]
        kinds = [kind for kind, _ in report.events]
        assert "straggler-detected" in kinds


class TestReport:
    def test_utilization_and_counters(self):
        units = [WorkUnit.of(i, _sleep_then, i, 0.05) for i in range(3)]
        report = execute(units, jobs=3)
        assert 0.0 < report.utilization() <= 1.0
        counters = report.shard_counters()
        assert [c["key"] for c in counters] == ["0", "1", "2"]
        assert all(c["elapsed_s"] > 0 for c in counters)
        assert all(c["ok"] for c in counters)

    def test_on_event_mirror(self):
        seen = []
        execute([WorkUnit.of(0, _hard_exit, 0)], jobs=2, retries=0,
                on_event=lambda kind, details: seen.append(kind))
        assert "worker-crashed" in seen
