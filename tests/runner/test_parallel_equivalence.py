"""The determinism contract, end to end: a sharded run's aggregated
output is byte-identical to the serial run's, for every subsystem the
runner backs.  CI repeats the soak check at full 20-seed size in the
``parallel-equivalence`` job; here the sweeps are sized for tier-1.
"""

from repro.attacks.suite import ALL_ATTACKS, run_matrix
from repro.eval import perfbench
from repro.eval.macro import run_figure
from repro.eval.sensitivity import encryption_latency_sweep, exit_rate_sweep
from repro.faults.soak import results_digest, soak, soak_report
from repro.runner import digest


class TestSoakEquivalence:
    def test_serial_and_sharded_soak_digests_match(self):
        kwargs = dict(seeds=(0, 1, 2), hosts=2, tenants=1,
                      frames=512, nfaults=2)
        serial = soak(**kwargs)
        sharded = soak(jobs=2, **kwargs)
        assert results_digest(serial) == results_digest(sharded)
        # and the merged order is seed order, not completion order
        assert [r.seed for r in sharded] == [0, 1, 2]

    def test_soak_report_carries_shard_counters(self):
        report = soak_report(seeds=(0, 1), jobs=2, hosts=2, tenants=1,
                             frames=512, nfaults=2)
        counters = report.shard_counters()
        assert [c["key"] for c in counters] == ["0", "1"]
        assert all(c["attempts"] == 1 for c in counters)
        assert report.jobs == 2
        assert report.wall_s > 0


class TestEvalEquivalence:
    def test_figure_rows_identical(self):
        serial = run_figure("fig5", instructions=20_000)
        sharded = run_figure("fig5", instructions=20_000, jobs=2)
        assert serial == sharded
        assert digest(serial) == digest(sharded)

    def test_latency_sweep_identical(self):
        serial = encryption_latency_sweep(instructions=20_000)
        sharded = encryption_latency_sweep(instructions=20_000, jobs=2)
        assert digest(serial) == digest(sharded)

    def test_exit_rate_sweep_identical(self):
        assert exit_rate_sweep(instructions=20_000) == \
            exit_rate_sweep(instructions=20_000, jobs=2)


class TestAttackEquivalence:
    def test_matrix_rows_identical(self):
        subset = ALL_ATTACKS[:6]
        serial = run_matrix(attacks=subset)
        sharded = run_matrix(attacks=subset, jobs=2)
        assert serial == sharded
        assert [row.name for row in sharded] == \
            [fn.attack_name for fn in subset]


class TestPerfbenchEquivalence:
    def test_deterministic_digest_equal_across_jobs(self):
        serial = perfbench.run_all(quick=True)
        sharded = perfbench.run_all(quick=True, jobs=2)
        assert perfbench.deterministic_digest(serial) == \
            perfbench.deterministic_digest(sharded)
        sharding = sharded["sharding"]
        assert sharding["jobs"] == 2
        assert sharding["host_cpus"] >= 1
        assert len(sharding["shards"]) == len(sharded["benchmarks"])
        assert all(s["ok"] for s in sharding["shards"])
