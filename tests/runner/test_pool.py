"""Persistent worker pool: reuse, warm caches, equivalence, faults.

The pool's contract is that it changes *wall-clock shape only*: the
merged results are byte-identical to the serial run and to the fresh
process-per-shard mode, while workers live across shards so the
process-global keystream caches stay warm.  The worker functions live
at module level so shards can run them under any start method.
"""

import os
import time

import pytest

from repro.common import crypto
from repro.runner import (
    RunnerError,
    ShardPlan,
    WorkUnit,
    deterministic_digest,
    execute,
)


def _pid(_key):
    return os.getpid()


def _keystream_probe(seed):
    """Deterministic result that exercises the keystream line cache."""
    key = bytes([seed % 256]) * crypto.KEY_BYTES
    word = crypto.span_keystream_int(key, 0, 4)
    return word % (2 ** 61 - 1)


def _hard_exit(_key):
    os._exit(3)


def _crash_once_then(value, sentinel_path):
    if not os.path.exists(sentinel_path):
        with open(sentinel_path, "w") as fh:
            fh.write("attempt")
        os._exit(1)
    return value


def _sleep_forever(_key):
    time.sleep(60)


def _units(count, fn=_keystream_probe):
    return [WorkUnit.of(i, fn, i) for i in range(count)]


class TestWorkerReuse:
    def test_pool_runs_many_shards_per_worker(self):
        report = execute(_units(6, _pid), jobs=2)
        pids = set(report.values())
        assert len(pids) <= 2                       # at most `jobs` workers
        assert report.sharding["mode"] == "pool"
        assert report.sharding["workers_spawned"] <= 2
        assert len(report.sharding["shards"]) == 6

    def test_fresh_forks_per_shard(self):
        report = execute(_units(4, _pid), jobs=2, reuse_workers=False)
        assert len(set(report.values())) == 4       # one process per shard
        assert report.sharding["mode"] == "fresh"
        assert report.sharding["workers_spawned"] == 4

    def test_pool_keeps_keystream_caches_warm(self):
        # Every shard computes the same spans; under the pool, shards
        # after a worker's first report zero line misses (warm cache),
        # which is exactly what fresh processes cannot do.
        plan = ShardPlan.chunked(
            [WorkUnit.of(i, _keystream_probe, 7) for i in range(4)], 4)
        pooled = execute(plan, jobs=1 + 1)
        misses = [s["keystream"]["line_misses"]
                  for s in pooled.sharding["shards"]]
        assert 0 in misses                          # some shard ran warm
        assert any(m > 0 for m in misses)           # the first ones filled


class TestEquivalence:
    def test_serial_pool_fresh_values_identical(self):
        units = lambda: _units(8)                   # noqa: E731
        serial = execute(units(), jobs=1)
        pooled = execute(units(), jobs=3)
        fresh = execute(units(), jobs=3, reuse_workers=False)
        assert serial.values() == pooled.values() == fresh.values()
        assert deterministic_digest(serial.values()) \
            == deterministic_digest(pooled.values()) \
            == deterministic_digest(fresh.values())

    def test_sharding_is_excluded_from_deterministic_digest(self):
        report = execute(_units(3), jobs=2)
        payload = {"values": report.values(), "sharding": report.sharding}
        bare = {"values": report.values()}
        assert deterministic_digest(payload) == deterministic_digest(bare)


class TestShardingBreakdown:
    def test_breakdown_fields_present(self):
        report = execute(_units(4), jobs=2)
        sharding = report.sharding
        for field_name in ("mode", "workers_spawned", "spawn_s",
                           "transport_s", "compute_s", "dispatch_bytes",
                           "result_bytes", "shards"):
            assert field_name in sharding, field_name
        assert sharding["spawn_s"] > 0
        assert sharding["dispatch_bytes"] > 0
        assert sharding["result_bytes"] > 0
        for record in sharding["shards"]:
            assert record["worker"].startswith("pid:")
            assert "line_misses" in record["keystream"]

    def test_serial_mode_reports_zero_spawn(self):
        report = execute(_units(2), jobs=1)
        assert report.sharding["mode"] == "serial"
        assert report.sharding["workers_spawned"] == 0
        assert report.sharding["spawn_s"] == 0.0
        assert len(report.sharding["shards"]) == 2  # one per unit-shard


class TestPoolFaults:
    def test_dead_pool_worker_fails_only_its_shard(self):
        units = [WorkUnit.of(0, _keystream_probe, 0),
                 WorkUnit.of(1, _hard_exit, 1),
                 WorkUnit.of(2, _keystream_probe, 2)]
        report = execute(units, jobs=2, retries=1)
        assert [r.ok for r in report.results] == [True, False, True]
        assert report.results[1].attempts == 2
        kinds = [kind for kind, _ in report.events]
        assert "worker-crashed" in kinds
        with pytest.raises(RunnerError):
            report.values()

    def test_pool_crash_then_success_on_retry(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        report = execute(
            [WorkUnit.of(0, _crash_once_then, 7, sentinel)],
            jobs=2, retries=2)
        assert report.values() == [7]
        assert report.results[0].attempts == 2

    def test_pool_timeout_kills_and_fails_shard(self):
        report = execute([WorkUnit.of(0, _sleep_forever, 0)],
                         jobs=2, timeout_s=0.3, retries=0)
        assert not report.results[0].ok
        assert "timed out" in report.results[0].error
        kinds = [kind for kind, _ in report.events]
        assert "shard-timeout" in kinds
