"""Unit tests for shard planning and the canonical digest."""

from dataclasses import dataclass

import pytest

from repro.common.errors import ReproError
from repro.runner import ShardPlan, WorkUnit, canonical, digest
from repro.runner.merge import deterministic_digest, strip_timing


def _noop(value):
    return value


def _units(n):
    return [WorkUnit.of(i, _noop, i) for i in range(n)]


class TestShardPlan:
    def test_single_puts_one_unit_per_shard(self):
        plan = ShardPlan.single(_units(5))
        assert len(plan) == 5
        assert [s.keys for s in plan.shards] == [(i,) for i in range(5)]
        assert plan.key_order == [0, 1, 2, 3, 4]

    def test_interleaved_round_robins(self):
        plan = ShardPlan.interleaved(_units(7), 3)
        assert [s.keys for s in plan.shards] == [
            (0, 3, 6), (1, 4), (2, 5)]
        assert plan.key_order == list(range(7))

    def test_chunked_keeps_contiguous_runs(self):
        plan = ShardPlan.chunked(_units(7), 3)
        assert [s.keys for s in plan.shards] == [
            (0, 1, 2), (3, 4), (5, 6)]

    def test_more_shards_than_units_collapses(self):
        plan = ShardPlan.interleaved(_units(2), 8)
        assert len(plan) == 2

    def test_duplicate_keys_rejected(self):
        units = [WorkUnit.of(7, _noop, 1), WorkUnit.of(7, _noop, 2)]
        with pytest.raises(ReproError):
            ShardPlan.single(units)

    def test_unit_kwargs_sorted_and_callable(self):
        unit = WorkUnit.of("k", dict, b=2, a=1)
        assert unit.kwargs == (("a", 1), ("b", 2))
        assert unit.call() == {"a": 1, "b": 2}


@dataclass(frozen=True)
class _Point:
    x: int
    payload: bytes


class TestDigest:
    def test_digest_is_stable_across_calls(self):
        value = [_Point(1, b"\x00\xff"), {"b": 2, "a": (1, 2)}, {3, 1}]
        assert digest(value) == digest(value)

    def test_dict_order_does_not_matter(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_bytes_and_str_distinct(self):
        assert digest(b"abc") != digest("abc")

    def test_dataclass_name_participates(self):
        assert canonical(_Point(1, b""))[1] == "_Point"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            digest(object())

    def test_strip_timing_removes_wall_clock_keys(self):
        report = {
            "cycles_total": 10,
            "optimized_s": 1.5,
            "per_translation_us": 2.0,
            "speedup": 4.0,
            "sharding": {"jobs": 2},
            "nested": [{"elapsed_s": 0.1, "ok": True}],
        }
        stripped = strip_timing(report)
        assert stripped == {"cycles_total": 10, "nested": [{"ok": True}]}

    def test_deterministic_digest_ignores_timing_only_changes(self):
        a = {"cycles": 5, "wall_s": 1.0}
        b = {"cycles": 5, "wall_s": 9.9}
        assert deterministic_digest(a) == deterministic_digest(b)
        assert deterministic_digest({"cycles": 6, "wall_s": 1.0}) \
            != deterministic_digest(a)
