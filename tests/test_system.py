"""Tests for the assembled System builder and the machine board."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.hw import Machine
from repro.system import GuestOwner, System, paired_systems


class TestSystemBuilder:
    def test_baseline_has_no_fidelius(self):
        system = System.create(fidelius=False, frames=1024, seed=1)
        assert not system.protected
        assert system.fidelius is None

    def test_fidelius_host_is_protected(self):
        system = System.create(fidelius=True, frames=1024, seed=1)
        assert system.protected
        assert system.fidelius.installed

    def test_baseline_firmware_initialized_by_hypervisor(self):
        from repro.sev.state import PlatformState
        system = System.create(fidelius=False, frames=1024, seed=1)
        assert system.firmware.platform_state is PlatformState.INIT

    def test_protected_guest_requires_fidelius(self):
        system = System.create(fidelius=False, frames=1024, seed=1)
        with pytest.raises(ReproError):
            system.boot_protected_guest("x", GuestOwner(seed=1))

    def test_sev_encoder_requires_fidelius(self):
        system = System.create(fidelius=False, frames=1024, seed=1)
        domain, ctx = system.create_plain_guest("g")
        with pytest.raises(ReproError):
            system.sev_encoder_for(domain, ctx)

    def test_lazy_npt_plumbed_through(self):
        system = System.create(fidelius=False, frames=1024, seed=1,
                               lazy_npt=True)
        domain, _ = system.create_plain_guest("g", guest_frames=16)
        assert not domain.npt.maps(0)

    def test_paired_systems_are_independent(self):
        a, b = paired_systems(frames=1024)
        assert a.machine is not b.machine
        assert a.firmware.platform_public_key != b.firmware.platform_public_key

    def test_attach_disk_with_image(self):
        system = System.create(fidelius=False, frames=2048, seed=2)
        domain, ctx = system.create_plain_guest("g", guest_frames=32)
        disk, fe, be = system.attach_disk(domain, ctx,
                                          image=b"bootsector" + bytes(600))
        assert fe.read(0, 1).startswith(b"bootsector")

    def test_deterministic_given_seed(self):
        a = System.create(fidelius=True, frames=1024, seed=42)
        b = System.create(fidelius=True, frames=1024, seed=42)
        assert a.fidelius.xen_measurement == b.fidelius.xen_measurement
        dump_a = a.machine.cold_boot_dump()
        dump_b = b.machine.cold_boot_dump()
        assert dump_a.keys() == dump_b.keys()


class TestMachine:
    def test_host_space_maps_every_frame(self):
        machine = Machine(frames=256, seed=3)
        machine.build_host_address_space()
        for pfn in (0, 100, 255):
            machine.cpu.store(pfn * PAGE_SIZE, b"x")
            assert machine.cpu.load(pfn * PAGE_SIZE, 1) == b"x"

    def test_table_pages_before_build_rejected(self):
        machine = Machine(frames=64, seed=3)
        with pytest.raises(RuntimeError):
            machine.host_table_pages()

    def test_cold_boot_dump_reflects_raw_bytes(self):
        machine = Machine(frames=64, seed=3)
        machine.build_host_address_space()
        machine.memory.write(50 * PAGE_SIZE, b"visible!")
        dump = machine.cold_boot_dump()
        assert b"visible!" in dump[50]

    def test_seeded_rng_reproducible(self):
        a = Machine(frames=64, seed=9).rng.random()
        b = Machine(frames=64, seed=9).rng.random()
        assert a == b


class TestPublicApi:
    def test_top_level_exports(self):
        import repro
        assert repro.System is System
        assert hasattr(repro, "GuestOwner")
        assert hasattr(repro, "Fidelius")
        assert repro.__version__

    def test_quickstart_docstring_flow(self):
        """The flow the package docstring promises must actually run."""
        system = System.create(fidelius=True, frames=2048, seed=7)
        owner = GuestOwner(seed=7)
        domain, ctx = system.boot_protected_guest(
            "vm", owner, payload=b"app code", guest_frames=48)
        ctx.set_page_encrypted(5)
        ctx.write(5 * 4096, b"secret")
        encoder = system.aesni_encoder_for(ctx)
        disk, fe, be = system.attach_disk(domain, ctx, encoder=encoder)
        fe.write(0, b"protected file")
        assert fe.read(0, 1).startswith(b"protected file")
        from repro.common.errors import PolicyViolation
        with pytest.raises(PolicyViolation):
            system.machine.cpu.load(
                system.hypervisor.guest_frame_hpfn(domain, 5) * 4096, 16)
