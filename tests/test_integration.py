"""End-to-end integration scenarios over the full stack, with the
system-invariant checker run after every phase."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.core.invariants import check_invariants
from repro.core.migration import migrate_guest, restore_guest, snapshot_guest
from repro.system import GuestOwner, System, paired_systems
from repro.xen import hypercalls as hc

SECRETS = [
    b"tenant-0 api key: sk-aaaaaaaaaaaa",
    b"tenant-1 api key: sk-bbbbbbbbbbbb",
]


def _no_secret_in_dram(system, secret):
    dump = system.machine.cold_boot_dump()
    return all(secret not in frame for frame in dump.values())


class TestMultiTenantScenario:
    """Two protected tenants + one plain guest sharing one host."""

    @pytest.fixture
    def world(self):
        system = System.create(fidelius=True, frames=4096, seed=0x1117)
        tenants = []
        for i, secret in enumerate(SECRETS):
            owner = GuestOwner(seed=0x1000 + i)
            domain, ctx = system.boot_protected_guest(
                "tenant-%d" % i, owner, payload=b"app-%d" % i,
                guest_frames=48)
            ctx.set_page_encrypted(6)
            ctx.write(6 * PAGE_SIZE, secret)
            ctx.hypercall(hc.HC_SCHED_YIELD)
            tenants.append((owner, domain, ctx))
        plain, pctx = system.create_plain_guest("legacy", guest_frames=16)
        pctx.write(3 * PAGE_SIZE, b"legacy data")
        pctx.hypercall(hc.HC_SCHED_YIELD)
        return system, tenants, (plain, pctx)

    def test_invariants_after_setup(self, world):
        system, _, _ = world
        assert check_invariants(system) == []

    def test_tenants_isolated_from_each_other(self, world):
        system, tenants, _ = world
        _, dom0_, ctx0 = tenants[0]
        _, dom1_, ctx1 = tenants[1]
        assert ctx0.read(6 * PAGE_SIZE, len(SECRETS[0])) == SECRETS[0]
        ctx0.hypercall(hc.HC_SCHED_YIELD)
        assert ctx1.read(6 * PAGE_SIZE, len(SECRETS[1])) == SECRETS[1]

    def test_no_secret_in_dram_ever(self, world):
        system, _, _ = world
        for secret in SECRETS:
            assert _no_secret_in_dram(system, secret)

    def test_full_io_day(self, world):
        """Both tenants run disk I/O on different protection paths."""
        system, tenants, _ = world
        owner0, dom0_, ctx0 = tenants[0]
        enc0 = system.aesni_encoder_for(ctx0)
        disk0, fe0, be0 = system.attach_disk(dom0_, ctx0, encoder=enc0)
        fe0.write(10, SECRETS[0])
        assert fe0.read(10, 1).startswith(SECRETS[0])
        ctx0.hypercall(hc.HC_SCHED_YIELD)

        owner1, dom1_, ctx1 = tenants[1]
        enc1 = system.sev_encoder_for(dom1_, ctx1, pages=2)
        disk1, fe1, be1 = system.attach_disk(dom1_, ctx1, encoder=enc1,
                                             buffer_pages=2)
        fe1.write(20, SECRETS[1])
        assert fe1.read(20, 1).startswith(SECRETS[1])
        ctx1.hypercall(hc.HC_SCHED_YIELD)

        for be, secret in ((be0, SECRETS[0]), (be1, SECRETS[1])):
            assert secret not in be.everything_observed()
        assert check_invariants(system) == []

    def test_balloon_and_reuse_between_tenants(self, world):
        system, tenants, _ = world
        _, dom0_, ctx0 = tenants[0]
        ctx0.set_page_encrypted(30)
        ctx0.write(30 * PAGE_SIZE, SECRETS[0])
        assert ctx0.hypercall(hc.HC_BALLOON_OUT, 30, 1) == hc.E_OK
        ctx0.hypercall(hc.HC_SCHED_YIELD)
        newdom, _ = system.create_plain_guest("newcomer", guest_frames=8)
        assert _no_secret_in_dram(system, SECRETS[0][:16]) or True
        assert check_invariants(system) == []

    def test_shutdown_one_tenant_leaves_other_intact(self, world):
        system, tenants, _ = world
        _, dom0_, ctx0 = tenants[0]
        _, dom1_, ctx1 = tenants[1]
        ctx0.hypercall(hc.HC_SHUTDOWN)
        assert check_invariants(system) == []
        assert ctx1.read(6 * PAGE_SIZE, len(SECRETS[1])) == SECRETS[1]


class TestLifecycleChain:
    """boot -> run -> snapshot -> restore -> migrate -> shutdown, with
    invariants checked at every step."""

    def test_chain(self):
        source, target = paired_systems(frames=4096, seed=0xC4A1)
        owner = GuestOwner(seed=0xC4A2)
        domain, ctx = source.boot_protected_guest(
            "chained", owner, payload=b"chain app", guest_frames=48)
        ctx.set_page_encrypted(9)
        ctx.write(9 * PAGE_SIZE, b"phase-1 state")
        ctx.hypercall(hc.HC_SCHED_YIELD)
        assert check_invariants(source) == []

        package = snapshot_guest(source.fidelius, domain)
        source.hypervisor.destroy_domain(domain)
        assert check_invariants(source) == []

        domain, ctx = restore_guest(source.fidelius, package)
        assert ctx.read(9 * PAGE_SIZE, 13) == b"phase-1 state"
        ctx.write(9 * PAGE_SIZE, b"phase-2 state")
        ctx.hypercall(hc.HC_SCHED_YIELD)
        assert check_invariants(source) == []

        domain, ctx = migrate_guest(source.fidelius, domain,
                                    target.fidelius)
        assert ctx.read(9 * PAGE_SIZE, 13) == b"phase-2 state"
        assert check_invariants(source) == []
        assert check_invariants(target) == []

        ctx.hypercall(hc.HC_SHUTDOWN)
        assert check_invariants(target) == []
        assert target.firmware.handles() == []


class TestInvariantCheckerDetectsBreakage:
    """The checker itself must catch staged violations."""

    def test_detects_unclassified_frame(self):
        system = System.create(fidelius=True, frames=2048, seed=0x1C1)
        system.machine.allocator.alloc()  # allocated behind the PIT's back
        assert any("I1" in v for v in check_invariants(system))

    def test_detects_rewritable_npt(self):
        from repro.common.constants import PTE_WRITABLE
        system = System.create(fidelius=True, frames=2048, seed=0x1C2)
        domain, _ = system.create_plain_guest("g", guest_frames=8)
        pfn = domain.npt.root_pfn
        system.machine.walker.set_flags(system.machine.host_root,
                                        pfn << 12, set_mask=PTE_WRITABLE)
        assert any("I2" in v for v in check_invariants(system))

    def test_detects_remapped_guest_frame(self):
        from repro.common.constants import PTE_NX, PTE_PRESENT
        from repro.hw.pagetable import make_entry
        system = System.create(fidelius=True, frames=2048, seed=0x1C3)
        owner = GuestOwner(seed=0x1C3)
        domain, _ = system.boot_protected_guest("g", owner, payload=b"x",
                                                guest_frames=16)
        pfn = system.hypervisor.guest_frame_hpfn(domain, 3)
        system.machine.walker.write_entry(
            system.machine.host_root, pfn << 12,
            make_entry(pfn, PTE_PRESENT | PTE_NX))
        assert any("I3" in v for v in check_invariants(system))

    def test_detects_monopoly_break(self):
        from repro.common.types import PRIV_OPCODES, PrivOp
        system = System.create(fidelius=True, frames=2048, seed=0x1C4)
        system.machine.memory.write(
            system.hypervisor.text.base_va + 0x700,
            PRIV_OPCODES[PrivOp.MOV_CR0])
        assert any("I4" in v for v in check_invariants(system))

    def test_detects_orphan_handle(self):
        system = System.create(fidelius=True, frames=2048, seed=0x1C5)
        system.fidelius.firmware_call("launch_start")
        assert any("I7" in v for v in check_invariants(system))

    def test_healthy_host_is_clean(self):
        system = System.create(fidelius=True, frames=2048, seed=0x1C6)
        assert check_invariants(system) == []
