"""The interprocedural effect engine and the rules built on it.

Covers the call-graph/effect-summary fixpoint (transitive writes,
recursion termination, dispatch-table edges), the shard-purity /
state-inventory / entropy-flow rules end to end, the ``--state-report``
artifact, and the two contracts the whole layer exists to defend:

* a *runtime* differential showing that a shard function mutating a
  module global really does lose state under ``jobs > 1`` — the bug
  class FID013 bans statically;
* fidelint's own ``--jobs`` path producing a byte-identical findings
  digest, serial vs sharded.
"""

import importlib
import json
import os
import shutil
import sys
import textwrap

from repro.analysis import analyze
from repro.analysis.cli import main
from repro.analysis.engine import findings_digest
from repro.analysis.project import Project
from repro.common.state_registry import REGISTRY, lookup

FIXTURE_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "fixture_src")
REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
SRC_ROOT = os.path.join(REPO_ROOT, "src")


def _make_tree(tmp_path, modules):
    """Build a miniature repro tree from {relative path: source}."""
    root = tmp_path / "src"
    pkg = root / "repro"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for module_rel, source in modules.items():
        target = pkg / module_rel
        target.parent.mkdir(parents=True, exist_ok=True)
        walk = pkg
        for part in module_rel.split("/")[:-1]:
            walk = walk / part
            init = walk / "__init__.py"
            if not init.exists():
                init.write_text("")
        target.write_text(textwrap.dedent(source))
    return str(root)


def _effects(root):
    return Project.load(root).dataflow.effects


def _copy_live_tree(tmp_path):
    root = str(tmp_path / "src")
    shutil.copytree(
        os.path.join(SRC_ROOT, "repro"), os.path.join(root, "repro"),
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"))
    return root


# ------------------------------------------------------- effect summaries

def test_transitive_write_through_helper(tmp_path):
    root = _make_tree(tmp_path, {"eval/mod.py": """\
        _ACC = []


        def _leaf(value):
            _ACC.append(value)


        def _mid(value):
            _leaf(value + 1)


        def top(value):
            _mid(value)
            return value
        """})
    effects = _effects(root)
    for func in ("_leaf", "_mid", "top"):
        summary = effects["repro.eval.mod:%s" % func]
        assert summary.writes_global("_ACC"), func
        assert summary.writes_global("repro.eval.mod:_ACC"), func
    assert not effects["repro.eval.mod:top"].unseeded_rng


def test_recursion_reaches_a_fixpoint(tmp_path):
    # Mutual recursion must terminate and both sides must see the
    # write that only one of them performs directly.
    root = _make_tree(tmp_path, {"eval/mod.py": """\
        _SEEN = set()


        def ping(n):
            if n <= 0:
                return n
            _SEEN.add(n)
            return pong(n - 1)


        def pong(n):
            return ping(n - 1)
        """})
    effects = _effects(root)
    assert effects["repro.eval.mod:ping"].writes_global("_SEEN")
    assert effects["repro.eval.mod:pong"].writes_global("_SEEN")


def test_dispatch_table_edges_propagate_effects(tmp_path):
    # perfbench-style: the only call is TABLE[name](...), so without
    # dispatch-table resolution the write below would be invisible.
    root = _make_tree(tmp_path, {"eval/mod.py": """\
        _HITS = []


        def _bench_a(n):
            _HITS.append(n)
            return n


        def _bench_b(n):
            return n * 2


        TABLE = {"a": _bench_a, "b": _bench_b}


        def run(name, n):
            return TABLE[name](n)
        """})
    effects = _effects(root)
    assert effects["repro.eval.mod:run"].writes_global("_HITS")


def test_ambient_classification_rng_and_clock(tmp_path):
    root = _make_tree(tmp_path, {"eval/mod.py": """\
        import random
        import time


        def roll():
            return random.random()


        def stamp():
            return time.perf_counter()


        def seeded(seed):
            return random.Random(seed).random()
        """})
    effects = _effects(root)
    assert effects["repro.eval.mod:roll"].unseeded_rng
    assert not effects["repro.eval.mod:roll"].reads_clock
    assert effects["repro.eval.mod:stamp"].reads_clock
    # an explicitly seeded generator is the sanctioned pattern
    assert not effects["repro.eval.mod:seeded"].unseeded_rng


def test_local_named_secrets_is_not_the_secrets_module(tmp_path):
    # Regression: a local list called ``secrets`` must not classify as
    # ambient entropy just because its name collides with the module.
    root = _make_tree(tmp_path, {"eval/mod.py": """\
        def collect(machine):
            secrets = []
            for vm in machine.vms:
                secrets.append(vm.key)
            return secrets
        """})
    summary = _effects(root)["repro.eval.mod:collect"]
    assert not summary.unseeded_rng
    assert not summary.writes_global()


# ------------------------------------------------- the rules on fixtures

def test_fid013_names_the_workunit_site_and_the_global(tmp_path):
    result = analyze(FIXTURE_ROOT, baseline_path=None, select=["FID013"])
    (finding,) = result.findings
    assert finding.module == "repro.eval.bad_shard"
    assert "_RESULTS" in finding.message
    assert "WorkUnit" in finding.line_text


def test_fid014_points_at_the_unregistered_binding():
    result = analyze(FIXTURE_ROOT, baseline_path=None, select=["FID014"])
    (finding,) = result.findings
    assert finding.module == "repro.hw.bad_snapshot_state"
    assert "_TLB_SCRATCH" in finding.message
    assert "state_registry" in finding.message


def test_fid015_sees_through_alias_and_helper():
    result = analyze(FIXTURE_ROOT, baseline_path=None, select=["FID015"])
    (finding,) = result.findings
    assert finding.module == "repro.core.bad_entropy"
    assert "_boot_entropy" in finding.message
    assert "RNG seed" in finding.message
    # every line of the fixture is clean under the syntactic rule: the
    # flow rule is strictly stronger here
    syntactic = analyze(FIXTURE_ROOT, baseline_path=None, select=["FID007"])
    assert "repro.core.bad_entropy" not in {
        f.module for f in syntactic.findings}


def test_registered_reset_acceptance_on_live_crypto(monkeypatch):
    # The keystream caches are written by shard-reachable crypto code
    # (perfbench submits _run_bench, which reaches them through the
    # BENCH_FNS dispatch table); FID013 accepts the writes *because*
    # the bindings are registered with a reset hook.  Dropping the
    # registry entries must flip both FID013 (the write becomes
    # unregistered) and FID014 (the binding loses its inventory entry).
    assert lookup("repro.common.crypto", "_line_cache").reset \
        == "clear_keystream_cache"

    from repro.common import state_registry
    stripped = {key: entry for key, entry in state_registry.REGISTRY.items()
                if key[0] != "repro.common.crypto"}
    monkeypatch.setattr(state_registry, "REGISTRY", stripped)

    broken = analyze(SRC_ROOT, baseline_path=None,
                     select=["FID013", "FID014"])
    fired = {f.rule_id for f in broken.findings}
    assert fired == {"FID013", "FID014"}
    # the purity failure lands at the perfbench WorkUnit site
    assert any(f.module == "repro.eval.perfbench" and
               "unregistered" in f.message for f in broken.findings)


# --------------------------------------------- live tree + seeded regression

def test_live_tree_is_clean_under_the_effect_rules():
    result = analyze(SRC_ROOT, baseline_path=None,
                     select=["FID013", "FID014", "FID015"])
    assert not result.findings, "\n".join(
        f.render() for f in result.findings)


def test_seeded_global_mutating_shard_function_is_caught(tmp_path):
    root = _copy_live_tree(tmp_path)
    leak = os.path.join(root, "repro", "eval", "seeded_leak.py")
    with open(leak, "w", encoding="utf-8") as handle:
        handle.write(textwrap.dedent("""\
            from repro.runner import WorkUnit, execute

            _CACHE = {}


            def _step(seed):
                _CACHE[seed] = seed * seed
                return _CACHE[seed]


            def sweep(seeds):
                units = [WorkUnit.of(s, _step, s) for s in seeds]
                return execute(units).values()
            """))
    result = analyze(root, baseline_path=None, select=["FID013"])
    assert [f.module for f in result.findings] == ["repro.eval.seeded_leak"]
    assert "_CACHE" in result.findings[0].message


def test_runtime_differential_shard_global_is_silently_dropped(tmp_path):
    # The dynamic counterpart of FID013: run the same leaky shard
    # function serially and under jobs=2.  The *returned* values merge
    # identically, but the module-global accumulator only fills in the
    # serial run — worker-process state never comes home.
    from repro.runner import WorkUnit, execute

    mod_dir = tmp_path / "leakymod_pkg"
    mod_dir.mkdir()
    (mod_dir / "leakymod.py").write_text(textwrap.dedent("""\
        RESULTS = []


        def leaky(seed):
            RESULTS.append(seed * 3)
            return seed * 3
        """))
    sys.path.insert(0, str(mod_dir))
    try:
        leakymod = importlib.import_module("leakymod")
        seeds = [1, 2, 3, 4]

        serial = execute(
            [WorkUnit.of(s, leakymod.leaky, s) for s in seeds], jobs=1)
        assert serial.values() == [3, 6, 9, 12]
        assert leakymod.RESULTS == [3, 6, 9, 12]

        leakymod.RESULTS.clear()
        parallel = execute(
            [WorkUnit.of(s, leakymod.leaky, s) for s in seeds], jobs=2)
        assert parallel.values() == [3, 6, 9, 12]   # merge looks fine...
        assert leakymod.RESULTS == []               # ...the state is gone
    finally:
        sys.path.remove(str(mod_dir))
        sys.modules.pop("leakymod", None)


# ------------------------------------------------------- state inventory

def test_state_registry_covers_every_scoped_mutable():
    from repro.analysis.rules.state_inventory import inventory
    registered, unregistered, stale = inventory(Project.load(SRC_ROOT))
    assert not unregistered
    assert not stale
    assert len(registered) == len(REGISTRY)
    classifications = {(e["module"], e["name"]): e["classification"]
                       for e in registered}
    assert classifications[
        ("repro.common.crypto", "_line_cache")] == "derived-cache"
    assert classifications[
        ("repro.common.crypto", "_key_invalidations")] == "counters"
    assert classifications[
        ("repro.common.types", "PRIV_OPCODES")] == "constant"


def test_state_report_cli_artifact(tmp_path, capsys):
    report_path = str(tmp_path / "state.json")
    assert main(["--root", SRC_ROOT, "--state-report", report_path]) == 0
    capsys.readouterr()
    with open(report_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["schema"] == "fidelint-state-report/1"
    assert payload["counts"]["unregistered"] == 0
    assert payload["counts"]["stale"] == 0
    assert payload["counts"]["registered"] == len(REGISTRY)
    resets = {e["name"]: e["reset"] for e in payload["registered"]
              if e["module"] == "repro.common.crypto"}
    assert resets["_midstate_cache"] == "clear_keystream_cache"


def test_state_report_fails_on_unregistered_state(tmp_path, capsys):
    # The fixture tree carries the deliberately anonymous _TLB_SCRATCH.
    report_path = str(tmp_path / "state.json")
    assert main(["--root", FIXTURE_ROOT,
                 "--state-report", report_path]) == 1
    capsys.readouterr()
    with open(report_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    names = {(e["module"], e["name"]) for e in payload["unregistered"]}
    assert ("repro.hw.bad_snapshot_state", "_TLB_SCRATCH") in names


# ------------------------------------------------------- --jobs determinism

def test_jobs_digest_matches_serial_on_fixture_tree():
    serial = analyze(FIXTURE_ROOT, baseline_path=None)
    sharded = analyze(FIXTURE_ROOT, baseline_path=None, jobs=2)
    assert findings_digest(serial) == findings_digest(sharded)
    assert serial.to_dict() == sharded.to_dict()


def test_jobs_digest_matches_serial_under_select():
    serial = analyze(FIXTURE_ROOT, baseline_path=None,
                     select=["FID013", "FID014", "FID015"])
    sharded = analyze(FIXTURE_ROOT, baseline_path=None,
                      select=["FID013", "FID014", "FID015"], jobs=3)
    assert findings_digest(serial) == findings_digest(sharded)


def test_fidelints_own_worker_passes_its_own_purity_rule():
    # Dogfood: the engine submits _analyze_worker through WorkUnit, so
    # FID013 audits fidelint itself; the effect summary of the worker
    # must be free of global writes and ambient nondeterminism.
    effects = Project.load(SRC_ROOT).dataflow.effects
    summary = effects["repro.analysis.engine:_analyze_worker"]
    assert not summary.writes_global()
    assert not summary.unseeded_rng
