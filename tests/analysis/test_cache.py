"""The incremental analysis cache: soundness, byte-identity, stats.

The contract under test is the strongest one the engine makes: with a
``cache_dir``, *any* sequence of edits and re-runs produces findings
byte-identical to a cold, uncached run over the current tree — the
cache is a pure accelerator, never an approximation.
"""

import json
import os
import shutil
import textwrap

from repro.analysis import analyze, findings_digest
from repro.analysis.cache import AnalysisCache, environment_fingerprint
from repro.analysis.cli import main
from repro.analysis.project import Project

FIXTURE_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "fixture_src")
REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _fixture_copy(tmp_path):
    root = str(tmp_path / "src")
    shutil.copytree(FIXTURE_ROOT, root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return root


def _write(root, module_rel, source):
    path = os.path.join(root, "repro", module_rel)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(textwrap.dedent(source))
    return path


# ------------------------------------------------------------ cold vs warm

def test_warm_run_is_byte_identical_and_fully_served(tmp_path):
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")

    cold = analyze(root, baseline_path=None, cache_dir=cache_dir)
    plain = analyze(root, baseline_path=None)
    warm = analyze(root, baseline_path=None, cache_dir=cache_dir)

    assert cold.to_dict() == plain.to_dict() == warm.to_dict()
    assert findings_digest(cold) == findings_digest(plain) \
        == findings_digest(warm)

    assert cold.cache_stats["entry_hits"] == 0
    assert cold.cache_stats["entry_misses"] == cold.modules_scanned
    assert cold.cache_stats["graph_misses"] == 1
    assert warm.cache_stats["entry_hits"] == warm.modules_scanned
    assert warm.cache_stats["entry_misses"] == 0
    assert warm.cache_stats["graph_hits"] == 1
    assert warm.cache_stats["modules_reanalyzed"] == 0
    assert plain.cache_stats is None


def test_jobs_with_cache_match_serial_and_uncached(tmp_path):
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")
    plain = analyze(root, baseline_path=None)
    cold = analyze(root, baseline_path=None, cache_dir=cache_dir,
                   jobs=3)
    warm = analyze(root, baseline_path=None, cache_dir=cache_dir,
                   jobs=3)
    assert findings_digest(plain) == findings_digest(cold) \
        == findings_digest(warm)
    assert warm.cache_stats["entry_misses"] == 0
    assert warm.cache_stats["modules_reanalyzed"] == 0


# ---------------------------------------------------------- edit soundness

def test_cross_module_edit_invalidates_the_dependent(tmp_path):
    """The decisive soundness case: the *unchanged* consumer module's
    finding must flip when only its helper module is edited — its key
    covers the helper through the dependency closure."""
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")
    _write(root, "sev/cachehelper.py", """\
        def unwrap_guest_blob(crypto, key, blob):
            return crypto.xex_decrypt(key, b"t", blob)
        """)
    _write(root, "sev/cacheconsumer.py", """\
        from repro.sev.cachehelper import unwrap_guest_blob


        def publish(crypto, wire, key, blob):
            wire.send(unwrap_guest_blob(crypto, key, blob))
        """)

    first = analyze(root, baseline_path=None, cache_dir=cache_dir)
    leaks = [f for f in first.findings
             if f.module == "repro.sev.cacheconsumer"
             and f.rule_id == "FID010"]
    assert leaks, "seed expectation: the consumer leaks"

    # fix the helper only; the consumer file is untouched
    _write(root, "sev/cachehelper.py", """\
        def unwrap_guest_blob(crypto, key, blob):
            plain = crypto.xex_decrypt(key, b"t", blob)
            return crypto.xex_encrypt(key, b"t", plain)
        """)
    second = analyze(root, baseline_path=None, cache_dir=cache_dir)
    assert not [f for f in second.findings
                if f.module == "repro.sev.cacheconsumer"
                and f.rule_id == "FID010"]
    # and the consumer was re-analyzed, not served stale
    assert second.cache_stats["modules_reanalyzed"] >= 2
    assert second.cache_stats["invalidations"] >= 1
    assert second.to_dict() == analyze(root, baseline_path=None).to_dict()


def test_one_module_edit_on_live_tree_reanalyzes_at_most_ten_percent(
        tmp_path):
    """The headline incremental bound from the issue: a minimal edit
    re-analyzes <= 10% of the live tree, byte-identical findings."""
    from repro.analysis.bench import quietest_module
    root = str(tmp_path / "src")
    shutil.copytree(os.path.join(REPO_ROOT, "src"), root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    cache_dir = str(tmp_path / "cache")

    cold = analyze(root, baseline_path=None, cache_dir=cache_dir)
    project = Project.load(root)
    target = quietest_module(project)
    with open(project.modules[target].path, "a",
              encoding="utf-8") as handle:
        handle.write("\n# incremental-test touch\n")

    changed = analyze(root, baseline_path=None, cache_dir=cache_dir)
    fraction = changed.cache_stats["modules_reanalyzed"] / \
        changed.modules_scanned
    assert fraction <= 0.10, changed.cache_stats
    assert changed.cache_stats["entry_hits"] > 0
    assert changed.to_dict() == analyze(root, baseline_path=None).to_dict()
    assert findings_digest(cold) != ""  # cold result still valid


# ------------------------------------------------------------- fail closed

def test_corrupt_entries_read_as_misses_not_stale_data(tmp_path):
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")
    cold = analyze(root, baseline_path=None, cache_dir=cache_dir)

    entries_dir = os.path.join(cache_dir, "entries")
    victims = 0
    for dirpath, _dirnames, filenames in os.walk(entries_dir):
        for filename in sorted(filenames):
            path = os.path.join(dirpath, filename)
            if victims % 2 == 0:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write('{"schema": "fidelint-cache-entry/1"')
            victims += 1

    warm = analyze(root, baseline_path=None, cache_dir=cache_dir)
    assert warm.to_dict() == cold.to_dict()
    assert warm.cache_stats["entry_misses"] > 0
    assert warm.cache_stats["entry_hits"] > 0
    # the repaired entries serve a fully-warm third run
    third = analyze(root, baseline_path=None, cache_dir=cache_dir)
    assert third.cache_stats["entry_misses"] == 0


def test_mismatched_key_or_module_is_rejected(tmp_path):
    cache = AnalysisCache(str(tmp_path / "cache"))
    cache.store_entry("a" * 64, "repro.mod", [])
    # correct digest but wrong module name
    assert cache.load_entry("a" * 64, "repro.other", False, False) is None
    # correct module but the payload's embedded key disagrees (an
    # entry copied to the wrong address must not resolve)
    path = cache._object_path("entries", "b" * 64)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    shutil.copy(cache._object_path("entries", "a" * 64), path)
    assert cache.load_entry("b" * 64, "repro.mod", False, False) is None
    # the well-formed entry still loads
    assert cache.load_entry("a" * 64, "repro.mod", False, False) \
        is not None


# -------------------------------------------------- environment fingerprint

def test_pyproject_change_invalidates_every_entry(tmp_path):
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")
    analyze(root, baseline_path=None, cache_dir=cache_dir)
    warm = analyze(root, baseline_path=None, cache_dir=cache_dir)
    assert warm.cache_stats["entry_misses"] == 0

    with open(str(tmp_path / "pyproject.toml"), "w",
              encoding="utf-8") as handle:
        handle.write("[tool.fidelint]\n")
    bumped = analyze(root, baseline_path=None, cache_dir=cache_dir)
    assert bumped.cache_stats["entry_hits"] == 0
    assert bumped.cache_stats["entry_misses"] == bumped.modules_scanned
    assert bumped.to_dict() == warm.to_dict()


def test_environment_fingerprint_covers_select_and_rule_code(tmp_path):
    root = _fixture_copy(tmp_path)
    base = environment_fingerprint(root, None)
    assert environment_fingerprint(root, None) == base
    assert environment_fingerprint(root, ("FID001",)) != base


def test_select_uses_distinct_keys(tmp_path):
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")
    full = analyze(root, baseline_path=None, cache_dir=cache_dir)
    narrow = analyze(root, baseline_path=None, cache_dir=cache_dir,
                     select=["FID006"])
    # the narrow run may not reuse full-run entries (different rule set)
    assert narrow.cache_stats["entry_hits"] == 0
    warm_narrow = analyze(root, baseline_path=None, cache_dir=cache_dir,
                          select=["FID006"])
    assert warm_narrow.cache_stats["entry_misses"] == 0
    assert warm_narrow.to_dict() == narrow.to_dict()
    assert full.to_dict() != narrow.to_dict()


# ------------------------------------------------- mid-process invalidation

def test_reload_module_invalidates_shared_dataflow_state(tmp_path):
    """Satellite regression: analyzing the *same* Project twice around
    an on-disk rewrite must re-derive summaries — the first run's
    fixpoint said the helper returns secrets; the second must not."""
    root = _fixture_copy(tmp_path)
    _write(root, "sev/reloaded.py", """\
        def _unwrap(crypto, key, blob):
            return crypto.xex_decrypt(key, b"t", blob)


        def publish(crypto, wire, key, blob):
            wire.send(_unwrap(crypto, key, blob))
        """)
    project = Project.load(root)
    first = analyze(project, baseline_path=None, select=["FID010"])
    assert "repro.sev.reloaded" in {f.module for f in first.findings}

    _write(root, "sev/reloaded.py", """\
        def _unwrap(crypto, key, blob):
            plain = crypto.xex_decrypt(key, b"t", blob)
            return crypto.xex_encrypt(key, b"t", plain)


        def publish(crypto, wire, key, blob):
            wire.send(_unwrap(crypto, key, blob))
        """)
    assert project.reload_module("repro.sev.reloaded") is True
    # identical content reload is a no-op
    assert project.reload_module("repro.sev.reloaded") is False
    second = analyze(project, baseline_path=None, select=["FID010"])
    assert "repro.sev.reloaded" not in {
        f.module for f in second.findings}


# ----------------------------------------------------------------- the CLI

def test_cli_reports_cache_stats_outside_the_digest(tmp_path, capsys):
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")

    main(["--root", root, "--no-baseline", "--format", "json",
          "--cache-dir", cache_dir])
    cold_payload = json.loads(capsys.readouterr().out)
    main(["--root", root, "--no-baseline", "--format", "json",
          "--cache-dir", cache_dir])
    warm_payload = json.loads(capsys.readouterr().out)
    main(["--root", root, "--no-baseline", "--format", "json"])
    plain_payload = json.loads(capsys.readouterr().out)

    assert "cache_stats" not in plain_payload
    assert cold_payload["cache_stats"]["entry_misses"] > 0
    assert warm_payload["cache_stats"]["entry_hits"] > 0
    # stats differ between cold and warm, the digest must not
    assert cold_payload["digest"] == warm_payload["digest"] \
        == plain_payload["digest"]
    stripped = {key: value for key, value in cold_payload.items()
                if key != "cache_stats"}
    assert stripped == {key: value for key, value in plain_payload.items()}


def test_cli_human_output_mentions_cache_counters(tmp_path, capsys):
    root = _fixture_copy(tmp_path)
    cache_dir = str(tmp_path / "cache")
    main(["--root", root, "--no-baseline", "--cache-dir", cache_dir])
    capsys.readouterr()
    main(["--root", root, "--no-baseline", "--cache-dir", cache_dir])
    out = capsys.readouterr().out
    assert "fidelint: cache:" in out
    assert "0 miss(es)" in out
