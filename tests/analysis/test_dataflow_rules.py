"""End-to-end tests for the flow-sensitive rules (FID010–FID012).

The headline test seeds the exact bug class the syntactic rules cannot
see — an ``_exit`` moved off one path of a live gate — and checks that
FID011 catches it while FID002/FID004 stay green.  The rest covers
taint through helper calls, gates opened inside handlers, the shared
CFG cache and the parse-each-module-once guarantee.
"""

import ast
import os
import shutil
import textwrap

from repro.analysis import analyze
from repro.analysis.project import Project

FIXTURE_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "fixture_src")
REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _make_tree(tmp_path, module_rel, source):
    root = tmp_path / "src"
    pkg = root / "repro"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "__init__.py").write_text("")
    target = pkg / module_rel
    target.parent.mkdir(parents=True, exist_ok=True)
    walk = pkg
    for part in module_rel.split("/")[:-1]:
        walk = walk / part
        init = walk / "__init__.py"
        if not init.exists():
            init.write_text("")
    target.write_text(textwrap.dedent(source))
    return str(root)


def _copy_live_tree(tmp_path):
    live_src = os.path.join(REPO_ROOT, "src")
    root = str(tmp_path / "src")
    shutil.copytree(
        os.path.join(live_src, "repro"), os.path.join(root, "repro"),
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"))
    return root


# ------------------------------------------------ the seeded live-tree bug

def test_fid011_catches_exit_moved_off_the_normal_path(tmp_path):
    """Move ``_exit`` from the ``finally`` of a live gate onto one
    handler only: the call is still textually present, so FID002 (who
    calls the mutators) and FID004 (is there a charge in the body) both
    still pass — only the path-complete typestate check fails."""
    root = _copy_live_tree(tmp_path)
    gates_py = os.path.join(root, "repro", "core", "gates.py")
    with open(gates_py, "r", encoding="utf-8") as handle:
        source = handle.read()
    balanced = ('        finally:\n'
                '            self._exit("cr3-switch")')
    seeded = ('        except GateViolation:\n'
              '            self._exit("cr3-switch")\n'
              '            raise')
    assert balanced in source, "seed target changed; update the test"
    with open(gates_py, "w", encoding="utf-8") as handle:
        handle.write(source.replace(balanced, seeded))

    syntactic = analyze(root, baseline_path=None,
                        select=["FID002", "FID004"])
    assert not syntactic.findings, "\n".join(
        f.render() for f in syntactic.findings)

    flow = analyze(root, baseline_path=None, select=["FID011"])
    assert [f.module for f in flow.findings] == ["repro.core.gates"]
    assert "cr3-switch" in flow.findings[0].message


def test_live_tree_is_clean_under_the_dataflow_rules():
    result = analyze(os.path.join(REPO_ROOT, "src"), baseline_path=None,
                     select=["FID010", "FID011", "FID012"])
    assert not result.findings, "\n".join(
        f.render() for f in result.findings)
    # exactly one justified inline suppression: the DEC instruction's
    # below-the-boundary DMA write in repro.core.hwext
    assert [f.module for f in result.suppressed] == ["repro.core.hwext"]


# ------------------------------------------------------------------- FID010

def test_fid010_tracks_taint_through_a_helper_call(tmp_path):
    root = _make_tree(tmp_path, "sev/helper_leak.py", """\
        def _unwrap(crypto, key, blob):
            return crypto.xex_decrypt(key, b"t", blob)


        def publish(crypto, wire, key, blob):
            plain = _unwrap(crypto, key, blob)
            wire.send(plain)
        """)
    result = analyze(root, baseline_path=None, select=["FID010"])
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.module == "repro.sev.helper_leak"
    assert "_unwrap" in finding.message


def test_fid010_sanctioned_flow_is_clean(tmp_path):
    root = _make_tree(tmp_path, "sev/helper_ok.py", """\
        def _unwrap(crypto, key, blob):
            return crypto.xex_decrypt(key, b"t", blob)


        def publish(crypto, wire, key, wrap_key, blob):
            plain = _unwrap(crypto, key, blob)
            wire.send(crypto.xex_encrypt(wrap_key, b"t", plain))
        """)
    result = analyze(root, baseline_path=None, select=["FID010"])
    assert not result.findings, "\n".join(
        f.render() for f in result.findings)


def test_fid010_branch_merges_keep_the_tainted_path(tmp_path):
    root = _make_tree(tmp_path, "sev/branchy.py", """\
        def stage(crypto, memory, key, blob, fast):
            data = b""
            if fast:
                data = crypto.xex_decrypt(key, b"t", blob)
            memory.write(0x1000, data)
        """)
    result = analyze(root, baseline_path=None, select=["FID010"])
    assert len(result.findings) == 1


def test_fid010_reassignment_kills_taint(tmp_path):
    root = _make_tree(tmp_path, "sev/rebound.py", """\
        def stage(crypto, memory, key, blob):
            data = crypto.xex_decrypt(key, b"t", blob)
            data = b"ciphertext-placeholder"
            memory.write(0x1000, data)
        """)
    result = analyze(root, baseline_path=None, select=["FID010"])
    assert not result.findings


# ------------------------------------------------------------------- FID011

def test_fid011_gate_opened_only_in_a_handler(tmp_path):
    root = _make_tree(tmp_path, "core/handler_gate.py", """\
        def recover(gatekeeper, table):
            try:
                table.apply()
            except ValueError:
                gatekeeper._enter("type3")
                table.fix()
        """)
    result = analyze(root, baseline_path=None, select=["FID011"])
    assert len(result.findings) == 1
    assert "type3" in result.findings[0].message


def test_fid011_with_managed_gate_is_balanced_by_construction(tmp_path):
    root = _make_tree(tmp_path, "core/with_gate.py", """\
        def update(gatekeeper, table, key, value):
            with gatekeeper.type1():
                table.apply(key, value)
        """)
    result = analyze(root, baseline_path=None, select=["FID011"])
    assert not result.findings


def test_fid011_obligation_passes_through_an_opening_helper(tmp_path):
    root = _make_tree(tmp_path, "core/split_gate.py", """\
        def _arm(gatekeeper):
            gatekeeper._enter("type1")


        def update(gatekeeper, table):
            _arm(gatekeeper)
            table.apply()
        """)
    result = analyze(root, baseline_path=None, select=["FID011"])
    # _arm leaves its gate open by design (summary: opens_gate), so the
    # caller inherits the unmet obligation: one finding per function
    modules = sorted(f.module for f in result.findings)
    assert modules == ["repro.core.split_gate", "repro.core.split_gate"]


# ------------------------------------------------------------------- FID012

def test_fid012_raise_paths_are_free(tmp_path):
    root = _make_tree(tmp_path, "hw/guarded.py", """\
        class Dev:
            def poke(self, key):
                if key is None:
                    raise ValueError("no key")
                self.cycles.charge(10, "poke")
                self._state[key] = 1
        """)
    result = analyze(root, baseline_path=None, select=["FID012"])
    assert not result.findings


def test_fid012_fast_path_store_without_charge_fires(tmp_path):
    root = _make_tree(tmp_path, "hw/fastpath.py", """\
        class Dev:
            def poke(self, key):
                if key in self._state:
                    self._state[key] += 1
                    return
                self.cycles.charge(10, "poke")
                self._state[key] = 1
        """)
    result = analyze(root, baseline_path=None, select=["FID012"])
    assert len(result.findings) == 1
    assert "Dev.poke" in result.findings[0].message


# ------------------------------------------------------- shared caches

def test_each_module_is_parsed_exactly_once(monkeypatch):
    real_parse = ast.parse
    counts = {}

    def counting_parse(source, filename="<unknown>", *args, **kwargs):
        counts[filename] = counts.get(filename, 0) + 1
        return real_parse(source, filename, *args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    result = analyze(FIXTURE_ROOT, baseline_path=None)
    assert result.modules_scanned == len(counts)
    assert all(count == 1 for count in counts.values()), counts


def test_cfgs_are_built_once_and_shared_across_rules_and_runs():
    project = Project.load(FIXTURE_ROOT)
    analyze(project, baseline_path=None)
    stats = project.dataflow.stats()
    assert stats["cfg_builds"] > 0
    # the summary fixpoint builds each CFG; the three rules then reuse
    assert stats["cfg_hits"] > 0

    analyze(project, baseline_path=None)
    again = project.dataflow.stats()
    assert again["cfg_builds"] == stats["cfg_builds"]
    assert again["cfg_hits"] > stats["cfg_hits"]


def test_dataflow_layer_is_lazy_for_syntactic_runs():
    project = Project.load(FIXTURE_ROOT)
    analyze(project, baseline_path=None, select=["FID006"])
    assert project._dataflow is None
