"""Fixture: mutable default argument (exactly one FID006)."""


def remember(item, bucket=[]):
    bucket.append(item)
    return bucket
