"""Fixture: bare except swallowing everything (exactly one FID005)."""


def swallow(action):
    try:
        action()
    except:  # noqa: E722
        return None
