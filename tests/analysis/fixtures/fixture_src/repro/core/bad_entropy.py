"""Fixture: laundered ambient entropy (exactly one FID015).

Every individual line here is FID007-clean: ``os.urandom`` is only
*referenced* (never spelled as a call), and ``random.Random(seed)``
carries an explicit seed argument.  Only the flow analysis sees that
the "seed" is eight bytes of ambient entropy that travelled through an
alias and a helper return.
"""

import os
import random


def _boot_entropy():
    reader = os.urandom
    return reader(8)


def make_rng():
    seed = int.from_bytes(_boot_entropy(), "big")
    return random.Random(seed)
