"""Known-bad FID011 fixture: the gate survives the except path.

``_exit`` sits after the ``try`` statement, so the re-raise inside the
handler (and any non-ValueError escape from the body) leaves the gate
open.  Syntactically an ``_exit`` is present — FID002-style call-site
matching is satisfied — which is exactly the bug class only the
path-complete typestate check can see.
"""


def risky_update(gatekeeper, table, key, value):
    gatekeeper._enter("type1")
    try:
        table.apply(key, value)
    except ValueError:
        raise
    gatekeeper._exit("type1")
