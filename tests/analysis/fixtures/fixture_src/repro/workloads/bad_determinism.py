"""Fixture: ambient randomness, even in workloads (exactly one FID007)."""

import random


def jitter():
    return random.random()
