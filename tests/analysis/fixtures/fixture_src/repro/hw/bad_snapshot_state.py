"""Fixture: anonymous module-global mutable (exactly one FID014).

``_TLB_SCRATCH`` is module-level mutable state in a snapshot-scoped
package with no :mod:`repro.analysis.state_registry` entry — restore
could never know to rebuild or drop it.
"""

_TLB_SCRATCH = {}


def remember(pfn, entry):
    _TLB_SCRATCH[pfn] = entry
    return entry
