"""Fixture: hardware importing Fidelius core (exactly one FID003)."""

from repro.core import gates  # noqa: F401
