"""Known-bad FID012 fixture: the hit path mutates state for free.

The method *does* charge the cycle model — FID004's anywhere-in-body
check passes — but only on the miss path; the hit path stores into the
device state without pricing the write.
"""


class BadPrefetcher:
    def __init__(self, cycles):
        self.cycles = cycles
        self._lines = {}

    def fill(self, pa, line):
        if pa in self._lines:
            self._lines[pa] = line
            return
        self.cycles.charge(200, "prefetch-fill")
        self._lines[pa] = line
