"""Fixture: un-priced state mutation in hardware (exactly one FID004)."""


class RogueDevice:
    def __init__(self):
        self.writes = 0

    def poke(self, value):
        self.writes += 1
        return value
