"""Known-bad FID010 fixture: decrypted guest bytes staged to host DRAM.

The leak goes *through a helper call*: the function holding the sink
never calls a source itself, so only the summary-aware flow analysis
(not grep) can connect the two.
"""


def _fetch_plaintext(memctrl, pa):
    """Pulls one protected block from below the C-bit boundary."""
    return memctrl.read(pa, 64, c_bit=True)


def stage_for_migration(memctrl, memory, pa):
    block = _fetch_plaintext(memctrl, pa)
    staged = block[:32]
    memory.write(0x5000, staged)
    return len(staged)
