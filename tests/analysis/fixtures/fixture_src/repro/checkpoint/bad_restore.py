"""FID016 fixture: a restore that never resets the derived caches."""


def rebuild_graph(manifest, store):
    return store.get(manifest["graph"])


def restore(manifest, store):
    target = rebuild_graph(manifest, store)
    return target
