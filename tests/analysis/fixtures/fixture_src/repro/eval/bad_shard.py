"""Fixture: shard function mutating a module global (exactly one FID013).

``_leaky`` accumulates into ``_RESULTS`` — worker-process state the
parallel merge silently drops.  The module lives in ``repro.eval`` so
the unregistered binding itself is outside FID014's hw/sev/core/common
scope: only the shard-purity rule fires, at the WorkUnit site.
"""

from repro.runner import WorkUnit, execute

_RESULTS = []


def _leaky(seed):
    _RESULTS.append(seed * 3)
    return seed


def sweep(seeds):
    units = [WorkUnit.of(seed, _leaky, seed) for seed in seeds]
    return execute(units), _RESULTS
