"""Fixture: ungated PIT mutation from eval (exactly one FID002)."""


def sneak_classify(fid, pfn, owner, usage):
    fid.pit.classify(pfn, owner, usage)
