"""Fixture: product code peeking at the fault-injector marker (FID009).

Uses the attribute form (not an import of repro.faults) so FID003's
layering check stays quiet and only the containment rule fires.
"""


def degrade_if_injected(fidelius):
    if fidelius._fault_injector is not None:
        return "observed"
    return "normal"
