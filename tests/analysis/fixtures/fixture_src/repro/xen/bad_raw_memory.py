"""Fixture: raw frame access from the xen layer (exactly one FID001)."""


def steal_frame(machine, pfn):
    return machine.memory.read_frame(pfn)
