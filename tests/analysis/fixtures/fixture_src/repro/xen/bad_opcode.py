"""Fixture: a privileged encoding spelled in bytes (exactly one FID008).

The literal embeds the mov-cr0 encoding at an unaligned offset inside
benign filler, the way a gadget would hide it.
"""

IMPLANT = b"\x90\x90\x0f\x22\xc0\x90"
