"""The dependency-impact engine: graph edges, closures, diff
classification and impact-keyed test selection."""

import os
import shutil
import subprocess
import textwrap

import pytest

from repro.analysis.impact import (
    ImpactGraph, assess, git_changed_paths, impacted_tests,
    build_test_import_map)
from repro.analysis.project import Project

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _make_repo(tmp_path, modules, tests=None):
    """A synthetic repo: src/repro/<rel>.py modules + tests/<rel>.py."""
    src = tmp_path / "src"
    pkg = src / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    for rel, source in modules.items():
        target = pkg / rel
        walk = pkg
        for part in rel.split("/")[:-1]:
            walk = walk / part
            walk.mkdir(exist_ok=True)
            init = walk / "__init__.py"
            if not init.exists():
                init.write_text("")
        target.write_text(textwrap.dedent(source))
    for rel, source in (tests or {}).items():
        target = tmp_path / "tests" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return str(tmp_path), str(src)


def _graph(src):
    project = Project.load(src)
    return project, ImpactGraph.build(project)


# ------------------------------------------------------------------- edges

def test_import_and_call_edges_reach_dependents(tmp_path):
    repo, src = _make_repo(tmp_path, {
        "base.py": """\
            def helper():
                return 1
            """,
        "mid.py": """\
            from repro.base import helper


            def wrap():
                return helper()
            """,
        "top.py": """\
            import repro.mid


            def outer():
                return repro.mid.wrap()
            """,
        "island.py": """\
            def alone():
                return 0
            """,
    })
    project, graph = _graph(src)
    closure = graph.closure("repro.top")
    assert "repro.mid" in closure and "repro.base" in closure
    reverse = graph.reverse_closure(["repro.base"])
    assert {"repro.base", "repro.mid", "repro.top"} <= reverse
    assert "repro.island" not in reverse


def test_dispatch_table_target_reaches_workunit_caller(tmp_path):
    """The satellite case from the issue: an edit inside a
    dispatch-table target must impact the module submitting the
    dispatching function as a WorkUnit."""
    repo, src = _make_repo(tmp_path, {
        "handlers.py": """\
            def on_read(x):
                return x


            def on_write(x):
                return -x
            """,
        "dispatcher.py": """\
            from repro.handlers import on_read, on_write

            TABLE = {
                "read": on_read,
                "write": on_write,
            }


            def drive(kind, x):
                return TABLE[kind](x)
            """,
        "submit.py": """\
            from repro.runner.plan import WorkUnit

            from repro.dispatcher import drive


            def plan(kind, x):
                return WorkUnit.of(("k", 0), drive, kind, x)
            """,
    })
    project, graph = _graph(src)
    reverse = graph.reverse_closure(["repro.handlers"])
    assert "repro.dispatcher" in reverse
    assert "repro.submit" in reverse
    # and the WorkUnit fn-target edge exists even without the import
    assert "repro.dispatcher" in graph.deps["repro.submit"]


def test_module_key_changes_with_any_closure_member(tmp_path):
    repo, src = _make_repo(tmp_path, {
        "base.py": "def helper():\n    return 1\n",
        "top.py": "from repro.base import helper\n\n\n"
                  "def outer():\n    return helper()\n",
    })
    project, graph = _graph(src)
    key_before = graph.module_key("repro.top", "salt")
    assert key_before == graph.module_key("repro.top", "salt")
    assert key_before != graph.module_key("repro.top", "other-salt")

    with open(os.path.join(src, "repro", "base.py"), "a",
              encoding="utf-8") as handle:
        handle.write("\n# tweak\n")
    project2, graph2 = _graph(src)
    assert graph2.module_key("repro.top", "salt") != key_before


def test_phantom_import_perturbs_key_and_reverse_closure(tmp_path):
    """A module importing a not-yet-existing module must miss when the
    target appears — and the importer must be in the deleted target's
    reverse closure after a deletion."""
    repo, src = _make_repo(tmp_path, {
        "user.py": "import repro.ghost\n",
    })
    project, graph = _graph(src)
    assert "repro.ghost" in graph.deps["repro.user"]
    key_absent = graph.module_key("repro.user", "salt")
    assert "repro.user" in graph.reverse_closure(["repro.ghost"])

    with open(os.path.join(src, "repro", "ghost.py"), "w",
              encoding="utf-8") as handle:
        handle.write("VALUE = 1\n")
    project2, graph2 = _graph(src)
    assert graph2.module_key("repro.user", "salt") != key_absent


def test_graph_survives_serialization(tmp_path):
    repo, src = _make_repo(tmp_path, {
        "base.py": "def helper():\n    return 1\n",
        "top.py": "from repro.base import helper\n",
    })
    project, graph = _graph(src)
    clone = ImpactGraph.from_dict(project, graph.to_dict())
    assert clone.deps == graph.deps
    assert clone.module_key("repro.top", "s") == \
        graph.module_key("repro.top", "s")


# --------------------------------------------------------------- assess()

MODULES = {
    "base.py": "def helper():\n    return 1\n",
    "top.py": "from repro.base import helper\n\n\n"
              "def outer():\n    return helper()\n",
    "island.py": "def alone():\n    return 0\n",
}

TESTS = {
    "test_top.py": "import repro.top\n",
    "test_island.py": "from repro import island\n",
    "test_docs_consistency.py": "import repro\n",
    "analysis/conftest.py": "import repro.base\n",
    "analysis/test_deep.py": "def test_nothing():\n    pass\n",
    "analysis/fixtures/helper_fixture.py": "X = 1\n",
}


def test_assess_renamed_module(tmp_path):
    repo, src = _make_repo(tmp_path, MODULES, TESTS)
    project, graph = _graph(src)
    # simulate: base.py renamed to base2.py (diff lists both paths;
    # --no-renames keeps them as delete + add)
    impact = assess(project, graph,
                    ["src/repro/base.py", "src/repro/base2.py"], repo)
    assert not impact.force_full
    assert impact.changed_modules == ["repro.base", "repro.base2"]
    assert "repro.top" in impact.impacted_modules
    assert "repro.island" not in impact.impacted_modules
    # tests importing the old name, and the conftest-covered subtree
    assert "tests/test_top.py" in impact.impacted_tests
    assert "tests/analysis/test_deep.py" in impact.impacted_tests
    assert "tests/test_island.py" not in impact.impacted_tests


def test_assess_deleted_module(tmp_path):
    repo, src = _make_repo(tmp_path, MODULES, TESTS)
    os.unlink(os.path.join(src, "repro", "base.py"))
    project, graph = _graph(src)
    impact = assess(project, graph, ["src/repro/base.py"], repo)
    assert impact.changed_modules == ["repro.base"]
    # the deleted name stays in the reachable name set (phantom edge),
    # the existing-module list contains only live modules
    assert "repro.base" in impact.impacted_names
    assert "repro.base" not in impact.impacted_modules
    assert "repro.top" in impact.impacted_modules


def test_assess_fixture_only_change_selects_subtree_tests(tmp_path):
    repo, src = _make_repo(tmp_path, MODULES, TESTS)
    project, graph = _graph(src)
    impact = assess(
        project, graph,
        ["tests/analysis/fixtures/helper_fixture.py"], repo)
    assert not impact.force_full
    assert impact.impacted_modules == []
    assert impact.impacted_tests == ["tests/analysis/test_deep.py"]


def test_assess_pyproject_and_rule_code_force_full(tmp_path):
    repo, src = _make_repo(tmp_path, MODULES, TESTS)
    project, graph = _graph(src)
    for path in ("pyproject.toml",
                 "src/repro/analysis/rules/layering.py",
                 "src/repro/common/state_registry.py"):
        impact = assess(project, graph, [path], repo)
        assert impact.force_full, path
        assert set(impact.impacted_modules) == set(project.modules)
        # every test file is selected on a forced full run
        assert impact.impacted_tests == sorted(
            "tests/" + rel for rel in TESTS
            if rel.split("/")[-1].startswith("test_"))


def test_assess_doc_change_selects_docs_consistency(tmp_path):
    repo, src = _make_repo(tmp_path, MODULES, TESTS)
    project, graph = _graph(src)
    for path in ("README.md", "docs/static_analysis.md"):
        impact = assess(project, graph, [path], repo)
        assert impact.impacted_tests == \
            ["tests/test_docs_consistency.py"], path
        assert impact.impacted_modules == []


def test_assess_empty_diff_is_empty(tmp_path):
    repo, src = _make_repo(tmp_path, MODULES, TESTS)
    project, graph = _graph(src)
    impact = assess(project, graph, [], repo)
    assert not impact.force_full
    assert impact.impacted_modules == []
    assert impact.impacted_tests == []


def test_test_import_map_sees_from_imports_and_conftests(tmp_path):
    repo, src = _make_repo(tmp_path, MODULES, TESTS)
    files, imports, conftests = build_test_import_map(repo)
    assert "tests/test_island.py" in files
    assert "repro.island" in imports["tests/test_island.py"]
    assert "repro.base" in conftests["tests/analysis"]
    # fixture helpers are not test files
    assert "tests/analysis/fixtures/helper_fixture.py" not in files


# ------------------------------------------------------------- git + CLI

def _git_available():
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True)
    except OSError:
        return False
    return proc.returncode == 0


@pytest.mark.skipif(not _git_available(),
                    reason="repo git metadata unavailable")
def test_git_changed_paths_lists_worktree_changes(tmp_path):
    paths = git_changed_paths(REPO_ROOT, "HEAD")
    assert isinstance(paths, list)
    assert all(isinstance(p, str) for p in paths)


@pytest.mark.skipif(not _git_available(),
                    reason="repo git metadata unavailable")
def test_cli_impacted_modes_print_and_exit_zero(capsys):
    from repro.analysis.cli import main
    assert main(["--impacted-tests", "HEAD"]) == 0
    out_tests = capsys.readouterr().out
    for line in out_tests.splitlines():
        assert line.startswith("tests/")
    assert main(["--impacted-modules", "HEAD"]) == 0
    out_modules = capsys.readouterr().out
    for line in out_modules.splitlines():
        assert line == "repro" or line.startswith("repro.")
