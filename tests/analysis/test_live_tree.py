"""The committed source tree is fidelint-clean modulo the committed
baseline — the same invariant CI enforces with ``--strict``.

If this test fails you either introduced a real violation (fix it or
add a justified inline suppression) or fixed a baselined one (delete
the stale entry from ``fidelint.baseline.json``).
"""

import os

from repro.analysis import analyze

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, "fidelint.baseline.json")


def test_live_tree_is_clean_modulo_baseline():
    result = analyze(SRC_ROOT, baseline_path=BASELINE)
    assert not result.findings, "\n".join(
        f.render() for f in result.findings)
    assert not result.stale_baseline, (
        "stale baseline entries: %r" % result.stale_baseline)
    assert result.exit_code(strict=True) == 0


def test_live_tree_scans_the_whole_package():
    result = analyze(SRC_ROOT, baseline_path=BASELINE)
    assert result.rules_run == 16
    assert result.modules_scanned >= 85


def test_baseline_entries_all_match():
    # Every baseline entry corresponds to a real current finding: the
    # grandfathered set can only shrink, never silently grow stale.
    result = analyze(SRC_ROOT, baseline_path=BASELINE)
    assert len(result.baselined) >= 1
    for finding in result.baselined:
        assert finding.rule_id == "FID001"
        assert finding.module == "repro.xen.hypervisor"
