"""Each fidelint rule fires exactly once on its dedicated bad fixture.

The fixture tree under ``fixtures/fixture_src`` is a miniature ``repro``
package with one known-bad module per rule.  Every module is crafted to
trigger its own rule exactly once and no other rule at all, so the whole
tree yields exactly sixteen findings — one per rule.
"""

import os

from repro.analysis import analyze
from repro.analysis.findings import Severity

FIXTURE_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "fixture_src")

#: rule id -> (module that must trigger it, expected severity)
EXPECTED = {
    "FID001": ("repro.xen.bad_raw_memory", Severity.ERROR),
    "FID002": ("repro.eval.bad_gate", Severity.ERROR),
    "FID003": ("repro.hw.bad_layering", Severity.ERROR),
    "FID004": ("repro.hw.bad_cycles", Severity.WARNING),
    "FID005": ("repro.core.bad_except", Severity.WARNING),
    "FID006": ("repro.common.bad_mutable_default", Severity.WARNING),
    "FID007": ("repro.workloads.bad_determinism", Severity.ERROR),
    "FID008": ("repro.xen.bad_opcode", Severity.ERROR),
    "FID009": ("repro.xen.bad_fault_hook", Severity.ERROR),
    "FID010": ("repro.sev.bad_taint", Severity.ERROR),
    "FID011": ("repro.core.bad_gate_typestate", Severity.ERROR),
    "FID012": ("repro.hw.bad_path_cycles", Severity.WARNING),
    "FID013": ("repro.eval.bad_shard", Severity.ERROR),
    "FID014": ("repro.hw.bad_snapshot_state", Severity.ERROR),
    "FID015": ("repro.core.bad_entropy", Severity.ERROR),
    "FID016": ("repro.checkpoint.bad_restore", Severity.ERROR),
}


def _fixture_result():
    return analyze(FIXTURE_ROOT, baseline_path=None)


def test_fixture_tree_yields_exactly_one_finding_per_rule():
    result = _fixture_result()
    by_rule = {}
    for finding in result.findings:
        by_rule.setdefault(finding.rule_id, []).append(finding)
    assert sorted(by_rule) == sorted(EXPECTED)
    for rule_id, (module, severity) in EXPECTED.items():
        findings = by_rule[rule_id]
        assert len(findings) == 1, (
            "%s fired %d times: %r" % (rule_id, len(findings), findings))
        assert findings[0].module == module
        assert findings[0].severity is severity
    assert len(result.findings) == len(EXPECTED)
    assert not result.suppressed
    assert not result.baselined
    assert not result.stale_baseline


def test_fixture_tree_fails_even_without_strict():
    # Twelve of the sixteen rules are errors, so plain mode already fails.
    result = _fixture_result()
    assert result.error_count == 12
    assert result.warning_count == 4
    assert result.exit_code(strict=False) == 1
    assert result.exit_code(strict=True) == 1


def test_each_rule_in_isolation_via_select():
    for rule_id, (module, _severity) in EXPECTED.items():
        result = analyze(FIXTURE_ROOT, baseline_path=None, select=[rule_id])
        assert result.rules_run == 1
        assert [f.module for f in result.findings] == [module], rule_id


def test_findings_carry_line_text_and_render():
    result = _fixture_result()
    for finding in result.findings:
        assert finding.line_text, finding.rule_id
        rendered = finding.render()
        assert finding.rule_id in rendered
        assert ":%d:" % finding.line in rendered


def test_raw_memory_names_the_offending_call():
    result = analyze(FIXTURE_ROOT, baseline_path=None, select=["FID001"])
    (finding,) = result.findings
    assert "read_frame" in finding.line_text


def test_opcode_rule_catches_embedded_encoding():
    # The fixture hides the MOV-CR0 encoding inside NOP filler; matching
    # must be substring-based, not whole-literal equality.
    result = analyze(FIXTURE_ROOT, baseline_path=None, select=["FID008"])
    (finding,) = result.findings
    assert finding.module == "repro.xen.bad_opcode"
