"""Unit tests for the CFG builder and the forward solver.

These pin the structural invariants the FID010–FID012 analyses lean
on: edge kinds, the three synthetic exits, finally/with routing and
the exceptional-edge transfer split.
"""

import ast
import textwrap

from repro.analysis.dataflow.cfg import (
    BACK,
    BYPASS,
    EXC,
    NORMAL,
    build_cfg,
    calls_in,
    node_can_raise,
)
from repro.analysis.dataflow.solver import (
    ForwardAnalysis,
    fact_after,
    solve_forward,
)
from repro.analysis.dataflow.typestate import GateAnalysis


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    func = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    return build_cfg(func)


def _edges(cfg):
    return {(src, dst, kind)
            for src, edges in cfg.succs.items()
            for dst, kind in edges}


def _node_by_line(cfg, lineno):
    for node in cfg.iter_stmt_nodes():
        if node.lineno == lineno:
            return node
    raise AssertionError("no node at line %d" % lineno)


class _ReachedLines(ForwardAnalysis):
    """Which statement lines may have executed before this point."""

    def initial(self, cfg):
        return frozenset()

    def transfer(self, fact, node):
        if node.stmt is not None:
            return fact | {node.lineno}
        return fact


# ---------------------------------------------------------------- structure

def test_straight_line_reaches_exit():
    cfg = _cfg("""\
        def f(x):
            y = x
            return y
        """)
    facts = solve_forward(cfg, _ReachedLines())
    assert facts[cfg.exit] == frozenset({2, 3})
    assert cfg.raise_exit not in facts      # nothing here can raise


def test_call_gets_exc_edge_to_raise_exit():
    cfg = _cfg("""\
        def f(x):
            y = g(x)
            return y
        """)
    node = _node_by_line(cfg, 2)
    assert node_can_raise(node)
    assert (node.nid, cfg.raise_exit, EXC) in _edges(cfg)


def test_if_without_else_keeps_the_skip_path():
    cfg = _cfg("""\
        def f(x):
            if x:
                y = 1
            return x
        """)
    facts = solve_forward(cfg, _ReachedLines())
    # line 3 executes on some paths but not all: present in the union
    assert 3 in facts[cfg.exit]
    # and the return is reachable straight from the test (skip path)
    test_node = _node_by_line(cfg, 2)
    ret_node = _node_by_line(cfg, 4)
    assert (test_node.nid, ret_node.nid, NORMAL) in _edges(cfg)


def test_loop_has_back_and_bypass_edges():
    cfg = _cfg("""\
        def f(xs):
            for x in xs:
                use(x)
            return 0
        """)
    head = _node_by_line(cfg, 2)
    kinds = {kind for src, dst, kind in _edges(cfg)
             if src == head.nid or dst == head.nid}
    assert BACK in kinds
    assert BYPASS in kinds


def test_code_after_raise_is_unreachable():
    cfg = _cfg("""\
        def f():
            raise ValueError("no")
            x = 1
        """)
    facts = solve_forward(cfg, _ReachedLines())
    assert cfg.exit not in facts            # normal exit unreachable
    assert facts[cfg.raise_exit] == frozenset({2})


def test_return_routes_through_finally():
    cfg = _cfg("""\
        def f(x):
            try:
                return g(x)
            finally:
                cleanup()
        """)
    facts = solve_forward(cfg, _ReachedLines())
    # the cleanup line is on the path to the normal exit
    assert 5 in facts[cfg.exit]
    # ... and on the exceptional one (g raising)
    assert 5 in facts[cfg.raise_exit]


def test_with_cleanup_sits_on_exceptional_exit():
    cfg = _cfg("""\
        def f(gate):
            with gate:
                work()
            return 1
        """)
    cleanup = next(n for n in cfg.nodes if n.kind == "cleanup")
    assert (cleanup.nid, cfg.raise_exit, EXC) in _edges(cfg)


def test_non_catchall_handler_propagates_unmatched_exceptions():
    cfg = _cfg("""\
        def f(x):
            try:
                g(x)
            except ValueError:
                h(x)
            return 0
        """)
    dispatch = next(n for n in cfg.nodes if n.kind == "dispatch")
    assert (dispatch.nid, cfg.raise_exit, EXC) in _edges(cfg)


def test_catchall_handler_swallows_the_exception():
    cfg = _cfg("""\
        def f(x):
            try:
                g(x)
            except Exception:
                pass
            return 0
        """)
    dispatch = next(n for n in cfg.nodes if n.kind == "dispatch")
    assert (dispatch.nid, cfg.raise_exit, EXC) not in _edges(cfg)


def test_break_and_continue_target_the_right_nodes():
    cfg = _cfg("""\
        def f(xs):
            for x in xs:
                if x:
                    break
                continue
            return 0
        """)
    edges = _edges(cfg)
    head = _node_by_line(cfg, 2)
    brk = _node_by_line(cfg, 4)
    cont = _node_by_line(cfg, 5)
    after = next(n for n in cfg.nodes if n.label == "loop-after")
    assert (brk.nid, after.nid, NORMAL) in edges
    assert (cont.nid, head.nid, BACK) in edges


def test_calls_in_are_source_ordered_and_skip_lambdas():
    tree = ast.parse("x = outer(inner(1), lambda: hidden())")
    cfg = build_cfg(ast.parse("def f():\n    x = outer(inner(1), "
                              "lambda: hidden())").body[0])
    node = _node_by_line(cfg, 2)
    names = [c.func.id for c in calls_in(node)]
    assert names == ["outer", "inner"]
    assert tree  # silence lint


# ------------------------------------------------------------------- solver

def test_solver_joins_branch_facts():
    cfg = _cfg("""\
        def f(x):
            if x:
                a = 1
            else:
                b = 2
            return 0
        """)
    facts = solve_forward(cfg, _ReachedLines())
    assert {3, 5} <= facts[cfg.exit]


def test_fact_after_applies_transfer():
    cfg = _cfg("""\
        def f(x):
            y = 1
            return y
        """)
    analysis = _ReachedLines()
    facts = solve_forward(cfg, analysis)
    node = _node_by_line(cfg, 2)
    assert 2 not in facts[node.nid]
    assert 2 in fact_after(cfg, analysis, facts, node.nid)


def test_follow_filter_drops_bypass_edges():
    class NoBypass(_ReachedLines):
        follow = {NORMAL, EXC, BACK}

    cfg = _cfg("""\
        def f(xs):
            for x in xs:
                work(x)
            return 0
        """)
    facts = solve_forward(cfg, NoBypass())
    # with the zero-trip edge dropped, every path to the exit saw the body
    assert 3 in facts[cfg.exit]
    paths = solve_forward(cfg, _ReachedLines())
    assert 3 in paths[cfg.exit]     # union still contains it either way


# --------------------------------------------------- gate typestate on CFGs

def _gate_exit_facts(source):
    cfg = _cfg(source)
    facts = solve_forward(cfg, GateAnalysis(resolver=None))
    return (facts.get(cfg.exit, frozenset()),
            facts.get(cfg.raise_exit, frozenset()))


def test_gate_balanced_in_finally_is_clean():
    normal, exceptional = _gate_exit_facts("""\
        def f(gk):
            gk._enter("type1")
            try:
                work()
            finally:
                gk._exit("type1")
        """)
    assert normal == frozenset()
    assert exceptional == frozenset()


def test_gate_exit_after_try_leaks_on_exception():
    normal, exceptional = _gate_exit_facts("""\
        def f(gk):
            gk._enter("type1")
            work()
            gk._exit("type1")
        """)
    assert normal == frozenset()
    assert exceptional == {("type1", 2)}


def test_enter_that_raises_did_not_open():
    normal, exceptional = _gate_exit_facts("""\
        def f(gk):
            gk._enter("type1")
            gk._exit("type1")
        """)
    # the only raise-prone statement is _enter itself; along its exc
    # edge the open must not be recorded
    assert exceptional == frozenset()
    assert normal == frozenset()
