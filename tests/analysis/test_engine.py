"""Engine mechanics: suppressions, baseline lifecycle, fingerprints, CLI."""

import json
import os
import shutil
import textwrap

import pytest

from repro.analysis import analyze
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main

FIXTURE_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "fixture_src")


def _make_tree(tmp_path, module_rel, source):
    """Build a minimal repro tree containing one module."""
    root = tmp_path / "src"
    pkg = root / "repro"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "__init__.py").write_text("")
    target = pkg / module_rel
    target.parent.mkdir(parents=True, exist_ok=True)
    # ensure intermediate packages exist
    walk = pkg
    for part in module_rel.split("/")[:-1]:
        walk = walk / part
        init = walk / "__init__.py"
        if not init.exists():
            init.write_text("")
    target.write_text(textwrap.dedent(source))
    return str(root)


# ---------------------------------------------------------------- suppression

def test_suppression_on_same_line(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):  # fidelint: ignore[FID006]
            return x
        """)
    result = analyze(root, baseline_path=None)
    assert not result.findings
    assert [f.rule_id for f in result.suppressed] == ["FID006"]


def test_suppression_on_comment_line_above(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        # the empty-list default is the whole point of this helper
        # fidelint: ignore[FID006]
        def f(x=[]):
            return x
        """)
    result = analyze(root, baseline_path=None)
    assert not result.findings
    assert len(result.suppressed) == 1


def test_bare_ignore_suppresses_all_rules(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):  # fidelint: ignore
            return x
        """)
    result = analyze(root, baseline_path=None)
    assert not result.findings
    assert len(result.suppressed) == 1


def test_wrong_rule_id_does_not_suppress(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):  # fidelint: ignore[FID001]
            return x
        """)
    result = analyze(root, baseline_path=None)
    assert [f.rule_id for f in result.findings] == ["FID006"]
    assert not result.suppressed


def test_skip_file_suppresses_whole_module(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        # fidelint: skip-file
        def f(x=[], y={}):
            return x, y
        """)
    result = analyze(root, baseline_path=None)
    assert not result.findings
    assert len(result.suppressed) == 2


def test_suppression_does_not_leak_across_code_lines(tmp_path):
    # An ignore above an unrelated statement must not reach the def
    # two *code* lines below it.
    root = _make_tree(tmp_path, "mod.py", """\
        # fidelint: ignore[FID006]
        X = 1


        def f(x=[]):
            return x
        """)
    result = analyze(root, baseline_path=None)
    assert [f.rule_id for f in result.findings] == ["FID006"]


# ------------------------------------------------------------------ baseline

def test_baseline_round_trip_and_stale_detection(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):
            return x
        """)
    baseline_path = str(tmp_path / "baseline.json")

    first = analyze(root, baseline_path=None)
    assert len(first.findings) == 1
    entries = write_baseline(baseline_path, first.findings)
    assert len(entries) == 1
    assert load_baseline(baseline_path)

    # Same tree + baseline: grandfathered, clean even under --strict.
    second = analyze(root, baseline_path=baseline_path)
    assert not second.findings
    assert len(second.baselined) == 1
    assert not second.stale_baseline
    assert second.exit_code(strict=True) == 0

    # Fix the violation: the entry goes stale; --strict now fails so the
    # baseline cannot rot silently, but plain mode still passes.
    mod = os.path.join(root, "repro", "mod.py")
    with open(mod, "w", encoding="utf-8") as handle:
        handle.write("def f(x=None):\n    return x\n")
    third = analyze(root, baseline_path=baseline_path)
    assert not third.findings
    assert not third.baselined
    assert len(third.stale_baseline) == 1
    assert third.exit_code(strict=False) == 0
    assert third.exit_code(strict=True) == 1


def test_baseline_is_line_number_independent(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):
            return x
        """)
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, analyze(root, baseline_path=None).findings)

    # Shift the offending line down: the fingerprint keys on line *text*,
    # so the entry still matches.
    mod = os.path.join(root, "repro", "mod.py")
    with open(mod, "w", encoding="utf-8") as handle:
        handle.write("# a new leading comment\n\n\ndef f(x=[]):\n    return x\n")
    result = analyze(root, baseline_path=baseline_path)
    assert not result.findings
    assert len(result.baselined) == 1
    assert not result.stale_baseline


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):
            return x


        def f(x=[]):
            return x
        """)
    result = analyze(root, baseline_path=None)
    assert len(result.findings) == 2
    a, b = result.findings
    assert a.line_text == b.line_text
    assert {a.occurrence, b.occurrence} == {0, 1}
    assert a.fingerprint != b.fingerprint

    # Baselining both keeps both matched — occurrence disambiguates.
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, result.findings)
    again = analyze(root, baseline_path=baseline_path)
    assert not again.findings
    assert len(again.baselined) == 2
    assert not again.stale_baseline


# ----------------------------------------------------------------------- CLI

def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("FID001", "FID002", "FID003", "FID004",
                    "FID005", "FID006", "FID007", "FID008",
                    "FID009", "FID010", "FID011", "FID012",
                    "FID013", "FID014", "FID015", "FID016"):
        assert rule_id in out


def test_cli_json_output_on_fixture_tree(capsys):
    rc = main(["--root", FIXTURE_ROOT, "--no-baseline", "--format", "json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["error"] == 12
    assert payload["counts"]["warning"] == 4
    # 16 bad modules + 9 package __init__ files
    assert payload["counts"]["modules"] == 25
    rules_seen = {f["rule"] for f in payload["findings"]}
    assert len(rules_seen) == 16
    # the digest travels with the JSON payload for --jobs equivalence checks
    assert len(payload["digest"]) == 64


def test_cli_select_runs_only_requested_rule(capsys):
    # FID006 is a warning: plain mode passes, --strict fails.
    assert main(["--root", FIXTURE_ROOT, "--no-baseline",
                 "--select", "FID006"]) == 0
    out = capsys.readouterr().out
    assert "FID006" in out
    assert "FID001" not in out
    assert main(["--root", FIXTURE_ROOT, "--no-baseline",
                 "--select", "FID006", "--strict"]) == 1
    capsys.readouterr()


def test_cli_unknown_rule_id_is_usage_error(capsys):
    assert main(["--root", FIXTURE_ROOT, "--no-baseline",
                 "--select", "FID999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_bad_root_is_usage_error(tmp_path, capsys):
    assert main(["--root", str(tmp_path)]) == 2
    assert "no 'repro' package" in capsys.readouterr().err


def test_cli_write_baseline_then_strict_passes(tmp_path, capsys):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):
            return x
        """)
    baseline_path = str(tmp_path / "baseline.json")
    assert main(["--root", root, "--baseline", baseline_path,
                 "--write-baseline"]) == 0
    assert "wrote 1 baseline entries" in capsys.readouterr().out
    assert main(["--root", root, "--baseline", baseline_path,
                 "--strict"]) == 0
    capsys.readouterr()


def test_cli_write_baseline_prunes_stale_entries(tmp_path, capsys):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):
            return x
        """)
    baseline_path = str(tmp_path / "baseline.json")
    assert main(["--root", root, "--baseline", baseline_path,
                 "--write-baseline"]) == 0
    capsys.readouterr()

    # Fix the violation, regenerate: the old entry must be pruned and
    # the regeneration must say so.
    mod = os.path.join(root, "repro", "mod.py")
    with open(mod, "w", encoding="utf-8") as handle:
        handle.write("def f(x=None):\n    return x\n")
    assert main(["--root", root, "--baseline", baseline_path,
                 "--write-baseline"]) == 0
    out = capsys.readouterr().out
    assert "wrote 0 baseline entries" in out
    assert "1 stale pruned" in out
    assert load_baseline(baseline_path) == {}
    assert main(["--root", root, "--baseline", baseline_path,
                 "--strict"]) == 0
    capsys.readouterr()


def test_cli_write_baseline_is_byte_stable(tmp_path, capsys):
    root = _make_tree(tmp_path, "mod.py", """\
        def f(x=[]):
            return x


        def g(y={}):
            return y
        """)
    baseline_path = str(tmp_path / "baseline.json")
    assert main(["--root", root, "--baseline", baseline_path,
                 "--write-baseline"]) == 0
    with open(baseline_path, "rb") as handle:
        first = handle.read()
    assert main(["--root", root, "--baseline", baseline_path,
                 "--write-baseline"]) == 0
    with open(baseline_path, "rb") as handle:
        assert handle.read() == first
    capsys.readouterr()


def test_cli_explain_prints_rationale_and_example(capsys):
    assert main(["--explain", "FID010", "FID011", "FID012"]) == 0
    out = capsys.readouterr().out
    assert "secret taint" in out
    assert "gate-typestate" in out
    assert "path-cycle-accounting" in out
    assert "Fixed example:" in out
    # works (case-insensitively) for the syntactic rules too
    assert main(["--explain", "fid001"]) == 0
    assert "raw-memory" in capsys.readouterr().out


def test_cli_explain_unknown_rule_is_usage_error(capsys):
    assert main(["--explain", "FID999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_help_lists_every_registered_rule():
    """The --help epilog is generated from the registry, so a newly
    registered rule can never be missing from it — checked against
    the live registration list, not a hardcoded sample."""
    from repro.analysis.cli import build_parser
    from repro.analysis.registry import all_rules
    rules = all_rules()
    assert rules, "registry is empty?"
    text = build_parser().format_help()
    for rule_obj in rules:
        assert rule_obj.rule_id in text, rule_obj.rule_id
        assert rule_obj.name in text, rule_obj.name


def test_rules_package_docstring_lists_every_registered_rule():
    """The human-readable rule table in repro.analysis.rules must not
    rot: every registered id (and no unregistered one) appears."""
    import re
    import repro.analysis.rules as rules_pkg
    from repro.analysis.registry import all_rules
    doc = rules_pkg.__doc__ or ""
    documented = set(re.findall(r"FID\d{3}", doc))
    registered = {rule_obj.rule_id for rule_obj in all_rules()}
    assert registered <= documented, registered - documented
    assert documented <= registered, documented - registered


def test_explain_all_covers_every_rule(capsys):
    from repro.analysis.registry import all_rules
    assert main(["--explain", "all"]) == 0
    out = capsys.readouterr().out
    for rule_obj in all_rules():
        assert rule_obj.rule_id in out


# ------------------------------------------------- live tree + injected bug

def _copy_live_tree(tmp_path):
    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    live_src = os.path.join(repo_root, "src")
    root = str(tmp_path / "src")
    shutil.copytree(
        os.path.join(live_src, "repro"), os.path.join(root, "repro"),
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"))
    baseline_src = os.path.join(repo_root, "fidelint.baseline.json")
    baseline_path = str(tmp_path / "fidelint.baseline.json")
    shutil.copy(baseline_src, baseline_path)
    return root, baseline_path


def test_strict_clean_on_live_copy_then_fails_on_injected_module(
        tmp_path, capsys):
    root, baseline_path = _copy_live_tree(tmp_path)
    assert main(["--root", root, "--baseline", baseline_path,
                 "--strict"]) == 0
    capsys.readouterr()

    # Drop one of the fixture bad modules into the tree: strict CI run
    # must now fail — the exact non-bypassability property fidelint is
    # meant to enforce.
    shutil.copy(
        os.path.join(FIXTURE_ROOT, "repro", "xen", "bad_raw_memory.py"),
        os.path.join(root, "repro", "xen", "bad_raw_memory.py"))
    assert main(["--root", root, "--baseline", baseline_path,
                 "--strict"]) == 1
    out = capsys.readouterr().out
    assert "FID001" in out


def test_injected_warning_only_fails_under_strict(tmp_path, capsys):
    root, baseline_path = _copy_live_tree(tmp_path)
    shutil.copy(
        os.path.join(FIXTURE_ROOT, "repro", "common",
                     "bad_mutable_default.py"),
        os.path.join(root, "repro", "common", "bad_mutable_default.py"))
    assert main(["--root", root, "--baseline", baseline_path]) == 0
    assert main(["--root", root, "--baseline", baseline_path,
                 "--strict"]) == 1
    capsys.readouterr()
