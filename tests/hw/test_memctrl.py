"""Tests for the encrypting memory controller.

These pin down the *faithfully weak* properties the paper's attacks
exploit: deterministic position-bound ciphertext, replayability at the
same physical address, the plaintext cache channel, and the key-less
DMA port.
"""

import pytest
from hypothesis import given, strategies as st

from repro.common.constants import CACHE_LINE
from repro.hw.cycles import CycleCounter
from repro.hw.memctrl import (
    KeySlotError,
    MemoryController,
    decrypt_region,
    encrypt_region,
)
from repro.hw.memory import PhysicalMemory

KEY_A = b"A" * 16
KEY_B = b"B" * 16


@pytest.fixture
def ctrl():
    return MemoryController(PhysicalMemory(16), CycleCounter(), cache_lines=8)


class TestPlainPath:
    def test_unencrypted_roundtrip(self, ctrl):
        ctrl.write(0x100, b"plain data")
        assert ctrl.read(0x100, 10) == b"plain data"

    def test_unencrypted_is_raw_on_bus(self, ctrl):
        ctrl.write(0x100, b"plain data")
        assert ctrl.memory.read(0x100, 10) == b"plain data"


class TestEncryptedPath:
    def test_roundtrip(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x200, b"secret!", c_bit=True, asid=1)
        assert ctrl.read(0x200, 7, c_bit=True, asid=1) == b"secret!"

    def test_bus_sees_ciphertext(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x200, b"secret!", c_bit=True, asid=1)
        assert ctrl.memory.read(0x200, 7) != b"secret!"

    def test_missing_key_slot_faults(self, ctrl):
        with pytest.raises(KeySlotError):
            ctrl.write(0x200, b"x", c_bit=True, asid=3)

    def test_wrong_key_yields_garbage_not_error(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.install_key(2, KEY_B)
        ctrl.write(0x200, b"secret data 1234", c_bit=True, asid=1)
        ctrl.flush_cache()
        assert ctrl.read(0x200, 16, c_bit=True, asid=2) != b"secret data 1234"

    def test_replay_same_pa_decrypts_stale_plaintext(self, ctrl):
        """The Hetzelt-Buhren replay property (paper Section 2.2)."""
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x200, b"old password!!", c_bit=True, asid=1)
        stale = ctrl.memory.read(0x200, 14)
        ctrl.write(0x200, b"new password!!", c_bit=True, asid=1)
        # attacker restores stale ciphertext via raw (DMA-like) access
        ctrl.dma_write(0x200, stale)
        assert ctrl.read(0x200, 14, c_bit=True, asid=1) == b"old password!!"

    def test_moved_ciphertext_is_garbage(self, ctrl):
        """Position binding: ciphertext copied to a new PA won't decrypt."""
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x200, b"secret data 1234", c_bit=True, asid=1)
        ct = ctrl.memory.read(0x200, 16)
        ctrl.dma_write(0x400, ct)
        assert ctrl.read(0x400, 16, c_bit=True, asid=1) != b"secret data 1234"

    def test_partial_line_write_preserves_rest(self, ctrl):
        ctrl.install_key(1, KEY_A)
        base = 0x300  # line-aligned region
        ctrl.write(base, bytes(range(64)), c_bit=True, asid=1)
        ctrl.write(base + 10, b"\xFF\xFF", c_bit=True, asid=1)
        got = ctrl.read(base, 64, c_bit=True, asid=1)
        expect = bytearray(range(64))
        expect[10:12] = b"\xFF\xFF"
        assert got == bytes(expect)

    @given(pa=st.integers(0, 4096), data=st.binary(min_size=1, max_size=200))
    def test_property_roundtrip_unaligned(self, pa, data):
        ctrl = MemoryController(PhysicalMemory(4), CycleCounter())
        ctrl.install_key(1, KEY_A)
        ctrl.write(pa, data, c_bit=True, asid=1)
        assert ctrl.read(pa, len(data), c_bit=True, asid=1) == data


class TestCacheChannel:
    def test_cache_hit_serves_plaintext_across_asids(self, ctrl):
        """The cache leak behind the inter-VM remap attack (Section 6.2)."""
        ctrl.install_key(1, KEY_A)
        ctrl.install_key(2, KEY_B)
        ctrl.write(0x200, b"victim secret 00", c_bit=True, asid=1)
        # line is hot in the plaintext cache; conspirator reads same PA
        assert ctrl.read(0x200, 16, c_bit=True, asid=2) == b"victim secret 00"

    def test_flushed_cache_closes_the_channel(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.install_key(2, KEY_B)
        ctrl.write(0x200, b"victim secret 00", c_bit=True, asid=1)
        ctrl.flush_cache()
        assert ctrl.read(0x200, 16, c_bit=True, asid=2) != b"victim secret 00"

    def test_capacity_eviction(self, ctrl):
        ctrl.install_key(1, KEY_A)
        for i in range(12):  # capacity is 8 lines
            ctrl.write(i * CACHE_LINE, b"x" * CACHE_LINE, c_bit=True, asid=1)
        assert len(ctrl.cached_lines()) <= 8

    def test_unencrypted_write_invalidates_line(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x200, b"secret", c_bit=True, asid=1)
        ctrl.write(0x200, b"zzzzzz")  # raw overwrite snoops the cache
        assert 0x200 not in ctrl.cached_lines()


class TestDmaPort:
    def test_dma_read_sees_ciphertext(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x200, b"secret!", c_bit=True, asid=1)
        assert ctrl.dma_read(0x200, 7) != b"secret!"

    def test_dma_write_corrupts_encrypted_page(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x200, b"secret!", c_bit=True, asid=1)
        ctrl.dma_write(0x200, b"ATTACK!")
        assert ctrl.read(0x200, 7, c_bit=True, asid=1) != b"ATTACK!"


class TestRegionHelpers:
    def test_encrypt_decrypt_region_match_controller(self, ctrl):
        ctrl.install_key(1, KEY_A)
        ctrl.write(0x240, b"hello region", c_bit=True, asid=1)
        raw = ctrl.memory.read(0x240, 12)
        assert decrypt_region(KEY_A, 0x240, raw) == b"hello region"
        assert encrypt_region(KEY_A, 0x240, b"hello region") == raw
