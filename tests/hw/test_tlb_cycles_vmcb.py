"""Tests for the TLB, cycle counter and VMCB models."""

import pytest

from repro.common.constants import TLB_ENTRY_FLUSH_CYCLES
from repro.common.types import ExitReason
from repro.hw.cycles import CycleCounter
from repro.hw.tlb import Tlb
from repro.hw.vmcb import ALL_FIELDS, Vmcb


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(CycleCounter())
        assert tlb.lookup(1, 0x10) is None
        tlb.insert(1, 0x10, "translation")
        assert tlb.lookup(1, 0x10) == "translation"
        assert tlb.hits == 1 and tlb.misses == 1

    def test_flush_page_costs_measured_cycles(self):
        cycles = CycleCounter()
        tlb = Tlb(cycles)
        tlb.insert(1, 0x10, "t")
        tlb.flush_page(1, 0x10)
        assert tlb.lookup(1, 0x10) is None
        assert cycles.by_reason["tlb-flush-entry"] == TLB_ENTRY_FLUSH_CYCLES

    def test_flush_root_only_hits_that_space(self):
        tlb = Tlb(CycleCounter())
        tlb.insert(1, 0x10, "a")
        tlb.insert(2, 0x10, "b")
        tlb.flush_root(1)
        assert tlb.lookup(1, 0x10) is None
        assert tlb.lookup(2, 0x10) == "b"

    def test_flush_all_costs_scale_with_occupancy(self):
        cycles = CycleCounter()
        tlb = Tlb(cycles)
        for i in range(256):
            tlb.insert(1, i, i)
        tlb.flush_all("mov-cr3")
        assert cycles.by_reason["mov-cr3"] > TLB_ENTRY_FLUSH_CYCLES

    def test_capacity_bound(self):
        tlb = Tlb(CycleCounter(), capacity=4)
        for i in range(10):
            tlb.insert(1, i, i)
        assert len(tlb) <= 4


class TestCycleCounter:
    def test_charge_accumulates(self):
        c = CycleCounter()
        c.charge(10, "a")
        c.charge(5, "a")
        c.charge(2, "b")
        assert c.total == 17
        assert c.by_reason["a"] == 15
        assert c.events["a"] == 2

    def test_negative_charge_rejected(self):
        c = CycleCounter()
        with pytest.raises(ValueError):
            c.charge(-1)

    def test_snapshot_delta(self):
        c = CycleCounter()
        c.charge(10, "a")
        snap = c.snapshot()
        c.charge(7, "a")
        c.charge(3, "b")
        assert c.since(snap) == 10
        assert snap.delta(c) == {"a": 7, "b": 3}
        assert snap.event_delta(c) == {"a": 1, "b": 1}

    def test_reset(self):
        c = CycleCounter()
        c.charge(10, "a")
        c.reset()
        assert c.total == 0 and not c.by_reason


class TestVmcb:
    def test_read_write_fields(self):
        vmcb = Vmcb(asid=7)
        vmcb.write("rip", 0x1000)
        assert vmcb.read("rip") == 0x1000
        assert vmcb.read("asid") == 7

    def test_unknown_field_rejected(self):
        vmcb = Vmcb()
        with pytest.raises(KeyError):
            vmcb.read("no_such_field")
        with pytest.raises(KeyError):
            vmcb.write("no_such_field", 1)

    def test_copy_is_independent(self):
        vmcb = Vmcb(asid=7)
        twin = vmcb.copy()
        vmcb.write("rip", 0x2000)
        assert twin.read("rip") == 0

    def test_diff_detects_tampering(self):
        vmcb = Vmcb(asid=7)
        shadow = vmcb.copy()
        vmcb.write("nested_cr3", 0xBAD)
        vmcb.write("asid", 9)
        assert vmcb.diff(shadow) == {"nested_cr3", "asid"}

    def test_restore_from_selected_fields(self):
        vmcb = Vmcb(asid=7)
        shadow = vmcb.copy()
        vmcb.write("rip", 5)
        vmcb.write("rsp", 6)
        vmcb.restore_from(shadow, fields=["rip"])
        assert vmcb.read("rip") == 0
        assert vmcb.read("rsp") == 6

    def test_mask_fields(self):
        vmcb = Vmcb(asid=7)
        vmcb.write("rip", 0x123)
        vmcb.mask_fields(["rip", "intercepts"])
        assert vmcb.read("rip") == 0
        assert vmcb.read("intercepts") == frozenset()

    def test_set_exit(self):
        vmcb = Vmcb()
        vmcb.set_exit(ExitReason.NPF, info1=0x40, info2=0xDEAD000)
        assert vmcb.exit_reason is ExitReason.NPF
        assert vmcb.read("exitinfo1") == 0x40
        assert vmcb.read("exitinfo2") == 0xDEAD000

    def test_all_fields_enumerable(self):
        vmcb = Vmcb()
        fields = vmcb.fields()
        assert set(fields) == set(ALL_FIELDS)
