"""Tests for physical memory and the frame allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.common.constants import PAGE_SIZE
from repro.common.errors import PhysicalMemoryError
from repro.hw.memory import FrameAllocator, PhysicalMemory


class TestPhysicalMemory:
    def test_read_back(self):
        mem = PhysicalMemory(4)
        mem.write(0x123, b"abc")
        assert mem.read(0x123, 3) == b"abc"

    def test_zero_initialised(self):
        mem = PhysicalMemory(2)
        assert mem.read(0, 16) == bytes(16)

    def test_cross_frame_write_and_read(self):
        mem = PhysicalMemory(3)
        data = bytes(range(200)) * 40  # 8000 bytes, crosses 2 frame borders
        mem.write(PAGE_SIZE - 100, data)
        assert mem.read(PAGE_SIZE - 100, len(data)) == data

    def test_out_of_range_read(self):
        mem = PhysicalMemory(1)
        with pytest.raises(PhysicalMemoryError):
            mem.read(PAGE_SIZE - 1, 2)

    def test_out_of_range_write(self):
        mem = PhysicalMemory(1)
        with pytest.raises(PhysicalMemoryError):
            mem.write(PAGE_SIZE, b"x")

    def test_u64_roundtrip(self):
        mem = PhysicalMemory(1)
        mem.write_u64(0x10, 0xDEADBEEF12345678)
        assert mem.read_u64(0x10) == 0xDEADBEEF12345678

    def test_frame_ops(self):
        mem = PhysicalMemory(2)
        mem.write_frame(1, bytes([7]) * PAGE_SIZE)
        assert mem.read_frame(1) == bytes([7]) * PAGE_SIZE
        mem.zero_frame(1)
        assert mem.read_frame(1) == bytes(PAGE_SIZE)

    def test_frame_write_must_be_full_page(self):
        mem = PhysicalMemory(1)
        with pytest.raises(ValueError):
            mem.write_frame(0, b"short")

    def test_dump_shows_only_touched_frames(self):
        mem = PhysicalMemory(8)
        mem.write(3 * PAGE_SIZE, b"x")
        dump = mem.dump()
        assert set(dump) == {3}

    @given(pa=st.integers(0, 2 * PAGE_SIZE), data=st.binary(min_size=1, max_size=300))
    def test_property_write_read_roundtrip(self, pa, data):
        mem = PhysicalMemory(4)
        mem.write(pa, data)
        assert mem.read(pa, len(data)) == data


class TestFrameAllocator:
    def test_alloc_unique(self):
        alloc = FrameAllocator(16)
        pfns = alloc.alloc_many(16)
        assert len(set(pfns)) == 16

    def test_reserved_not_handed_out(self):
        alloc = FrameAllocator(8, reserved=4)
        pfns = alloc.alloc_many(4)
        assert all(p >= 4 for p in pfns)
        with pytest.raises(PhysicalMemoryError):
            alloc.alloc()

    def test_free_and_realloc(self):
        alloc = FrameAllocator(2)
        a = alloc.alloc()
        b = alloc.alloc()
        alloc.free(a)
        assert alloc.alloc() == a
        assert alloc.is_allocated(b)

    def test_double_free_rejected(self):
        alloc = FrameAllocator(2)
        a = alloc.alloc()
        alloc.free(a)
        with pytest.raises(PhysicalMemoryError):
            alloc.free(a)

    def test_free_count(self):
        alloc = FrameAllocator(10, reserved=2)
        assert alloc.free_count == 8
        alloc.alloc()
        assert alloc.free_count == 7
