"""Tests for the CPU model: translation-backed access, privileged
instructions with real fetch checks, gates hooks, and world switches."""

import pytest

from repro.common.constants import (
    CR0_PG,
    CR0_WP,
    CR4_SMEP,
    EFER_NXE,
    EFER_SVME,
    MSR_EFER,
    PAGE_SIZE,
    PTE_NX,
    PTE_PRESENT,
    PTE_WRITABLE,
)
from repro.common.errors import GateViolation, PageFault
from repro.common.types import CpuMode, ExitReason, PRIV_OPCODES, PrivOp
from repro.hw import Machine, Vmcb


@pytest.fixture
def m():
    machine = Machine(frames=512, seed=1)
    machine.build_host_address_space()
    return machine


def plant_instruction(machine, op, offset=0):
    """Allocate a fresh code frame, write the opcode bytes of ``op`` into
    it at ``offset`` and make the page executable (identity map: VA == PA).
    Returns the virtual address of the instruction."""
    pfn = machine.allocator.alloc()
    va = pfn * PAGE_SIZE + offset
    machine.memory.write(va, PRIV_OPCODES[op])
    machine.walker.set_flags(machine.host_root, pfn * PAGE_SIZE, clear_mask=PTE_NX)
    machine.tlb.flush_all("test")
    return va


class TestVirtualAccess:
    def test_store_load_roundtrip(self, m):
        m.cpu.store(0x8000, b"some data")
        assert m.cpu.load(0x8000, 9) == b"some data"

    def test_unmapped_va_faults(self, m):
        with pytest.raises(PageFault):
            m.cpu.load(m.frames * PAGE_SIZE + 0x1000, 1)

    def test_write_protected_page_faults_with_wp(self, m):
        m.walker.set_flags(m.host_root, 0x8000, clear_mask=PTE_WRITABLE)
        m.tlb.flush_all("test")
        with pytest.raises(PageFault):
            m.cpu.store(0x8000, b"x")

    def test_wp_clear_allows_supervisor_write(self, m):
        """The hardware basis of the type 1 gate."""
        m.walker.set_flags(m.host_root, 0x8000, clear_mask=PTE_WRITABLE)
        m.tlb.flush_all("test")
        m.cpu.cr0 &= ~CR0_WP
        m.cpu.store(0x8000, b"x")
        assert m.cpu.load(0x8000, 1) == b"x"

    def test_fault_handler_can_absorb_write(self, m):
        seen = []
        m.walker.set_flags(m.host_root, 0x8000, clear_mask=PTE_WRITABLE)
        m.tlb.flush_all("test")
        m.cpu.fault_handler = lambda fault, op: seen.append((fault.vaddr, op)) or True
        m.cpu.store(0x8000, b"x")
        assert seen and seen[0][0] == 0x8000 and seen[0][1][0] == "write"

    def test_tlb_does_not_cache_wp_state(self, m):
        """Toggling CR0.WP needs no TLB flush (gate 1's cheapness)."""
        m.walker.set_flags(m.host_root, 0x8000, clear_mask=PTE_WRITABLE)
        m.tlb.flush_all("test")
        m.cpu.load(0x8000, 1)  # warm the TLB entry
        m.cpu.cr0 &= ~CR0_WP
        m.cpu.store(0x8000, b"y")  # must not fault despite cached entry
        m.cpu.cr0 |= CR0_WP
        with pytest.raises(PageFault):
            m.cpu.store(0x8000, b"z")


class TestPrivilegedInstructions:
    def test_exec_requires_real_encoding(self, m):
        with pytest.raises(PageFault):
            m.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG, rip=0x8000)

    def test_mov_cr0_applies(self, m):
        rip = plant_instruction(m, PrivOp.MOV_CR0)
        m.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG | CR0_WP, rip=rip)
        assert m.cpu.cr0 == CR0_PG | CR0_WP

    def test_exec_from_nx_page_faults(self, m):
        pfn = m.allocator.alloc()
        va = pfn * PAGE_SIZE
        m.memory.write(va, PRIV_OPCODES[PrivOp.MOV_CR0])
        # page stays NX from the boot-time direct map
        with pytest.raises(PageFault):
            m.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG, rip=va)

    def test_wrmsr_sets_efer(self, m):
        rip = plant_instruction(m, PrivOp.WRMSR)
        m.cpu.exec_privileged(PrivOp.WRMSR, (MSR_EFER, EFER_NXE | EFER_SVME), rip=rip)
        assert m.cpu.svme_enabled

    def test_mov_cr4_sets_smep(self, m):
        rip = plant_instruction(m, PrivOp.MOV_CR4)
        m.cpu.exec_privileged(PrivOp.MOV_CR4, CR4_SMEP, rip=rip)
        assert m.cpu.smep_enabled

    def test_checking_loop_rolls_back_on_violation(self, m):
        """Type 2 gate semantics: the adjacent check detects a malicious
        value and the effect is undone (paper Section 4.1.2)."""
        rip = plant_instruction(m, PrivOp.MOV_CR0)

        def check(cpu, op, arg, old):
            if not arg & CR0_WP:
                raise GateViolation("type2", "attempt to clear CR0.WP")

        m.cpu.priv_post_hooks[PrivOp.MOV_CR0] = check
        before = m.cpu.cr0
        with pytest.raises(GateViolation):
            m.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG, rip=rip)
        assert m.cpu.cr0 == before

    def test_mov_cr3_switches_space_and_flushes(self, m):
        rip = plant_instruction(m, PrivOp.MOV_CR3)
        # build a second root that also identity-maps the code page
        root2 = m.allocator.alloc()
        m.memory.zero_frame(root2)
        code_pfn = rip // PAGE_SIZE
        m.walker.map(root2, code_pfn * PAGE_SIZE, code_pfn, PTE_WRITABLE)
        m.cpu.load(0x2000, 1)
        assert len(m.tlb) > 0
        m.cpu.exec_privileged(PrivOp.MOV_CR3, root2, rip=rip)
        assert m.cpu.cr3_root == root2
        # every pre-switch translation is gone; only the post-switch
        # fetch of the next instruction may have repopulated the TLB
        assert all(key[0] == root2 for key in m.tlb._entries)

    def test_mov_cr3_next_instruction_must_be_mapped(self, m):
        """The end-of-page placement subtlety (paper Section 4.1.2): if
        the new space does not map the following instruction, execution
        cannot continue and the switch is treated as a crash."""
        rip = plant_instruction(m, PrivOp.MOV_CR3)
        root2 = m.allocator.alloc()
        m.memory.zero_frame(root2)  # maps nothing at all
        before = m.cpu.cr3_root
        with pytest.raises(PageFault):
            m.cpu.exec_privileged(PrivOp.MOV_CR3, root2, rip=rip)
        assert m.cpu.cr3_root == before

    def test_lgdt_lidt(self, m):
        rip1 = plant_instruction(m, PrivOp.LGDT)
        rip2 = plant_instruction(m, PrivOp.LIDT, offset=0x10)
        m.cpu.exec_privileged(PrivOp.LGDT, 0xAAA000, rip=rip1)
        m.cpu.exec_privileged(PrivOp.LIDT, 0xBBB000, rip=rip2)
        assert m.cpu.gdt_base == 0xAAA000
        assert m.cpu.idt_base == 0xBBB000


class TestWorldSwitch:
    def _prep_vmrun(self, m):
        m.cpu.efer |= EFER_SVME
        rip = plant_instruction(m, PrivOp.VMRUN)
        return Vmcb(asid=3, nested_cr3=0), rip

    def test_vmrun_enters_guest(self, m):
        vmcb, rip = self._prep_vmrun(m)
        vmcb.write("rax", 0x1234)
        m.cpu.vmrun(vmcb, rip=rip)
        assert m.cpu.mode is CpuMode.GUEST
        assert m.cpu.current_asid == 3
        assert m.cpu.regs["rax"] == 0x1234

    def test_vmrun_requires_svme(self, m):
        vmcb = Vmcb(asid=3)
        m.cpu.efer &= ~EFER_SVME
        with pytest.raises(Exception):
            m.cpu.vmrun(vmcb, rip=0x8000)

    def test_vmrun_fetch_check(self, m):
        m.cpu.efer |= EFER_SVME
        with pytest.raises(PageFault):
            m.cpu.vmrun(Vmcb(asid=3), rip=0x9000)  # nothing planted there

    def test_vmexit_exposes_guest_gprs(self, m):
        """AMD-V leaves guest GPRs live across an exit — the register
        stealing surface of Section 2.2."""
        vmcb, rip = self._prep_vmrun(m)
        m.cpu.vmrun(vmcb, rip=rip)
        m.cpu.regs["rdi"] = 0x5EC12E7  # guest computes with a secret
        m.cpu.vmexit(vmcb, ExitReason.CPUID)
        assert m.cpu.mode is CpuMode.HOST
        assert m.cpu.regs["rdi"] == 0x5EC12E7

    def test_vmexit_saves_rax_rsp_to_vmcb(self, m):
        vmcb, rip = self._prep_vmrun(m)
        m.cpu.vmrun(vmcb, rip=rip)
        m.cpu.regs["rax"] = 77
        m.cpu.regs["rsp"] = 0x7000
        m.cpu.vmexit(vmcb, ExitReason.HLT)
        assert vmcb.read("rax") == 77
        assert vmcb.read("rsp") == 0x7000
        assert vmcb.exit_reason is ExitReason.HLT

    def test_vmexit_restores_host_control_state(self, m):
        vmcb, rip = self._prep_vmrun(m)
        host_cr3 = m.cpu.cr3_root
        m.cpu.vmrun(vmcb, rip=rip)
        m.cpu.vmexit(vmcb, ExitReason.HLT)
        assert m.cpu.cr3_root == host_cr3
        assert m.cpu.current_asid == 0

    def test_vmrun_hook_runs_before_entry(self, m):
        vmcb, rip = self._prep_vmrun(m)
        calls = []
        m.cpu.priv_post_hooks[PrivOp.VMRUN] = (
            lambda cpu, op, arg, old: calls.append(arg)
        )
        m.cpu.vmrun(vmcb, rip=rip)
        assert calls == [vmcb]
