"""Differential suite: the optimized data path vs its reference twin.

PR 4 rebuilt the hot data path (keystream line cache, wide-XOR line
crypto, span-batched multi-line transfers, single-line short circuits)
under one invariant: *only wall-clock changes*.  These tests drive
:class:`MemoryController` and :class:`ReferenceMemoryController` in
lockstep over long randomized op sequences and require byte-identical
reads, byte-identical final DRAM and identical cycle ledgers — totals,
per-reason buckets and event counts.  The crypto primitives get the
same treatment against their ``_reference_*`` oracles, and the
structural attack surfaces (cross-ASID plaintext-cache hit, replay,
key rotation) are re-pinned on the optimized path.
"""

import random

import pytest

from repro.common import crypto
from repro.common.constants import CACHE_LINE, PAGE_SIZE
from repro.hw.cycles import CycleCounter
from repro.hw.memctrl import (
    MemoryController,
    ReferenceMemoryController,
    line_tweak,
)
from repro.hw.memory import PhysicalMemory
from repro.hw.tlb import Tlb

KEY_A = b"A" * 16
KEY_B = b"B" * 16

FRAMES = 32
SPAN = FRAMES * PAGE_SIZE
ASIDS = (1, 2)


def _pair(cache_lines=16):
    """One optimized and one reference controller over identical state."""
    pair = []
    for cls in (MemoryController, ReferenceMemoryController):
        ctl = cls(PhysicalMemory(FRAMES), CycleCounter(),
                  cache_lines=cache_lines)
        for asid in ASIDS:
            ctl.install_key(asid, bytes([asid * 17]) * 16)
        pair.append(ctl)
    return pair


def _random_ops(rng, count):
    """A mixed trace: encrypted/plain reads and writes, DMA, cache
    flushes and mid-trace key rotations."""
    ops = []
    sizes = (1, 7, 8, 63, 64, 65, 256, 1024, 4096)
    for _ in range(count):
        roll = rng.random()
        size = rng.choice(sizes)
        pa = rng.randrange(0, SPAN - size)
        asid = rng.choice(ASIDS)
        if roll < 0.35:
            ops.append(("read", pa, size, asid))
        elif roll < 0.70:
            data = bytes(rng.getrandbits(8) for _ in range(size))
            ops.append(("write", pa, data, asid))
        elif roll < 0.80:
            ops.append(("dma_read", pa, size))
        elif roll < 0.90:
            data = bytes(rng.getrandbits(8) for _ in range(size))
            ops.append(("dma_write", pa, data))
        elif roll < 0.94:
            ops.append(("plain_write", pa,
                        bytes(rng.getrandbits(8) for _ in range(size))))
        elif roll < 0.97:
            ops.append(("flush_cache",))
        else:
            ops.append(("rotate", asid,
                        bytes(rng.getrandbits(8) for _ in range(16))))
    return ops


def _apply(ctl, op):
    kind = op[0]
    if kind == "read":
        return ctl.read(op[1], op[2], c_bit=True, asid=op[3])
    if kind == "write":
        ctl.write(op[1], op[2], c_bit=True, asid=op[3])
    elif kind == "dma_read":
        return ctl.dma_read(op[1], op[2])
    elif kind == "dma_write":
        ctl.dma_write(op[1], op[2])
    elif kind == "plain_write":
        ctl.write(op[1], op[2])
    elif kind == "flush_cache":
        ctl.flush_cache()
    elif kind == "rotate":
        ctl.install_key(op[1], op[2])
    return None


@pytest.mark.parametrize("seed", [0xFA57, 0x0DD1, 0xB16B00B5])
def test_randomized_lockstep_equivalence(seed):
    """>=1000 mixed ops per seed: every read byte-equal, final DRAM
    byte-equal, cycle ledgers identical to the event."""
    rng = random.Random(seed)
    fast, ref = _pair()
    for op in _random_ops(rng, 1200):
        assert _apply(fast, op) == _apply(ref, op), op
    assert fast.memory.dump() == ref.memory.dump()
    assert fast.cycles.total == ref.cycles.total
    assert fast.cycles.by_reason == ref.cycles.by_reason
    assert fast.cycles.events == ref.cycles.events


def test_cache_state_tracks_reference():
    """The plaintext caches evolve identically (same lines resident),
    so every later hit/miss — and its charge — lines up."""
    rng = random.Random(0xCAC4E)
    fast, ref = _pair(cache_lines=4)
    for op in _random_ops(rng, 600):
        _apply(fast, op)
        _apply(ref, op)
        assert fast.cached_lines() == ref.cached_lines()


# -- crypto primitive differentials ------------------------------------------

def test_keystream_matches_reference():
    rng = random.Random(0x5EED)
    for _ in range(300):
        key = bytes(rng.getrandbits(8) for _ in range(16))
        tweak = rng.getrandbits(64).to_bytes(8, "little")
        length = rng.randrange(0, 200)
        offset = rng.randrange(0, 100)
        assert crypto.keystream(key, tweak, length, offset) == \
            crypto._reference_keystream(key, tweak, length, offset)


def test_xex_matches_reference():
    rng = random.Random(0xA11)
    for _ in range(300):
        key = bytes(rng.getrandbits(8) for _ in range(16))
        tweak = rng.getrandbits(64).to_bytes(8, "little")
        data = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 150)))
        offset = rng.randrange(0, 80)
        assert crypto.xex_encrypt(key, tweak, data, offset) == \
            crypto._reference_xex_encrypt(key, tweak, data, offset)


def test_xex_line_matches_reference():
    rng = random.Random(0x11E)
    for _ in range(300):
        key = bytes(rng.getrandbits(8) for _ in range(16))
        line_pa = rng.randrange(0, 1 << 30) & ~(CACHE_LINE - 1)
        length = rng.randrange(1, CACHE_LINE + 1)
        offset = rng.randrange(0, CACHE_LINE - length + 1)
        data = bytes(rng.getrandbits(8) for _ in range(length))
        assert crypto.xex_line_encrypt(key, line_pa, data, offset) == \
            crypto._reference_xex_encrypt(
                key, line_tweak(line_pa), data, offset)


def test_xex_line_is_involution():
    key = b"K" * 16
    data = bytes(range(64))
    ct = crypto.xex_line_encrypt(key, 0x1000, data)
    assert ct != data
    assert crypto.xex_line_decrypt(key, 0x1000, ct) == data


# -- key lifetime hygiene ----------------------------------------------------

def test_reactivate_with_new_key_changes_ciphertext():
    """Re-ACTIVATE an ASID with a fresh key: the same plaintext at the
    same PA must produce different DRAM bytes — no stale keystream may
    be served from the simulator cache."""
    ctl = MemoryController(PhysicalMemory(FRAMES), CycleCounter(),
                           cache_lines=8)
    ctl.install_key(1, KEY_A)
    ctl.write(0x2000, b"S" * CACHE_LINE, c_bit=True, asid=1)
    before = ctl.memory.read(0x2000, CACHE_LINE)
    ctl.uninstall_key(1)
    ctl.install_key(1, KEY_B)              # the re-ACTIVATE
    ctl.flush_cache()
    ctl.write(0x2000, b"S" * CACHE_LINE, c_bit=True, asid=1)
    after = ctl.memory.read(0x2000, CACHE_LINE)
    assert before != after


def test_install_key_purges_keystream_cache():
    ctl = MemoryController(PhysicalMemory(FRAMES), CycleCounter(),
                           cache_lines=8)
    ctl.install_key(1, KEY_A)
    ctl.write(0x2000, b"S" * CACHE_LINE, c_bit=True, asid=1)
    assert any(entry[0] == KEY_A for entry in crypto._line_cache)
    ctl.install_key(1, KEY_B)              # rotation purges KEY_A
    assert not any(entry[0] == KEY_A for entry in crypto._line_cache)
    assert not any(entry[0] == KEY_A for entry in crypto._midstate_cache)


def test_uninstall_key_purges_keystream_cache():
    ctl = MemoryController(PhysicalMemory(FRAMES), CycleCounter(),
                           cache_lines=8)
    ctl.install_key(2, KEY_B)
    ctl.read(0x3000, CACHE_LINE, c_bit=True, asid=2)
    assert any(entry[0] == KEY_B for entry in crypto._line_cache)
    ctl.uninstall_key(2)
    assert not any(entry[0] == KEY_B for entry in crypto._line_cache)


# -- the attack surfaces survive the optimization ----------------------------

def test_cross_asid_plaintext_cache_leak_still_reproduces():
    """Section 6.2's channel: a cached plaintext line is served to a
    reader with a *different* ASID.  The fast path must not fix this —
    it is a modelled hardware property."""
    ctl = MemoryController(PhysicalMemory(FRAMES), CycleCounter(),
                           cache_lines=8)
    ctl.install_key(1, KEY_A)
    ctl.install_key(2, KEY_B)
    secret = b"victim secret 16"
    ctl.write(0x4000, secret, c_bit=True, asid=1)
    # attacker (asid 2, different key) reads while the line is cached
    assert ctl.read(0x4000, 16, c_bit=True, asid=2) == secret
    # once the cache is flushed the attacker sees garbage again
    ctl.flush_cache()
    assert ctl.read(0x4000, 16, c_bit=True, asid=2) != secret


def test_replay_at_same_pa_still_works():
    ctl = MemoryController(PhysicalMemory(FRAMES), CycleCounter(),
                           cache_lines=8)
    ctl.install_key(1, KEY_A)
    ctl.write(0x5000, b"stale version 01", c_bit=True, asid=1)
    stale_ct = ctl.dma_read(0x5000, 16)
    ctl.write(0x5000, b"fresh version 02", c_bit=True, asid=1)
    ctl.dma_write(0x5000, stale_ct)        # hypervisor replays old bytes
    assert ctl.read(0x5000, 16, c_bit=True, asid=1) == b"stale version 01"


# -- TLB model ----------------------------------------------------------------

def test_tlb_eviction_is_lru_not_fifo():
    tlb = Tlb(CycleCounter(), capacity=2)
    tlb.insert(1, 0x10, "t10")
    tlb.insert(1, 0x20, "t20")
    assert tlb.lookup(1, 0x10) == "t10"    # refresh the older entry
    tlb.insert(1, 0x30, "t30")             # evicts 0x20, not 0x10
    assert tlb.lookup(1, 0x10) == "t10"
    assert tlb.lookup(1, 0x20) is None
    assert tlb.lookup(1, 0x30) == "t30"
    assert tlb.evictions == 1


def test_tlb_flush_root_only_touches_that_root():
    cycles = CycleCounter()
    tlb = Tlb(cycles, capacity=16)
    for vpn in range(3):
        tlb.insert(7, vpn, "a%d" % vpn)
    tlb.insert(9, 0x99, "b")
    snap = cycles.snapshot()
    tlb.flush_root(7)
    assert cycles.since(snap) > 0
    assert len(tlb) == 1
    assert tlb.lookup(9, 0x99) == "b"
    assert tlb.root_index_sizes() == {9: 1}


def test_tlb_flush_empty_root_charges_nothing():
    cycles = CycleCounter()
    tlb = Tlb(cycles, capacity=16)
    tlb.insert(7, 1, "x")
    snap = cycles.snapshot()
    tlb.flush_root(12345)                  # no entries for this root
    assert cycles.since(snap) == 0


def test_tlb_eviction_keeps_root_index_consistent():
    tlb = Tlb(CycleCounter(), capacity=3)
    for i in range(10):
        tlb.insert(i % 2, i, "t%d" % i)
    sizes = tlb.root_index_sizes()
    assert sum(sizes.values()) == len(tlb) == 3
    # the per-root live counts agree with the live entries themselves
    live = {}
    for (root, _vpn), _t in tlb._live_items():
        live[root] = live.get(root, 0) + 1
    assert live == sizes


def test_tlb_flush_root_is_epoch_tagged_and_lazy():
    """flush_root is O(1): an epoch bump retires the root's entries,
    which then die lazily on lookup — observable behavior identical to
    an eager walk-and-delete."""
    cycles = CycleCounter()
    tlb = Tlb(cycles, capacity=16)
    for vpn in range(5):
        tlb.insert(7, vpn, "r7-%d" % vpn)
    tlb.insert(9, 0x99, "r9")
    assert tlb.root_epoch(7) == 0
    tlb.flush_root(7)
    assert tlb.root_epoch(7) == 1
    assert len(tlb) == 1                      # live view shrank at once
    # the flushed entries are logically gone: lookups miss (and reclaim)
    misses = tlb.misses
    assert tlb.lookup(7, 0) is None
    assert tlb.misses == misses + 1
    assert tlb.lookup(9, 0x99) == "r9"        # other root untouched
    # refilling after the flush works under the new epoch
    tlb.insert(7, 0, "fresh")
    assert tlb.lookup(7, 0) == "fresh"
    assert tlb.root_index_sizes() == {7: 1, 9: 1}


def test_tlb_stale_entries_are_free_eviction_victims():
    """Entries retired by an epoch bump are reclaimed by the eviction
    scan without counting as evictions — just like entries an eager
    flush_root would already have deleted."""
    tlb = Tlb(CycleCounter(), capacity=4)
    for vpn in range(4):
        tlb.insert(3, vpn, "v%d" % vpn)
    tlb.flush_root(3)
    assert len(tlb) == 0
    # four inserts into the full-of-stale TLB must not evict anything
    for vpn in range(4):
        tlb.insert(5, vpn, "w%d" % vpn)
    assert tlb.evictions == 0
    assert len(tlb) == 4
    # a fifth insert now evicts a live entry, LRU first
    tlb.insert(5, 99, "w99")
    assert tlb.evictions == 1
    assert tlb.lookup(5, 0) is None


def test_tlb_new_incarnation_retires_root_without_charging():
    """Migration-receive wiring: the rebuilt guest's TLB starts cold,
    and nobody pays INVLPG cycles for entries the old host owned."""
    cycles = CycleCounter()
    tlb = Tlb(cycles, capacity=16)
    for vpn in range(6):
        tlb.insert(11, vpn, "t%d" % vpn)
    snap = cycles.snapshot()
    epoch = tlb.root_epoch(11)
    tlb.new_incarnation(11)
    assert cycles.since(snap) == 0            # unlike flush_root
    assert tlb.root_epoch(11) == epoch + 1
    assert len(tlb) == 0
    assert tlb.lookup(11, 0) is None
    # bumps even when the root has no live entries (fresh incarnation
    # on a host that never ran it)
    tlb.new_incarnation(11)
    assert tlb.root_epoch(11) == epoch + 2
