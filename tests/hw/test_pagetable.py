"""Tests for the 4-level page-table walker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.constants import (
    PAGE_SIZE,
    PTE_C_BIT,
    PTE_NX,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)
from repro.common.errors import PageFault
from repro.common.types import Access
from repro.hw.memory import FrameAllocator, PhysicalMemory
from repro.hw.pagetable import PageTableWalker, entry_pfn, make_entry


@pytest.fixture
def env():
    mem = PhysicalMemory(256)
    alloc = FrameAllocator(256)
    walker = PageTableWalker(mem, alloc_frame=alloc.alloc)
    root = alloc.alloc()
    mem.zero_frame(root)
    return mem, alloc, walker, root


class TestTranslate:
    def test_identity_map(self, env):
        mem, alloc, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        tr = walker.translate(root, 0x5123, Access.read())
        assert tr.pa == 0x5123
        assert tr.writable

    def test_arbitrary_va_to_pa(self, env):
        mem, alloc, walker, root = env
        va = 0x7F_1234_5000  # exercises distinct high-level indexes
        walker.map(root, va, 9, PTE_WRITABLE)
        assert walker.translate(root, va + 0xAB, Access.read()).pa == 9 * PAGE_SIZE + 0xAB

    def test_unmapped_faults_not_present(self, env):
        _, _, walker, root = env
        with pytest.raises(PageFault) as exc:
            walker.translate(root, 0x9000, Access.read())
        assert exc.value.present is False

    def test_non_canonical_va_faults(self, env):
        _, _, walker, root = env
        with pytest.raises(PageFault):
            walker.translate(root, 1 << 48, Access.read())

    def test_write_to_readonly_supervisor_wp_set(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, 0)  # read-only
        with pytest.raises(PageFault) as exc:
            walker.translate(root, 0x5000, Access.store(), wp=True)
        assert exc.value.present is True and exc.value.write

    def test_write_to_readonly_supervisor_wp_clear_allowed(self, env):
        """CR0.WP=0 lets the supervisor write read-only pages: the type 1
        gate mechanism (paper Section 4.1.3)."""
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, 0)
        tr = walker.translate(root, 0x5000, Access.store(), wp=False)
        assert tr.pa == 0x5000

    def test_user_write_to_readonly_always_faults(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_USER)
        with pytest.raises(PageFault):
            walker.translate(root, 0x5000, Access(write=True, user=True), wp=False)

    def test_user_access_to_supervisor_page_faults(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        with pytest.raises(PageFault):
            walker.translate(root, 0x5000, Access(user=True))

    def test_nx_blocks_fetch(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE | PTE_NX)
        with pytest.raises(PageFault):
            walker.translate(root, 0x5000, Access.fetch(), nxe=True)

    def test_nx_ignored_when_nxe_disabled(self, env):
        """Clearing EFER.NXE disables NX — why Table 2 protects WRMSR."""
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE | PTE_NX)
        tr = walker.translate(root, 0x5000, Access.fetch(), nxe=False)
        assert tr.pa == 0x5000

    def test_smep_blocks_supervisor_fetch_of_user_page(self, env):
        """CR4.SMEP semantics — why Table 2 protects MOV CR4."""
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_USER)
        walker.translate(root, 0x5000, Access.fetch(), smep=False)
        with pytest.raises(PageFault):
            walker.translate(root, 0x5000, Access.fetch(), smep=True)

    def test_c_bit_reported(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE | PTE_C_BIT)
        assert walker.translate(root, 0x5000, Access.read()).c_bit

    @settings(max_examples=30)
    @given(va_page=st.integers(0, (1 << 36) - 1), pfn=st.integers(0, 255))
    def test_property_map_translate_roundtrip(self, va_page, pfn):
        mem = PhysicalMemory(512)
        alloc = FrameAllocator(512, reserved=256)
        walker = PageTableWalker(mem, alloc_frame=alloc.alloc)
        root = alloc.alloc()
        mem.zero_frame(root)
        va = va_page * PAGE_SIZE
        walker.map(root, va, pfn, PTE_WRITABLE)
        assert walker.translate(root, va, Access.store()).pa == pfn * PAGE_SIZE


class TestEdits:
    def test_unmap(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        walker.unmap(root, 0x5000)
        with pytest.raises(PageFault):
            walker.translate(root, 0x5000, Access.read())

    def test_set_flags_write_protect(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        walker.set_flags(root, 0x5000, clear_mask=PTE_WRITABLE)
        with pytest.raises(PageFault):
            walker.translate(root, 0x5000, Access.store(), wp=True)

    def test_entry_pa_locates_leaf(self, env):
        mem, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        entry_pa = walker.entry_pa(root, 0x5000)
        entry = mem.read_u64(entry_pa)
        assert entry_pfn(entry) == 5
        assert entry & PTE_PRESENT

    def test_direct_entry_write_changes_mapping(self, env):
        """Raw PTE rewrite redirects a VA — the primitive behind the
        remapping attacks that Fidelius write-protects against."""
        mem, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        entry_pa = walker.entry_pa(root, 0x5000)
        mem.write_u64(entry_pa, make_entry(7, PTE_PRESENT | PTE_WRITABLE))
        assert walker.translate(root, 0x5000, Access.read()).pa == 7 * PAGE_SIZE

    def test_read_write_entry_levels(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        l2 = walker.read_entry(root, 0x5000, level=2)
        assert l2 & PTE_PRESENT


class TestEnumeration:
    def test_table_pages_cover_all_levels(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        pages = list(walker.table_pages(root))
        levels = sorted(level for level, _ in pages)
        assert levels == [1, 2, 3, 4]

    def test_leaf_mappings(self, env):
        _, _, walker, root = env
        walker.map(root, 0x5000, 5, PTE_WRITABLE)
        walker.map(root, 0x1_0000_0000, 9, 0)
        leaves = dict(walker.leaf_mappings(root))
        assert entry_pfn(leaves[0x5000]) == 5
        assert entry_pfn(leaves[0x1_0000_0000]) == 9
