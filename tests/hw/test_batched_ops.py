"""Differential suite for the span-batched memory-op entry point.

PR 9's batched interpreter core funnels guest memory traffic through
:meth:`MemoryController.run_batch` instead of one Python call per
access.  The invariant is the PR-4 one, extended: *only wall-clock
changes*.  These tests drive randomized batch streams against the
:class:`ReferenceMemoryController` twin (which implements the same API
as a plain per-access loop) and against the per-access methods of the
optimized controller itself, requiring byte-identical results, DRAM
and cycle ledgers.  The crypto/cycle primitives the batched path leans
on (``span_keystream_int``, ``charge_many``) are pinned against their
compositional definitions.
"""

import hashlib
import random

import pytest

from repro.common import crypto
from repro.common.errors import ReproError
from repro.common.constants import CACHE_LINE, PAGE_SIZE
from repro.hw.cycles import CycleCounter
from repro.hw.memctrl import MemoryController, ReferenceMemoryController
from repro.hw.memory import PhysicalMemory, PhysicalMemoryError

FRAMES = 32
SPAN = FRAMES * PAGE_SIZE
ASIDS = (1, 2)


def _pair(cache_lines=16):
    pair = []
    for cls in (MemoryController, ReferenceMemoryController):
        ctl = cls(PhysicalMemory(FRAMES), CycleCounter(),
                  cache_lines=cache_lines)
        for asid in ASIDS:
            ctl.install_key(asid, bytes([asid * 17]) * 16)
        pair.append(ctl)
    return pair


def _random_pieces(rng, max_pieces=3):
    """A batch-op piece list: contiguous-ish spans of mixed size and
    protection, the shape GuestContext._pieces produces."""
    pieces = []
    for _ in range(rng.randrange(1, max_pieces + 1)):
        length = rng.choice((1, 16, 63, 64, 65, 256, PAGE_SIZE,
                             PAGE_SIZE + 64))
        pa = rng.randrange(0, SPAN - length)
        c_bit = rng.random() < 0.8
        asid = rng.choice(ASIDS) if c_bit else 0
        pieces.append((pa, length, c_bit, asid))
    return pieces


def _random_batches(rng, count):
    batches = []
    for _ in range(count):
        ops = []
        for _ in range(rng.randrange(1, 5)):
            roll = rng.random()
            pieces = _random_pieces(rng)
            if roll < 0.45:
                ops.append(("r", pieces))
            elif roll < 0.80:
                total = sum(p[1] for p in pieces)
                data = bytes(rng.getrandbits(8) for _ in range(total))
                ops.append(("w", pieces, data))
            else:
                ops.append(("h", pieces))
        batches.append(ops)
    return batches


@pytest.mark.parametrize("seed", [0xBA7C4, 0x5EED5, 0xC0FFEE])
def test_run_batch_lockstep_with_reference(seed):
    """Randomized batch streams: every op result byte-equal, final DRAM
    byte-equal, cycle ledgers identical to the event."""
    rng = random.Random(seed)
    fast, ref = _pair()
    for ops in _random_batches(rng, 120):
        assert fast.run_batch(ops) == ref.run_batch(ops)
    assert fast.memory.dump() == ref.memory.dump()
    assert fast.cycles.total == ref.cycles.total
    assert fast.cycles.by_reason == ref.cycles.by_reason
    assert fast.cycles.events == ref.cycles.events


@pytest.mark.parametrize("seed", [0x0B07, 0xD1FF])
def test_run_batch_equals_per_access_on_the_fast_path(seed):
    """The batched entry point against the optimized controller's own
    read/write loop: same pieces, same order -> same bytes, same DRAM,
    same ledger.  This is the contract GuestContext.batch documents."""
    rng = random.Random(seed)
    batched = MemoryController(PhysicalMemory(FRAMES), CycleCounter(),
                               cache_lines=16)
    looped = MemoryController(PhysicalMemory(FRAMES), CycleCounter(),
                              cache_lines=16)
    for ctl in (batched, looped):
        for asid in ASIDS:
            ctl.install_key(asid, bytes([asid * 17]) * 16)
    for ops in _random_batches(rng, 80):
        got = batched.run_batch(ops)
        want = []
        for op in ops:
            kind, pieces = op[0], op[1]
            if kind == "r":
                want.append(b"".join(
                    looped.read(pa, n, c_bit=c, asid=a)
                    for pa, n, c, a in pieces))
            elif kind == "w":
                pos = 0
                for pa, n, c, a in pieces:
                    looped.write(pa, op[2][pos:pos + n], c_bit=c, asid=a)
                    pos += n
                want.append(None)
            else:
                want.append(hashlib.sha256(b"".join(
                    looped.read(pa, n, c_bit=c, asid=a)
                    for pa, n, c, a in pieces)).digest())
        assert got == want
    assert batched.memory.dump() == looped.memory.dump()
    assert batched.cycles.total == looped.cycles.total
    assert batched.cycles.by_reason == looped.cycles.by_reason


def test_write_batch_size_mismatch_rejected():
    fast, ref = _pair()
    for ctl in (fast, ref):
        with pytest.raises(PhysicalMemoryError):
            ctl.run_batch([("w", [(0, 8, True, 1)], b"too much data")])


def test_unknown_kind_rejected():
    fast, ref = _pair()
    for ctl in (fast, ref):
        with pytest.raises(ReproError):
            ctl.run_batch([("x", [(0, 8, True, 1)])])


# -- primitives the batched path is built on ---------------------------------

def test_span_keystream_is_concat_of_line_keystreams():
    """span_keystream_int(key, pa, n) must equal the n per-line
    keystreams laid out little-endian — the identity that makes one
    wide XOR equal n narrow ones."""
    rng = random.Random(0x57A9)
    for _ in range(40):
        key = bytes(rng.getrandbits(8) for _ in range(16))
        first = rng.randrange(0, 1 << 24) & ~(CACHE_LINE - 1)
        nlines = rng.randrange(1, 9)
        span = crypto.span_keystream_int(key, first, nlines)
        concat = b"".join(
            crypto.line_keystream_int(key, first + i * CACHE_LINE)
            .to_bytes(CACHE_LINE, "little")
            for i in range(nlines))
        assert span == int.from_bytes(concat, "little")


def test_charge_many_is_n_charges():
    """charge_many(c, reason, n) == n charge(c, reason) calls: same
    total, same buckets, same event count — the order-free ledger
    identity batched transfers rely on."""
    a, b = CycleCounter(), CycleCounter()
    a.charge_many(7, "mem-read-enc", 5)
    a.charge_many(3, "mem-write-enc", 1)
    for _ in range(5):
        b.charge(7, "mem-read-enc")
    b.charge(3, "mem-write-enc")
    assert a.total == b.total
    assert a.by_reason == b.by_reason
    assert a.events == b.events


def test_charge_many_zero_count_is_a_noop():
    counter = CycleCounter()
    counter.charge_many(100, "mem-read-enc", 0)
    assert counter.total == 0
    assert not counter.events
