"""Tests for the DMA engine wrapper and instruction-fetch edge cases."""

import pytest

from repro.common.constants import PAGE_SIZE, PTE_NX
from repro.common.errors import PageFault
from repro.common.types import PRIV_OPCODES, PrivOp
from repro.hw import Machine
from repro.hw.dma import DmaEngine


@pytest.fixture
def m():
    machine = Machine(frames=128, seed=8)
    machine.build_host_address_space()
    return machine


class TestDmaEngine:
    def test_frame_roundtrip(self, m):
        dma = DmaEngine(m.memctrl)
        dma.write_frame(9, bytes([3]) * PAGE_SIZE)
        assert dma.read_frame(9) == bytes([3]) * PAGE_SIZE
        assert dma.transfers == 2

    def test_partial_frame_write_rejected(self, m):
        dma = DmaEngine(m.memctrl)
        with pytest.raises(ValueError):
            dma.write_frame(9, b"short")

    def test_dma_counts_transfers(self, m):
        dma = DmaEngine(m.memctrl)
        dma.read(0x1000, 8)
        dma.write(0x1000, b"x")
        assert dma.transfers == 2


class TestInstructionFetchEdges:
    def test_fetch_across_page_boundary(self, m):
        """An encoding straddling two pages fetches correctly when both
        pages are executable — the geometry the mov CR3 placement rule
        exploits."""
        pfn = m.allocator.alloc()
        next_pfn = pfn + 1
        if not m.allocator.is_allocated(next_pfn):
            assert m.allocator.alloc() == next_pfn
        opcode = PRIV_OPCODES[PrivOp.MOV_CR0]
        rip = pfn * PAGE_SIZE + PAGE_SIZE - 1  # last byte of page
        m.memory.write(rip, opcode)
        for page in (pfn, next_pfn):
            m.walker.set_flags(m.host_root, page * PAGE_SIZE,
                               clear_mask=PTE_NX)
        m.tlb.flush_all("test")
        from repro.common.constants import CR0_PG, CR0_WP
        m.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG | CR0_WP, rip=rip)
        assert m.cpu.cr0 == CR0_PG | CR0_WP

    def test_fetch_straddle_into_nx_page_faults(self, m):
        """If only the first page is executable, the straddling fetch
        faults on the second byte."""
        pfn = m.allocator.alloc()
        next_pfn = pfn + 1
        if not m.allocator.is_allocated(next_pfn):
            assert m.allocator.alloc() == next_pfn
        opcode = PRIV_OPCODES[PrivOp.MOV_CR0]
        rip = pfn * PAGE_SIZE + PAGE_SIZE - 1
        m.memory.write(rip, opcode)
        m.walker.set_flags(m.host_root, pfn * PAGE_SIZE, clear_mask=PTE_NX)
        m.tlb.flush_all("test")
        from repro.common.constants import CR0_PG
        with pytest.raises(PageFault):
            m.cpu.exec_privileged(PrivOp.MOV_CR0, CR0_PG, rip=rip)

    def test_encrypted_code_page_fetch(self, m):
        """Instruction bytes on a C-bit page decrypt through the guest
        key during fetch (SEV encrypts guest code too)."""
        from repro.common.constants import PTE_C_BIT, PTE_WRITABLE
        pfn = m.allocator.alloc()
        va = pfn * PAGE_SIZE
        m.memctrl.install_key(0, b"H" * 16)
        m.cpu.current_asid = 0
        m.walker.set_flags(m.host_root, va,
                           set_mask=PTE_C_BIT, clear_mask=PTE_NX)
        m.tlb.flush_all("test")
        m.memctrl.write(va, PRIV_OPCODES[PrivOp.WRMSR], c_bit=True, asid=0)
        from repro.common.constants import EFER_NXE, MSR_EFER
        m.cpu.exec_privileged(PrivOp.WRMSR, (MSR_EFER, EFER_NXE), rip=va)
        assert m.cpu.nxe_enabled
