"""Edge-path coverage for the round-robin scheduler: behaviour exactly
at the quantum boundary, the ``_park``/re-enter path for tasks leaving
the CPU, and ``max_rounds`` exhaustion semantics."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import XenError
from repro.common.types import CpuMode
from repro.system import System
from repro.xen import hypercalls as hc
from repro.xen.scheduler import GuestTask, RoundRobinScheduler, TIMER_VECTOR


@pytest.fixture
def host():
    return System.create(fidelius=False, frames=2048, seed=0x5CA)


def _guest_writer(n):
    """A program that touches guest memory every step (so every step
    enters guest mode and pending vectors get delivered)."""
    def program(ctx):
        for i in range(n):
            ctx.write(2 * PAGE_SIZE + 8 * i, i.to_bytes(8, "little"))
            yield
    return program


def _pure_python(n):
    """A 'blocked' program: never enters the guest, just burns steps."""
    def program(ctx):
        for _ in range(n):
            yield
    return program


def _task(host, name, program, frames=16):
    _domain, ctx = host.create_plain_guest(name, guest_frames=frames)
    return GuestTask(name, ctx, program)


class TestQuantumBoundary:
    def test_finish_exactly_at_quantum_preempts_once(self, host):
        """A task whose work equals the quantum is preempted at the
        boundary (the scheduler cannot know the generator is spent) and
        parked on the next round's first step."""
        task = _task(host, "eq", _guest_writer(3))
        scheduler = RoundRobinScheduler(host.hypervisor, quantum=3)
        scheduler.run([task])
        assert task.done and task.steps == 3
        assert task.preemptions == 1
        assert scheduler.rounds == 2

    def test_finish_inside_quantum_is_never_preempted(self, host):
        task = _task(host, "lt", _guest_writer(2))
        scheduler = RoundRobinScheduler(host.hypervisor, quantum=3)
        scheduler.run([task])
        assert task.done and task.preemptions == 0
        assert scheduler.rounds == 1

    def test_one_timer_vector_per_preemption(self, host):
        task = _task(host, "ticks", _guest_writer(7))
        RoundRobinScheduler(host.hypervisor, quantum=2).run([task])
        delivered = task.ctx.take_interrupts()
        assert delivered.count(TIMER_VECTOR) == task.preemptions
        assert task.preemptions == 3

    def test_preemption_skipped_when_guest_not_on_cpu(self, host):
        """_preempt is a no-op for a task that ran its quantum without
        ever entering the guest — there is nothing to force out."""
        task = _task(host, "blocked", _pure_python(6))
        RoundRobinScheduler(host.hypervisor, quantum=2).run([task])
        assert task.done and task.steps == 6
        assert task.preemptions == 0
        assert task.ctx.take_interrupts() == []


class TestParkAndReenter:
    def test_park_returns_cpu_to_host(self, host):
        task = _task(host, "parked", _guest_writer(4))
        RoundRobinScheduler(host.hypervisor, quantum=8).run([task])
        assert host.machine.cpu.mode is CpuMode.HOST

    def test_parked_guest_is_reenterable(self, host):
        """After _park the domain is intact: its context re-enters the
        guest and both hypercalls and reads still work."""
        task = _task(host, "alive", _guest_writer(4))
        RoundRobinScheduler(host.hypervisor, quantum=2).run([task])
        task.ctx.hypercall(hc.HC_SCHED_YIELD)   # must not raise
        assert int.from_bytes(task.ctx.read(2 * PAGE_SIZE + 24, 8),
                              "little") == 3

    def test_park_noop_for_task_that_never_entered(self, host):
        task = _task(host, "ghost", _pure_python(2))
        RoundRobinScheduler(host.hypervisor, quantum=4).run([task])
        assert host.machine.cpu.mode is CpuMode.HOST

    def test_unstarted_task_step_rejected(self, host):
        task = _task(host, "cold", _pure_python(2))
        with pytest.raises(XenError):
            task.step()


class TestMaxRounds:
    def test_exhaustion_preserves_finished_peers(self, host):
        """When a runaway task exhausts max_rounds, work the scheduler
        already completed stays completed."""
        finite = _task(host, "finite", _guest_writer(2))

        def forever(ctx):
            while True:
                yield
        endless = _task(host, "endless", forever)
        scheduler = RoundRobinScheduler(host.hypervisor, quantum=2)
        with pytest.raises(XenError):
            scheduler.run([finite, endless], max_rounds=10)
        assert finite.done
        assert not endless.done

    def test_rounds_accumulate_across_runs(self, host):
        """`rounds` is a lifetime counter: a scheduler that already
        spent its budget refuses further work under the same limit."""
        first = _task(host, "first", _guest_writer(2))
        scheduler = RoundRobinScheduler(host.hypervisor, quantum=1)
        scheduler.run([first])
        spent = scheduler.rounds
        assert spent >= 2
        second = _task(host, "second", _guest_writer(2))
        with pytest.raises(XenError):
            scheduler.run([second], max_rounds=spent)

    def test_fresh_limit_allows_more_work(self, host):
        first = _task(host, "a", _guest_writer(2))
        scheduler = RoundRobinScheduler(host.hypervisor, quantum=1)
        scheduler.run([first])
        second = _task(host, "b", _guest_writer(2))
        scheduler.run([second], max_rounds=scheduler.rounds + 10)
        assert second.done
