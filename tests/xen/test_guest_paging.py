"""Tests for guest-managed page tables (the full two-stage walk)."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.xen.guest_paging import (
    GuestAddressSpace,
    GuestPageFault,
    enable_guest_paging,
)


@pytest.fixture
def paged_guest(host):
    domain = host.create_domain("paged", guest_frames=64, sev=True)
    handle = host.firmware.launch_start()
    host.firmware.launch_finish(handle)
    host.firmware.activate(handle, domain.asid)
    domain.sev_handle = handle
    ctx = domain.context()
    space = enable_guest_paging(ctx, identity_pages=4)
    return host, domain, ctx, space


class TestTwoStageTranslation:
    def test_identity_window_roundtrip(self, paged_guest):
        _, _, ctx, space = paged_guest
        space.vwrite(0x2000, b"virtual hello")
        assert space.vread(0x2000, 13) == b"virtual hello"

    def test_arbitrary_gva_mapping(self, paged_guest):
        _, _, ctx, space = paged_guest
        gva = 0x7F12_3450_0000
        space.map(gva, 20)
        space.vwrite(gva + 0x123, b"high half")
        assert space.vread(gva + 0x123, 9) == b"high half"
        # and it's the same physical page as gpa-addressed access
        assert ctx.read(20 * PAGE_SIZE + 0x123, 9) != b""

    def test_unmapped_gva_faults(self, paged_guest):
        _, _, _, space = paged_guest
        with pytest.raises(GuestPageFault):
            space.vread(0x5555_0000, 4)

    def test_guest_readonly_page(self, paged_guest):
        _, _, _, space = paged_guest
        space.map(0x9000_0000, 21, writable=False)
        space.vread(0x9000_0000, 4)
        with pytest.raises(GuestPageFault):
            space.vwrite(0x9000_0000, b"x")

    def test_unmap(self, paged_guest):
        _, _, _, space = paged_guest
        space.map(0xA000_0000, 22)
        space.unmap(0xA000_0000)
        with pytest.raises(GuestPageFault):
            space.vread(0xA000_0000, 1)


class TestCBitInRealPtes:
    def test_encrypted_pte_yields_ciphertext_on_bus(self, paged_guest):
        """Figure 1 made literal: the C-bit sits in the guest PTE and
        decides the key for that page."""
        host, domain, ctx, space = paged_guest
        space.map(0xB000_0000, 24, encrypted=True)
        space.vwrite(0xB000_0000, b"pte-protected secret")
        hpa = host.guest_frame_hpfn(domain, 24) * PAGE_SIZE
        assert host.machine.memory.read(hpa, 20) != b"pte-protected secret"
        assert space.vread(0xB000_0000, 20) == b"pte-protected secret"

    def test_unencrypted_pte_yields_plaintext_on_bus(self, paged_guest):
        host, domain, ctx, space = paged_guest
        space.map(0xC000_0000, 25, encrypted=False)
        space.vwrite(0xC000_0000, b"shared io buffer")
        hpa = host.guest_frame_hpfn(domain, 25) * PAGE_SIZE
        assert host.machine.memory.read(hpa, 16) == b"shared io buffer"

    def test_page_tables_themselves_encrypted(self, paged_guest):
        """The guest's page-table pages are ciphertext on the bus: the
        hypervisor cannot even enumerate the guest's address space."""
        host, domain, ctx, space = paged_guest
        root_hpa = host.guest_frame_hpfn(domain, space.root_gfn) * PAGE_SIZE
        raw = host.machine.memory.read(root_hpa, PAGE_SIZE)
        # a plaintext table would show sparse little-endian entries with
        # low-bit flags; ciphertext shows none of its real entries
        decrypted = ctx.read(space.root_gfn * PAGE_SIZE, PAGE_SIZE)
        assert raw != decrypted

    def test_mixed_c_bits_per_page(self, paged_guest):
        _, _, _, space = paged_guest
        space.map(0xD000_0000, 26, encrypted=True)
        space.map(0xD000_1000, 27, encrypted=False)
        space.vwrite(0xD000_0000, b"secret")
        space.vwrite(0xD000_1000, b"public")
        assert space.vread(0xD000_0000, 6) == b"secret"
        assert space.vread(0xD000_1000, 6) == b"public"


class TestTablePoolManagement:
    def test_pool_exhaustion(self, host):
        domain = host.create_domain("tiny", guest_frames=32, sev=False)
        ctx = domain.context()
        from repro.common.errors import ReproError
        space = GuestAddressSpace(ctx, pt_base_gfn=20, pt_pages=4)
        with pytest.raises(ReproError):
            # force distinct top-level subtrees until the pool dies
            for i in range(8):
                space.map(i << 39, 1)

    def test_tables_tracked(self, paged_guest):
        _, _, _, space = paged_guest
        assert space.root_gfn in space.table_gfns
        assert len(space.table_gfns) >= 4  # root + 3 levels for identity


class TestGuestPagingUnderFidelius:
    def test_protected_guest_with_real_page_tables(self):
        """The full stack: a Fidelius-protected guest running with real
        guest page tables; its tables and data are invisible to the
        hypervisor, and the hypervisor's CPU access faults."""
        from repro.common.errors import PolicyViolation
        from repro.system import GuestOwner, System
        system = System.create(fidelius=True, frames=2048, seed=0x69A)
        owner = GuestOwner(seed=0x69A)
        domain, ctx = system.boot_protected_guest(
            "paged", owner, payload=b"kernel", guest_frames=64)
        space = enable_guest_paging(ctx, identity_pages=2)
        gva = 0x7F00_0000_0000
        space.map(gva, 30, encrypted=True)
        space.vwrite(gva, b"virtual secret under fidelius")
        assert space.vread(gva, 29) == b"virtual secret under fidelius"
        hpfn = system.hypervisor.guest_frame_hpfn(domain, 30)
        with pytest.raises(PolicyViolation):
            system.machine.cpu.load(hpfn * PAGE_SIZE, 16)
