"""Tests for grant tables, event channels and XenStore."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import GrantTableError, XenError
from repro.xen import hypercalls as hc
from repro.xen.grant_table import EMPTY_ENTRY, GrantEntry, GrantTable


class TestGrantEntryCodec:
    def test_pack_unpack_roundtrip(self):
        entry = GrantEntry(permit=True, readonly=True, target_domid=7, gfn=123)
        assert GrantEntry.unpack(entry.pack()) == entry

    def test_empty_entry(self):
        assert not EMPTY_ENTRY.permit

    def test_bad_size_rejected(self):
        with pytest.raises(GrantTableError):
            GrantEntry.unpack(b"short")


class TestGrantTableStructure:
    def test_find_free_ref_skips_active(self, host):
        table = host.dom0.grant_table
        ref = table.find_free_ref()
        table.write_via(ref, GrantEntry(True, False, 1, 5),
                        host.word_writer)
        assert table.find_free_ref() == ref + 1
        assert table.active_refs() == [ref]

    def test_entry_out_of_range(self, host):
        with pytest.raises(GrantTableError):
            host.dom0.grant_table.entry_pa(10_000)


class TestGrantHypercalls:
    def _two_guests(self, host):
        d1 = host.create_domain("g1", guest_frames=32, sev=False)
        d2 = host.create_domain("g2", guest_frames=32, sev=False)
        return d1, d1.context(), d2, d2.context()

    def test_share_and_map_readonly(self, host):
        d1, c1, d2, c2 = self._two_guests(host)
        c1.write(4 * PAGE_SIZE, b"from granter")
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 4, 1)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 0) == hc.E_OK
        assert c2.read(8 * PAGE_SIZE, 12) == b"from granter"

    def test_readonly_grant_blocks_write_mapping(self, host):
        d1, c1, d2, c2 = self._two_guests(host)
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 4, 1)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 1) == hc.E_PERM

    def test_wrong_target_domain_blocked(self, host):
        d1, c1, d2, c2 = self._two_guests(host)
        d3 = host.create_domain("g3", guest_frames=16, sev=False)
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d3.domid, 4, 0)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 0) == hc.E_PERM

    def test_writable_grant_allows_two_way(self, host):
        d1, c1, d2, c2 = self._two_guests(host)
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 4, 0)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 1) == hc.E_OK
        c2.write(8 * PAGE_SIZE, b"written by peer")
        c2.hypercall(hc.HC_SCHED_YIELD)
        assert c1.read(4 * PAGE_SIZE, 15) == b"written by peer"

    def test_unmap(self, host):
        d1, c1, d2, c2 = self._two_guests(host)
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 4, 0)
        c1.hypercall(hc.HC_SCHED_YIELD)
        c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 0)
        assert c2.hypercall(hc.HC_GRANT_UNMAP, 8) == hc.E_OK
        # the next touch faults in a fresh frame of d2's own
        c2.write(8 * PAGE_SIZE, b"x")
        own = host.guest_frame_hpfn(d2, 8)
        assert own != host.guest_frame_hpfn(d1, 4)

    def test_bad_gfn_rejected(self, host):
        d1, c1, d2, _ = self._two_guests(host)
        assert c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 9999, 0) == hc.E_INVAL

    def test_bad_target_rejected(self, host):
        d1, c1, _, _ = self._two_guests(host)
        assert c1.hypercall(hc.HC_GRANT_CREATE, 424242, 4, 0) == hc.E_INVAL

    def test_revoke(self, host):
        d1, c1, d2, c2 = self._two_guests(host)
        ref = c1.hypercall(hc.HC_GRANT_CREATE, d2.domid, 4, 0)
        host.grant_revoke(d1, ref)
        c1.hypercall(hc.HC_SCHED_YIELD)
        assert c2.hypercall(hc.HC_GRANT_MAP, d1.domid, ref, 8, 0) == hc.E_PERM


class TestEventChannels:
    def test_alloc_bind_send(self, host):
        received = []
        channel = host.events.alloc(1, 0)
        host.events.bind(channel.port, lambda ch: received.append(ch.port))
        host.events.send(channel.port)
        assert received == [channel.port]

    def test_send_unbound_accumulates_pending(self, host):
        channel = host.events.alloc(1, 0)
        host.events.send(channel.port)
        host.events.send(channel.port)
        assert channel.pending == 2

    def test_unknown_port_raises(self, host):
        with pytest.raises(XenError):
            host.events.send(9999)

    def test_interceptor_runs_before_delivery(self, host):
        order = []
        channel = host.events.alloc(1, 0)
        host.events.bind(channel.port, lambda ch: order.append("deliver"))
        host.events.interceptor = lambda ch: order.append("intercept")
        host.events.send(channel.port)
        assert order == ["intercept", "deliver"]

    def test_guest_kick_via_hypercall(self, host, guest):
        _, ctx = guest
        received = []
        channel = host.events.alloc(1, 0)
        host.events.bind(channel.port, lambda ch: received.append(1))
        assert ctx.hypercall(hc.HC_EVTCHN_SEND, channel.port) == hc.E_OK
        assert received == [1]

    def test_guest_kick_bad_port(self, guest):
        _, ctx = guest
        assert ctx.hypercall(hc.HC_EVTCHN_SEND, 777) == hc.E_INVAL


class TestXenStore:
    def test_write_read(self, host):
        host.xenstore.write("/local/domain/1/name", "guest")
        assert host.xenstore.read("/local/domain/1/name") == "guest"

    def test_require_missing_raises(self, host):
        with pytest.raises(XenError):
            host.xenstore.require("/nope")

    def test_relative_path_rejected(self, host):
        with pytest.raises(XenError):
            host.xenstore.write("relative", 1)

    def test_list_prefix(self, host):
        host.xenstore.write("/a/b", 1)
        host.xenstore.write("/a/c", 2)
        host.xenstore.write("/z", 3)
        assert host.xenstore.list("/a") == ["/a/b", "/a/c"]

    def test_delete(self, host):
        host.xenstore.write("/k", 1)
        host.xenstore.delete("/k")
        assert host.xenstore.read("/k") is None
