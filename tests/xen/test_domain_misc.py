"""Remaining guest-context surface: MSR reads, convenience helpers,
context identity."""

import pytest

from repro.common.constants import MSR_EFER
from repro.xen import hypercalls as hc


class TestGuestContextMisc:
    def test_rdmsr_roundtrip(self, guest):
        _, ctx = guest
        value = ctx.rdmsr(MSR_EFER)
        assert value == 0  # the stub MSR handler returns zeros

    def test_rdmsr_exposes_only_rcx(self, host, guest):
        """MSR exits expose the MSR number; nothing else is needed."""
        domain, ctx = guest
        ctx._ensure_guest()
        host.machine.cpu.regs["rbx"] = 0x5EC
        ctx.rdmsr(MSR_EFER)
        # on the unprotected baseline the hypervisor could see rbx; the
        # guest's own value must survive the round trip regardless
        assert host.machine.cpu.regs["rbx"] == 0x5EC

    def test_context_vcpu_property(self, guest):
        domain, ctx = guest
        assert ctx.vcpu is domain.vcpu0

    def test_two_contexts_same_vcpu_share_state(self, guest):
        domain, ctx = guest
        other = domain.context()
        ctx.write(0x4000, b"shared")
        assert other.read(0x4000, 6) == b"shared"

    def test_take_interrupts_empty_initially(self, guest):
        _, ctx = guest
        assert ctx.take_interrupts() == []

    def test_memset_cross_page(self, guest):
        from repro.common.constants import PAGE_SIZE
        _, ctx = guest
        ctx.memset(PAGE_SIZE - 8, 0x5A, 16)
        assert ctx.read(PAGE_SIZE - 8, 16) == bytes([0x5A]) * 16


class TestDomainFlags:
    def test_sev_enabled_property(self, host):
        plain = host.create_domain("p", guest_frames=8, sev=False)
        sev = host.create_domain("s", guest_frames=8, sev=True)
        assert not plain.sev_enabled
        assert sev.sev_enabled

    def test_asids_unique_across_sev_domains(self, host):
        asids = {host.create_domain("s%d" % i, guest_frames=4,
                                    sev=True).asid
                 for i in range(4)}
        assert len(asids) == 4
        assert 0 not in asids

    def test_vcpu_count(self, host):
        domain = host.create_domain("smp", guest_frames=8, sev=False,
                                    vcpus=3)
        assert len(domain.vcpus) == 3
        assert [v.index for v in domain.vcpus] == [0, 1, 2]
