"""Tests for the PV network path and the SSL-style secure channel —
making the paper's "network I/O is protected by SSL" assumption real
and checkable."""

import random

import pytest

from repro.common.errors import XenError
from repro.system import GuestOwner, System
from repro.xen.pv_io.net import MAX_FRAME, connect_net_device
from repro.xen.pv_io.secure_channel import (
    ChannelError,
    SecureClient,
    SecureServer,
)

REQUEST = b"GET /payroll?quarter=3"


@pytest.fixture
def netted():
    system = System.create(fidelius=True, frames=2048, seed=0x7E7)
    owner = GuestOwner(seed=0x7E7)
    domain, ctx = system.boot_protected_guest(
        "web", owner, payload=b"client", guest_frames=64)
    frontend, backend, wire = connect_net_device(
        system.hypervisor, domain, ctx)
    return system, ctx, frontend, backend, wire


class TestPlainNetPath:
    def test_tx_reaches_the_wire(self, netted):
        _, _, frontend, backend, wire = netted
        frontend.send(b"hello network")
        assert wire.pop_for_remote().payload == b"hello network"

    def test_rx_reaches_the_guest(self, netted):
        _, _, frontend, _, wire = netted
        wire.deliver_to_guest(b"incoming frame")
        assert frontend.receive() == b"incoming frame"

    def test_quiet_wire_returns_none(self, netted):
        _, _, frontend, _, _ = netted
        assert frontend.receive() is None

    def test_mtu_enforced(self, netted):
        _, _, frontend, _, _ = netted
        with pytest.raises(XenError):
            frontend.send(bytes(MAX_FRAME + 1))

    def test_driver_domain_sees_plaintext_frames(self, netted):
        """Without a secure channel the vNIC leaks like the vbd does."""
        _, _, frontend, backend, _ = netted
        frontend.send(REQUEST)
        assert REQUEST in backend.everything_observed()


class TestSecureChannel:
    def _session(self, netted, seed=5):
        system, _, frontend, backend, wire = netted
        server = SecureServer(random.Random(seed))
        client = SecureClient(frontend, server.pinned_public,
                              random.Random(seed + 1))
        client.handshake(server)
        return client, server, backend

    def test_round_trip(self, netted):
        client, server, _ = self._session(netted)
        assert client.request(REQUEST, server) == b"ack:" + REQUEST
        assert server.received == [REQUEST]

    def test_driver_domain_sees_only_records(self, netted):
        client, server, backend = self._session(netted)
        client.request(REQUEST, server)
        observed = backend.everything_observed()
        assert REQUEST not in observed
        assert b"ack:" not in observed

    def test_sequencing_across_requests(self, netted):
        client, server, _ = self._session(netted)
        for i in range(4):
            payload = b"req-%d" % i
            assert client.request(payload, server) == b"ack:" + payload

    def test_mitm_key_substitution_detected(self, netted):
        """A hypervisor swapping in its own 'server' fails the pin."""
        system, _, frontend, _, _ = netted
        real = SecureServer(random.Random(7))
        fake = SecureServer(random.Random(8))
        client = SecureClient(frontend, real.pinned_public,
                              random.Random(9))
        with pytest.raises(ChannelError):
            client.handshake(fake)

    def test_tampered_record_rejected(self, netted):
        client, server, _ = self._session(netted)
        record = client._layer.seal(REQUEST)
        evil = record[:10] + bytes([record[10] ^ 1]) + record[11:]
        with pytest.raises(ChannelError):
            server._layer.open(evil)

    def test_replayed_record_rejected(self, netted):
        client, server, _ = self._session(netted)
        record = client._layer.seal(REQUEST)
        assert server._layer.open(record) == REQUEST
        with pytest.raises(ChannelError):
            server._layer.open(record)  # replay

    def test_truncated_record_rejected(self, netted):
        client, server, _ = self._session(netted)
        with pytest.raises(ChannelError):
            server._layer.open(b"short")

    def test_request_before_handshake_rejected(self, netted):
        system, _, frontend, _, _ = netted
        server = SecureServer(random.Random(7))
        client = SecureClient(frontend, server.pinned_public,
                              random.Random(9))
        with pytest.raises(ChannelError):
            client.request(REQUEST, server)
