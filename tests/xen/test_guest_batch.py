"""Guest-level batched memory ops vs the per-access loop.

:meth:`GuestContext.batch` front-loads the NPT translations for a list
of span ops and funnels them through one
:meth:`MemoryController.run_batch` call.  Two identically-seeded
systems, one driven per-access and one driven batched with the *same
op order*, must end byte-identical: guest-visible bytes, host DRAM,
the full cycle ledger and the machine state fingerprint — which is
also what makes the batched results safe inside the deterministic
runner digests.
"""

import hashlib

import pytest

from repro.common.constants import PAGE_SIZE
from repro.runner import deterministic_digest
from repro.system import GuestOwner, System
from repro.workloads.guestprogs import CryptoWorker
from repro.common.errors import XenError

SEED = 0xBA7C
PAGES = 6
FIRST_GFN = 40


def _booted():
    system = System.create(fidelius=True, frames=2048, seed=SEED)
    owner = GuestOwner(seed=SEED)
    _domain, ctx = system.boot_protected_guest(
        "batch", owner, payload=b"batch", guest_frames=64)
    return system, ctx


def _seed_pages(ctx):
    for i in range(PAGES):
        ctx.write((FIRST_GFN + i) * PAGE_SIZE,
                  bytes([i + 1]) * PAGE_SIZE)


class TestBatchEqualsPerAccess:
    def test_same_order_same_everything(self):
        """Per-page-ordered batches against the identical per-access
        sequence: bytes, DRAM, cycle ledger and machine fingerprint all
        equal — the strict form of the equivalence."""
        sys_a, ctx_a = _booted()
        sys_b, ctx_b = _booted()
        _seed_pages(ctx_a)
        _seed_pages(ctx_b)

        results_a, results_b = [], []
        for i in range(PAGES):
            gpa = (FIRST_GFN + i) * PAGE_SIZE
            page = ctx_a.read(gpa, PAGE_SIZE)
            digest = hashlib.sha256(page).digest()
            ctx_a.write(gpa, digest)
            results_a.append(digest.hex())

            span = ctx_b.batch([("r", gpa, PAGE_SIZE)])[0]
            assert span == page
            hashed = hashlib.sha256(span).digest()
            ctx_b.batch([("w", gpa, hashed)])
            results_b.append(hashed.hex())

        assert results_a == results_b
        assert deterministic_digest(results_a) \
            == deterministic_digest(results_b)
        for i in range(PAGES):
            gpa = (FIRST_GFN + i) * PAGE_SIZE
            assert ctx_a.read(gpa, PAGE_SIZE) == ctx_b.read(gpa, PAGE_SIZE)
        assert sys_a.machine.memory.dump() == sys_b.machine.memory.dump()
        assert sys_a.machine.cycles.total == sys_b.machine.cycles.total
        assert sys_a.machine.cycles.by_reason \
            == sys_b.machine.cycles.by_reason
        assert sys_a.machine.cycles.events == sys_b.machine.cycles.events

    def test_multi_page_span_read_crosses_page_boundary(self):
        _system, ctx = _booted()
        _seed_pages(ctx)
        first_gpa = FIRST_GFN * PAGE_SIZE
        span = ctx.batch([("r", first_gpa, PAGES * PAGE_SIZE)])[0]
        want = b"".join(ctx.read(first_gpa + i * PAGE_SIZE, PAGE_SIZE)
                        for i in range(PAGES))
        assert span == want

    def test_hash_matches_read_then_sha256(self):
        _system, ctx = _booted()
        _seed_pages(ctx)
        gpa = FIRST_GFN * PAGE_SIZE
        digest = ctx.batch([("h", gpa, 3 * PAGE_SIZE)])[0]
        assert digest == hashlib.sha256(ctx.read(gpa, 3 * PAGE_SIZE)).digest()

    def test_batched_write_is_readable_per_access(self):
        _system, ctx = _booted()
        data = bytes(range(256)) * (2 * PAGE_SIZE // 256)
        gpa = FIRST_GFN * PAGE_SIZE
        ctx.batch([("w", gpa, data)])
        assert ctx.read(gpa, len(data)) == data

    def test_unknown_op_kind_rejected(self):
        _system, ctx = _booted()
        with pytest.raises(XenError):
            ctx.batch([("z", FIRST_GFN * PAGE_SIZE, 8)])


class TestBatchedCryptoWorker:
    def test_batched_worker_digests_and_memory_match_per_access(self):
        """The guest-macro workload itself: the span-read batched
        CryptoWorker produces the same round digests and the same final
        guest memory as the per-access original."""
        _sys_a, ctx_a = _booted()
        _sys_b, ctx_b = _booted()
        plain = CryptoWorker(ctx_a, first_gfn=FIRST_GFN, pages=4)
        fast = CryptoWorker(ctx_b, first_gfn=FIRST_GFN, pages=4,
                            batched=True)
        assert plain.run(rounds=3) == fast.run(rounds=3)
        for i in range(4):
            gpa = (FIRST_GFN + i) * PAGE_SIZE
            assert ctx_a.read(gpa, PAGE_SIZE) == ctx_b.read(gpa, PAGE_SIZE)
