"""Tests for domains, guest contexts and the exit/entry plumbing."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import CpuMode
from repro.xen import hypercalls as hc
from repro.xen.hypervisor import Hypervisor


class TestGuestMemory:
    def test_write_read_roundtrip(self, guest):
        _, ctx = guest
        ctx.write(0x2000, b"payload")
        assert ctx.read(0x2000, 7) == b"payload"

    def test_cross_page_access(self, guest):
        _, ctx = guest
        data = bytes(range(256)) * 20  # crosses a page boundary
        ctx.write(PAGE_SIZE - 100, data)
        assert ctx.read(PAGE_SIZE - 100, len(data)) == data

    def test_unencrypted_guest_visible_raw(self, host, guest):
        domain, ctx = guest
        ctx.write(0x3000, b"plaintext here")
        hpfn = host.guest_frame_hpfn(domain, 3)
        assert host.machine.memory.read(hpfn * PAGE_SIZE, 14) == b"plaintext here"

    def test_memset_and_copy(self, guest):
        _, ctx = guest
        ctx.memset(0x1000, 0xAB, 64)
        ctx.copy(0x2000, 0x1000, 64)
        assert ctx.read(0x2000, 64) == bytes([0xAB]) * 64


class TestSevGuestMemory:
    def test_encrypted_page_is_ciphertext_on_bus(self, host, sev_guest):
        domain, ctx = sev_guest
        ctx.set_page_encrypted(2)
        ctx.write(2 * PAGE_SIZE, b"guest secret!!!!")
        hpfn = host.guest_frame_hpfn(domain, 2)
        assert host.machine.memory.read(hpfn * PAGE_SIZE, 16) != b"guest secret!!!!"
        assert ctx.read(2 * PAGE_SIZE, 16) == b"guest secret!!!!"

    def test_c_bit_page_granularity(self, host, sev_guest):
        """Per-page encryption choice — SEV's flexibility (Section 2)."""
        domain, ctx = sev_guest
        ctx.set_page_encrypted(2)
        ctx.write(2 * PAGE_SIZE, b"encrypted page!!")
        ctx.write(3 * PAGE_SIZE, b"plain page......")
        enc_pfn = host.guest_frame_hpfn(domain, 2)
        plain_pfn = host.guest_frame_hpfn(domain, 3)
        assert host.machine.memory.read(enc_pfn * PAGE_SIZE, 16) != b"encrypted page!!"
        assert host.machine.memory.read(plain_pfn * PAGE_SIZE, 16) == b"plain page......"

    def test_clearing_c_bit(self, host, sev_guest):
        domain, ctx = sev_guest
        ctx.set_page_encrypted(2)
        ctx.set_page_encrypted(2, encrypted=False)
        ctx.write(2 * PAGE_SIZE, b"now plain")
        hpfn = host.guest_frame_hpfn(domain, 2)
        assert host.machine.memory.read(hpfn * PAGE_SIZE, 9) == b"now plain"


class TestExitEntry:
    def test_void_hypercall_roundtrip(self, guest):
        _, ctx = guest
        assert ctx.hypercall(hc.HC_VOID) == hc.E_OK

    def test_unknown_hypercall_enosys(self, guest):
        _, ctx = guest
        assert ctx.hypercall(999) == hc.E_NOSYS

    def test_cpuid_values(self, guest):
        _, ctx = guest
        rax, rbx, rcx, rdx = ctx.cpuid(5)
        assert rax == 0x00A20F10
        assert rbx == 5

    def test_exit_saves_regs_to_hypervisor_memory(self, host, guest):
        """Baseline Xen: the guest register file lands in hypervisor
        memory, readable by any host code (the attack surface)."""
        domain, ctx = guest
        ctx._ensure_guest()
        host.machine.cpu.regs["r12"] = 0x5EC4E7
        ctx.hypercall(hc.HC_VOID)
        assert domain.vcpu0.saved_gprs["r12"] == 0x5EC4E7

    def test_guest_reentry_preserves_gprs(self, host, guest):
        domain, ctx = guest
        ctx._ensure_guest()
        host.machine.cpu.regs["r13"] = 1234
        ctx.hypercall(hc.HC_VOID)
        assert host.machine.cpu.regs["r13"] == 1234

    def test_yield_leaves_host_mode(self, host, guest):
        _, ctx = guest
        ctx.hypercall(hc.HC_SCHED_YIELD)
        assert host.machine.cpu.mode is CpuMode.HOST

    def test_halt(self, host, guest):
        domain, ctx = guest
        ctx.halt()
        assert domain.vcpu0.halted
        assert host.machine.cpu.mode is CpuMode.HOST

    def test_shutdown_destroys_domain(self, host, guest):
        domain, ctx = guest
        ctx.hypercall(hc.HC_SHUTDOWN)
        assert domain.domid not in host.domains

    def test_two_guests_must_yield(self, host, guest):
        from repro.common.errors import XenError
        _, ctx = guest
        dom2 = host.create_domain("other", guest_frames=16, sev=False)
        ctx2 = dom2.context()
        ctx.write(0x1000, b"a")  # guest 1 on the CPU
        with pytest.raises(XenError):
            ctx2.write(0x1000, b"b")
        ctx.hypercall(hc.HC_SCHED_YIELD)
        ctx2.write(0x1000, b"b")
        assert ctx2.read(0x1000, 1) == b"b"


class TestNptManagement:
    def test_prepopulated_by_default(self, host, guest):
        """Batched NPT prepopulation at domain build (Section 4.3.4)."""
        domain, _ = guest
        assert all(domain.npt.maps(gfn * PAGE_SIZE)
                   for gfn in range(domain.guest_frames))

    def test_lazy_mode_fills_on_npf(self, host):
        host.lazy_npt = True
        domain = host.create_domain("lazy", guest_frames=32, sev=False)
        assert not domain.npt.maps(5 * PAGE_SIZE)
        ctx = domain.context()
        ctx.write(5 * PAGE_SIZE, b"fault me in")
        assert domain.npt.maps(5 * PAGE_SIZE)
        assert ctx.read(5 * PAGE_SIZE, 11) == b"fault me in"

    def test_npf_counts_cycles(self, host):
        host.lazy_npt = True
        domain = host.create_domain("lazy", guest_frames=32, sev=False)
        ctx = domain.context()
        snap = host.machine.cycles.snapshot()
        ctx.write(6 * PAGE_SIZE, b"x")
        assert snap.delta(host.machine.cycles).get("npt-fill", 0) > 0

    def test_out_of_bounds_gpa_rejected(self, host, guest):
        from repro.common.errors import XenError
        domain, ctx = guest
        with pytest.raises(XenError):
            ctx.read(domain.guest_frames * PAGE_SIZE + 10, 1)

    def test_distinct_domains_distinct_frames(self, host):
        d1 = host.create_domain("a", guest_frames=16, sev=False)
        d2 = host.create_domain("b", guest_frames=16, sev=False)
        f1 = {host.guest_frame_hpfn(d1, g) for g in range(16)}
        f2 = {host.guest_frame_hpfn(d2, g) for g in range(16)}
        assert not f1 & f2


class TestBoot:
    def test_double_boot_rejected(self, host):
        from repro.common.errors import XenError
        with pytest.raises(XenError):
            host.boot()

    def test_svme_enabled(self, host):
        assert host.machine.cpu.svme_enabled

    def test_text_read_only(self, host):
        from repro.common.errors import PageFault
        with pytest.raises(PageFault):
            host.machine.cpu.store(host.text.base_va, b"\xCC")

    def test_dom0_exists_and_privileged(self, host):
        assert host.dom0.privileged
        assert host.dom0.domid == 0
