"""Tests for the para-virtualized block I/O path."""

import pytest

from repro.common.constants import PAGE_SIZE, SECTOR_SIZE
from repro.common.errors import XenError
from repro.xen.pv_io import BlkRequest, BlkRing, VirtualDisk
from repro.xen.pv_io.frontend import connect_block_device


@pytest.fixture
def blockdev(host, guest):
    domain, ctx = guest
    disk = VirtualDisk(sectors=2048)
    frontend, backend = connect_block_device(host, domain, ctx, disk)
    return disk, frontend, backend


class TestVirtualDisk:
    def test_roundtrip(self):
        disk = VirtualDisk(sectors=16)
        disk.write_sectors(3, b"a" * SECTOR_SIZE)
        assert disk.read_sectors(3, 1) == b"a" * SECTOR_SIZE

    def test_unwritten_sectors_zero(self):
        disk = VirtualDisk(sectors=16)
        assert disk.read_sectors(0, 2) == bytes(2 * SECTOR_SIZE)

    def test_unaligned_write_rejected(self):
        disk = VirtualDisk(sectors=16)
        with pytest.raises(XenError):
            disk.write_sectors(0, b"odd")

    def test_bounds(self):
        disk = VirtualDisk(sectors=4)
        with pytest.raises(XenError):
            disk.read_sectors(3, 2)

    def test_load_image_pads(self):
        disk = VirtualDisk(sectors=16)
        disk.load_image(0, b"kernel")
        assert disk.read_sectors(0, 1).startswith(b"kernel")


class TestBlkRing:
    def test_fifo_order(self):
        ring = BlkRing()
        ring.push_request(BlkRequest("read", 0, 1, 0))
        ring.push_request(BlkRequest("write", 5, 1, 0))
        assert ring.pop_request().op == "read"
        assert ring.pop_request().op == "write"
        assert ring.pop_request() is None

    def test_capacity(self):
        ring = BlkRing(capacity=1)
        ring.push_request(BlkRequest("read", 0, 1, 0))
        with pytest.raises(XenError):
            ring.push_request(BlkRequest("read", 1, 1, 0))

    def test_bad_op_rejected(self):
        with pytest.raises(XenError):
            BlkRequest("erase", 0, 1, 0)

    def test_request_ids_unique(self):
        ring = BlkRing()
        ids = {ring.push_request(BlkRequest("read", i, 1, 0)) for i in range(5)}
        assert len(ids) == 5


class TestBlockPath:
    def test_write_then_read(self, blockdev):
        disk, frontend, _ = blockdev
        frontend.write(7, b"filesystem block")
        data = frontend.read(7, 1)
        assert data.startswith(b"filesystem block")

    def test_multi_sector(self, blockdev):
        disk, frontend, _ = blockdev
        payload = bytes(range(256)) * 8  # 4 sectors
        frontend.write(100, payload)
        assert frontend.read(100, 4) == payload

    def test_backend_sees_plaintext_without_protection(self, blockdev):
        """The baseline leak: Section 2.2's 'security issues not
        considered by AMD memory encryption'."""
        disk, frontend, backend = blockdev
        frontend.write(7, b"CONFIDENTIAL DATA")
        assert b"CONFIDENTIAL DATA" in backend.everything_observed()
        assert b"CONFIDENTIAL DATA" in disk.raw_sector(7)

    def test_shared_buffer_pages_unencrypted(self, host, blockdev, guest):
        """SEV's DMA constraint: buffer pages carry no C-bit."""
        domain, _ = guest
        _, frontend, _ = blockdev
        assert all(gfn not in domain.encrypted_gfns
                   for gfn in frontend.buffer_gfns)

    def test_oversized_request_rejected(self, blockdev):
        _, frontend, _ = blockdev
        with pytest.raises(XenError):
            frontend.write(0, bytes(frontend.buffer_bytes + 1))

    def test_xenstore_published(self, host, blockdev, guest):
        domain, _ = guest
        base = "/local/domain/%d/device/vbd/0" % domain.domid
        assert host.xenstore.require(base + "/ring-refs")
        assert host.xenstore.require(base + "/event-channel")

    def test_disk_activity_counted(self, blockdev):
        disk, frontend, _ = blockdev
        frontend.write(0, bytes(SECTOR_SIZE * 2))
        frontend.read(0, 2)
        assert disk.writes == 2
        assert disk.reads == 2
