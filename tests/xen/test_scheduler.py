"""Tests for the preemptive scheduler — including the end-to-end
isolation property: a protected guest's register and memory state
survives arbitrary interleaving with other guests."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import XenError
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc
from repro.xen.scheduler import GuestTask, RoundRobinScheduler, TIMER_VECTOR


def _counting_program(total, stride_page):
    def program(ctx):
        for i in range(total):
            ctx.write(stride_page * PAGE_SIZE + 8 * i, i.to_bytes(8, "little"))
            yield
    return program


class TestScheduling:
    @pytest.fixture
    def host3(self):
        system = System.create(fidelius=False, frames=2048, seed=0x5C8)
        tasks = []
        for i in range(3):
            domain, ctx = system.create_plain_guest("t%d" % i,
                                                    guest_frames=16)
            tasks.append(GuestTask("t%d" % i, ctx,
                                   _counting_program(10, 2)))
        return system, tasks

    def test_all_tasks_complete(self, host3):
        system, tasks = host3
        scheduler = RoundRobinScheduler(system.hypervisor, quantum=3)
        scheduler.run(tasks)
        assert all(t.done for t in tasks)
        assert all(t.steps == 10 for t in tasks)

    def test_preemption_happens(self, host3):
        system, tasks = host3
        scheduler = RoundRobinScheduler(system.hypervisor, quantum=3)
        scheduler.run(tasks)
        assert all(t.preemptions >= 2 for t in tasks)

    def test_work_is_interleaved(self, host3):
        """With quantum 2 and 10 steps each, no task finishes before
        every task has started."""
        system, tasks = host3
        order = []
        for task in tasks:
            original = task.program

            def traced(ctx, original=original, name=task.name):
                for _ in original(ctx):
                    order.append(name)
                    yield
            task.program = traced
        RoundRobinScheduler(system.hypervisor, quantum=2).run(tasks)
        first_ten = set(order[:8])
        assert len(first_ten) == 3  # everyone ran early

    def test_timer_vector_delivered(self, host3):
        system, tasks = host3
        RoundRobinScheduler(system.hypervisor, quantum=3).run(tasks)
        for task in tasks:
            delivered = task.ctx.take_interrupts()
            assert TIMER_VECTOR in delivered

    def test_results_written_correctly(self, host3):
        system, tasks = host3
        RoundRobinScheduler(system.hypervisor, quantum=3).run(tasks)
        for task in tasks:
            for i in range(10):
                value = task.ctx.read(2 * PAGE_SIZE + 8 * i, 8)
                task.ctx.hypercall(hc.HC_SCHED_YIELD)
                assert int.from_bytes(value, "little") == i

    def test_runaway_guard(self, host3):
        system, tasks = host3

        def forever(ctx):
            while True:
                yield
        endless = GuestTask("loop", tasks[0].ctx, forever)
        scheduler = RoundRobinScheduler(system.hypervisor, quantum=1)
        with pytest.raises(XenError):
            scheduler.run([endless], max_rounds=10)

    def test_bad_quantum_rejected(self, host3):
        system, _ = host3
        with pytest.raises(XenError):
            RoundRobinScheduler(system.hypervisor, quantum=0)


class TestIsolationUnderPreemption:
    def test_protected_state_survives_interleaving(self):
        """Guest A keeps a secret in a callee-saved register and in
        encrypted memory while being preempted around guest B: the
        hypervisor sees zeros at every boundary, and A's state returns
        bit-exact.  This is the shadow machinery under real scheduling
        pressure."""
        system = System.create(fidelius=True, frames=2048, seed=0x5C9)
        owner_a = GuestOwner(seed=0xA)
        dom_a, ctx_a = system.boot_protected_guest(
            "alice", owner_a, payload=b"a", guest_frames=32)
        owner_b = GuestOwner(seed=0xB)
        dom_b, ctx_b = system.boot_protected_guest(
            "bob", owner_b, payload=b"b", guest_frames=32)
        cpu = system.machine.cpu
        observed_r15 = []

        def spy(vcpu, *args):
            observed_r15.append((vcpu.domain.name,
                                 vcpu.saved_gprs["r15"]))
            return hc.E_OK

        system.hypervisor.register_hypercall(230, spy)

        def alice(ctx):
            ctx._ensure_guest()
            cpu.regs["r15"] = 0xA11CE5EC
            ctx.set_page_encrypted(9)
            for i in range(6):
                ctx.write(9 * PAGE_SIZE, b"alice-round-%d" % i)
                ctx.hypercall(230)
                assert cpu.regs["r15"] == 0xA11CE5EC, \
                    "register clobbered across preemption"
                yield

        def bob(ctx):
            ctx._ensure_guest()
            cpu.regs["r15"] = 0xB0B
            for i in range(6):
                ctx.write(5 * PAGE_SIZE, b"bob-%d" % i)
                ctx.hypercall(230)
                yield

        tasks = [GuestTask("alice", ctx_a, alice),
                 GuestTask("bob", ctx_b, bob)]
        RoundRobinScheduler(system.hypervisor, quantum=2).run(tasks)
        assert all(t.done for t in tasks)
        # the hypervisor never saw either guest's r15
        assert all(value == 0 for _, value in observed_r15)
        # and Alice's memory ends in her final state
        assert ctx_a.read(9 * PAGE_SIZE, 13) == b"alice-round-5"
