"""Edge-case and bookkeeping tests for the hypervisor core."""

import pytest

from repro.common.constants import PAGE_SIZE, PTE_C_BIT
from repro.common.errors import XenError
from repro.xen import hypercalls as hc


class TestHooks:
    def test_unknown_hook_event_rejected(self, host):
        with pytest.raises(XenError):
            host.add_hook("no-such-event", lambda *a: None)

    def test_hooks_fire_in_registration_order(self, host):
        order = []
        host.add_hook("guest_frame_alloc", lambda d, p: order.append("a"))
        host.add_hook("guest_frame_alloc", lambda d, p: order.append("b"))
        host.create_domain("g", guest_frames=1, sev=False)
        assert order == ["a", "b"]

    def test_register_hypercall_overrides(self, host, guest):
        _, ctx = guest
        host.register_hypercall(hc.HC_VOID, lambda vcpu, *a: 0x77)
        assert ctx.hypercall(hc.HC_VOID) == 0x77


class TestNptHelpers:
    def test_set_npt_flags_c_bit(self, host, guest):
        domain, _ = guest
        host.set_npt_flags(domain, 3, set_mask=PTE_C_BIT)
        assert domain.npt.c_bit_of(3 * PAGE_SIZE)
        host.set_npt_flags(domain, 3, clear_mask=PTE_C_BIT)
        assert not domain.npt.c_bit_of(3 * PAGE_SIZE)

    def test_fill_npt_with_c_bit(self, host, guest):
        domain, _ = guest
        pfn = host.alloc_guest_frame(domain)
        host.unmap_npt(domain, 5)
        host.fill_npt(domain, 5, pfn, c_bit=True)
        assert domain.npt.c_bit_of(5 * PAGE_SIZE)

    def test_guest_frame_hpfn_tracks_npt(self, host, guest):
        domain, _ = guest
        pfn = host.alloc_guest_frame(domain)
        host.unmap_npt(domain, 5)
        host.fill_npt(domain, 5, pfn)
        assert host.guest_frame_hpfn(domain, 5) == pfn


class TestDomainTeardownAccounting:
    def test_destroy_returns_every_frame(self, host):
        free_before = host.machine.allocator.free_count
        domain, ctx = host.create_domain("temp", guest_frames=24,
                                         sev=False), None
        ctx = domain.context()
        ctx.write(0x1000, b"x")
        ctx.hypercall(hc.HC_SCHED_YIELD)
        host.destroy_domain(domain)
        assert host.machine.allocator.free_count == free_before

    def test_destroy_spares_granted_foreign_frames(self, host):
        """A domain holding grant mappings must not drag the granter's
        frames into its teardown."""
        granter = host.create_domain("granter", guest_frames=16, sev=False)
        mapper = host.create_domain("mapper", guest_frames=16, sev=False)
        gctx = granter.context()
        gctx.write(3 * PAGE_SIZE, b"survivor")
        ref = gctx.hypercall(hc.HC_GRANT_CREATE, mapper.domid, 3, 0)
        gctx.hypercall(hc.HC_SCHED_YIELD)
        mctx = mapper.context()
        assert mctx.hypercall(hc.HC_GRANT_MAP, granter.domid, ref, 8, 0) \
            == hc.E_OK
        mctx.hypercall(hc.HC_SCHED_YIELD)
        host.destroy_domain(mapper)
        assert gctx.read(3 * PAGE_SIZE, 8) == b"survivor"

    def test_destroyed_domain_cannot_reenter(self, host, guest):
        domain, ctx = guest
        ctx.hypercall(hc.HC_SHUTDOWN)
        with pytest.raises(XenError):
            ctx.read(0, 4)


class TestIommuPlumbing:
    def test_enable_twice_rejected(self, host):
        host.enable_iommu()
        with pytest.raises(XenError):
            host.enable_iommu()

    def test_map_without_iommu_rejected(self, host):
        with pytest.raises(XenError):
            host.iommu_map(0, 0)
        with pytest.raises(XenError):
            host.iommu_unmap(0)

    def test_iommu_table_pages_tracked(self, host):
        iommu = host.enable_iommu()
        before = set(iommu.table.table_pfns)
        pfn = host.machine.allocator.alloc()
        host.iommu_map(200, pfn)
        assert iommu.table.all_table_pfns() >= before


class TestBootLayout:
    def test_text_pages_contiguous(self, host):
        vas = host.text.page_vas()
        assert all(vas[i + 1] - vas[i] == PAGE_SIZE
                   for i in range(len(vas) - 1))

    def test_gdt_idt_loaded_at_boot(self, host):
        assert host.machine.cpu.gdt_base == host.text.base_va
        assert host.machine.cpu.idt_base == host.text.base_va + 0x40

    def test_dom0_owns_its_frames(self, host):
        assert len(host.dom0.owned_hpfns) == host.dom0.guest_frames
