"""Unit tests for the nested page table and the code-image builder."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import NestedPageFault, ReproError
from repro.common.types import PRIV_OPCODES, PrivOp
from repro.hw import Machine
from repro.xen.image import CodeImage, default_fidelius_image, default_xen_image
from repro.xen.npt import NestedPageTable


@pytest.fixture
def machine():
    m = Machine(frames=512, seed=5)
    m.build_host_address_space()
    return m


@pytest.fixture
def npt(machine):
    return NestedPageTable(machine)


class TestNestedPageTable:
    def test_map_translate(self, machine, npt):
        pfn = machine.allocator.alloc()
        npt.map_raw(3 * PAGE_SIZE, pfn)
        assert npt.hpa_of(3 * PAGE_SIZE + 0x40) == pfn * PAGE_SIZE + 0x40

    def test_unmapped_raises_nested_fault(self, npt):
        with pytest.raises(NestedPageFault):
            npt.translate(9 * PAGE_SIZE)

    def test_write_to_readonly_mapping_faults(self, machine, npt):
        pfn = machine.allocator.alloc()
        npt.map_raw(3 * PAGE_SIZE, pfn, writable=False)
        npt.translate(3 * PAGE_SIZE, write=False)
        with pytest.raises(NestedPageFault):
            npt.translate(3 * PAGE_SIZE, write=True)

    def test_c_bit_reported(self, machine, npt):
        pfn = machine.allocator.alloc()
        npt.map_raw(3 * PAGE_SIZE, pfn, c_bit=True)
        assert npt.c_bit_of(3 * PAGE_SIZE)

    def test_unmap_raw(self, machine, npt):
        pfn = machine.allocator.alloc()
        npt.map_raw(3 * PAGE_SIZE, pfn)
        npt.unmap_raw(3 * PAGE_SIZE)
        assert not npt.maps(3 * PAGE_SIZE)

    def test_table_pfns_tracked(self, machine, npt):
        before = set(npt.table_pfns)
        pfn = machine.allocator.alloc()
        npt.map_raw(100 * PAGE_SIZE, pfn)
        assert npt.all_table_pfns() >= before

    def test_mapped_hpfns(self, machine, npt):
        pfns = [machine.allocator.alloc() for _ in range(3)]
        for i, pfn in enumerate(pfns):
            npt.map_raw(i * PAGE_SIZE, pfn)
        assert npt.mapped_hpfns() == set(pfns)

    def test_entry_pa_points_at_leaf(self, machine, npt):
        pfn = machine.allocator.alloc()
        npt.map_raw(3 * PAGE_SIZE, pfn)
        entry = machine.memory.read_u64(npt.entry_pa(3 * PAGE_SIZE))
        from repro.hw.pagetable import entry_pfn
        assert entry_pfn(entry) == pfn


class TestCodeImage:
    def test_place_and_lookup(self):
        image = CodeImage(0x10000, pages=1)
        va = image.place(PrivOp.WRMSR, 0x80)
        assert va == 0x10080
        assert image.va_of(PrivOp.WRMSR) == va
        assert image.has(PrivOp.WRMSR)

    def test_bytes_contain_encoding(self):
        image = CodeImage(0x10000, pages=1)
        image.place(PrivOp.VMRUN, 0x40)
        blob = image.to_bytes()
        assert blob[0x40:0x43] == PRIV_OPCODES[PrivOp.VMRUN]

    def test_erase_restores_nops(self):
        image = CodeImage(0x10000, pages=1)
        image.place(PrivOp.VMRUN, 0x40)
        image.erase(PrivOp.VMRUN)
        assert not image.has(PrivOp.VMRUN)
        assert image.to_bytes()[0x40:0x43] == b"\x90\x90\x90"

    def test_erase_unplaced_is_noop(self):
        image = CodeImage(0x10000, pages=1)
        assert image.erase(PrivOp.VMRUN) is None

    def test_out_of_bounds_placement_rejected(self):
        image = CodeImage(0x10000, pages=1)
        with pytest.raises(ReproError):
            image.place(PrivOp.VMRUN, PAGE_SIZE - 1)

    def test_default_xen_image_has_every_op(self):
        image = default_xen_image(0x10000)
        assert all(image.has(op) for op in PrivOp)

    def test_mov_cr3_straddles_page_end(self):
        """The paper's placement requirement: mov CR3 ends its page."""
        image = default_xen_image(0x10000)
        offset = image.va_of(PrivOp.MOV_CR3) - 0x10000
        assert offset + len(PRIV_OPCODES[PrivOp.MOV_CR3]) == PAGE_SIZE

    def test_fidelius_image_splits_gate_types(self):
        """Type-2-guarded ops on page 0; type-3 ops on page 1."""
        image = default_fidelius_image(0x20000)
        page_of = lambda op: (image.va_of(op) - 0x20000) // PAGE_SIZE
        for op in (PrivOp.MOV_CR0, PrivOp.MOV_CR4, PrivOp.WRMSR):
            assert page_of(op) == 0
        for op in (PrivOp.VMRUN, PrivOp.MOV_CR3):
            assert page_of(op) == 1

    def test_page_vas(self):
        image = CodeImage(0x10000, pages=3)
        assert image.page_vas() == [0x10000, 0x11000, 0x12000]
