"""Fixtures for the Xen substrate tests: a booted baseline host."""

import pytest

from repro.hw import Machine
from repro.sev import SevFirmware
from repro.xen import Hypervisor


@pytest.fixture
def host():
    machine = Machine(frames=2048, seed=0xBEEF)
    machine.build_host_address_space()
    firmware = SevFirmware(machine)
    firmware.init()
    hypervisor = Hypervisor(machine, firmware).boot()
    return hypervisor


@pytest.fixture
def guest(host):
    domain = host.create_domain("guest", guest_frames=64, sev=False)
    return domain, domain.context()


@pytest.fixture
def sev_guest(host):
    domain = host.create_domain("sev-guest", guest_frames=64, sev=True)
    handle = host.firmware.launch_start()
    host.firmware.launch_finish(handle)
    host.firmware.activate(handle, domain.asid)
    domain.sev_handle = handle
    return domain, domain.context()
