"""The three-column matrix: the IOMMU extension closes the DMA window
the paper concedes, while Rowhammer still needs the BMT."""

import pytest

from repro.attacks import format_matrix, run_matrix
from repro.attacks.memory import dma_ciphertext_replay
from repro.attacks.physical import rowhammer_bit_flip
from repro.attacks.io import dma_buffer_snoop


@pytest.fixture(scope="module")
def iommu_rows():
    return run_matrix(attacks=[dma_ciphertext_replay, rowhammer_bit_flip,
                               dma_buffer_snoop],
                      include_iommu=True)


class TestIommuColumn:
    def test_dma_replay_closed_by_iommu(self, iommu_rows):
        row = next(r for r in iommu_rows
                   if r.name == "dma-ciphertext-replay")
        assert row.fidelius_succeeded      # conceded by the paper
        assert row.iommu_succeeded is False  # closed by the extension

    def test_rowhammer_not_affected_by_iommu(self, iommu_rows):
        """Rowhammer is a DRAM disturbance, not a bus transaction: the
        IOMMU cannot see it — only the BMT integrity extension can."""
        row = next(r for r in iommu_rows if r.name == "rowhammer-bit-flip")
        assert row.iommu_succeeded is True

    def test_buffer_snoop_blocked_both_ways(self, iommu_rows):
        row = next(r for r in iommu_rows if r.name == "dma-buffer-snoop")
        assert not row.fidelius_succeeded
        assert row.iommu_succeeded is False

    def test_formatting_includes_column(self, iommu_rows):
        text = format_matrix(iommu_rows)
        assert "+iommu" in text


class TestFideliusStats:
    def test_stats_after_activity(self):
        from repro.system import GuestOwner, System
        from repro.xen import hypercalls as hc
        system = System.create(fidelius=True, frames=2048, seed=0x57A7)
        owner = GuestOwner(seed=0x57A7)
        domain, ctx = system.boot_protected_guest(
            "s", owner, payload=b"x", guest_frames=32)
        ctx.hypercall(hc.HC_VOID)
        from repro.common.errors import PolicyViolation
        with pytest.raises(PolicyViolation):
            system.machine.cpu.load(
                system.hypervisor.guest_frame_hpfn(domain, 0) * 4096, 8)
        stats = system.fidelius.stats()
        assert stats["gate1_crossings"] > 0
        assert stats["shadow_roundtrips"] >= 1
        assert stats["faults_blocked"] >= 1
        assert stats["protected_domains"] == 1
        assert stats["audit_entries"] == len(system.fidelius.audit)
