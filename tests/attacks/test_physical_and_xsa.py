"""Physical-attack contrast cases, the BMT fix, and the XSA analysis."""

import pytest

from repro.attacks import analyze_xsa, build_corpus
from repro.attacks.physical import (
    cold_boot_against_unencrypted_guest,
    rowhammer_with_bmt,
)
from repro.attacks.xsa import (
    Component,
    Coverage,
    Impact,
    classify,
)
from repro.system import System


class TestColdBootContrast:
    def test_unencrypted_guest_leaks_on_cold_boot(self):
        """The contrast that motivates memory encryption (Section 1):
        without SEV the dump contains the secret."""
        system = System.create(fidelius=False, frames=2048, seed=31)
        assert cold_boot_against_unencrypted_guest(system)

    def test_disk_never_holds_kblk(self):
        """K_blk lives only inside encrypted guest memory (Section 6.1)."""
        from repro.system import GuestOwner
        system = System.create(fidelius=True, frames=2048, seed=37)
        owner = GuestOwner(seed=5)
        domain, ctx = system.boot_protected_guest(
            "g", owner, payload=b"x", guest_frames=32)
        encoder = system.aesni_encoder_for(ctx)
        disk, frontend, _ = system.attach_disk(domain, ctx, encoder=encoder)
        frontend.write(0, b"some file")
        dump = system.machine.cold_boot_dump()
        assert all(owner.kblk not in frame for frame in dump.values())
        assert all(owner.kblk not in disk.raw_sector(s)
                   for s in range(4))


class TestRowhammerWithBmt:
    def test_bmt_extension_detects_the_flip(self):
        """Section 8's suggested hardware integrity closes the gap the
        software design concedes."""
        system = System.create(fidelius=True, frames=2048, seed=41)
        assert rowhammer_with_bmt(system)


class TestXsaCorpus:
    def test_corpus_size(self):
        corpus = build_corpus()
        assert len(corpus) == 235

    def test_component_split(self):
        corpus = build_corpus()
        qemu = [a for a in corpus if a.component is Component.QEMU]
        assert len(qemu) == 58
        assert len(corpus) - len(qemu) == 177

    def test_corpus_deterministic(self):
        assert build_corpus(seed=7) == build_corpus(seed=7)

    def test_classifier_rules(self):
        corpus = build_corpus()
        for advisory in corpus:
            coverage = classify(advisory)
            if advisory.component is Component.QEMU:
                assert coverage is Coverage.OUT_OF_SCOPE
            elif advisory.impact in (Impact.PRIVILEGE_ESCALATION,
                                     Impact.INFO_LEAK):
                assert coverage is Coverage.THWARTED
            else:
                assert coverage is Coverage.OUT_OF_SCOPE

    def test_paper_headline_numbers(self):
        """'Fidelius can thwart 31 (17.5%) ... and 22 (12.4%) ...; 14
        (7.9%) are due to flaws inside the guest VM' (Section 6.2)."""
        stats = analyze_xsa()
        assert stats["total"] == 235
        assert stats["hypervisor_related"] == 177
        assert stats["privilege_escalation_thwarted"] == 31
        assert stats["info_leak_thwarted"] == 22
        assert stats["guest_internal"] == 14
        assert stats["privilege_escalation_pct"] == pytest.approx(17.5, abs=0.1)
        assert stats["info_leak_pct"] == pytest.approx(12.4, abs=0.1)

    def test_every_thwarted_advisory_names_a_mechanism(self):
        corpus = build_corpus()
        for advisory in corpus:
            if classify(advisory) is Coverage.THWARTED:
                assert "out of scope" not in advisory.mechanism
