"""The lesion study: every Fidelius mechanism is load-bearing.

For each lesion, the attack that mechanism stops must break through a
lesioned host — and a control attack covered by a *different* mechanism
must stay blocked (the lesion is surgical, not a collapse).
"""

import pytest

from repro.attacks import ALL_ATTACKS
from repro.attacks.lesions import LESION_CATALOG, apply_lesion
from repro.system import System

_BY_NAME = {fn.attack_name: fn for fn in ALL_ATTACKS}

#: lesion -> an unrelated attack that must remain blocked
_CONTROLS = {
    "no-shadowing": "grant-permission-widening",
    "no-binary-rewrite": "register-steal",
    "no-npt-policy": "register-steal",
    "no-git-policy": "register-steal",
    "no-guest-unmapping": "register-steal",
    "no-sev-command-gate": "grant-permission-widening",
}


def _lesioned_system(name, seed):
    system = System.create(fidelius=True, frames=2048, seed=seed)
    return apply_lesion(system, name)


class TestLesionStudy:
    @pytest.mark.parametrize("lesion", sorted(LESION_CATALOG),
                             ids=lambda n: n)
    def test_lesion_reopens_its_attack(self, lesion):
        _, attack_name = LESION_CATALOG[lesion]
        attack_fn = _BY_NAME[attack_name]
        result = attack_fn(_lesioned_system(lesion, seed=0x1E51))
        assert result.succeeded, (
            "with %s applied, %s should succeed but was blocked by %s"
            % (lesion, attack_name, result.blocked_by))

    @pytest.mark.parametrize("lesion", sorted(LESION_CATALOG),
                             ids=lambda n: n)
    def test_lesion_is_surgical(self, lesion):
        control_name = _CONTROLS[lesion]
        attack_fn = _BY_NAME[control_name]
        result = attack_fn(_lesioned_system(lesion, seed=0x1E52))
        assert result.blocked, (
            "%s should not affect %s, but it got through"
            % (lesion, control_name))

    def test_intact_host_blocks_every_lesion_attack(self):
        """Control of controls: without any lesion, each of the
        catalogued attacks stays blocked."""
        for lesion, (_, attack_name) in sorted(LESION_CATALOG.items()):
            system = System.create(fidelius=True, frames=2048, seed=0x1E53)
            result = _BY_NAME[attack_name](system)
            assert result.blocked, attack_name

    def test_unknown_lesion_rejected(self):
        system = System.create(fidelius=True, frames=2048, seed=0x1E54)
        with pytest.raises(KeyError):
            apply_lesion(system, "no-such-mechanism")

    def test_lesions_are_audited(self):
        system = _lesioned_system("no-shadowing", seed=0x1E55)
        assert "lesion-applied" in system.fidelius.audit_kinds()
