"""The Section 6 security evaluation as a test suite.

Every attack is asserted both ways: it must *succeed* against the
SEV-only baseline when the paper says the surface exists (otherwise our
model is too strong, and blocking it under Fidelius would be vacuous),
and it must be blocked under Fidelius when the paper claims the defence.
"""

import pytest

from repro.attacks import ALL_ATTACKS
from repro.system import System


def _system(protected, seed):
    return System.create(fidelius=protected, frames=2048, seed=seed)


@pytest.mark.parametrize(
    "attack_fn", ALL_ATTACKS, ids=[a.attack_name for a in ALL_ATTACKS])
class TestAttackMatrix:
    def test_baseline_behaviour(self, attack_fn):
        result = attack_fn(_system(False, seed=11))
        assert result.succeeded == attack_fn.baseline_succeeds, \
            "baseline: %s (%s)" % (result.detail, result.blocked_by)

    def test_fidelius_behaviour(self, attack_fn):
        result = attack_fn(_system(True, seed=13))
        expected_blocked = attack_fn.fidelius_blocks
        assert result.blocked == expected_blocked, \
            "fidelius: %s (%s)" % (result.detail, result.blocked_by)


class TestAttackAuditTrail:
    """Blocked attacks leave an audit record (Section 5.3's 'log this
    operation for further auditing')."""

    def test_fault_blocked_attacks_audited(self):
        from repro.attacks.memory import cpu_ciphertext_replay
        system = _system(True, seed=17)
        result = cpu_ciphertext_replay(system)
        assert result.blocked
        assert "fault-blocked" in system.fidelius.audit_kinds()

    def test_policy_denials_audited(self):
        from repro.attacks.grants import grant_permission_widening
        system = _system(True, seed=19)
        result = grant_permission_widening(system)
        assert result.blocked
        kinds = system.fidelius.audit_kinds()
        assert "denied" in kinds or "fault-blocked" in kinds

    def test_iago_block_audited(self):
        from repro.attacks.state import iago_return_value
        system = _system(True, seed=23)
        result = iago_return_value(system)
        assert result.blocked
        assert "iago-blocked" in system.fidelius.audit_kinds()


class TestAttackRegistry:
    def test_names_unique(self):
        names = [fn.attack_name for fn in ALL_ATTACKS]
        assert len(names) == len(set(names))

    def test_registry_covers_all_attacks(self):
        from repro.attacks.base import attack
        assert {fn.attack_name for fn in ALL_ATTACKS} <= set(attack.registry)

    def test_every_attack_cites_the_paper(self):
        assert all("§" in fn.paper_ref or "Table" in fn.paper_ref
                   for fn in ALL_ATTACKS)

    def test_expected_count(self):
        assert len(ALL_ATTACKS) == 28
