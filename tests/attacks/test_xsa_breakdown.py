"""Tests for the per-mechanism XSA breakdown."""

from repro.attacks.xsa import (
    PRIV_ESCALATION_XSAS,
    INFO_LEAK_XSAS,
    build_corpus,
    mechanism_breakdown,
)


class TestMechanismBreakdown:
    def test_totals_add_up(self):
        breakdown = mechanism_breakdown()
        assert sum(breakdown.values()) == \
            PRIV_ESCALATION_XSAS + INFO_LEAK_XSAS

    def test_every_mechanism_is_a_fidelius_defence(self):
        for mechanism in mechanism_breakdown():
            assert "out of scope" not in mechanism

    def test_deterministic(self):
        corpus = build_corpus(seed=9)
        assert mechanism_breakdown(corpus) == mechanism_breakdown(corpus)

    def test_core_mechanisms_present(self):
        breakdown = mechanism_breakdown()
        names = " ".join(breakdown)
        assert "PIT policy" in names
        assert "GIT policy" in names
        assert "shadow" in names.lower()
