"""Crash consistency: recover from faults mid-operation, and prove the
fault harness catches the lost-tenant bug it was built to prevent."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.errors import (
    PhysicalMemoryError,
    ReproError,
    SevError,
    XenError,
)
from repro.core.migration import (
    migrate_guest,
    receive_guest,
    restore_guest,
    send_guest,
    snapshot_guest,
)
from repro.faults.inject import arm_system
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.soak import fleet_violations
from repro.cloud import Cloud
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


def _system(seed=0xC8A5):
    return System.create(fidelius=True, frames=2048, seed=seed)


def _stateful_guest(system, name="app"):
    domain, ctx = system.boot_protected_guest(
        name, GuestOwner(seed=0x33), payload=b"crash-consistent app",
        guest_frames=32)
    ctx.set_page_encrypted(5)
    ctx.write(5 * PAGE_SIZE, b"durable state")
    ctx.hypercall(hc.HC_SCHED_YIELD)
    return domain, ctx


def _plan(site, action="error"):
    return FaultPlan([FaultSpec(site, action, nth=1)])


class TestSnapshotRestore:
    def test_fault_mid_restore_then_restore_again_succeeds(self):
        system = _system()
        domain, _ = _stateful_guest(system)
        package = snapshot_guest(system.fidelius, domain)
        system.hypervisor.destroy_domain(domain)

        injector = arm_system(system, _plan("firmware.receive_update"))
        with pytest.raises(SevError, match="injected failure"):
            restore_guest(system.fidelius, package)
        injector.disarm()

        # The failed restore rolled back completely; the snapshot is
        # still restorable and the guest state is intact.
        restored, rctx = restore_guest(system.fidelius, package)
        assert rctx.read(5 * PAGE_SIZE, 13) == b"durable state"
        assert "migration-receive-failed" in system.fidelius.audit_kinds()
        assert [d.name for d in
                system.hypervisor.domains.values()].count("app") == 1

    def test_dma_flip_mid_restore_never_leaks_plaintext(self):
        # SEV has no DRAM integrity tree: a bit flip on the ciphertext
        # path can corrupt the restored guest.  The invariant that must
        # survive is confidentiality — flipped ciphertext stays
        # ciphertext, and a failure (if any) is a clean ReproError.
        system = _system()
        domain, _ = _stateful_guest(system)
        package = snapshot_guest(system.fidelius, domain)
        system.hypervisor.destroy_domain(domain)
        injector = arm_system(
            system, FaultPlan([FaultSpec("dma.write", "flip", nth=2)]))
        try:
            restore_guest(system.fidelius, package)
        except ReproError:
            pass
        injector.disarm()
        assert not system.memory_contains(b"durable state")
        assert not system.memory_contains(b"crash-consistent app")


class TestLostTenantDetection:
    """The acceptance gate: a re-broken ``migrate_guest`` (source torn
    down before the target commits) must be caught by these checks."""

    def _broken_migrate(self, source_fidelius, domain, target_fidelius):
        # The pre-fix ordering, reconstructed: destroy the source first,
        # then try to receive.  A receive failure now loses the tenant.
        package = send_guest(source_fidelius, domain,
                             target_fidelius.firmware.platform_public_key)
        source_fidelius.hypervisor.destroy_domain(domain)
        return receive_guest(target_fidelius, package)

    def test_fixed_migrate_keeps_the_source_under_the_same_fault(self):
        cloud = Cloud(hosts=2, frames=2048, seed=0xD1)
        cloud.launch_tenant("t", GuestOwner(seed=9), payload=b"pp",
                            guest_frames=16, host_index=0)
        injector = arm_system(cloud.host(1),
                              _plan("firmware.receive_finish"),
                              label="host1")
        with pytest.raises(SevError):
            cloud.migrate_tenant("t", to_host_index=1)
        injector.disarm()
        assert fleet_violations(cloud, []) == []
        cloud.tenants["t"].ctx.hypercall(hc.HC_SCHED_YIELD)

    def test_broken_ordering_is_flagged_as_tenant_loss(self, monkeypatch):
        cloud = Cloud(hosts=2, frames=2048, seed=0xD2)
        cloud.launch_tenant("t", GuestOwner(seed=9), payload=b"pp",
                            guest_frames=16, host_index=0)
        monkeypatch.setattr("repro.cloud.migrate_guest",
                            self._broken_migrate)
        injector = arm_system(cloud.host(1),
                              _plan("firmware.receive_finish"),
                              label="host1")
        with pytest.raises(SevError):
            cloud.migrate_tenant("t", to_host_index=1)
        injector.disarm()
        violations = fleet_violations(cloud, [])
        assert violations and any("lost" in v for v in violations)


class TestRingFaults:
    def _disk_guest(self):
        system = _system(seed=0xD15C)
        domain, ctx = system.boot_protected_guest(
            "io", GuestOwner(seed=2), payload=b"io app", guest_frames=48)
        encoder = system.aesni_encoder_for(ctx)
        _, frontend, _ = system.attach_disk(domain, ctx, sectors=32,
                                            encoder=encoder)
        return system, frontend

    def test_dropped_ring_slot_fails_cleanly(self):
        system, frontend = self._disk_guest()
        injector = arm_system(system, _plan("ring.pop_request", "drop"))
        injector.arm_ring(frontend.ring)
        with pytest.raises(XenError):
            frontend.write(0, b"never lands")
        injector.disarm()
        # The device is still usable after the glitch.
        frontend.write(0, b"lands now")
        assert frontend.read(0, 1)[:9] == b"lands now"

    def test_duplicated_request_does_not_wedge_the_ring(self):
        system, frontend = self._disk_guest()
        injector = arm_system(system, _plan("ring.pop_request", "dup"))
        injector.arm_ring(frontend.ring)
        frontend.write(0, b"written once")
        injector.disarm()
        assert frontend.read(0, 1)[:12] == b"written once"


class TestMemctrlGuards:
    def test_negative_dma_length_is_rejected(self):
        system = _system(seed=0x9E6)
        with pytest.raises(PhysicalMemoryError):
            system.machine.memctrl.dma_read(0, -4)
