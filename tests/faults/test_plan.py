"""FaultPlan and FaultSpec: validation, triggers, seeded determinism."""

import pytest

from repro.common.errors import ReproError
from repro.faults.plan import DEFAULT_SITES, SITE_ACTIONS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("firmware.frobnicate", "error", nth=1)

    def test_unsupported_action_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("dma.read", "error", nth=1)

    def test_never_firing_spec_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("dma.read", "flip")

    def test_bad_probability_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("dma.read", "flip", probability=1.5)

    def test_describe_mentions_trigger(self):
        assert "call #3" in FaultSpec("dma.read", "flip", nth=3).describe()
        assert "p=0.100" in FaultSpec(
            "dma.read", "drop", probability=0.1).describe()

    def test_every_declared_site_action_is_constructible(self):
        for site, actions in SITE_ACTIONS.items():
            for action in actions:
                FaultSpec(site, action, nth=1)


class TestFaultPlan:
    def test_for_site_returns_indexed_specs_in_order(self):
        plan = FaultPlan([
            FaultSpec("dma.read", "flip", nth=1),
            FaultSpec("attest.quote", "stale", nth=1),
            FaultSpec("dma.read", "drop", nth=2),
        ])
        assert plan.for_site("dma.read") == [
            (0, plan.specs[0]), (2, plan.specs[2])]
        assert plan.for_site("ring.pop_request") == []

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(1234, nfaults=6)
        b = FaultPlan.random(1234, nfaults=6)
        assert a.specs == b.specs
        assert FaultPlan.random(1235, nfaults=6).specs != a.specs

    def test_random_plan_respects_site_subset(self):
        plan = FaultPlan.random(9, nfaults=8, sites=("dma.read",))
        assert plan.sites() == ["dma.read"]

    def test_default_sites_cover_all_boundaries(self):
        prefixes = {site.split(".")[0] for site in DEFAULT_SITES}
        assert prefixes == {"firmware", "dma", "attest", "ring"}
