"""HostInjector mechanics: triggers, arming, disarming, schedules."""

import pytest

from repro.common.errors import SevError
from repro.faults.inject import HostInjector, arm_system, schedule_bytes
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw import Machine
from repro.system import GuestOwner, System


def _machine(seed=0xF00D):
    return Machine(frames=64, seed=seed)


class TestTriggers:
    def test_nth_trigger_fires_on_exactly_that_call(self):
        plan = FaultPlan([FaultSpec("dma.read", "flip", nth=3)])
        injector = HostInjector(plan, _machine())
        assert [injector.fire("dma.read") for _ in range(5)] == [
            None, None, "flip", None, None]
        assert injector.fired == [("host", "dma.read", 3, "flip")]

    def test_count_bounds_total_firings(self):
        plan = FaultPlan([
            FaultSpec("dma.read", "drop", probability=1.0, count=2)])
        injector = HostInjector(plan, _machine())
        assert [injector.fire("dma.read") for _ in range(4)] == [
            "drop", "drop", None, None]

    def test_occurrence_counters_are_per_site(self):
        plan = FaultPlan([FaultSpec("dma.write", "flip", nth=2)])
        injector = HostInjector(plan, _machine())
        assert injector.fire("dma.read") is None
        assert injector.fire("dma.write") is None
        assert injector.fire("dma.write") == "flip"

    def test_probability_draws_replay_from_machine_seed(self):
        plan = FaultPlan([
            FaultSpec("dma.read", "flip", probability=0.3, count=99)])
        runs = []
        for _ in range(2):
            injector = HostInjector(plan, _machine(seed=42))
            runs.append([injector.fire("dma.read") for _ in range(30)])
        assert runs[0] == runs[1]
        assert "flip" in runs[0]

    def test_flip_corrupts_exactly_one_byte(self):
        plan = FaultPlan([FaultSpec("dma.read", "flip", nth=1)])
        injector = HostInjector(plan, _machine())
        data = bytes(32)
        flipped = injector._flip(data)
        assert len(flipped) == 32
        assert sum(a != b for a, b in zip(data, flipped)) == 1


class TestArming:
    def test_armed_firmware_call_injects_then_disarm_restores(self):
        system = System.create(fidelius=True, frames=1024, seed=0xA1)
        plan = FaultPlan([FaultSpec("firmware.receive_start", "error", nth=1)])
        injector = arm_system(system, plan)
        assert "firmware_call" in vars(system.fidelius)
        owner = GuestOwner(seed=7)
        with pytest.raises(SevError, match="injected failure"):
            system.boot_protected_guest("g", owner, payload=b"x",
                                        guest_frames=16)
        injector.disarm()
        assert "firmware_call" not in vars(system.fidelius)
        assert "_fault_injector" not in vars(system.fidelius)
        # Pristine again: the same boot now succeeds.
        system.boot_protected_guest("g", GuestOwner(seed=8), payload=b"x",
                                    guest_frames=16)

    def test_dma_drop_reads_zeros_and_flip_corrupts(self):
        machine = _machine()
        machine.memory.write(0, b"\xAA" * 16)
        plan = FaultPlan([
            FaultSpec("dma.read", "drop", nth=1),
            FaultSpec("dma.read", "flip", nth=2),
        ])
        injector = HostInjector(plan, machine).arm_memctrl(machine.memctrl)
        assert machine.memctrl.dma_read(0, 16) == bytes(16)
        corrupted = machine.memctrl.dma_read(0, 16)
        assert corrupted != b"\xAA" * 16
        injector.disarm()
        assert machine.memctrl.dma_read(0, 16) == b"\xAA" * 16

    def test_schedule_bytes_serializes_fired_log(self):
        plan = FaultPlan([FaultSpec("dma.read", "drop", nth=1)])
        machine = _machine()
        injector = HostInjector(plan, machine, label="hostX")
        injector.arm_memctrl(machine.memctrl)
        machine.memctrl.dma_read(0, 4)
        assert schedule_bytes([injector]) == b"hostX dma.read #1 drop"
