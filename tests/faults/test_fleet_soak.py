"""The soak's ``--fleet-profile``: event-queue storms, resumable clocks.

The fleet profile replaces the classic linear op list with a
virtual-clock :class:`~repro.fleet.events.EventQueue` schedule (storm
migrations snapped to shared instants so the seeded tie-break resolves
real races) while keeping every fault-injection and confidentiality
check of the classic soak.  These tests pin the three contracts the
profile adds: seed determinism, byte-identical checkpoint/resume (the
pending queue *and* the virtual clock ride in the payload), and
fail-closed separation from classic-profile checkpoints.
"""

import pickle

import pytest

from repro.checkpoint.store import CheckpointError
from repro.faults.soak import (
    FLEET_INSEED_KIND,
    results_digest,
    run_fleet_scenario,
    run_scenario,
    soak_report,
)

PARAMS = {"hosts": 2, "tenants": 2, "frames": 512, "nfaults": 3,
          "migrations": 4}


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = run_fleet_scenario(5, **PARAMS)
        second = run_fleet_scenario(5, **PARAMS)
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_virtual_clock_enters_the_result(self):
        result = run_fleet_scenario(5, **PARAMS)
        clock_marks = [op for op in result.completed_ops
                       if op.startswith("fleet-clock:")]
        assert len(clock_marks) == 1
        assert int(clock_marks[0].split(":")[1]) > 0

    def test_fleet_profile_differs_from_classic(self):
        classic = run_scenario(5, hosts=2, tenants=2, frames=512,
                               nfaults=3)
        fleet = run_fleet_scenario(5, **PARAMS)
        assert classic.completed_ops != fleet.completed_ops

    def test_sharded_sweep_digest_matches_serial(self):
        serial = soak_report(seeds=(1, 2), jobs=1, fleet_profile=True,
                             **PARAMS)
        sharded = soak_report(seeds=(1, 2), jobs=2, reuse_workers=False,
                              fleet_profile=True, **PARAMS)
        assert results_digest(serial.values()) == \
            results_digest(sharded.values())


class TestCheckpointResume:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        baseline = run_fleet_scenario(5, **PARAMS)
        checkpointed = run_fleet_scenario(
            5, checkpoint_dir=str(tmp_path / "unit"), every_events=1,
            **PARAMS)
        assert pickle.dumps(checkpointed) == pickle.dumps(baseline)

    def test_resume_restores_queue_and_clock_byte_for_byte(self, tmp_path):
        baseline = run_fleet_scenario(5, **PARAMS)
        run_fleet_scenario(5, checkpoint_dir=str(tmp_path / "unit"),
                           every_events=1, **PARAMS)
        resumed = run_fleet_scenario(
            5, checkpoint_dir=str(tmp_path / "unit"), every_events=1,
            **PARAMS)
        assert pickle.dumps(resumed) == pickle.dumps(baseline)

    def test_checkpoints_carry_the_fleet_kind(self, tmp_path):
        from repro.checkpoint.store import CheckpointStore
        run_fleet_scenario(5, checkpoint_dir=str(tmp_path / "unit"),
                           every_events=1, **PARAMS)
        manifest = CheckpointStore(str(tmp_path / "unit")).require_latest()
        assert manifest["kind"] == FLEET_INSEED_KIND

    def test_classic_checkpoint_refuses_fleet_resume(self, tmp_path):
        run_scenario(5, hosts=2, tenants=2, frames=512, nfaults=3,
                     checkpoint_dir=str(tmp_path / "unit"),
                     every_events=1)
        with pytest.raises(CheckpointError):
            run_fleet_scenario(5, checkpoint_dir=str(tmp_path / "unit"),
                               every_events=1, **PARAMS)

    def test_resume_rejects_parameter_drift(self, tmp_path):
        run_fleet_scenario(5, checkpoint_dir=str(tmp_path / "unit"),
                           every_events=1, **PARAMS)
        other = dict(PARAMS, migrations=PARAMS["migrations"] + 1)
        with pytest.raises(CheckpointError, match="parameters"):
            run_fleet_scenario(5, checkpoint_dir=str(tmp_path / "unit"),
                               every_events=1, **other)
