"""Chaos soak: seeded end-to-end scenarios across the whole fleet.

The quick smoke runs on every test invocation; the full 20-seed sweep
(the ISSUE acceptance bar) is marked ``soak`` and runs in the dedicated
CI job: ``pytest -m soak``.
"""

import pytest

from repro.faults.soak import DEFAULT_SEEDS, run_scenario, soak


def _assert_clean(result):
    assert result.violations == [], (
        "seed %d violated invariants:\n%s" % (
            result.seed, "\n".join(result.violations)))


class TestSmoke:
    def test_three_seeds_run_clean(self):
        for result in soak(seeds=(0, 1, 2)):
            _assert_clean(result)
            assert len(result.completed_ops) >= 1

    def test_same_seed_reproduces_the_same_schedule_byte_for_byte(self):
        first = run_scenario(17)
        second = run_scenario(17)
        assert first.schedule == second.schedule
        assert first.completed_ops == second.completed_ops
        assert first.failed_ops == second.failed_ops
        assert first.violations == second.violations

    def test_different_seeds_diverge(self):
        schedules = {run_scenario(seed).schedule for seed in (3, 4, 5, 6)}
        # Not every seed must fire a fault, but four seeds collapsing to
        # one schedule would mean the plan seeding is broken.
        assert len(schedules) > 1

    def test_describe_is_operator_readable(self):
        line = run_scenario(0).describe()
        assert "seed=0" in line
        assert "ok" in line


@pytest.mark.soak
class TestFullSweep:
    def test_twenty_seed_sweep_holds_every_invariant(self):
        results = soak(seeds=DEFAULT_SEEDS)
        assert len(results) >= 20
        for result in results:
            _assert_clean(result)
        # The sweep exercised real failures, not 20 fault-free runs.
        assert any(r.failed_ops for r in results)
        assert any(r.schedule for r in results)

    def test_sweep_is_deterministic_end_to_end(self):
        first = [r.schedule for r in soak(seeds=DEFAULT_SEEDS)]
        second = [r.schedule for r in soak(seeds=DEFAULT_SEEDS)]
        assert first == second
