"""Fail-closed fleet orchestration under injected faults."""

import pytest

from repro.common.errors import ReproError, SevError
from repro.core.invariants import check_invariants
from repro.faults.inject import HostInjector, arm_system
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.soak import fleet_violations
from repro.cloud import Cloud
from repro.system import GuestOwner
from repro.xen import hypercalls as hc


def _cloud(hosts=3):
    return Cloud(hosts=hosts, frames=2048, seed=0xC1F0)


def _launch(cloud, name, host_index, seed=5):
    return cloud.launch_tenant(name, GuestOwner(seed=seed), payload=b"pp",
                               guest_frames=16, host_index=host_index)


def _fail_next_receive(cloud, host_index):
    plan = FaultPlan([FaultSpec("firmware.receive_finish", "error", nth=1)])
    return arm_system(cloud.host(host_index), plan,
                      label="host%d" % host_index)


class TestMigrateRetry:
    def test_auto_destination_retries_past_a_bad_target(self):
        cloud = _cloud()
        _launch(cloud, "t", host_index=0)
        injector = _fail_next_receive(cloud, 1)
        tenant = cloud.migrate_tenant("t")
        injector.disarm()
        # Host 1 (least loaded, first candidate) failed; the retry loop
        # excluded it and landed the tenant on host 2.
        assert tenant.host_index == 2
        assert "migrate-failed" in cloud.event_kinds()
        assert fleet_violations(cloud, []) == []
        tenant.ctx.hypercall(hc.HC_SCHED_YIELD)

    def test_all_targets_failing_leaves_tenant_on_source(self):
        cloud = _cloud()
        _launch(cloud, "t", host_index=0)
        plan = FaultPlan([
            FaultSpec("firmware.receive_start", "error", probability=1.0,
                      count=99)])
        injectors = [arm_system(cloud.host(i), plan, label="host%d" % i)
                     for i in (1, 2)]
        with pytest.raises(SevError):
            cloud.migrate_tenant("t")
        for injector in injectors:
            injector.disarm()
        assert cloud.tenants["t"].host_index == 0
        assert fleet_violations(cloud, []) == []
        assert cloud.event_kinds().count("migrate-failed") >= 2

    def test_explicit_destination_is_a_single_fail_closed_attempt(self):
        cloud = _cloud()
        _launch(cloud, "t", host_index=0)
        injector = _fail_next_receive(cloud, 1)
        with pytest.raises(SevError):
            cloud.migrate_tenant("t", to_host_index=1)
        injector.disarm()
        assert cloud.tenants["t"].host_index == 0


class TestQuarantine:
    def test_bad_quotes_quarantine_the_host_mid_operation(self):
        cloud = _cloud()
        _launch(cloud, "t", host_index=0)
        plan = FaultPlan([
            FaultSpec("attest.quote", "garbage", probability=1.0, count=99)])
        injector = HostInjector(plan, cloud.host(1).machine, label="host1")
        injector.arm_attestation(cloud.authority(1))
        tenant = cloud.migrate_tenant("t")
        # The garbage-quoting host never entered the candidate pool.
        assert tenant.host_index == 2
        assert 1 in cloud.quarantined
        assert "host-quarantined" in cloud.event_kinds()
        injector.disarm()

    def test_quarantine_is_sticky_until_an_operator_lifts_it(self):
        cloud = _cloud()
        plan = FaultPlan([FaultSpec("attest.quote", "stale", nth=1)])
        injector = HostInjector(plan, cloud.host(1).machine, label="host1")
        injector.arm_attestation(cloud.authority(1))
        assert not cloud.attest_host(1)
        injector.disarm()
        # Quotes are clean again, but the host stays out of the pool.
        assert not cloud.attest_host(1)
        assert cloud.attested_hosts() == [0, 2]
        assert cloud.lift_quarantine(1)
        assert cloud.attested_hosts() == [0, 1, 2]
        assert "quarantine-lifted" in cloud.event_kinds()

    def test_launch_refuses_a_quarantined_host(self):
        cloud = _cloud()
        cloud.quarantined.add(1)
        with pytest.raises(ReproError, match="fails attestation"):
            _launch(cloud, "t", host_index=1)
        assert "t" not in cloud.tenants


class TestEvacuate:
    def test_evacuate_with_one_injected_failure_places_each_tenant_once(self):
        cloud = _cloud()
        _launch(cloud, "a", host_index=0, seed=5)
        _launch(cloud, "b", host_index=0, seed=6)
        injector = _fail_next_receive(cloud, 1)
        moved = cloud.evacuate(0)
        injector.disarm()
        assert sorted(moved) == ["a", "b"]
        assert cloud.inventory()[0] == []
        # The acceptance bar: despite the mid-drain failure, every
        # tenant ended up on exactly one host, exactly once.
        assert fleet_violations(cloud, []) == []
        assert "migrate-failed" in cloud.event_kinds()
        for host in cloud.hosts:
            assert check_invariants(host) == []

    def test_evacuate_with_no_viable_target_stalls_closed(self):
        cloud = _cloud(hosts=2)
        _launch(cloud, "a", host_index=0)
        plan = FaultPlan([
            FaultSpec("firmware.receive_start", "error", probability=1.0,
                      count=99)])
        injector = arm_system(cloud.host(1), plan, label="host1")
        with pytest.raises(ReproError):
            cloud.evacuate(0)
        injector.disarm()
        assert cloud.tenants["a"].host_index == 0
        assert "evacuation-stalled" in cloud.event_kinds()
        assert fleet_violations(cloud, []) == []


class TestShutdown:
    def test_failed_destroy_keeps_the_tenant_registered(self):
        cloud = _cloud(hosts=1)
        _launch(cloud, "t", host_index=0)
        hypervisor = cloud.host(0).hypervisor
        real_destroy = hypervisor.destroy_domain

        def broken_destroy(domain):
            raise ReproError("injected destroy failure")

        hypervisor.destroy_domain = broken_destroy
        try:
            with pytest.raises(ReproError):
                cloud.shutdown_tenant("t")
            # Fail closed: the control plane has not forgotten a tenant
            # whose domain still exists.
            assert "t" in cloud.tenants
        finally:
            hypervisor.destroy_domain = real_destroy
        cloud.shutdown_tenant("t")
        assert "t" not in cloud.tenants
        assert fleet_violations(cloud, []) == []
