"""Crash-safe, fail-closed migration under injected firmware faults."""

import pytest

from repro.common.errors import SevError
from repro.core.invariants import check_invariants
from repro.core.migration import migrate_guest, receive_guest, send_guest
from repro.faults.inject import arm_system
from repro.faults.plan import FaultPlan, FaultSpec
from repro.sev.state import GuestState
from repro.system import GuestOwner, paired_systems
from repro.xen import hypercalls as hc


@pytest.fixture
def pair():
    return paired_systems(frames=2048, seed=0xFA17)


def _boot(system, name="mig", seed=11):
    owner = GuestOwner(seed=seed)
    return system.boot_protected_guest(name, owner, payload=b"precious",
                                       guest_frames=24)


def _plan(site):
    return FaultPlan([FaultSpec(site, "error", nth=1)])


def _names(system):
    return [d.name for d in system.hypervisor.domains.values()]


class TestTwoPhaseMigration:
    def test_receive_failure_leaves_source_intact_and_reenterable(self, pair):
        source, target = pair
        domain, ctx = _boot(source)
        injector = arm_system(target, _plan("firmware.receive_finish"),
                              label="target")
        with pytest.raises(SevError, match="injected failure"):
            migrate_guest(source.fidelius, domain, target.fidelius)
        injector.disarm()

        # Fail closed: the tenant still lives on the source, RUNNING,
        # and its next VMRUN passes the gate.
        assert domain.domid in source.hypervisor.domains
        assert source.firmware.guest_state(domain.sev_handle) \
            is GuestState.RUNNING
        ctx.hypercall(hc.HC_SCHED_YIELD)
        # The target rolled its half-built domain all the way back.
        assert "mig" not in _names(target)
        assert check_invariants(target) == []
        assert "migration-cancelled" in source.fidelius.audit_kinds()
        assert "migration-receive-failed" in target.fidelius.audit_kinds()

    def test_activate_failure_also_rolls_back(self, pair):
        source, target = pair
        domain, ctx = _boot(source)
        injector = arm_system(target, _plan("firmware.activate"),
                              label="target")
        with pytest.raises(SevError, match="injected failure"):
            migrate_guest(source.fidelius, domain, target.fidelius)
        injector.disarm()
        assert "mig" not in _names(target)
        assert check_invariants(target) == []
        ctx.hypercall(hc.HC_SCHED_YIELD)

    def test_send_failure_cancels_and_guest_resumes(self, pair):
        source, target = pair
        domain, ctx = _boot(source)
        injector = arm_system(source, _plan("firmware.send_update"),
                              label="source")
        with pytest.raises(SevError, match="injected failure"):
            migrate_guest(source.fidelius, domain, target.fidelius)
        injector.disarm()
        assert source.firmware.guest_state(domain.sev_handle) \
            is GuestState.RUNNING
        ctx.hypercall(hc.HC_SCHED_YIELD)
        assert "migration-send-failed" in source.fidelius.audit_kinds()
        # Nothing ever reached the target.
        assert "mig" not in _names(target)

    def test_successful_migration_still_tears_down_source(self, pair):
        source, target = pair
        domain, _ = _boot(source)
        new_domain, new_ctx = migrate_guest(source.fidelius, domain,
                                            target.fidelius)
        assert domain.domid not in source.hypervisor.domains
        assert new_domain.domid in target.hypervisor.domains
        new_ctx.hypercall(hc.HC_SCHED_YIELD)
        assert check_invariants(source) == []
        assert check_invariants(target) == []

    def test_failed_then_retried_migration_succeeds(self, pair):
        source, target = pair
        domain, _ = _boot(source)
        injector = arm_system(target, _plan("firmware.receive_update"),
                              label="target")
        with pytest.raises(SevError):
            migrate_guest(source.fidelius, domain, target.fidelius)
        injector.disarm()
        # The cancelled source can immediately migrate again.
        new_domain, new_ctx = migrate_guest(source.fidelius, domain,
                                            target.fidelius)
        assert new_domain.domid in target.hypervisor.domains
        new_ctx.hypercall(hc.HC_SCHED_YIELD)


class TestIdempotentReceive:
    def test_replayed_package_does_not_duplicate_the_domain(self, pair):
        source, target = pair
        domain, _ = _boot(source)
        package = send_guest(source.fidelius, domain,
                             target.fidelius.firmware.platform_public_key)
        first_domain, _ = receive_guest(target.fidelius, package)
        replay_domain, _ = receive_guest(target.fidelius, package)
        assert replay_domain is first_domain
        assert _names(target).count("mig") == 1
        assert "migration-replay-ignored" in target.fidelius.audit_kinds()
        assert check_invariants(target) == []

    def test_reimport_allowed_after_the_first_incarnation_dies(self, pair):
        source, target = pair
        domain, _ = _boot(source)
        package = send_guest(source.fidelius, domain,
                             target.fidelius.firmware.platform_public_key)
        first_domain, _ = receive_guest(target.fidelius, package)
        target.hypervisor.destroy_domain(first_domain)
        second_domain, ctx = receive_guest(target.fidelius, package)
        assert second_domain.domid != first_domain.domid
        ctx.hypercall(hc.HC_SCHED_YIELD)
        assert _names(target).count("mig") == 1

    def test_failed_receive_is_not_registered_as_an_import(self, pair):
        source, target = pair
        domain, _ = _boot(source)
        package = send_guest(source.fidelius, domain,
                             target.fidelius.firmware.platform_public_key)
        injector = arm_system(target, _plan("firmware.receive_finish"),
                              label="target")
        with pytest.raises(SevError):
            receive_guest(target.fidelius, package)
        injector.disarm()
        assert package.import_key() not in target.fidelius.received_imports
        # The real import afterwards works and registers.
        receive_guest(target.fidelius, package)
        assert package.import_key() in target.fidelius.received_imports


class TestBootRollback:
    def test_injected_activate_failure_leaves_no_half_built_guest(self):
        from repro.system import System
        system = System.create(fidelius=True, frames=2048, seed=0xB007)
        injector = arm_system(system, _plan("firmware.activate"))
        with pytest.raises(SevError, match="injected failure"):
            system.boot_protected_guest("half", GuestOwner(seed=3),
                                        payload=b"x", guest_frames=16)
        injector.disarm()
        assert "half" not in _names(system)
        assert check_invariants(system) == []
        assert "boot-integrity-failure" in system.fidelius.audit_kinds()
        # The host is not poisoned: the same image boots fine now.
        system.boot_protected_guest("half", GuestOwner(seed=3),
                                    payload=b"x", guest_frames=16)
