"""Property tests for the I/O encoders and the full block path."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.constants import SECTOR_SIZE
from repro.core.io_protect import AesNiIoEncoder, SoftwareIoEncoder
from repro.hw.cycles import CycleCounter

_sector_blobs = st.binary(
    min_size=SECTOR_SIZE, max_size=4 * SECTOR_SIZE
).filter(lambda b: len(b) % SECTOR_SIZE == 0)


class TestEncoderProperties:
    @given(data=_sector_blobs, sector=st.integers(0, 10**9))
    def test_aesni_roundtrip_any_sector(self, data, sector):
        encoder = AesNiIoEncoder(b"K" * 16, CycleCounter())
        assert encoder.decode_read(
            encoder.encode_write(data, sector), sector) == data

    @given(data=_sector_blobs, sector=st.integers(0, 10**6))
    def test_ciphertext_differs_per_sector(self, data, sector):
        """The per-sector tweak: the same plaintext written at two
        sectors yields different at-rest bytes (no ECB-style patterns
        across the disk)."""
        encoder = AesNiIoEncoder(b"K" * 16, CycleCounter())
        a = encoder.encode_write(data, sector)
        b = encoder.encode_write(data, sector + 1)
        assert a != b

    @given(data=_sector_blobs, sector=st.integers(0, 1000),
           offset_sectors=st.integers(0, 3))
    def test_partial_range_decodes(self, data, sector, offset_sectors):
        """Any sector subrange of a larger write decodes independently —
        the property that makes random access work."""
        encoder = AesNiIoEncoder(b"K" * 16, CycleCounter())
        encoded = encoder.encode_write(data, sector)
        nsectors = len(data) // SECTOR_SIZE
        start = offset_sectors % nsectors
        piece = encoded[start * SECTOR_SIZE:(start + 1) * SECTOR_SIZE]
        decoded = encoder.decode_read(piece, sector + start)
        assert decoded == data[start * SECTOR_SIZE:(start + 1) * SECTOR_SIZE]

    @given(data=_sector_blobs)
    def test_aesni_software_interop(self, data):
        """Same K_blk, same at-rest format: a guest can move between the
        AES-NI and software paths across boots."""
        aesni = AesNiIoEncoder(b"K" * 16, CycleCounter())
        software = SoftwareIoEncoder(b"K" * 16, CycleCounter())
        assert software.decode_read(aesni.encode_write(data, 7), 7) == data
        assert aesni.decode_read(software.encode_write(data, 9), 9) == data

    @given(data=_sector_blobs, sector=st.integers(0, 1000))
    def test_wrong_key_garbles(self, data, sector):
        good = AesNiIoEncoder(b"K" * 16, CycleCounter())
        bad = AesNiIoEncoder(b"X" * 16, CycleCounter())
        assert bad.decode_read(good.encode_write(data, sector),
                               sector) != data

    def test_unaligned_data_rejected(self):
        encoder = AesNiIoEncoder(b"K" * 16, CycleCounter())
        from repro.common.errors import ReproError
        with pytest.raises(ReproError):
            encoder.encode_write(b"odd-length", 0)


class TestSevEncoderProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(payload=st.binary(min_size=1, max_size=3 * SECTOR_SIZE),
           sector=st.integers(0, 2000))
    def test_full_block_path_roundtrip(self, payload, sector):
        """Arbitrary payloads through the real PV stack with the SEV
        encoder: read back what was written, leak nothing."""
        from repro.system import GuestOwner, System
        system = System.create(fidelius=True, frames=2048, seed=0x10B)
        owner = GuestOwner(seed=0x10B)
        domain, ctx = system.boot_protected_guest(
            "prop-io", owner, payload=b"x", guest_frames=48)
        encoder = system.sev_encoder_for(domain, ctx, pages=2)
        disk, frontend, backend = system.attach_disk(
            domain, ctx, encoder=encoder, buffer_pages=2)
        frontend.write(sector, payload)
        nsectors = (len(payload) + SECTOR_SIZE - 1) // SECTOR_SIZE
        back = frontend.read(sector, nsectors)
        assert back[:len(payload)] == payload
        if len(payload) >= 8:
            assert payload[:8] not in backend.everything_observed()
