"""Property-based security tests: failure injection over whole spaces
of tamper choices, not just the hand-picked ones."""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import PolicyViolation, SevError
from repro.core.migration import receive_guest, send_guest
from repro.core.policies import (
    ALWAYS_WRITABLE_VMCB,
    EXIT_POLICIES,
    exit_policy,
)
from repro.hw.vmcb import ALL_FIELDS
from repro.system import GuestOwner, System, paired_systems
from repro.xen import hypercalls as hc

_slow = settings(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _protected_system(seed=0x99):
    system = System.create(fidelius=True, frames=2048, seed=seed)
    owner = GuestOwner(seed=seed)
    domain, ctx = system.boot_protected_guest(
        "prop", owner, payload=b"x", guest_frames=32)
    return system, domain, ctx


#: Fields the hypercall exit policy does NOT allow the hypervisor to
#: change: any modification must abort the entry.
_HYPERCALL_PROTECTED_FIELDS = sorted(
    set(ALL_FIELDS)
    - EXIT_POLICIES[__import__("repro.common.types",
                               fromlist=["ExitReason"]).ExitReason.HYPERCALL
                    ].writable_vmcb
    - ALWAYS_WRITABLE_VMCB
)


class TestVmcbTamperProperty:
    @pytest.mark.parametrize("field", _HYPERCALL_PROTECTED_FIELDS)
    def test_any_protected_field_tamper_detected(self, field):
        """For EVERY VMCB field outside the hypercall exit policy's
        writable set, a modification during the exit aborts the entry."""
        system, domain, ctx = _protected_system()

        def tamper(vcpu, *args):
            current = vcpu.vmcb.read(field)
            if field == "intercepts":
                vcpu.vmcb.write(field, frozenset({"tampered"}))
            elif isinstance(current, int):
                vcpu.vmcb.write(field, current ^ 0x1234)
            else:
                vcpu.vmcb.write(field, 0xBAD)  # e.g. the exitcode enum
            return hc.E_OK

        system.hypervisor.register_hypercall(200, tamper)
        with pytest.raises(PolicyViolation):
            ctx.hypercall(200)

    @pytest.mark.parametrize("field", sorted(
        EXIT_POLICIES[__import__("repro.common.types",
                                 fromlist=["ExitReason"]).ExitReason.HYPERCALL
                      ].writable_vmcb | ALWAYS_WRITABLE_VMCB))
    def test_writable_fields_pass(self, field):
        system, domain, ctx = _protected_system()

        def update(vcpu, *args):
            if field == "rip":
                # RIP updates must look like an instruction advance
                vcpu.vmcb.write(field, vcpu.vmcb.read(field) + 3)
            else:
                vcpu.vmcb.write(field, 0x42)
            return hc.E_OK

        system.hypervisor.register_hypercall(201, update)
        assert ctx.hypercall(201) == hc.E_OK


class TestTransportIntegrityProperty:
    @_slow
    @given(record_index=st.integers(0, 10**6),
           byte_index=st.integers(0, 10**6),
           flip=st.integers(1, 255))
    def test_any_single_byte_corruption_detected(self, record_index,
                                                 byte_index, flip):
        """ANY one-byte corruption anywhere in a migration package is
        caught by RECEIVE_FINISH."""
        source, target = paired_systems(frames=2048, seed=0xF00D)
        owner = GuestOwner(seed=0xF00D)
        domain, ctx = source.boot_protected_guest(
            "mover", owner, payload=b"payload", guest_frames=16)
        ctx.hypercall(hc.HC_SCHED_YIELD)
        package = send_guest(source.fidelius, domain,
                             target.firmware.platform_public_key)
        records = list(package.encrypted_records)
        target_record = record_index % len(records)
        gfn, transport = records[target_record]
        position = byte_index % len(transport)
        evil = (transport[:position]
                + bytes([transport[position] ^ flip])
                + transport[position + 1:])
        records[target_record] = (gfn, evil)
        package = dataclasses.replace(package,
                                      encrypted_records=tuple(records))
        with pytest.raises(SevError):
            receive_guest(target.fidelius, package)


class TestGrantForgeryProperty:
    @_slow
    @given(target_domid=st.integers(0, 5),
           gfn=st.integers(0, 31),
           readonly=st.booleans())
    def test_any_undeclared_grant_blocked(self, target_domid, gfn,
                                          readonly):
        """No grant the protected guest never declared can be written,
        whatever its parameters."""
        from repro.xen.grant_table import GrantEntry
        system, domain, ctx = _protected_system(seed=0x6147)
        ctx.hypercall(hc.HC_SCHED_YIELD)
        entry = GrantEntry(permit=True, readonly=readonly,
                           target_domid=target_domid, gfn=gfn)
        ref = domain.grant_table.find_free_ref()
        with pytest.raises(PolicyViolation):
            domain.grant_table.write_via(ref, entry,
                                         system.hypervisor.word_writer)

    @_slow
    @given(gfn_offset=st.integers(0, 3), readonly=st.booleans())
    def test_declared_grants_always_pass(self, gfn_offset, readonly):
        """Within a declared read-write context, any consistent grant
        goes through."""
        system, domain, ctx = _protected_system(seed=0x6148)
        assert ctx.hypercall(hc.HC_PRE_SHARING, 0, 8, 4, 0) == hc.E_OK
        ref = ctx.hypercall(hc.HC_GRANT_CREATE, 0, 8 + gfn_offset,
                            int(readonly))
        assert not hc.is_error(ref)


class TestMonopolyProperty:
    @_slow
    @given(offset=st.integers(0x300, 0xEFC),
           op_index=st.integers(0, 6))
    def test_any_planted_encoding_found(self, offset, op_index):
        """An encoding planted at ANY unaligned offset of any executable
        Xen text page is found by the scanner."""
        from repro.common.types import PRIV_OPCODES, PrivOp
        from repro.core.binscan import verify_monopoly
        system = System.create(fidelius=True, frames=1024, seed=0x5CA)
        op = list(PrivOp)[op_index]
        va = system.hypervisor.text.base_va + offset
        system.machine.memory.write(va, PRIV_OPCODES[op])
        allowed = {o: system.fidelius.text_image.va_of(o) for o in PrivOp}
        hits = verify_monopoly(system.machine, system.machine.host_root,
                               allowed)
        assert any(hit.op is op and hit.va == va for hit in hits)
