"""Stateful property-based tests: core data structures against simple
reference models under arbitrary operation sequences."""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.common.types import Owner, PageUsage
from repro.core.pit import FREE_ENTRY, PageInfoTable
from repro.hw.cycles import CycleCounter
from repro.hw.memctrl import MemoryController
from repro.hw.memory import FrameAllocator, PhysicalMemory
from repro.workloads.tracegen import CacheModel


class PitAgainstDict(RuleBasedStateMachine):
    """The three-level radix PIT must behave like a plain dict."""

    def __init__(self):
        super().__init__()
        machine_mem = PhysicalMemory(512)
        alloc = FrameAllocator(512)

        class _M:
            memory = machine_mem
        self.pit = PageInfoTable(_M, alloc.alloc)
        self.model = {}

    pfns = st.integers(0, 4000)

    @rule(pfn=pfns,
          owner=st.sampled_from(list(Owner)),
          usage=st.sampled_from(list(PageUsage)),
          tag=st.integers(0, 0xFFFF))
    def classify(self, pfn, owner, usage, tag):
        entry = self.pit.classify(pfn, owner, usage, tag)
        self.model[pfn] = entry

    @rule(pfn=pfns)
    def invalidate(self, pfn):
        self.pit.invalidate(pfn)
        self.model.pop(pfn, None)

    @rule(pfn=pfns)
    def lookup_matches_model(self, pfn):
        expected = self.model.get(pfn, FREE_ENTRY)
        assert self.pit.lookup(pfn) == expected

    @invariant()
    def table_pages_never_collide_with_entries(self):
        # the radix tree's own frames are allocator-owned and disjoint
        assert len(self.pit.table_pfns) == len(set(self.pit.table_pfns))


class AllocatorAgainstSet(RuleBasedStateMachine):
    """The frame allocator against a set model."""

    def __init__(self):
        super().__init__()
        self.alloc = FrameAllocator(64, reserved=4)
        self.live = set()

    @rule()
    def allocate(self):
        from repro.common.errors import PhysicalMemoryError
        try:
            pfn = self.alloc.alloc()
        except PhysicalMemoryError:
            assert len(self.live) == 60  # pool exhausted exactly when full
            return
        assert pfn not in self.live
        assert pfn >= 4
        self.live.add(pfn)

    @rule(data=st.data())
    def free_one(self, data):
        if not self.live:
            return
        pfn = data.draw(st.sampled_from(sorted(self.live)))
        self.alloc.free(pfn)
        self.live.remove(pfn)

    @invariant()
    def counts_agree(self):
        assert self.alloc.free_count == 60 - len(self.live)
        assert all(self.alloc.is_allocated(p) for p in self.live)


class CacheAgainstLruModel(RuleBasedStateMachine):
    """The cache model against a textbook LRU list."""

    CAPACITY = 8

    def __init__(self):
        super().__init__()
        self.cache = CacheModel(lines=self.CAPACITY)
        self.lru = []  # most recent last

    @rule(line=st.integers(0, 30))
    def access(self, line):
        address = line << 6
        missed = self.cache.access(address)
        expected_miss = line not in self.lru
        assert missed == expected_miss
        if line in self.lru:
            self.lru.remove(line)
        self.lru.append(line)
        if len(self.lru) > self.CAPACITY:
            self.lru.pop(0)

    @invariant()
    def occupancy_bounded(self):
        assert len(self.lru) <= self.CAPACITY


class MemctrlReadYourWrites(RuleBasedStateMachine):
    """Arbitrary interleavings of encrypted/plain writes must always
    read back what the *same principal* last wrote to each byte."""

    def __init__(self):
        super().__init__()
        self.ctrl = MemoryController(PhysicalMemory(8), CycleCounter(),
                                     cache_lines=4)
        self.ctrl.install_key(1, b"A" * 16)
        self.ctrl.install_key(2, b"B" * 16)
        #: byte -> (value, c_bit, asid)
        self.model = {}

    addresses = st.integers(0, 8 * 4096 - 64)
    payloads = st.binary(min_size=1, max_size=64)

    @rule(pa=addresses, data=payloads,
          mode=st.sampled_from([(False, 0), (True, 1), (True, 2)]))
    def write(self, pa, data, mode):
        c_bit, asid = mode
        self.ctrl.write(pa, data, c_bit=c_bit, asid=asid)
        for i, value in enumerate(data):
            self.model[pa + i] = (value, c_bit, asid)

    @rule(pa=addresses, length=st.integers(1, 64))
    def read_matches(self, pa, length):
        # only assert bytes whose whole line has a consistent principal;
        # mixed-principal lines are garbage by design (wrong-key reads)
        for i in range(length):
            entry = self.model.get(pa + i)
            if entry is None:
                continue
            value, c_bit, asid = entry
            got = self.ctrl.read(pa + i, 1, c_bit=c_bit, asid=asid)
            line_base = (pa + i) & ~63
            same_principal = all(
                self.model.get(line_base + j, (0, c_bit, asid))[1:]
                == (c_bit, asid)
                for j in range(64)
            )
            if same_principal:
                assert got[0] == value

    @rule()
    def flush(self):
        self.ctrl.flush_cache()


TestPitAgainstDict = PitAgainstDict.TestCase
TestAllocatorAgainstSet = AllocatorAgainstSet.TestCase
TestCacheAgainstLruModel = CacheAgainstLruModel.TestCase
TestMemctrlReadYourWrites = MemctrlReadYourWrites.TestCase

for case in (TestPitAgainstDict, TestAllocatorAgainstSet,
             TestCacheAgainstLruModel, TestMemctrlReadYourWrites):
    case.settings = settings(max_examples=25, stateful_step_count=30,
                             deadline=None)
