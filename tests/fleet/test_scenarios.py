"""Scenario drivers: region splitting, determinism, sharded digests.

The contract under test is the one CI's fleet-equivalence job holds
the benchmark to: a multi-region campaign digests byte-identically
whatever ``--jobs`` was, because regions are independent seeded shards
merged in deterministic order.
"""

import dataclasses

from repro.fleet.scenarios import (
    ScenarioSpec,
    build_region,
    drive_region,
    region_specs,
    run_fleet,
    summarize,
)

#: small but fully-featured campaign: storm, failure wave + recovery,
#: autoscale burst, rolling rotation, shutdown churn
SPEC = ScenarioSpec(hosts=12, guests=60, regions=3, policy="spread",
                    storm_migrations=20, failure_fraction=0.1,
                    rotate=True, autoscale_hosts=3, churn_shutdowns=10,
                    seed=0xBEEF)


class TestRegionSplit:
    def test_split_conserves_totals(self):
        regions = region_specs(SPEC)
        assert len(regions) == 3
        assert sum(r.hosts for r in regions) == SPEC.hosts
        assert sum(r.guests for r in regions) == SPEC.guests
        assert sum(r.storm_migrations for r in regions) == \
            SPEC.storm_migrations
        assert sum(r.autoscale_hosts for r in regions) == \
            SPEC.autoscale_hosts
        assert sum(r.churn_shutdowns for r in regions) == \
            SPEC.churn_shutdowns

    def test_regions_get_distinct_seeds_and_names(self):
        regions = region_specs(SPEC)
        assert len({r.seed for r in regions}) == 3
        assert [r.region for r in regions] == ["r0", "r1", "r2"]
        assert all(r.regions == 1 for r in regions)

    def test_uneven_split_front_loads_the_remainder(self):
        spec = dataclasses.replace(SPEC, hosts=10, guests=7, regions=3)
        regions = region_specs(spec)
        assert [r.hosts for r in regions] == [4, 3, 3]
        assert [r.guests for r in regions] == [3, 2, 2]


class TestDriveRegion:
    def test_same_spec_reproduces_byte_for_byte(self):
        spec = region_specs(SPEC)[0]
        first, second = drive_region(spec), drive_region(spec)
        assert first == second
        assert first.digest == second.digest

    def test_different_seeds_diverge(self):
        base = region_specs(SPEC)[0]
        other = dataclasses.replace(base, seed=base.seed + 1)
        assert drive_region(base).digest != drive_region(other).digest

    def test_campaign_phases_all_fire(self):
        report = drive_region(region_specs(SPEC)[0])
        metrics = report.metrics
        assert metrics["launches"] > 0
        assert metrics["failures"] > 0
        assert metrics["recoveries"] == metrics["failures"]
        assert metrics["rotations"] > 0
        assert metrics["shutdowns"] > 0
        assert metrics["scale_ups"] == 1
        assert metrics["retired"] == 1
        assert report.events == metrics_events_lower_bound(metrics)

    def test_survivor_accounting_closes(self):
        report = drive_region(region_specs(SPEC)[0])
        m = report.metrics
        assert report.survivors == \
            m["launches"] - m["shutdowns"] - m["lost_guests"]

    def test_virtual_clock_advances_monotonically(self):
        model = build_region(region_specs(SPEC)[0])
        last = 0
        while True:
            item = model.queue.pop()
            if item is None:
                break
            when, event = item
            assert when >= last
            last = when
            model.dispatch(event)
        assert model.queue.now == last > 0


def metrics_events_lower_bound(metrics):
    """Every processed event shows up in exactly one counter (launch,
    migrate, shutdown, fail, recover, rotate, scale, evacuate/retire)
    or the rejected tally — the sum reconstructs the event count."""
    return (metrics["launches"] + metrics["migrations"]
            - metrics["evacuated"]          # evacuations ride retire
            + metrics["shutdowns"] + metrics["failures"]
            + metrics["recoveries"] + metrics["rotations"]
            + metrics["scale_ups"] + metrics["retired"]
            + metrics["rejected"])


class TestShardedFleet:
    def test_serial_and_sharded_runs_digest_identically(self):
        _run1, _reports1, serial = run_fleet(SPEC, jobs=1)
        _run2, _reports2, sharded = run_fleet(SPEC, jobs=2,
                                              reuse_workers=False)
        assert serial["digest"] == sharded["digest"]
        assert serial == sharded

    def test_summary_totals_match_reports(self):
        _run, reports, summary = run_fleet(SPEC, jobs=1)
        assert summary["regions"] == len(reports) == 3
        assert summary["hosts"] == sum(r.hosts for r in reports)
        assert summary["events"] == sum(r.events for r in reports)
        assert summary["virtual_ns"] == max(r.clock_ns for r in reports)
        for key in ("launches", "migrations", "failures"):
            assert summary["metrics"][key] == \
                sum(r.metrics[key] for r in reports)
