"""FleetModel semantics: lifecycle, accounting, digests, hydration.

The model is the scale-regime twin of :class:`repro.cloud.Cloud`; these
tests pin the control-plane semantics the lockstep differential relies
on (least-loaded placement, quarantine-as-inadmissibility, restart on
failure) and the honesty mechanisms (byte-stable digests, hydration
into the faithful simulator).
"""

import pickle

import pytest

from repro.fleet.events import Event, FleetError
from repro.fleet.model import (
    FAILED,
    QUARANTINED,
    RETIRED,
    UP,
    FleetModel,
)


def _model(hosts=3, host_frames=64, policy="spread", seed=7):
    return FleetModel(hosts=hosts, host_frames=host_frames, seed=seed,
                      policy=policy)


def _conserved(model):
    for host in model.hosts:
        resident = sum(host.guests.values())
        assert 0 <= host.free_frames <= host.frames
        if host.state in (UP, QUARANTINED):
            assert host.free_frames + resident == host.frames


class TestGuestLifecycle:
    def test_launch_places_and_charges(self):
        model = _model()
        guest = model.launch("g0", frames=8, tags=("web",))
        assert guest.host == 0    # spread, ties to lowest index
        assert model.hosts[0].free_frames == 64 - 8
        assert model.metrics["launches"] == 1
        assert model.metrics["attests"] == 1
        assert model.metrics["busy_ns"] > 0
        _conserved(model)

    def test_spread_balances_across_hosts(self):
        model = _model(hosts=3)
        for index in range(6):
            model.launch("g%d" % index, frames=4)
        loads = [len(h.guests) for h in model.hosts]
        assert loads == [2, 2, 2]

    def test_duplicate_name_rejected(self):
        model = _model()
        model.launch("dup", frames=4)
        with pytest.raises(FleetError):
            model.launch("dup", frames=4)

    def test_launch_with_no_capacity_anywhere_refuses(self):
        model = _model(hosts=2, host_frames=8)
        model.launch("a", frames=8)
        model.launch("b", frames=8)
        with pytest.raises(FleetError):
            model.launch("c", frames=1)

    def test_shutdown_frees_capacity(self):
        model = _model()
        model.launch("g", frames=16)
        model.shutdown("g")
        assert "g" not in model.guests
        assert model.hosts[0].free_frames == 64
        assert model.metrics["shutdowns"] == 1
        with pytest.raises(FleetError):
            model.shutdown("g")

    def test_migrate_moves_and_counts(self):
        model = _model(hosts=2)
        model.launch("g", frames=8)
        moved = model.migrate("g")     # policy picks, excludes source
        assert moved.host == 1
        assert moved.migrations == 1
        assert model.hosts[0].guests == {}
        assert model.hosts[1].guests == {"g": 8}
        _conserved(model)

    def test_migrate_to_full_target_refuses(self):
        model = _model(hosts=2, host_frames=8)
        model.launch("big", frames=8)      # fills host 0
        model.launch("small", frames=4)    # lands on host 1
        with pytest.raises(FleetError):
            model.migrate("small", target=0)
        assert model.guests["small"].host == 1

    def test_migrate_to_own_host_is_a_no_op(self):
        model = _model()
        model.launch("g", frames=4)
        model.migrate("g", target=0)
        assert model.metrics["migrations"] == 0


class TestHostLifecycle:
    def test_quarantine_excludes_from_placement(self):
        model = _model(hosts=2)
        model.quarantine_host(0)
        assert model.hosts[0].state == QUARANTINED
        assert 0 not in model.capacity_index
        guest = model.launch("g", frames=4)
        assert guest.host == 1
        model.lift_quarantine(0)
        assert model.hosts[0].state == UP
        assert model.launch("g2", frames=4).host == 0

    def test_failed_host_restarts_guests_elsewhere(self):
        model = _model(hosts=2)
        model.launch("a", frames=4)            # host 0
        model.launch("b", frames=4)            # host 1
        model.fail_host(0)
        assert model.hosts[0].state == FAILED
        assert model.guests["a"].host == 1
        assert model.guests["a"].restarts == 1
        assert model.metrics["restarts"] == 1
        assert model.metrics["failures"] == 1
        _conserved(model)

    def test_guest_is_lost_when_no_fleet_capacity_remains(self):
        model = _model(hosts=2, host_frames=8)
        model.launch("a", frames=8)
        model.launch("b", frames=8)
        model.fail_host(0)
        lost = [g for g in model.guests.values() if g.state == "LOST"]
        assert len(lost) == 1 and lost[0].host == -1
        assert model.metrics["lost_guests"] == 1

    def test_recover_readmits_with_fresh_keys(self):
        model = _model(hosts=2)
        epoch = model.hosts[0].key_epoch
        model.fail_host(0)
        model.recover_host(0)
        assert model.hosts[0].state == UP
        assert model.hosts[0].key_epoch == epoch + 1
        assert 0 in model.capacity_index

    def test_retire_drains_then_removes(self):
        model = _model(hosts=2)
        model.launch("a", frames=4)
        model.retire_host(0)
        assert model.hosts[0].state == RETIRED
        assert model.guests["a"].host == 1
        assert 0 not in model.inventory()
        # retired hosts take no rotations either
        assert model.rotate_host_keys(0) == 0

    def test_rotation_reencrypts_residents(self):
        model = _model(hosts=1)
        model.launch("a", frames=4)
        model.launch("b", frames=4)
        rotated = model.rotate_host_keys(0)
        assert rotated == 2
        epoch = model.hosts[0].key_epoch
        assert epoch == 1
        assert all(g.key_epoch == epoch for g in model.guests.values())
        assert model.metrics["rotated_guests"] == 2

    def test_scale_up_adds_admissible_capacity(self):
        model = _model(hosts=1, host_frames=8)
        model.launch("a", frames=8)
        model.dispatch(Event.of("scale-up", hosts=1, frames=8))
        assert len(model) == 2
        assert model.launch("b", frames=8).host == 1


class TestEventDispatch:
    def test_rejection_is_counted_and_logged_not_raised(self):
        model = _model(hosts=1, host_frames=8)
        model.launch("a", frames=8)
        model.dispatch(Event.of("launch", name="b", frames=4))
        assert model.metrics["rejected"] == 1
        when, kind, details = model.log[-1]
        assert kind == "rejected"
        assert dict(details)["event"] == "launch"

    def test_unknown_kind_is_a_real_error(self):
        with pytest.raises(FleetError):
            _model().dispatch(Event.of("warp-core-breach"))

    def test_run_honors_bounds(self):
        model = _model()
        for index in range(5):
            model.queue.schedule(index * 100,
                                 Event.of("launch", name="g%d" % index,
                                          frames=2))
        assert model.run(max_events=2) == 2
        assert model.run(until_ns=300) == 2    # events at 200, 300
        assert model.run() == 1


class TestDeterminismAndState:
    def test_identically_built_models_digest_identically(self):
        a, b = _model(seed=11), _model(seed=11)
        for model in (a, b):
            model.launch("g0", frames=4, tags=("t",))
            model.migrate("g0")
            model.rotate_host_keys(1)
        assert a.state_digest() == b.state_digest()

    def test_digest_sees_every_modelled_fact(self):
        a, b = _model(seed=11), _model(seed=11)
        b.launch("g", frames=4)
        assert a.state_digest() != b.state_digest()
        snap = b.snapshot_state()
        assert set(snap) == {"clock_ns", "guests", "hosts", "metrics",
                             "policy", "quarantined"}

    def test_model_pickles_without_hydrated_systems(self):
        model = _model(hosts=1, host_frames=256)
        model.launch("g", frames=4)
        model.hydrate(0)
        twin = pickle.loads(pickle.dumps(model))
        assert twin._hydrated == {}
        assert twin.state_digest() == model.state_digest()


class TestHydration:
    def test_hydrate_boots_residents_on_a_real_system(self):
        model = _model(hosts=1, host_frames=256)
        model.launch("web-0", frames=4)
        model.launch("web-1", frames=4)
        system, contexts = model.hydrate(0)
        assert sorted(contexts) == ["web-0", "web-1"]
        # the twins are live, faithful guests, not stubs
        assert len(contexts["web-0"].read(0, 16)) == 16
        # cached until dehydrated
        assert model.hydrate(0)[0] is system
        assert model.dehydrate(0) is True
        assert model.dehydrate(0) is False

    def test_hydrations_of_equal_state_are_equivalent(self):
        def build():
            model = _model(hosts=1, host_frames=256, seed=23)
            model.launch("g", frames=4)
            model.rotate_host_keys(0)
            system, contexts = model.hydrate(0)
            return contexts["g"].read(0, 64)

        assert build() == build()

    def test_retired_host_cannot_hydrate(self):
        model = _model(hosts=2)
        model.retire_host(0)
        with pytest.raises(FleetError):
            model.hydrate(0)
