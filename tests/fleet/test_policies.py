"""Property-style tests for the placement policies (ISSUE satellite).

Each policy's advertised invariant is held under hypothesis-generated
operation sequences driven through a real :class:`FleetModel`:

* ``bin_packing`` never overcommits a host — frame conservation holds
  after every operation, whatever the arrival sequence;
* ``spread`` keeps ``max_load - min_load <= 1`` across admissible
  hosts under launch churn (uniform-size guests, ample capacity: every
  placement lands on a current minimum, so imbalance cannot grow);
* ``affinity`` co-locates tagged tenants while capacity allows, and
  never overcommits falling back;
* placement is a pure function of (policy, seed, operation sequence):
  two models driven identically digest identically.

The capacity index itself is exercised against a brute-force rescan so
the O(log n) structure can never drift from the O(n) truth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.events import FleetError
from repro.fleet.model import FleetModel
from repro.fleet.policies import CapacityIndex, make_policy

#: (kind, value) op streams: launches with a size draw, shutdowns and
#: migrations picking among live guests by index
OPS = st.lists(
    st.tuples(st.sampled_from(["launch", "shutdown", "migrate"]),
              st.integers(0, 10_000)),
    max_size=60)

LAUNCH_ONLY = st.lists(st.integers(0, 10_000), max_size=60)


def _apply(model, ops, frame_span=(1, 12), tags=False):
    """Drive one op stream; rejections are accepted outcomes."""
    serial = 0
    low, high = frame_span
    for kind, value in ops:
        try:
            if kind == "launch":
                tag = ("t%d" % (value % 3),) if tags else ()
                model.launch("g%d" % serial,
                             frames=low + value % (high - low + 1),
                             tags=tag)
                serial += 1
            elif model.guests:
                name = sorted(model.guests)[value % len(model.guests)]
                if kind == "shutdown":
                    model.shutdown(name)
                else:
                    model.migrate(name)
        except FleetError:
            pass
    return model


def _check_conservation(model):
    for host in model.hosts:
        resident = sum(host.guests.values())
        assert 0 <= host.free_frames <= host.frames
        assert host.free_frames + resident == host.frames


def _check_index_against_rescan(model):
    """The O(log n) index must equal a from-scratch O(n) rebuild."""
    expected = sorted(
        (model.policy.key(host), host.index)
        for host in model.hosts if host.admissible)
    assert model.capacity_index.ordered() == expected


class TestBinPackingNeverOvercommits:
    @settings(max_examples=40, deadline=None)
    @given(ops=OPS)
    def test_conservation_under_churn(self, ops):
        model = FleetModel(hosts=4, host_frames=24, seed=1,
                           policy="bin_packing")
        _apply(model, ops, frame_span=(1, 20))
        _check_conservation(model)
        _check_index_against_rescan(model)

    @settings(max_examples=25, deadline=None)
    @given(sizes=st.lists(st.integers(1, 24), max_size=30))
    def test_tightest_fit_is_chosen(self, sizes):
        model = FleetModel(hosts=4, host_frames=24, seed=2,
                           policy="bin_packing")
        for index, frames in enumerate(sizes):
            before = [(h.free_frames, h.index) for h in model.hosts
                      if h.admissible and h.free_frames >= frames]
            try:
                guest = model.launch("g%d" % index, frames=frames)
            except FleetError:
                assert not before
                continue
            assert (min(before)[1] == guest.host), \
                "bin-packing must pick the tightest admissible fit"


class TestSpreadStaysBalanced:
    @settings(max_examples=40, deadline=None)
    @given(launches=LAUNCH_ONLY)
    def test_max_minus_min_stays_within_one(self, launches):
        # uniform 1-frame guests + ample capacity: every launch lands
        # on a current minimum, so imbalance never exceeds one
        model = FleetModel(hosts=5, host_frames=64, seed=3,
                           policy="spread")
        for index, _ in enumerate(launches):
            model.launch("g%d" % index, frames=1)
            loads = [len(h.guests) for h in model.hosts]
            assert max(loads) - min(loads) <= 1
        _check_conservation(model)
        _check_index_against_rescan(model)

    @settings(max_examples=40, deadline=None)
    @given(ops=OPS)
    def test_index_survives_arbitrary_churn(self, ops):
        model = FleetModel(hosts=4, host_frames=32, seed=4,
                           policy="spread")
        _apply(model, ops)
        _check_conservation(model)
        _check_index_against_rescan(model)


class TestAffinityColocates:
    @settings(max_examples=40, deadline=None)
    @given(ops=OPS)
    def test_shared_tags_share_hosts_capacity_allowing(self, ops):
        model = FleetModel(hosts=4, host_frames=48, seed=5,
                           policy="affinity")
        _apply(model, ops, frame_span=(1, 4), tags=True)
        _check_conservation(model)
        _check_index_against_rescan(model)

    def test_tagged_launches_stack_until_the_host_fills(self):
        model = FleetModel(hosts=3, host_frames=8, seed=6,
                           policy="affinity")
        homes = [model.launch("g%d" % i, frames=2, tags=("db",)).host
                 for i in range(4)]
        assert len(set(homes)) == 1      # first host fills completely
        spill = model.launch("g4", frames=2, tags=("db",)).host
        assert spill != homes[0]          # then affinity spills over


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(ops=OPS,
           policy=st.sampled_from(["spread", "bin_packing", "affinity"]))
    def test_identical_streams_digest_identically(self, ops, policy):
        def run():
            model = FleetModel(hosts=4, host_frames=32, seed=9,
                               policy=policy)
            _apply(model, ops, tags=True)
            return model.state_digest()

        assert run() == run()


class TestCapacityIndexUnit:
    def test_double_add_is_refused(self):
        index = CapacityIndex()
        index.add(0, (1, 0))
        try:
            index.add(0, (2, 0))
            assert False, "expected FleetError"
        except FleetError:
            pass

    def test_remove_and_membership(self):
        index = CapacityIndex()
        index.add(3, (5, 3))
        assert 3 in index and len(index) == 1
        assert index.remove(3) is True
        assert index.remove(3) is False
        assert 3 not in index

    def test_from_key_bisects(self):
        index = CapacityIndex()
        for host, free in enumerate((4, 9, 2, 9)):
            index.add(host, (free, host))
        assert index.from_key((5, -1)) == [((9, 1), 1), ((9, 3), 3)]

    def test_unknown_policy_name_is_refused(self):
        try:
            make_policy("round_robin")
            assert False, "expected FleetError"
        except FleetError:
            pass
