"""The lockstep differential must agree — and must be able to disagree.

``run_lockstep`` is the fleet model's honesty mechanism: a real
3-host :class:`~repro.cloud.Cloud` and a :class:`FleetModel` driven
through the same campaign, every placement compared.  The first test is
the acceptance criterion CI enforces.  The second proves the comparator
has teeth: a deliberately desynchronized pair must produce mismatches,
so an eternally-green differential cannot be vacuous.
"""

from repro.fleet.lockstep import GUEST_FRAMES, _Differential, run_lockstep
from repro.system import GuestOwner


class TestAgreement:
    def test_model_and_cloud_stay_in_lockstep(self):
        report = run_lockstep()
        assert report.ok, "\n".join(report.mismatches)
        assert report.launches == 7          # 6 tenants + post-tamper
        assert report.migrations >= 8
        assert report.shutdowns == 1
        assert report.quarantines == 1
        # the tampered host ends up empty on both sides; the report's
        # closing inventory is the model's view
        assert sum(len(v) for v in report.inventory.values()) == 6

    def test_asdict_is_json_shaped(self):
        report = run_lockstep(tenants=3, churn=2)
        data = report.asdict()
        assert data["ok"] is True
        assert data["launches"] == report.launches
        assert data["mismatches"] == []
        assert set(data) == {"hosts", "seed", "launches", "migrations",
                             "shutdowns", "quarantines", "mismatches",
                             "ok"}


class TestComparatorHasTeeth:
    def test_desynchronized_pair_is_caught(self):
        diff = _Differential(seed=0x7E57, hosts=2, frames=4096)
        diff.launch("t0", GuestOwner(seed=1))
        # desync: the model gains a guest the cloud never launched
        diff.model.launch("ghost", GUEST_FRAMES)
        diff.launch("t1", GuestOwner(seed=2))
        assert not diff.report.ok
        assert any("inventory" in m or "placement" in m
                   for m in diff.report.mismatches)

    def test_quarantine_divergence_is_caught(self):
        diff = _Differential(seed=0x7E58, hosts=2, frames=4096)
        diff.launch("t0", GuestOwner(seed=1))
        diff.model.quarantine_host(1)    # model-only quarantine
        diff.check_inventories("desync")
        assert any("quarantine set" in m for m in diff.report.mismatches)
