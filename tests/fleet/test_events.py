"""The discrete-event engine: ordering, tie-breaks, timers, pickling.

Everything the fleet model builds on reduces to the ``EventQueue``
contract tested here: a total, seed-deterministic order over virtual
time, lazy O(1) cancellation, a clock that never runs backwards, and a
queue that pickles to an identically-behaving twin (the property the
fleet soak's checkpoint/resume rides on).
"""

import pickle

import pytest

from repro.fleet.events import Event, EventQueue, FleetError


def _drain(queue):
    out = []
    while True:
        item = queue.pop()
        if item is None:
            return out
        out.append(item)


class TestEvent:
    def test_data_is_canonically_sorted(self):
        assert Event.of("launch", name="g", frames=4).data == \
            (("frames", 4), ("name", "g"))

    def test_get_and_asdict(self):
        event = Event.of("migrate", name="g1", target=2)
        assert event.get("target") == 2
        assert event.get("missing", 7) == 7
        assert event.asdict() == {"name": "g1", "target": 2}

    def test_events_are_hashable_pure_data(self):
        assert Event.of("a", x=1) == Event.of("a", x=1)
        assert len({Event.of("a", x=1), Event.of("a", x=1)}) == 1


class TestOrdering:
    def test_time_order(self):
        queue = EventQueue(seed=1)
        queue.schedule(300, Event.of("c"))
        queue.schedule(100, Event.of("a"))
        queue.schedule(200, Event.of("b"))
        assert [e.kind for _t, e in _drain(queue)] == ["a", "b", "c"]

    def test_priority_beats_sequence_at_same_instant(self):
        queue = EventQueue(seed=1)
        queue.schedule(50, Event.of("late"))
        queue.schedule(50, Event.of("urgent"), priority=-1)
        assert _drain(queue)[0][1].kind == "urgent"

    def test_clock_advances_to_popped_time(self):
        queue = EventQueue(seed=0)
        queue.schedule(10, Event.of("a"))
        queue.schedule(25, Event.of("b"))
        assert queue.now == 0
        queue.pop()
        assert queue.now == 10
        queue.pop()
        assert queue.now == 25

    def test_delays_are_relative_to_now(self):
        queue = EventQueue(seed=0)
        queue.schedule(10, Event.of("a"))
        queue.pop()
        queue.schedule(5, Event.of("b"))
        assert queue.pop() == (15, Event.of("b"))

    def test_scheduling_into_the_past_is_refused(self):
        queue = EventQueue(seed=0)
        with pytest.raises(FleetError):
            queue.schedule(-1, Event.of("x"))


class TestSeededTieBreak:
    def _race(self, seed, n=16):
        queue = EventQueue(seed=seed)
        for index in range(n):
            queue.schedule(1000, Event.of("e%d" % index))
        return [event.kind for _t, event in _drain(queue)]

    def test_same_seed_reproduces_the_same_race_outcome(self):
        assert self._race(7) == self._race(7)

    def test_race_outcome_is_not_submission_order(self):
        # a same-instant burst is shuffled by the seeded tie, not FIFO
        assert self._race(7) != ["e%d" % i for i in range(16)]

    def test_different_seeds_race_differently(self):
        assert self._race(7) != self._race(8)


class TestCancellation:
    def test_cancelled_event_never_pops(self):
        queue = EventQueue(seed=0)
        keep = Event.of("keep")
        handle = queue.schedule(10, Event.of("drop"))
        queue.schedule(20, keep)
        assert queue.cancel(handle) is True
        assert [e for _t, e in _drain(queue)] == [keep]
        assert queue.cancelled == 1

    def test_cancel_is_idempotent_and_checks_liveness(self):
        queue = EventQueue(seed=0)
        handle = queue.schedule(10, Event.of("x"))
        assert queue.cancel(handle) is True
        assert queue.cancel(handle) is False          # already cancelled
        assert queue.cancel(handle + 99) is False     # never issued
        queue2 = EventQueue(seed=0)
        popped = queue2.schedule(5, Event.of("y"))
        queue2.pop()
        assert queue2.cancel(popped) is False         # already ran

    def test_len_and_peek_skip_tombstones(self):
        queue = EventQueue(seed=0)
        first = queue.schedule(10, Event.of("a"))
        queue.schedule(30, Event.of("b"))
        assert len(queue) == 2
        queue.cancel(first)
        assert len(queue) == 1
        assert queue.peek_time() == 30
        assert not queue.empty


class TestPickleRoundTrip:
    def test_restored_queue_replays_identically(self):
        def build():
            queue = EventQueue(seed=0xF1EE7)
            for index in range(24):
                queue.schedule(index % 5 * 100, Event.of("e%d" % index))
            for _ in range(6):
                queue.pop()    # part-way through, clock advanced
            queue.cancel(queue.schedule(900, Event.of("doomed")))
            return queue

        original = build()
        restored = pickle.loads(pickle.dumps(build()))
        assert restored.now == original.now
        assert len(restored) == len(original)
        assert _drain(restored) == _drain(original)
        assert restored.now == original.now

    def test_scheduling_after_restore_stays_in_lockstep(self):
        queue = EventQueue(seed=3)
        queue.schedule(10, Event.of("a"))
        twin = pickle.loads(pickle.dumps(queue))
        # the tie-break RNG stream must survive the round trip too
        for q in (queue, twin):
            q.schedule(50, Event.of("x"))
            q.schedule(50, Event.of("y"))
            q.schedule(50, Event.of("z"))
        assert _drain(queue) == _drain(twin)
