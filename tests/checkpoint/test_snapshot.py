"""Snapshot/restore round-trips and the fail-closed restore guards."""

import pytest

from repro.checkpoint.snapshot import (
    MANIFEST_SCHEMA,
    registry_fingerprint,
    restore,
    restore_latest,
    snapshot,
)
from repro.checkpoint.store import (
    CheckpointError,
    CheckpointStore,
    MemoryChunkStore,
)
from repro.cloud import Cloud
from repro.system import GuestOwner, System
from repro.xen import hypercalls as hc


def _live_system(frames=512):
    system = System.create(frames=frames, seed=0x5A17)
    owner = GuestOwner(seed=0xABCD)
    _domain, ctx = system.boot_protected_guest(
        "snap", owner, payload=b"snapshot me", guest_frames=32)
    ctx.write(0, b"pre-checkpoint state")
    ctx.hypercall(hc.HC_SCHED_YIELD)
    return system, ctx


class TestRoundTrip:
    def test_system_survives_restore(self):
        system, ctx = _live_system()
        digest_before = system.machine.state_digest()
        store = MemoryChunkStore()
        manifest = snapshot(system, store)
        assert manifest["schema"] == MANIFEST_SCHEMA
        clone = restore(manifest, store)
        assert clone is not system
        assert clone.machine.state_digest() == digest_before

    def test_restored_clone_diverges_independently(self):
        system, ctx = _live_system()
        store = MemoryChunkStore()
        manifest = snapshot(system, store)
        clone = restore(manifest, store)
        ctx.write(64, b"only in the original")
        assert (clone.machine.state_digest()
                != system.machine.state_digest())

    def test_cloud_snapshot_covers_every_host(self):
        cloud = Cloud(hosts=3, frames=256, seed=0xC10D)
        store = MemoryChunkStore()
        manifest = snapshot(cloud, store, kind="cloud")
        assert manifest["kind"] == "cloud"
        assert len(manifest["machines"]) == 3
        clone = restore(manifest, store)
        assert [h.machine.state_digest() for h in clone.hosts] \
            == [h.machine.state_digest() for h in cloud.hosts]

    def test_second_snapshot_dedups_pages(self):
        system, _ctx = _live_system()
        store = MemoryChunkStore()
        snapshot(system, store)
        written_once = store.chunks_written
        snapshot(system, store)
        # an unchanged system contributes no new page chunks
        assert store.chunks_written == written_once
        assert store.chunks_deduped > 0

    def test_on_disk_store_with_commit(self, tmp_path):
        system, _ctx = _live_system(frames=256)
        store = CheckpointStore(str(tmp_path / "ck"))
        store.commit(snapshot(system, store))
        manifest, clone = restore_latest(store)
        assert manifest["kind"] == "system"
        assert clone.machine.state_digest() == system.machine.state_digest()

    def test_machines_override_for_composite_targets(self):
        system, _ctx = _live_system(frames=256)
        payload = {"system": system, "note": "harness bookkeeping"}
        store = MemoryChunkStore()
        manifest = snapshot(payload, store, kind="composite",
                            machines=[system.machine])
        clone = restore(manifest, store,
                        machines_of=lambda p: [p["system"].machine])
        assert clone["note"] == "harness bookkeeping"
        assert clone["system"].machine.state_digest() \
            == system.machine.state_digest()


class TestFailClosedGuards:
    def _manifest(self):
        system, _ctx = _live_system(frames=256)
        store = MemoryChunkStore()
        return snapshot(system, store), store

    def test_wrong_schema_rejected(self):
        manifest, store = self._manifest()
        manifest["schema"] = "fidelius-checkpoint/999"
        with pytest.raises(CheckpointError, match="refusing to restore"):
            restore(manifest, store)

    def test_wrong_registry_fingerprint_rejected(self):
        manifest, store = self._manifest()
        manifest["registry"] = "0" * 64
        with pytest.raises(CheckpointError, match="module-state registry"):
            restore(manifest, store)

    def test_truncated_graph_rejected(self):
        manifest, store = self._manifest()
        manifest["graph"] = manifest["graph"][:-1]
        with pytest.raises(CheckpointError):
            restore(manifest, store)

    def test_missing_page_chunk_rejected(self):
        manifest, store = self._manifest()
        record = manifest["machines"][0]
        pfn = next(iter(record["pages"]))
        record["pages"][pfn] = "0" * 64
        with pytest.raises(CheckpointError):
            restore(manifest, store)

    def test_wrong_size_page_chunk_rejected(self):
        manifest, store = self._manifest()
        record = manifest["machines"][0]
        pfn = next(iter(record["pages"]))
        record["pages"][pfn] = store.put(b"not a page")
        with pytest.raises(CheckpointError, match="not one page"):
            restore(manifest, store)

    def test_machine_count_mismatch_rejected(self):
        manifest, store = self._manifest()
        manifest["machines"] = manifest["machines"] + [
            {"frames": 1, "pages": {}}]
        with pytest.raises(CheckpointError, match="machines"):
            restore(manifest, store)

    def test_fingerprint_is_stable(self):
        assert registry_fingerprint() == registry_fingerprint()
        assert len(registry_fingerprint()) == 64
