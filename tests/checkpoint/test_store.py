"""The chunk store's fail-closed and crash-atomicity contracts.

The truncate-fuzzing classes simulate ``kill -9`` at every byte
boundary of a manifest or pointer write: whatever prefix survives, the
loader must open the *previous* checkpoint or fail closed — it must
never hand back torn state.
"""

import json
import os

import pytest

from repro.checkpoint.store import (
    CheckpointError,
    CheckpointStore,
    ChunkStore,
    MemoryChunkStore,
    atomic_write,
    tree_stats,
)


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(str(tmp_path / "ck"))


class TestChunkStore:
    def test_put_get_roundtrip(self, tmp_path):
        cs = ChunkStore(str(tmp_path))
        digest = cs.put(b"some page bytes")
        assert cs.has(digest)
        assert cs.get(digest) == b"some page bytes"

    def test_put_is_deduplicating(self, tmp_path):
        cs = ChunkStore(str(tmp_path))
        first = cs.put(b"x" * 4096)
        second = cs.put(b"x" * 4096)
        assert first == second
        assert cs.chunks_written == 1
        assert cs.chunks_deduped == 1

    def test_get_missing_fails_closed(self, tmp_path):
        cs = ChunkStore(str(tmp_path))
        with pytest.raises(CheckpointError):
            cs.get("0" * 64)

    def test_get_corrupt_fails_closed(self, tmp_path):
        cs = ChunkStore(str(tmp_path))
        digest = cs.put(b"good bytes")
        path = cs._path(digest)
        os.chmod(path, 0o644)
        with open(path, "wb") as fh:
            fh.write(b"evil bytes")
        with pytest.raises(CheckpointError, match="corrupt"):
            cs.get(digest)

    def test_memory_twin_same_contract(self):
        cs = MemoryChunkStore()
        digest = cs.put(b"data")
        assert cs.has(digest)
        assert cs.get(digest) == b"data"
        with pytest.raises(CheckpointError):
            cs.get("0" * 64)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "f")
        atomic_write(path, b"payload")
        assert open(path, "rb").read() == b"payload"
        assert os.listdir(str(tmp_path)) == ["f"]


class TestCommitAndLatest:
    def test_empty_store_has_no_latest(self, store):
        assert store.latest() is None
        with pytest.raises(CheckpointError):
            store.require_latest()

    def test_commit_then_latest(self, store):
        store.commit({"schema": "s", "kind": "k"})
        manifest = store.require_latest()
        assert manifest["kind"] == "k"
        assert manifest["sequence"] == 0

    def test_sequences_increase(self, store):
        store.commit({"n": 1})
        store.commit({"n": 2})
        manifest = store.require_latest()
        assert manifest["n"] == 2
        assert manifest["sequence"] == 1
        assert len(store.manifest_names()) == 2

    def test_pointer_ignored_when_manifest_tampered(self, store):
        store.commit({"n": 1})
        name = store.commit({"n": 2})
        path = os.path.join(store._manifests, name)
        payload = json.loads(open(path, "rb").read().decode())
        payload["n"] = 3
        with open(path, "w") as fh:
            json.dump(payload, fh)
        # pointer hash mismatch -> fall back to the previous manifest
        manifest = store.require_latest()
        assert manifest["n"] == 1


def _truncate(path, nbytes):
    with open(path, "rb") as fh:
        data = fh.read()
    with open(path, "wb") as fh:
        fh.write(data[:nbytes])
    return len(data)


class TestTruncateFuzzing:
    """kill -9 at every byte boundary: previous checkpoint or fail closed."""

    def test_torn_manifest_every_prefix(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.commit({"generation": "old"})
        name = store.commit({"generation": "new"})
        path = os.path.join(store._manifests, name)
        full = open(path, "rb").read()
        for cut in range(len(full)):
            with open(path, "wb") as fh:
                fh.write(full[:cut])
            manifest = store.latest()
            assert manifest is not None
            assert manifest["generation"] == "old", "cut=%d" % cut
        # restored in full, the new generation is visible again
        with open(path, "wb") as fh:
            fh.write(full)
        assert store.latest()["generation"] == "new"

    def test_torn_pointer_every_prefix(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.commit({"generation": "old"})
        store.commit({"generation": "new"})
        pointer_path = os.path.join(store.root, "LATEST")
        full = open(pointer_path, "rb").read()
        for cut in range(len(full)):
            with open(pointer_path, "wb") as fh:
                fh.write(full[:cut])
            # torn pointer: the scan still finds the newest manifest,
            # which is intact on disk
            manifest = store.latest()
            assert manifest is not None
            assert manifest["generation"] == "new", "cut=%d" % cut

    def test_torn_pointer_and_manifest_together(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.commit({"generation": "old"})
        name = store.commit({"generation": "new"})
        manifest_path = os.path.join(store._manifests, name)
        pointer_path = os.path.join(store.root, "LATEST")
        manifest_full = open(manifest_path, "rb").read()
        pointer_full = open(pointer_path, "rb").read()
        for cut in (0, 1, len(pointer_full) // 2, len(pointer_full) - 1):
            with open(pointer_path, "wb") as fh:
                fh.write(pointer_full[:cut])
            with open(manifest_path, "wb") as fh:
                fh.write(manifest_full[: len(manifest_full) // 2])
            manifest = store.latest()
            assert manifest["generation"] == "old"

    def test_single_checkpoint_torn_fails_closed(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        name = store.commit({"generation": "only"})
        path = os.path.join(store._manifests, name)
        full = open(path, "rb").read()
        for cut in range(0, len(full), 7):
            with open(path, "wb") as fh:
                fh.write(full[:cut])
            assert store.latest() is None, "cut=%d" % cut
            with pytest.raises(CheckpointError):
                store.require_latest()


class TestTreeStats:
    def test_counts_objects_and_manifests(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck" / "a"))
        store.put(b"chunk one")
        store.put(b"chunk one")     # deduped
        store.put(b"chunk two")
        store.commit({"graph": ["g"], "machines": [{"pages": {"0": "d"}}]})
        stats = tree_stats(str(tmp_path / "ck"))
        assert stats["stores"] == 1
        assert stats["objects"] == 2
        assert stats["manifests"] == 1
        assert stats["logical_chunk_refs"] == 2
