"""The restore-equivalence oracle: a restored clone stays in lockstep."""

import pytest

from repro.checkpoint.oracle import lockstep_check
from repro.checkpoint.store import CheckpointError


class TestLockstepOracle:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_clone_matches_original(self, seed):
        report = lockstep_check(seed, nops=200, frames=256, check_every=20)
        assert report["ops"] == 200
        assert report["checks"] >= 200 // 20
        # the stream must actually exercise the interesting lifecycle
        # transitions, not just reads and writes
        assert report["migrations"] > 0
        assert report["rotations"] > 0

    def test_divergence_is_detected(self, monkeypatch):
        # Sabotage the clone after restore: flip one byte of guest
        # memory on the restored side and the oracle must scream.
        import repro.checkpoint.oracle as oracle_mod

        real_restore = oracle_mod.restore

        def crooked_restore(manifest, store, machines_of=None):
            clone = real_restore(manifest, store, machines_of=machines_of)
            memory = clone.hosts[0].machine.memory
            page = bytearray(memory.read_frame(0))
            page[0] ^= 0xFF
            memory.write_frame(0, bytes(page))
            return clone

        monkeypatch.setattr(oracle_mod, "restore", crooked_restore)
        with pytest.raises(CheckpointError, match="diverge"):
            lockstep_check(1, nops=50, frames=256, check_every=10)
