"""Time-travel bisection pins a failure to a minimal fault window."""

import json

import pytest

from repro.checkpoint.bisect import (
    ARTIFACT_SCHEMA,
    bisect_fault_window,
    predicate_holds,
    write_artifact,
)
from repro.checkpoint.store import CheckpointError, CheckpointStore
from repro.faults.soak import run_scenario

# Seed 4 of the default scenario shape: three fault events, two of
# which break launch:t0 and migrate:t1.  The launch failure needs only
# the first event, so bisection has a real sub-window to find.
SEED, PREDICATE = 4, "failed-op:launch:t0"


class TestBisect:
    def test_finds_minimal_window_and_checkpoints(self, tmp_path):
        artifact = bisect_fault_window(
            SEED, predicate=PREDICATE,
            checkpoint_dir=str(tmp_path / "bisect"))
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["seed"] == SEED
        assert artifact["window"]["limit"] < artifact["total_events"]
        assert artifact["window"]["skip"] <= artifact["window"]["limit"]
        assert artifact["trials"] > 0
        # the verification run left its in-seed checkpoints behind
        store = CheckpointStore(str(tmp_path / "bisect"))
        assert store.manifest_names()
        # the window the bisector found actually reproduces
        from repro.faults.soak import fire_window
        window = fire_window(artifact["window"]["skip"],
                             artifact["window"]["limit"])
        result = run_scenario(SEED, window=window)
        assert predicate_holds(PREDICATE, result)
        # ...and the complement window does not
        complement = fire_window(artifact["window"]["limit"], None)
        result = run_scenario(SEED, window=complement)
        assert not predicate_holds(PREDICATE, result)

    def test_artifact_roundtrips_as_json(self, tmp_path):
        artifact = {"schema": ARTIFACT_SCHEMA, "seed": 1,
                    "window": {"skip": 0, "limit": 2}}
        path = str(tmp_path / "artifact.json")
        write_artifact(artifact, path)
        assert json.load(open(path)) == artifact

    def test_nonfailing_predicate_is_rejected(self):
        with pytest.raises(CheckpointError, match="nothing to bisect"):
            bisect_fault_window(SEED, predicate="failed-op:no-such-op")

    def test_unknown_predicate_is_rejected(self):
        with pytest.raises(CheckpointError, match="unknown bisect"):
            predicate_holds("bogus", object())

    def test_stale_checkpoint_dir_is_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "stale"))
        store.commit({"kind": "leftover"})
        with pytest.raises(CheckpointError, match="not fresh"):
            bisect_fault_window(SEED, predicate=PREDICATE,
                                checkpoint_dir=str(tmp_path / "stale"))
