"""Crash-resumable soaks: resumed runs are byte-identical, fail closed.

The in-process classes exercise the checkpoint/resume machinery
directly; :class:`TestKillNineResume` runs the real CLI in a
subprocess, SIGKILLs it mid-sweep, resumes, and diffs the output
against an uninterrupted run — the same protocol as CI's
``resume-equivalence`` job.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.checkpoint.store import CheckpointError, CheckpointStore
from repro.faults.soak import resumable_soak, run_scenario
from repro.runner import unit_checkpoint_path

PARAMS = {"hosts": 2, "tenants": 2, "frames": 512, "nfaults": 6}


class TestInSeedResume:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        baseline = run_scenario(3, **PARAMS)
        checkpointed = run_scenario(
            3, checkpoint_dir=str(tmp_path / "unit"), every_events=1,
            **PARAMS)
        assert pickle.dumps(checkpointed) == pickle.dumps(baseline)

    def test_resume_from_mid_seed_checkpoint(self, tmp_path):
        baseline = run_scenario(3, **PARAMS)
        # First run leaves its in-seed checkpoints behind; a second
        # call on the same store resumes from the newest one, replays
        # the remaining ops, and must land on the identical result.
        run_scenario(3, checkpoint_dir=str(tmp_path / "unit"),
                     every_events=1, **PARAMS)
        resumed = run_scenario(3, checkpoint_dir=str(tmp_path / "unit"),
                               every_events=1, **PARAMS)
        assert pickle.dumps(resumed) == pickle.dumps(baseline)

    def test_resume_rejects_different_params(self, tmp_path):
        run_scenario(3, checkpoint_dir=str(tmp_path / "unit"),
                     every_events=1, **PARAMS)
        other = dict(PARAMS, nfaults=PARAMS["nfaults"] + 1)
        with pytest.raises(CheckpointError, match="parameters"):
            run_scenario(3, checkpoint_dir=str(tmp_path / "unit"),
                         every_events=1, **other)


class TestResumableSweep:
    def test_sweep_matches_plain_results(self, tmp_path):
        seeds = [2, 3, 4]
        plain = [run_scenario(seed, **PARAMS) for seed in seeds]
        swept = resumable_soak(seeds, str(tmp_path / "ck"), every_seeds=1,
                               **PARAMS)
        assert pickle.dumps(swept) == pickle.dumps(plain)

    def test_existing_progress_requires_resume_flag(self, tmp_path):
        seeds = [2, 3]
        resumable_soak(seeds, str(tmp_path / "ck"), **PARAMS)
        with pytest.raises(CheckpointError, match="--resume"):
            resumable_soak(seeds, str(tmp_path / "ck"), **PARAMS)

    def test_resume_of_finished_sweep_is_identical(self, tmp_path):
        seeds = [2, 3]
        first = resumable_soak(seeds, str(tmp_path / "ck"), **PARAMS)
        again = resumable_soak(seeds, str(tmp_path / "ck"), resume=True,
                               **PARAMS)
        assert pickle.dumps(again) == pickle.dumps(first)

    def test_resume_rejects_parameter_drift(self, tmp_path):
        resumable_soak([2, 3], str(tmp_path / "ck"), **PARAMS)
        other = dict(PARAMS, tenants=3)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            resumable_soak([2, 3], str(tmp_path / "ck"), resume=True,
                           **other)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            resumable_soak([2, 3, 4], str(tmp_path / "ck"), resume=True,
                           **PARAMS)

    def test_in_seed_stores_are_per_seed(self, tmp_path):
        resumable_soak([2, 3], str(tmp_path / "ck"), every_seeds=1,
                       every_events=1, **PARAMS)
        for seed in (2, 3):
            unit = CheckpointStore(
                unit_checkpoint_path(str(tmp_path / "ck"), seed))
            manifest = unit.require_latest()
            assert manifest["kind"] == "soak-inseed"
            assert manifest["meta"]["seed"] == seed


def _soak_cli(args, checkpoint_dir):
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-m", "repro.faults.soak", "--seeds", "4",
         "--hosts", "2", "--nfaults", "3",
         "--checkpoint-dir", checkpoint_dir, "--checkpoint-every", "2",
         "--checkpoint-events", "2"] + args,
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))))


class TestKillNineResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = _soak_cli([], str(tmp_path / "uninterrupted"))
        assert reference.returncode == 0, reference.stderr

        killed = _soak_cli(["--sigkill-after", "2"],
                           str(tmp_path / "interrupted"))
        assert killed.returncode == -9  # SIGKILL mid-sweep

        resumed = _soak_cli(["--resume"], str(tmp_path / "interrupted"))
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == reference.stdout
