"""Self-consistency checks between the documentation and the code.

A reproduction's docs rot silently; these tests keep DESIGN.md,
docs/paper_map.md and the README honest against the actual tree.
"""

import importlib
import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _read(*parts):
    with open(os.path.join(ROOT, *parts)) as handle:
        return handle.read()


class TestPaperMap:
    @pytest.fixture(scope="class")
    def paper_map(self):
        return _read("docs", "paper_map.md")

    def test_every_referenced_module_imports(self, paper_map):
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", paper_map))
        assert len(modules) > 15
        for dotted in sorted(modules):
            # strip attribute references like repro.core.lifecycle.GuestOwner
            parts = dotted.split(".")
            for cut in range(len(parts), 1, -1):
                try:
                    importlib.import_module(".".join(parts[:cut]))
                    break
                except ImportError:
                    continue
            else:
                pytest.fail("paper_map references unimportable %s" % dotted)

    def test_every_referenced_test_file_exists(self, paper_map):
        files = set(re.findall(r"`(tests/[\w/]+\.py)", paper_map))
        assert files
        for path in sorted(files):
            assert os.path.exists(os.path.join(ROOT, path)), path

    def test_every_referenced_benchmark_exists(self, paper_map):
        files = set(re.findall(r"`(benchmarks/[\w/]+\.py)", paper_map))
        for path in sorted(files):
            assert os.path.exists(os.path.join(ROOT, path)), path


class TestDesignDoc:
    def test_confirms_the_right_paper(self):
        design = _read("DESIGN.md")
        assert "Comprehensive VM Protection" in design
        assert "HPCA 2018" in design
        assert "10.1109/HPCA.2018.00045" in design

    def test_experiment_index_commands_are_real(self):
        from repro.eval.__main__ import COMMANDS
        design = _read("DESIGN.md")
        for command in re.findall(r"python -m repro\.eval (\S+)`", design):
            assert command in COMMANDS, command

    def test_benchmark_targets_exist(self):
        design = _read("DESIGN.md")
        for path in set(re.findall(r"`(benchmarks/[\w/]+\.py)`", design)):
            assert os.path.exists(os.path.join(ROOT, path)), path


class TestReadme:
    def test_example_table_matches_directory(self):
        readme = _read("README.md")
        listed = set(re.findall(r"\| `(\w+\.py)` \|", readme))
        on_disk = {name for name in os.listdir(os.path.join(ROOT, "examples"))
                   if name.endswith(".py")}
        assert listed == on_disk

    def test_attack_count_matches_registry(self):
        from repro.attacks import ALL_ATTACKS
        readme = _read("README.md")
        match = re.search(r"(\d+) attack programs", readme)
        assert match and int(match.group(1)) == len(ALL_ATTACKS)

    def test_quickstart_modules_exist(self):
        import repro
        assert hasattr(repro, "System")
        assert hasattr(repro, "GuestOwner")


class TestExamplesAreImportable:
    def test_examples_compile(self):
        import py_compile
        examples = os.path.join(ROOT, "examples")
        for name in os.listdir(examples):
            if name.endswith(".py"):
                py_compile.compile(os.path.join(examples, name),
                                   doraise=True)
