"""Tests for the bit vector and the once-policy tracker."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitvector import BitVector, OncePolicy
from repro.common.errors import ReproError


class TestBitVector:
    def test_starts_clear(self):
        bv = BitVector(100)
        assert not any(bv.test(i) for i in range(100))
        assert bv.count() == 0

    def test_set_and_test(self):
        bv = BitVector(16)
        bv.set(7)
        assert bv.test(7)
        assert not bv.test(6)
        assert not bv.test(8)

    def test_clear(self):
        bv = BitVector(8)
        bv.set(3)
        bv.clear(3)
        assert not bv.test(3)

    def test_test_and_set(self):
        bv = BitVector(8)
        assert bv.test_and_set(2) is False
        assert bv.test_and_set(2) is True

    def test_out_of_range(self):
        bv = BitVector(8)
        with pytest.raises(IndexError):
            bv.test(8)
        with pytest.raises(IndexError):
            bv.set(-1)

    def test_any_set_and_set_range(self):
        bv = BitVector(64)
        bv.set_range(10, 5)
        assert bv.any_set(8, 4)
        assert not bv.any_set(0, 10)
        assert bv.count() == 5

    @given(st.sets(st.integers(0, 255)))
    def test_property_count_matches_set(self, indices):
        bv = BitVector(256)
        for i in indices:
            bv.set(i)
        assert bv.count() == len(indices)
        assert all(bv.test(i) for i in indices)


class TestOncePolicy:
    def test_first_use_allowed_second_forbidden(self):
        policy = OncePolicy(base=0x1000, size=64, name="write-once")
        policy.use(0x1000, 8)
        with pytest.raises(ReproError):
            policy.use(0x1000, 8)

    def test_overlapping_second_use_forbidden(self):
        policy = OncePolicy(base=0x1000, size=64)
        policy.use(0x1000, 16)
        with pytest.raises(ReproError):
            policy.use(0x100F, 2)

    def test_disjoint_uses_allowed(self):
        policy = OncePolicy(base=0x1000, size=64)
        policy.use(0x1000, 8)
        policy.use(0x1010, 8)
        assert policy.used(0x1000)
        assert not policy.used(0x1008)

    def test_outside_region_rejected(self):
        policy = OncePolicy(base=0x1000, size=16)
        with pytest.raises(ReproError):
            policy.use(0x0FFF, 1)
        with pytest.raises(ReproError):
            policy.use(0x100F, 2)

    def test_covers(self):
        policy = OncePolicy(base=0x1000, size=16)
        assert policy.covers(0x1000, 16)
        assert not policy.covers(0x1000, 17)
