"""Tests for the simulated cryptography primitives."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.common import crypto

KEY_A = b"A" * 16
KEY_B = b"B" * 16


class TestKeystreamCipher:
    def test_roundtrip(self):
        ct = crypto.xex_encrypt(KEY_A, b"tweak", b"hello world")
        assert crypto.xex_decrypt(KEY_A, b"tweak", ct) == b"hello world"

    def test_deterministic(self):
        a = crypto.xex_encrypt(KEY_A, b"t", b"payload")
        b = crypto.xex_encrypt(KEY_A, b"t", b"payload")
        assert a == b

    def test_wrong_key_garbage_not_error(self):
        ct = crypto.xex_encrypt(KEY_A, b"t", b"plaintext!")
        garbled = crypto.xex_decrypt(KEY_B, b"t", ct)
        assert garbled != b"plaintext!"

    def test_wrong_tweak_garbage(self):
        ct = crypto.xex_encrypt(KEY_A, b"t1", b"plaintext!")
        assert crypto.xex_decrypt(KEY_A, b"t2", ct) != b"plaintext!"

    def test_offset_slices_match_full_encryption(self):
        full = crypto.xex_encrypt(KEY_A, b"t", b"0123456789abcdef" * 8)
        part = crypto.xex_encrypt(KEY_A, b"t", b"456789", offset=4)
        assert full[4:10] == part

    def test_offset_across_digest_block_boundary(self):
        data = bytes(range(100))
        full = crypto.xex_encrypt(KEY_A, b"t", data)
        part = crypto.xex_encrypt(KEY_A, b"t", data[30:70], offset=30)
        assert full[30:70] == part

    @given(data=st.binary(max_size=300), offset=st.integers(0, 500))
    def test_property_roundtrip_any_offset(self, data, offset):
        ct = crypto.xex_encrypt(KEY_A, b"tw", data, offset=offset)
        assert crypto.xex_decrypt(KEY_A, b"tw", ct, offset=offset) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_property_ciphertext_differs_from_plaintext(self, data):
        # A keystream collision of all-zero bytes over the range is
        # cryptographically negligible; treat equality as failure.
        assert crypto.xex_encrypt(KEY_A, b"t", data) != data or len(data) == 0


class TestKeyWrap:
    def test_wrap_unwrap(self):
        wrapped = crypto.wrap_key(KEY_A, KEY_B)
        assert crypto.unwrap_key(KEY_A, wrapped) == KEY_B

    def test_unwrap_wrong_kek_rejected(self):
        wrapped = crypto.wrap_key(KEY_A, KEY_B)
        with pytest.raises(ValueError):
            crypto.unwrap_key(b"C" * 16, wrapped)

    def test_tampered_ciphertext_rejected(self):
        ct, tag = crypto.wrap_key(KEY_A, KEY_B)
        evil = bytes([ct[0] ^ 1]) + ct[1:]
        with pytest.raises(ValueError):
            crypto.unwrap_key(KEY_A, (evil, tag))


class TestDiffieHellman:
    def test_agreement(self):
        alice = crypto.DiffieHellman(random.Random(1))
        bob = crypto.DiffieHellman(random.Random(2))
        nonce = b"n" * 16
        assert alice.shared_secret(bob.public, nonce) == \
            bob.shared_secret(alice.public, nonce)

    def test_eavesdropper_with_different_key_disagrees(self):
        alice = crypto.DiffieHellman(random.Random(1))
        bob = crypto.DiffieHellman(random.Random(2))
        eve = crypto.DiffieHellman(random.Random(3))
        nonce = b"n" * 16
        assert eve.shared_secret(bob.public, nonce) != \
            alice.shared_secret(bob.public, nonce)

    def test_nonce_binds_secret(self):
        alice = crypto.DiffieHellman(random.Random(1))
        bob = crypto.DiffieHellman(random.Random(2))
        assert alice.shared_secret(bob.public, b"x" * 16) != \
            alice.shared_secret(bob.public, b"y" * 16)

    def test_invalid_public_value_rejected(self):
        alice = crypto.DiffieHellman(random.Random(1))
        with pytest.raises(ValueError):
            alice.shared_secret(1, b"n")
        with pytest.raises(ValueError):
            alice.shared_secret(crypto.DH_PRIME - 1, b"n")


class TestMeasurement:
    def test_measurement_is_keyed(self):
        assert crypto.hmac_measure(KEY_A, b"data") != \
            crypto.hmac_measure(KEY_B, b"data")

    def test_measurement_detects_change(self):
        assert crypto.hmac_measure(KEY_A, b"data") != \
            crypto.hmac_measure(KEY_A, b"Data")

    def test_derive_key_labels_independent(self):
        secret = b"s" * 32
        assert crypto.derive_key(secret, "kek") != crypto.derive_key(secret, "tik")
        assert len(crypto.derive_key(secret, "kek")) == 16

    def test_random_key_deterministic_per_rng(self):
        assert crypto.random_key(random.Random(9)) == \
            crypto.random_key(random.Random(9))
