"""Tests for shared value types and address helpers."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import (
    Access,
    Owner,
    PRIV_OPCODES,
    PageUsage,
    PrivOp,
    frame_addr,
    page_base,
    page_offset,
    page_table_usage_for_level,
    pfn_of,
)


class TestAddressHelpers:
    def test_pfn_roundtrip(self):
        assert pfn_of(frame_addr(42)) == 42
        assert pfn_of(frame_addr(42) + 123) == 42

    def test_page_offset_and_base(self):
        addr = 7 * PAGE_SIZE + 0x123
        assert page_offset(addr) == 0x123
        assert page_base(addr) == 7 * PAGE_SIZE
        assert page_base(addr) + page_offset(addr) == addr


class TestAccess:
    def test_constructors(self):
        assert Access.read() == Access()
        assert Access.store().write
        assert Access.fetch().execute

    def test_frozen(self):
        with pytest.raises(Exception):
            Access.read().write = True


class TestPrivOpcodes:
    def test_every_op_has_an_encoding(self):
        assert set(PRIV_OPCODES) == set(PrivOp)

    def test_encodings_are_distinct(self):
        encodings = list(PRIV_OPCODES.values())
        assert len(set(encodings)) == len(encodings)

    def test_real_x86_prefixes(self):
        """All the restricted instructions are 0F-prefixed (two-byte
        opcode map), like the real encodings they model."""
        assert all(enc[0] == 0x0F for enc in PRIV_OPCODES.values())

    def test_no_encoding_is_a_prefix_of_another(self):
        """Prefix collisions would confuse the binary scanner's hit
        attribution (a WRMSR hit inside every MOV CRn would be noise)."""
        encodings = list(PRIV_OPCODES.values())
        for a in encodings:
            for b in encodings:
                if a is not b and b.startswith(a):
                    # allowed only if they're literally different ops at
                    # different lengths and the scanner reports both
                    assert len(a) < len(b)


class TestEnums:
    def test_page_table_usage_for_level(self):
        assert page_table_usage_for_level(4) is PageUsage.PAGE_TABLE_L4
        assert page_table_usage_for_level(1) is PageUsage.PAGE_TABLE_L1
        with pytest.raises(KeyError):
            page_table_usage_for_level(5)

    def test_is_page_table_property(self):
        assert PageUsage.PAGE_TABLE_L2.is_page_table
        assert not PageUsage.NPT_PAGE.is_page_table
        assert not PageUsage.GUEST_RAM.is_page_table

    def test_owner_values_fit_pit_field(self):
        assert all(owner.value < 8 for owner in Owner)

    def test_usage_values_fit_pit_field(self):
        assert all(usage.value < 32 for usage in PageUsage)
