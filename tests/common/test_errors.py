"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    AttackFailed,
    FirmwareStateError,
    GateViolation,
    GrantTableError,
    HypercallError,
    NestedPageFault,
    PageFault,
    PhysicalMemoryError,
    PolicyViolation,
    ReproError,
    SevError,
    XenError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (PhysicalMemoryError, PageFault, NestedPageFault,
                         SevError, XenError, HypercallError,
                         GrantTableError, PolicyViolation, GateViolation,
                         AttackFailed):
            assert issubclass(exc_type, ReproError)

    def test_gate_violation_is_policy_violation(self):
        assert issubclass(GateViolation, PolicyViolation)

    def test_firmware_state_error_is_sev_error(self):
        assert issubclass(FirmwareStateError, SevError)

    def test_hypercall_error_is_xen_error(self):
        assert issubclass(HypercallError, XenError)


class TestPageFault:
    def test_attributes(self):
        fault = PageFault(0x1234, write=True, present=True)
        assert fault.vaddr == 0x1234
        assert fault.write and fault.present
        assert not fault.execute and not fault.user
        assert "0x1234" in str(fault)

    def test_custom_message(self):
        fault = PageFault(0x1000, message="custom text")
        assert str(fault) == "custom text"


class TestStructuredErrors:
    def test_sev_error_status(self):
        error = SevError("INVALID_HANDLE")
        assert error.status == "INVALID_HANDLE"

    def test_firmware_state_error_fields(self):
        error = FirmwareStateError("running", "sending")
        assert error.expected == "running"
        assert error.actual == "sending"
        assert "sending" in str(error)

    def test_policy_violation_names_policy(self):
        error = PolicyViolation("pit", "bad mapping")
        assert error.policy == "pit"
        assert "pit" in str(error) and "bad mapping" in str(error)

    def test_gate_violation_policy_prefix(self):
        error = GateViolation("type2", "hijack")
        assert error.gate == "type2"
        assert error.policy == "gate-type2"

    def test_hypercall_error_code(self):
        error = HypercallError(-22)
        assert error.code == -22

    def test_nested_page_fault(self):
        fault = NestedPageFault(0x5000, write=True)
        assert fault.gpa == 0x5000
        assert fault.write
