"""The assembled stack: machine + SEV firmware + Xen (+ Fidelius).

This is the top of the public API.  ``System.create(fidelius=True)``
boots the full paper configuration; ``fidelius=False`` boots the
baseline SEV-only Xen the security evaluation attacks succeed against.
"""

from repro.common.errors import ReproError
from repro.core.fidelius import Fidelius
from repro.core.io_protect import AesNiIoEncoder, SevApiIoEncoder
from repro.core.lifecycle import (
    GuestOwner,
    boot_protected_guest,
    read_embedded_kblk,
)
from repro.hw.machine import Machine
from repro.sev.firmware import SevFirmware
from repro.xen.hypervisor import Hypervisor
from repro.xen.pv_io.disk import VirtualDisk
from repro.xen.pv_io.frontend import connect_block_device


class System:
    """One host system, optionally hardened with Fidelius."""

    def __init__(self, machine, firmware, hypervisor, fidelius=None):
        self.machine = machine
        self.firmware = firmware
        self.hypervisor = hypervisor
        self.fidelius = fidelius
        self.sev_es = False

    @classmethod
    def create(cls, fidelius=True, frames=4096, seed=0x51EF, lazy_npt=False,
               iommu=False, sev_es=False, reference_datapath=False,
               cache_lines=4096):
        """Boot a host.

        With ``fidelius=True`` the SEV platform INIT runs inside
        Fidelius's type 3 gate during its late launch (Section 4.3.1);
        without it, the hypervisor initializes the firmware directly —
        the baseline configuration.  ``sev_es=True`` models the SEV-ES
        hardware on a baseline host (the paper's "remaining problems"
        configuration).  ``iommu=True`` adds the beyond-the-paper
        device-DMA protection extension.  ``reference_datapath=True``
        boots on the kept-simple encrypted data path (see
        :class:`repro.hw.machine.Machine`) — functionally identical,
        slower; perfbench's baseline.
        """
        machine = Machine(frames=frames, seed=seed,
                          reference_datapath=reference_datapath,
                          cache_lines=cache_lines)
        machine.build_host_address_space()
        firmware = SevFirmware(machine)
        hypervisor = Hypervisor(machine, firmware)
        hypervisor.lazy_npt = lazy_npt
        if fidelius:
            hypervisor.boot()
            if iommu:
                hypervisor.enable_iommu()
            if sev_es:
                from repro.sev.es import enable_sev_es
                hypervisor.sev_es_boundary = enable_sev_es(hypervisor)
            fid = Fidelius(machine, hypervisor, firmware).install()
            system = cls(machine, firmware, hypervisor, fid)
            system.sev_es = sev_es
            return system
        firmware.init()
        hypervisor.boot()
        if iommu:
            hypervisor.enable_iommu()
        system = cls(machine, firmware, hypervisor, None)
        if sev_es:
            from repro.sev.es import enable_sev_es
            enable_sev_es(hypervisor)
            system.sev_es = True
        return system

    @property
    def protected(self):
        return self.fidelius is not None

    # -- guest construction -------------------------------------------------------

    def create_baseline_sev_guest(self, name, guest_frames=64, vcpus=1):
        """A guest protected by *plain SEV only* (no Fidelius): the
        configuration the Section 2.2 attacks are mounted against."""
        domain = self.hypervisor.create_domain(name, guest_frames, sev=True,
                                               vcpus=vcpus)
        handle = self.firmware.launch_start()
        self.firmware.launch_finish(handle)
        self.firmware.activate(handle, domain.asid)
        domain.sev_handle = handle
        domain.sev_es = self.sev_es
        return domain, domain.context()

    def create_plain_guest(self, name, guest_frames=64, vcpus=1):
        """A guest with no memory encryption at all."""
        domain = self.hypervisor.create_domain(name, guest_frames, sev=False,
                                               vcpus=vcpus)
        return domain, domain.context()

    def boot_protected_guest(self, name, owner, payload=b"", guest_frames=64,
                             tamper=None, vcpus=1):
        """Boot a fully protected guest from an owner-prepared encrypted
        image (Sections 4.3.2-4.3.3).  Requires Fidelius."""
        if self.fidelius is None:
            raise ReproError("protected guests require Fidelius")
        image = owner.prepare_encrypted_image(
            payload, self.firmware.platform_public_key)
        return boot_protected_guest(
            self.fidelius, name, image, guest_frames, tamper=tamper,
            vcpus=vcpus)

    # -- storage ------------------------------------------------------------------------

    def attach_disk(self, domain, ctx, sectors=4096, encoder=None,
                    image=None, buffer_pages=4):
        """Create a disk, optionally preloaded with ``image``, and wire
        the PV block path up.  Returns (disk, frontend, backend)."""
        disk = VirtualDisk(sectors=sectors)
        if image is not None:
            disk.load_image(0, image)
        frontend, backend = connect_block_device(
            self.hypervisor, domain, ctx, disk, encoder=encoder,
            buffer_pages=buffer_pages)
        return disk, frontend, backend

    def memory_contains(self, needle):
        """True if ``needle`` appears anywhere in raw DRAM — what a
        cold-boot attacker (or the hypervisor via DMA) would see.  Guest
        secrets behind the memory encryption engine never match."""
        return any(needle in frame
                   for frame in self.machine.cold_boot_dump().values())

    def aesni_encoder_for(self, ctx):
        """Build the AES-NI encoder from the K_blk embedded in the
        booted kernel image (Section 4.3.3 step 4)."""
        kblk = read_embedded_kblk(ctx)
        return AesNiIoEncoder(kblk, self.machine.cycles)

    def sev_encoder_for(self, domain, ctx, pages=4):
        """Build the SEV-API encoder (creates the s-dom and r-dom)."""
        if self.fidelius is None:
            raise ReproError("the SEV I/O path requires Fidelius")
        return SevApiIoEncoder.create(self.fidelius, domain, ctx, pages=pages)


def paired_systems(frames=4096, seed=0x7E57):
    """Two Fidelius hosts (e.g. a migration source and target)."""
    source = System.create(fidelius=True, frames=frames, seed=seed)
    target = System.create(fidelius=True, frames=frames, seed=seed + 1)
    return source, target


__all__ = ["System", "GuestOwner", "paired_systems"]
