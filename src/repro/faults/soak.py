"""The chaos soak harness: scripted fleet workloads under injected faults.

One scenario = one seed.  The seed fixes both the fault plan
(:meth:`~repro.faults.plan.FaultPlan.random`) and the fleet (every
host's machine RNG), so a failing schedule replays byte for byte from
the seed alone — run the same seed twice and :func:`schedule_bytes`
returns identical bytes.

The workload launches tenants with secret payloads, drives encrypted
disk I/O, migrates every tenant, evacuates a host and shuts a tenant
down, with faults armed at every boundary.  After each operation, and
once more after disarming, the harness asserts the two paper-level
properties the fault injection exists to defend:

* **placement** — every tenant is running on exactly one host (its
  domain live on the host its handle names, no duplicate incarnations
  anywhere), or its operation raised cleanly and it stayed put;
* **confidentiality** — no tenant secret appears in any host's raw DRAM
  (:func:`repro.eval.security.plaintext_leak_scan`), whatever faults
  the platform absorbed.

The final phase also re-enters every surviving tenant (proving a
cancelled migration really leaves the source RUNNING) and runs the full
:func:`repro.core.invariants.check_invariants` audit on every host.

Crash resumability (``--checkpoint-dir`` / ``--resume``): long soaks
checkpoint themselves through :mod:`repro.checkpoint` — completed-seed
results every ``--checkpoint-every`` seeds into a *progress* store, and
(optionally) the live fleet mid-scenario every ``--checkpoint-events``
fault firings into a per-seed store.  A killed soak resumed from its
checkpoints produces a report and digest byte-identical to the
uninterrupted run; CI's ``resume-equivalence`` job SIGKILLs a 20-seed
soak at seed 10 and holds us to that.
"""

import json
import os
import random
import signal
from dataclasses import dataclass, field

from repro.checkpoint import (
    CheckpointError,
    CheckpointStore,
    restore,
    snapshot,
)
from repro.cloud import Cloud
from repro.common.errors import ReproError
from repro.core.invariants import check_invariants
from repro.eval.security import plaintext_leak_scan
from repro.faults.inject import FireWindow, arm_cloud, schedule_bytes
from repro.faults.plan import FaultPlan
from repro.fleet.events import Event, EventQueue
from repro.runner import (
    WorkUnit,
    add_jobs_argument,
    digest,
    execute,
    unit_checkpoint_path,
)
from repro.system import GuestOwner
from repro.xen import hypercalls as hc

#: The fixed seed set CI soaks over (acceptance floor: 20 seeds).
DEFAULT_SEEDS = tuple(range(20))

#: Manifest kinds this harness writes.
PROGRESS_KIND = "soak-progress"
INSEED_KIND = "soak-inseed"
FLEET_INSEED_KIND = "soak-fleet-inseed"


@dataclass
class SoakResult:
    """Everything one scenario observed, for assertions and replay."""

    seed: int
    completed_ops: list = field(default_factory=list)
    failed_ops: list = field(default_factory=list)   # (op, error string)
    violations: list = field(default_factory=list)
    schedule: bytes = b""
    survivors: int = 0

    @property
    def clean(self):
        return not self.violations

    def describe(self):
        return ("seed=%d ok=%d failed-clean=%d faults=%d survivors=%d %s"
                % (self.seed, len(self.completed_ops), len(self.failed_ops),
                   len(self.schedule.splitlines()), self.survivors,
                   "CLEAN" if self.clean else "VIOLATED"))


def _secret(seed, name):
    """A high-entropy-looking needle unique to (scenario, tenant)."""
    return (b"SOAK-SECRET|%s|seed=%d|" % (name.encode(), seed)) * 4


def fleet_violations(cloud, secrets):
    """The placement and confidentiality checks, against a live fleet."""
    violations = []
    for tenant in cloud.tenants.values():
        host = cloud.host(tenant.host_index)
        if host.hypervisor.domains.get(tenant.domain.domid) \
                is not tenant.domain:
            violations.append("tenant %r lost: domain %d not live on "
                              "host %d" % (tenant.name, tenant.domain.domid,
                                           tenant.host_index))
        incarnations = sum(
            1 for system in cloud.hosts
            for domain in system.hypervisor.domains.values()
            if domain.name == tenant.name)
        if incarnations != 1:
            violations.append("tenant %r has %d incarnations across the "
                              "fleet" % (tenant.name, incarnations))
    for index, system in enumerate(cloud.hosts):
        for leak in plaintext_leak_scan(system, secrets):
            violations.append("host %d: %s" % (index, leak))
    return violations


def _attempt(result, cloud, secrets, name, operation):
    """Run one workload step; a clean ReproError is an accepted outcome,
    anything the fleet checks flag afterwards is not."""
    try:
        operation()
        result.completed_ops.append(name)
    except ReproError as exc:
        result.failed_ops.append((name, str(exc)))
    result.violations.extend(
        "%s: %s" % (name, v) for v in fleet_violations(cloud, secrets))


# -- scenario construction -------------------------------------------------------


def _tenant_setup(seed, tenants):
    """Tenant names and secret needles — pure functions of the seed, so
    a resumed scenario recomputes them instead of checkpointing them."""
    names = ["t%d" % i for i in range(tenants)]
    secrets = [(name, _secret(seed, name)) for name in names]
    disk_secret = _secret(seed, "disk")
    secrets.append(("disk", disk_secret))
    return names, secrets, disk_secret


def _launch_op(cloud, seed, name, index):
    def op():
        cloud.launch_tenant(name, GuestOwner(seed=seed * 101 + index),
                            payload=_secret(seed, name),
                            guest_frames=32)
    return op


def _disk_io_op(cloud, injectors, disk_secret, name):
    def op():
        tenant = cloud.tenants.get(name)
        if tenant is None:
            return
        host = cloud.host(tenant.host_index)
        encoder = host.aesni_encoder_for(tenant.ctx)
        _, frontend, _ = host.attach_disk(
            tenant.domain, tenant.ctx, sectors=64, encoder=encoder)
        injectors[tenant.host_index].arm_ring(frontend.ring)
        frontend.write(0, disk_secret)
        frontend.read(0, 1)
    return op


def _migrate_op(cloud, name):
    def op():
        if name in cloud.tenants:
            cloud.migrate_tenant(name)
    return op


def _shutdown_op(cloud, name):
    def op():
        if name in cloud.tenants:
            cloud.shutdown_tenant(name)
    return op


def _scenario_ops(cloud, injectors, seed, names, disk_secret):
    """The scripted workload, as an ordered ``(name, thunk)`` list.

    The list (names, order, closure behavior) is a pure function of the
    scenario parameters, so a resumed run rebuilds it against the
    restored fleet and continues from the checkpointed op index.
    """
    ops = []
    for index, name in enumerate(names):
        ops.append(("launch:" + name, _launch_op(cloud, seed, name, index)))
    ops.append(("disk-io", _disk_io_op(cloud, injectors, disk_secret,
                                       names[0])))
    for name in names:
        ops.append(("migrate:" + name, _migrate_op(cloud, name)))
    ops.append(("evacuate:0", lambda: cloud.evacuate(0)))
    ops.append(("shutdown:" + names[-1], _shutdown_op(cloud, names[-1])))
    return ops


def _drive(cloud, injectors, result, secrets, ops, start_at, checkpointer,
           seed, params):
    """Run the workload from op ``start_at``, checkpointing between ops."""
    for index in range(start_at, len(ops)):
        name, op = ops[index]
        _attempt(result, cloud, secrets, name, op)
        if checkpointer is not None:
            checkpointer.after_op(cloud, injectors, result, seed,
                                  index + 1, params)


def _finish_scenario(cloud, injectors, result, secrets):
    """Final phase: faults off, the fleet must stand on its own."""
    result.schedule = schedule_bytes(injectors)
    for injector in injectors:
        injector.disarm()
    result.violations.extend(
        "final: %s" % v for v in fleet_violations(cloud, secrets))
    for tenant in cloud.tenants.values():
        try:
            tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        except ReproError as exc:
            result.violations.append(
                "final: tenant %r not re-enterable: %s" % (tenant.name, exc))
    for index, system in enumerate(cloud.hosts):
        result.violations.extend(
            "final: host %d invariant: %s" % (index, v)
            for v in check_invariants(system))
    result.survivors = len(cloud.tenants)
    return result


# -- in-seed checkpointing -------------------------------------------------------


def _events_seen(injectors):
    """Total fault firings so far (admitted and window-suppressed)."""
    return sum(len(i.fired) + len(i.suppressed) for i in injectors)


def _rearm_cloud(cloud, injectors):
    """Re-shadow the fleet's boundaries onto *existing* injectors (same
    counters, same budgets) after a disarm-for-pickling window.  Disk
    rings armed by earlier ops are not re-armed: each ring is only
    driven within its own op, and in-seed checkpoints happen between
    ops, so the omission is behavior-neutral."""
    for index, injector in enumerate(injectors):
        host = cloud.host(index)
        injector.arm_fidelius(host.fidelius)
        injector.arm_memctrl(host.machine.memctrl)
        injector.arm_attestation(cloud.authority(index))


class InSeedCheckpointer:
    """Writes one scenario's mid-run resume points.

    Every ``every_events`` fault firings, the live fleet, the partial
    result and every injector's replay state go into ``store`` as a
    ``soak-inseed`` checkpoint.  The injectors' instance-level wrappers
    are unpicklable closures, so the protocol is disarm -> snapshot ->
    re-arm; the wrappers carry no state (it all lives in the injector),
    so the round trip is invisible to the run.
    """

    #: manifest kind written (the fleet profile overrides it)
    kind = INSEED_KIND

    def __init__(self, store, every_events):
        self.store = store
        self.every_events = every_events
        self._written_at = 0

    def resync(self, injectors):
        """Continue the firing cadence from a restored run's counters."""
        self._written_at = _events_seen(injectors)

    def after_op(self, cloud, injectors, result, seed, next_op, params,
                 extra=None):
        if not self.every_events:
            return
        seen = _events_seen(injectors)
        if seen - self._written_at < self.every_events:
            return
        self._written_at = seen
        replay = [injector.replay_state() for injector in injectors]
        for injector in injectors:
            injector.disarm()
        try:
            payload = {"seed": seed, "params": params, "cloud": cloud,
                       "result": result, "replay": replay,
                       "next_op": next_op}
            if extra:
                payload.update(extra)
            manifest = snapshot(
                payload, self.store, kind=self.kind,
                machines=[host.machine for host in cloud.hosts],
                meta={"seed": seed, "next_op": next_op, "events": seen})
            self.store.commit(manifest)
        finally:
            _rearm_cloud(cloud, injectors)


class FleetCheckpointer(InSeedCheckpointer):
    """The fleet profile's variant: same disarm -> snapshot -> re-arm
    protocol, but the payload carries the live :class:`EventQueue`
    (pure-data events pickle byte-stably) instead of an op index — a
    resumed scenario keeps popping the restored queue from the restored
    virtual instant."""

    kind = FLEET_INSEED_KIND


def _resume_scenario(manifest, store, params, checkpointer, window):
    """Pick one scenario back up from its newest in-seed checkpoint."""
    if manifest.get("kind") != INSEED_KIND:
        raise CheckpointError(
            "checkpoint kind %r is not an in-seed soak checkpoint"
            % manifest.get("kind"))
    payload = restore(
        manifest, store,
        machines_of=lambda p: [h.machine for h in p["cloud"].hosts])
    if payload["params"] != params:
        raise CheckpointError(
            "checkpoint parameters %r do not match this run's %r: "
            "refusing to resume" % (payload["params"], params))
    seed = payload["seed"]
    cloud = payload["cloud"]
    result = payload["result"]
    plan = FaultPlan.random(seed, nfaults=params["nfaults"])
    injectors = arm_cloud(cloud, plan, window=window)
    for injector, state in zip(injectors, payload["replay"]):
        injector.restore_replay_state(state)
    if checkpointer is not None:
        checkpointer.resync(injectors)
    names, secrets, disk_secret = _tenant_setup(seed, params["tenants"])
    ops = _scenario_ops(cloud, injectors, seed, names, disk_secret)
    _drive(cloud, injectors, result, secrets, ops, payload["next_op"],
           checkpointer, seed, params)
    return _finish_scenario(cloud, injectors, result, secrets)


def fire_window(skip=0, limit=None):
    """Factory for :class:`repro.faults.inject.FireWindow`.

    The time-travel bisector lives a layer *below* faults
    (:mod:`repro.checkpoint.bisect`) and reaches this harness through
    an ``importlib`` entry point; it obtains admission windows through
    this factory instead of importing upward into the fault layer.
    """
    return FireWindow(skip, limit)


def run_scenario(seed, hosts=3, tenants=2, frames=1024, nfaults=4,
                 checkpoint_dir=None, every_events=0, window=None):
    """One seeded scenario: build, arm, run the workload, verify.

    With ``checkpoint_dir`` the scenario is crash-resumable: an in-seed
    checkpoint lands every ``every_events`` fault firings, and a store
    that already holds one resumes from it instead of restarting —
    byte-identical to the uninterrupted run.  ``window`` (from
    :func:`fire_window`) restricts which fault firings are admitted,
    for the bisector's fault-window search.
    """
    params = {"hosts": hosts, "tenants": tenants, "frames": frames,
              "nfaults": nfaults}
    checkpointer = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        checkpointer = InSeedCheckpointer(store, every_events)
        manifest = store.latest()
        if manifest is not None:
            return _resume_scenario(manifest, store, params, checkpointer,
                                    window)
    plan = FaultPlan.random(seed, nfaults=nfaults)
    cloud = Cloud(hosts=hosts, frames=frames, seed=0xB000 + seed)
    injectors = arm_cloud(cloud, plan, window=window)
    result = SoakResult(seed=seed)
    names, secrets, disk_secret = _tenant_setup(seed, tenants)
    ops = _scenario_ops(cloud, injectors, seed, names, disk_secret)
    _drive(cloud, injectors, result, secrets, ops, 0, checkpointer,
           seed, params)
    return _finish_scenario(cloud, injectors, result, secrets)


# -- the fleet profile -----------------------------------------------------------
#
# The classic scenario runs its ops in list order.  The fleet profile
# runs the *same kind of ops* off a :class:`repro.fleet.events.EventQueue`:
# a migration storm whose arrivals are scheduled on a virtual clock with
# seeded tie-breaks, so same-instant collisions race reproducibly while
# the fault injectors fire inside the storm.  Checkpoints carry the live
# queue (events are pure data), and a resumed run keeps popping it from
# the restored virtual instant — the round trip the fleet-soak test
# proves byte-identical.

#: virtual spacing/spans (ns) for the fleet profile's schedule
FLEET_LAUNCH_SPACING_NS = 1_000_000
FLEET_STORM_SPAN_NS = 8_000_000
#: storm arrivals snap to this grid so same-instant collisions (the
#: interesting case for the seeded tie-break) actually happen
FLEET_STORM_SLOTS = 4


def _fleet_schedule(seed, names, migrations):
    """The storm schedule as a seeded, picklable event queue."""
    queue = EventQueue(seed ^ 0x57E51)
    rng = random.Random(seed * 7919 + 13)
    for index, name in enumerate(names):
        queue.schedule(index * FLEET_LAUNCH_SPACING_NS,
                       Event.of("launch", name=name, index=index))
    base = len(names) * FLEET_LAUNCH_SPACING_NS
    queue.schedule(base, Event.of("disk-io", name=names[0]))
    slot = FLEET_STORM_SPAN_NS // FLEET_STORM_SLOTS
    for _ in range(migrations):
        victim = names[rng.randrange(len(names))]
        queue.schedule(base + 1 + rng.randrange(FLEET_STORM_SLOTS) * slot,
                       Event.of("migrate", name=victim))
    queue.schedule(base + FLEET_STORM_SPAN_NS + 1,
                   Event.of("evacuate", host=0))
    queue.schedule(base + FLEET_STORM_SPAN_NS + 2,
                   Event.of("shutdown", name=names[-1]))
    return queue


def _fleet_event_op(cloud, injectors, seed, disk_secret, event):
    """One popped event mapped onto the scripted-workload op factories."""
    kind = event.kind
    if kind == "launch":
        name = event.get("name")
        return ("launch:" + name,
                _launch_op(cloud, seed, name, event.get("index")))
    if kind == "disk-io":
        return ("disk-io",
                _disk_io_op(cloud, injectors, disk_secret,
                            event.get("name")))
    if kind == "migrate":
        name = event.get("name")
        return ("migrate:" + name, _migrate_op(cloud, name))
    if kind == "evacuate":
        host = event.get("host")
        return ("evacuate:%d" % host, lambda: cloud.evacuate(host))
    if kind == "shutdown":
        name = event.get("name")
        return ("shutdown:" + name, _shutdown_op(cloud, name))
    raise ReproError("unknown fleet soak event kind %r" % kind)


def _drive_fleet(cloud, injectors, result, secrets, queue, checkpointer,
                 seed, params, disk_secret):
    """Pop the queue dry, attempting each event's op as it fires."""
    while True:
        item = queue.pop()
        if item is None:
            break
        _when, event = item
        name, op = _fleet_event_op(cloud, injectors, seed, disk_secret,
                                   event)
        _attempt(result, cloud, secrets, name, op)
        if checkpointer is not None:
            checkpointer.after_op(cloud, injectors, result, seed, 0,
                                  params, extra={"queue": queue})
    # The virtual clock enters the result (and so the soak digest):
    # resume must restore it exactly, not just the remaining events.
    result.completed_ops.append("fleet-clock:%d" % queue.now)


def _resume_fleet_scenario(manifest, store, params, checkpointer, window):
    """Continue a fleet-profile scenario from its restored queue."""
    if manifest.get("kind") != FLEET_INSEED_KIND:
        raise CheckpointError(
            "checkpoint kind %r is not a fleet-profile soak checkpoint"
            % manifest.get("kind"))
    payload = restore(
        manifest, store,
        machines_of=lambda p: [h.machine for h in p["cloud"].hosts])
    if payload["params"] != params:
        raise CheckpointError(
            "checkpoint parameters %r do not match this run's %r: "
            "refusing to resume" % (payload["params"], params))
    seed = payload["seed"]
    cloud = payload["cloud"]
    result = payload["result"]
    queue = payload["queue"]
    plan = FaultPlan.random(seed, nfaults=params["nfaults"])
    injectors = arm_cloud(cloud, plan, window=window)
    for injector, state in zip(injectors, payload["replay"]):
        injector.restore_replay_state(state)
    if checkpointer is not None:
        checkpointer.resync(injectors)
    names, secrets, disk_secret = _tenant_setup(seed, params["tenants"])
    _drive_fleet(cloud, injectors, result, secrets, queue, checkpointer,
                 seed, params, disk_secret)
    return _finish_scenario(cloud, injectors, result, secrets)


def run_fleet_scenario(seed, hosts=3, tenants=2, frames=1024, nfaults=4,
                       migrations=6, checkpoint_dir=None, every_events=0,
                       window=None):
    """One seeded fleet-profile scenario: the storm schedule comes off
    a virtual-clock event queue, faults fire inside it, and the same
    placement/confidentiality checks run after every event.

    Checkpoint/resume semantics match :func:`run_scenario`, with the
    queue (pending events *and* virtual clock) riding in the payload;
    the parameter comparison fails closed across profiles because the
    params dict carries ``"profile": "fleet"``.
    """
    params = {"hosts": hosts, "tenants": tenants, "frames": frames,
              "nfaults": nfaults, "migrations": migrations,
              "profile": "fleet"}
    checkpointer = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        checkpointer = FleetCheckpointer(store, every_events)
        manifest = store.latest()
        if manifest is not None:
            return _resume_fleet_scenario(manifest, store, params,
                                          checkpointer, window)
    plan = FaultPlan.random(seed, nfaults=nfaults)
    cloud = Cloud(hosts=hosts, frames=frames, seed=0xB000 + seed)
    injectors = arm_cloud(cloud, plan, window=window)
    result = SoakResult(seed=seed)
    names, secrets, disk_secret = _tenant_setup(seed, tenants)
    queue = _fleet_schedule(seed, names, migrations)
    _drive_fleet(cloud, injectors, result, secrets, queue, checkpointer,
                 seed, params, disk_secret)
    return _finish_scenario(cloud, injectors, result, secrets)


# -- sweeps ----------------------------------------------------------------------


def soak_report(seeds=DEFAULT_SEEDS, jobs=1, reuse_workers=True,
                fleet_profile=False, **scenario_kwargs):
    """Run every seed through the sharded runner; returns the
    :class:`~repro.runner.executor.RunReport` (per-shard wall-clock,
    utilization, diagnostic events) with results in seed order.

    ``fleet_profile=True`` runs :func:`run_fleet_scenario` (the
    event-queue storm schedule) instead of the classic op list; the two
    submission sites stay separate so shard purity is auditable
    statically.

    Every scenario is shared-nothing and fully seed-determined, so the
    merged results are byte-identical whatever ``jobs`` is — the
    ``parallel-equivalence`` CI job and
    ``tests/runner/test_parallel_equivalence.py`` hold us to that.
    """
    if fleet_profile:
        units = [WorkUnit.of(seed, run_fleet_scenario, seed,
                             **scenario_kwargs) for seed in seeds]
    else:
        units = [WorkUnit.of(seed, run_scenario, seed, **scenario_kwargs)
                 for seed in seeds]
    return execute(units, jobs=jobs, reuse_workers=reuse_workers)


def soak(seeds=DEFAULT_SEEDS, jobs=1, reuse_workers=True,
         **scenario_kwargs):
    """Run every seed; returns the list of :class:`SoakResult`."""
    return soak_report(seeds, jobs=jobs, reuse_workers=reuse_workers,
                       **scenario_kwargs).values()


def results_digest(results):
    """Canonical digest of a soak sweep, for serial-vs-sharded diffs."""
    return digest(results)


# -- resumable sweeps ------------------------------------------------------------


def _progress_store(checkpoint_dir):
    return CheckpointStore(os.path.join(checkpoint_dir, "progress"))


def _write_progress(store, results, next_index, params):
    payload = {"results": list(results), "next_index": next_index,
               "params": params}
    manifest = snapshot(payload, store, kind=PROGRESS_KIND, machines=[],
                        meta={"next_index": next_index})
    store.commit(manifest)


def resumable_soak(seeds, checkpoint_dir, every_seeds=5, every_events=0,
                   resume=False, jobs=1, sigkill_after=None,
                   reuse_workers=True, fleet_profile=False,
                   **scenario_kwargs):
    """A seed sweep that survives being killed at any instant.

    Completed-seed results are checkpointed into
    ``<checkpoint_dir>/progress`` every ``every_seeds`` seeds; each
    scenario additionally checkpoints itself mid-run every
    ``every_events`` fault firings into its own per-seed store
    (:func:`repro.runner.unit_checkpoint_path`, so sharded workers
    never share a store).  With ``resume=True`` the sweep continues
    from whatever the stores hold — re-running completed chunks never,
    half-done scenarios from their last in-seed checkpoint — and the
    final result list is byte-identical to an uninterrupted run.

    A directory that already holds progress **requires** ``resume=True``
    (fail closed: silently restarting over live checkpoints would make
    two different runs claim the same store).  ``sigkill_after`` forces
    a progress checkpoint after that many seeds and then SIGKILLs this
    process — the hook CI's resume-equivalence job interrupts with.
    """
    seeds = list(seeds)
    params = {"hosts": scenario_kwargs.get("hosts", 3),
              "tenants": scenario_kwargs.get("tenants", 2),
              "frames": scenario_kwargs.get("frames", 1024),
              "nfaults": scenario_kwargs.get("nfaults", 4),
              "profile": "fleet" if fleet_profile else "classic",
              "seeds": seeds}
    if fleet_profile:
        params["migrations"] = scenario_kwargs.get("migrations", 6)
    store = _progress_store(checkpoint_dir)
    results, start = [], 0
    manifest = store.latest()
    if manifest is not None:
        if not resume:
            raise CheckpointError(
                "checkpoint dir %r already holds soak progress; pass "
                "--resume to continue it or point at a fresh directory"
                % checkpoint_dir)
        if manifest.get("kind") != PROGRESS_KIND:
            raise CheckpointError(
                "checkpoint kind %r is not soak progress"
                % manifest.get("kind"))
        payload = restore(manifest, store, machines_of=lambda p: [])
        if payload["params"] != params:
            raise CheckpointError(
                "checkpoint parameters %r do not match this run's %r: "
                "refusing to resume" % (payload["params"], params))
        results = payload["results"]
        start = payload["next_index"]

    index = start
    while index < len(seeds):
        stop = min(len(seeds), index + every_seeds) if every_seeds \
            else len(seeds)
        if sigkill_after is not None and index < sigkill_after <= stop:
            stop = sigkill_after
        units = []
        for seed in seeds[index:stop]:
            kwargs = dict(scenario_kwargs)
            if every_events:
                kwargs["checkpoint_dir"] = \
                    unit_checkpoint_path(checkpoint_dir, seed)
                kwargs["every_events"] = every_events
            if fleet_profile:
                units.append(WorkUnit.of(seed, run_fleet_scenario, seed,
                                         **kwargs))
            else:
                units.append(WorkUnit.of(seed, run_scenario, seed,
                                         **kwargs))
        report = execute(units, jobs=jobs, reuse_workers=reuse_workers)
        results.extend(report.values())
        index = stop
        _write_progress(store, results, index, params)
        if sigkill_after is not None and index >= sigkill_after:
            os.kill(os.getpid(), signal.SIGKILL)
    return results


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.soak",
        description="chaos-soak the Fidelius fleet across seeded "
                    "fault schedules")
    parser.add_argument("--seeds", type=int, default=len(DEFAULT_SEEDS),
                        help="number of seeds (0..N-1) to soak")
    parser.add_argument("--hosts", type=int, default=3)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--nfaults", type=int, default=4)
    parser.add_argument("--fleet-profile", action="store_true",
                        help="drive each scenario off a virtual-clock "
                             "event queue (migration storm with seeded "
                             "same-instant races) instead of the "
                             "classic op list")
    parser.add_argument("--fleet-migrations", type=int, default=6,
                        metavar="N",
                        help="storm size for --fleet-profile "
                             "(default %(default)s)")
    add_jobs_argument(parser)
    parser.add_argument("--bench-json", metavar="PATH", default=None,
                        help="also write wall-clock/shard counters and "
                             "the result digest as JSON (schema "
                             "fidelius-soak-bench/1)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="make the soak crash-resumable: checkpoint "
                             "progress and in-seed state under DIR")
    parser.add_argument("--resume", action="store_true",
                        help="continue from the checkpoints already in "
                             "--checkpoint-dir")
    parser.add_argument("--checkpoint-every", type=int, default=5,
                        metavar="SEEDS",
                        help="progress checkpoint cadence in seeds "
                             "(default %(default)s)")
    parser.add_argument("--checkpoint-events", type=int, default=0,
                        metavar="EVENTS",
                        help="also checkpoint inside each scenario every "
                             "N fault firings (0: between seeds only)")
    parser.add_argument("--sigkill-after", type=int, default=None,
                        metavar="SEEDS",
                        help="checkpoint then SIGKILL this process after "
                             "N seeds (resume-equivalence testing)")
    parser.add_argument("--checkpoint-bench-json", metavar="PATH",
                        default=None,
                        help="write checkpoint size/dedup stats as JSON "
                             "(schema fidelius-checkpoint-bench/1)")
    args = parser.parse_args(argv)
    scenario_kwargs = {"hosts": args.hosts, "tenants": args.tenants,
                       "nfaults": args.nfaults}
    if args.fleet_profile:
        scenario_kwargs["migrations"] = args.fleet_migrations
    report = None
    if args.checkpoint_dir:
        results = resumable_soak(
            range(args.seeds), args.checkpoint_dir,
            every_seeds=args.checkpoint_every,
            every_events=args.checkpoint_events,
            resume=args.resume, jobs=args.jobs,
            reuse_workers=not args.fresh_workers,
            sigkill_after=args.sigkill_after,
            fleet_profile=args.fleet_profile, **scenario_kwargs)
    else:
        report = soak_report(range(args.seeds), jobs=args.jobs,
                             reuse_workers=not args.fresh_workers,
                             fleet_profile=args.fleet_profile,
                             **scenario_kwargs)
        results = report.values()
    for result in results:
        print(result.describe())
        for violation in result.violations:
            print("  !! " + violation)
    bad = [r for r in results if not r.clean]
    print("%d/%d scenarios clean" % (len(results) - len(bad), len(results)))
    print("digest sha256=%s" % results_digest(results))
    if report is not None:
        # timing lines are diagnostics: excluded from equivalence diffs
        print("# timing: wall=%.3fs busy=%.3fs jobs=%d utilization=%.2f"
              % (report.wall_s, report.busy_s, report.jobs,
                 report.utilization()))
        if args.bench_json:
            bench = {
                "schema": "fidelius-soak-bench/1",
                "seeds": args.seeds,
                "jobs": report.jobs,
                "host_cpus": os.cpu_count() or 1,
                "wall_s": report.wall_s,
                "busy_s": report.busy_s,
                "utilization": report.utilization(),
                "clean": len(results) - len(bad),
                "digest": results_digest(results),
                "shards": report.shard_counters(),
                "sharding": report.sharding,
            }
            with open(args.bench_json, "w") as fh:
                json.dump(bench, fh, indent=2, sort_keys=True)
                fh.write("\n")
    if args.checkpoint_bench_json and args.checkpoint_dir:
        from repro.checkpoint.store import tree_stats
        bench = {"schema": "fidelius-checkpoint-bench/1",
                 "seeds": args.seeds,
                 "digest": results_digest(results)}
        bench.update(tree_stats(args.checkpoint_dir))
        with open(args.checkpoint_bench_json, "w") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
