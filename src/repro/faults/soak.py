"""The chaos soak harness: scripted fleet workloads under injected faults.

One scenario = one seed.  The seed fixes both the fault plan
(:meth:`~repro.faults.plan.FaultPlan.random`) and the fleet (every
host's machine RNG), so a failing schedule replays byte for byte from
the seed alone — run the same seed twice and :func:`schedule_bytes`
returns identical bytes.

The workload launches tenants with secret payloads, drives encrypted
disk I/O, migrates every tenant, evacuates a host and shuts a tenant
down, with faults armed at every boundary.  After each operation, and
once more after disarming, the harness asserts the two paper-level
properties the fault injection exists to defend:

* **placement** — every tenant is running on exactly one host (its
  domain live on the host its handle names, no duplicate incarnations
  anywhere), or its operation raised cleanly and it stayed put;
* **confidentiality** — no tenant secret appears in any host's raw DRAM
  (:func:`repro.eval.security.plaintext_leak_scan`), whatever faults
  the platform absorbed.

The final phase also re-enters every surviving tenant (proving a
cancelled migration really leaves the source RUNNING) and runs the full
:func:`repro.core.invariants.check_invariants` audit on every host.
"""

import json
import os
from dataclasses import dataclass, field

from repro.cloud import Cloud
from repro.common.errors import ReproError
from repro.core.invariants import check_invariants
from repro.eval.security import plaintext_leak_scan
from repro.faults.inject import arm_cloud, schedule_bytes
from repro.faults.plan import FaultPlan
from repro.runner import WorkUnit, add_jobs_argument, digest, execute
from repro.system import GuestOwner
from repro.xen import hypercalls as hc

#: The fixed seed set CI soaks over (acceptance floor: 20 seeds).
DEFAULT_SEEDS = tuple(range(20))


@dataclass
class SoakResult:
    """Everything one scenario observed, for assertions and replay."""

    seed: int
    completed_ops: list = field(default_factory=list)
    failed_ops: list = field(default_factory=list)   # (op, error string)
    violations: list = field(default_factory=list)
    schedule: bytes = b""
    survivors: int = 0

    @property
    def clean(self):
        return not self.violations

    def describe(self):
        return ("seed=%d ok=%d failed-clean=%d faults=%d survivors=%d %s"
                % (self.seed, len(self.completed_ops), len(self.failed_ops),
                   len(self.schedule.splitlines()), self.survivors,
                   "CLEAN" if self.clean else "VIOLATED"))


def _secret(seed, name):
    """A high-entropy-looking needle unique to (scenario, tenant)."""
    return (b"SOAK-SECRET|%s|seed=%d|" % (name.encode(), seed)) * 4


def fleet_violations(cloud, secrets):
    """The placement and confidentiality checks, against a live fleet."""
    violations = []
    for tenant in cloud.tenants.values():
        host = cloud.host(tenant.host_index)
        if host.hypervisor.domains.get(tenant.domain.domid) \
                is not tenant.domain:
            violations.append("tenant %r lost: domain %d not live on "
                              "host %d" % (tenant.name, tenant.domain.domid,
                                           tenant.host_index))
        incarnations = sum(
            1 for system in cloud.hosts
            for domain in system.hypervisor.domains.values()
            if domain.name == tenant.name)
        if incarnations != 1:
            violations.append("tenant %r has %d incarnations across the "
                              "fleet" % (tenant.name, incarnations))
    for index, system in enumerate(cloud.hosts):
        for leak in plaintext_leak_scan(system, secrets):
            violations.append("host %d: %s" % (index, leak))
    return violations


def _attempt(result, cloud, secrets, name, operation):
    """Run one workload step; a clean ReproError is an accepted outcome,
    anything the fleet checks flag afterwards is not."""
    try:
        operation()
        result.completed_ops.append(name)
    except ReproError as exc:
        result.failed_ops.append((name, str(exc)))
    result.violations.extend(
        "%s: %s" % (name, v) for v in fleet_violations(cloud, secrets))


def run_scenario(seed, hosts=3, tenants=2, frames=1024, nfaults=4):
    """One seeded scenario: build, arm, run the workload, verify."""
    plan = FaultPlan.random(seed, nfaults=nfaults)
    cloud = Cloud(hosts=hosts, frames=frames, seed=0xB000 + seed)
    injectors = arm_cloud(cloud, plan)
    result = SoakResult(seed=seed)
    names = ["t%d" % i for i in range(tenants)]
    secrets = [(name, _secret(seed, name)) for name in names]
    disk_secret = _secret(seed, "disk")
    secrets.append(("disk", disk_secret))

    def launch(name, index):
        def op():
            cloud.launch_tenant(name, GuestOwner(seed=seed * 101 + index),
                                payload=_secret(seed, name),
                                guest_frames=32)
        return op

    def disk_io(name):
        def op():
            tenant = cloud.tenants.get(name)
            if tenant is None:
                return
            host = cloud.host(tenant.host_index)
            encoder = host.aesni_encoder_for(tenant.ctx)
            _, frontend, _ = host.attach_disk(
                tenant.domain, tenant.ctx, sectors=64, encoder=encoder)
            injectors[tenant.host_index].arm_ring(frontend.ring)
            frontend.write(0, disk_secret)
            frontend.read(0, 1)
        return op

    def migrate(name):
        def op():
            if name in cloud.tenants:
                cloud.migrate_tenant(name)
        return op

    def shutdown(name):
        def op():
            if name in cloud.tenants:
                cloud.shutdown_tenant(name)
        return op

    for index, name in enumerate(names):
        _attempt(result, cloud, secrets, "launch:" + name,
                 launch(name, index))
    _attempt(result, cloud, secrets, "disk-io", disk_io(names[0]))
    for name in names:
        _attempt(result, cloud, secrets, "migrate:" + name, migrate(name))
    _attempt(result, cloud, secrets, "evacuate:0", lambda: cloud.evacuate(0))
    _attempt(result, cloud, secrets, "shutdown:" + names[-1],
             shutdown(names[-1]))

    # Final phase: faults off, the fleet must stand on its own.
    result.schedule = schedule_bytes(injectors)
    for injector in injectors:
        injector.disarm()
    result.violations.extend(
        "final: %s" % v for v in fleet_violations(cloud, secrets))
    for tenant in cloud.tenants.values():
        try:
            tenant.ctx.hypercall(hc.HC_SCHED_YIELD)
        except ReproError as exc:
            result.violations.append(
                "final: tenant %r not re-enterable: %s" % (tenant.name, exc))
    for index, system in enumerate(cloud.hosts):
        result.violations.extend(
            "final: host %d invariant: %s" % (index, v)
            for v in check_invariants(system))
    result.survivors = len(cloud.tenants)
    return result


def soak_report(seeds=DEFAULT_SEEDS, jobs=1, **scenario_kwargs):
    """Run every seed through the sharded runner; returns the
    :class:`~repro.runner.executor.RunReport` (per-shard wall-clock,
    utilization, diagnostic events) with results in seed order.

    Every scenario is shared-nothing and fully seed-determined, so the
    merged results are byte-identical whatever ``jobs`` is — the
    ``parallel-equivalence`` CI job and
    ``tests/runner/test_parallel_equivalence.py`` hold us to that.
    """
    units = [WorkUnit.of(seed, run_scenario, seed, **scenario_kwargs)
             for seed in seeds]
    return execute(units, jobs=jobs)


def soak(seeds=DEFAULT_SEEDS, jobs=1, **scenario_kwargs):
    """Run every seed; returns the list of :class:`SoakResult`."""
    return soak_report(seeds, jobs=jobs, **scenario_kwargs).values()


def results_digest(results):
    """Canonical digest of a soak sweep, for serial-vs-sharded diffs."""
    return digest(results)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.soak",
        description="chaos-soak the Fidelius fleet across seeded "
                    "fault schedules")
    parser.add_argument("--seeds", type=int, default=len(DEFAULT_SEEDS),
                        help="number of seeds (0..N-1) to soak")
    parser.add_argument("--hosts", type=int, default=3)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--nfaults", type=int, default=4)
    add_jobs_argument(parser)
    parser.add_argument("--bench-json", metavar="PATH", default=None,
                        help="also write wall-clock/shard counters and "
                             "the result digest as JSON (schema "
                             "fidelius-soak-bench/1)")
    args = parser.parse_args(argv)
    report = soak_report(range(args.seeds), jobs=args.jobs,
                         hosts=args.hosts, tenants=args.tenants,
                         nfaults=args.nfaults)
    results = report.values()
    for result in results:
        print(result.describe())
        for violation in result.violations:
            print("  !! " + violation)
    bad = [r for r in results if not r.clean]
    print("%d/%d scenarios clean" % (len(results) - len(bad), len(results)))
    print("digest sha256=%s" % results_digest(results))
    # timing lines are diagnostics: excluded from equivalence diffs
    print("# timing: wall=%.3fs busy=%.3fs jobs=%d utilization=%.2f"
          % (report.wall_s, report.busy_s, report.jobs,
             report.utilization()))
    if args.bench_json:
        bench = {
            "schema": "fidelius-soak-bench/1",
            "seeds": args.seeds,
            "jobs": report.jobs,
            "host_cpus": os.cpu_count() or 1,
            "wall_s": report.wall_s,
            "busy_s": report.busy_s,
            "utilization": report.utilization(),
            "clean": len(results) - len(bad),
            "digest": results_digest(results),
            "shards": report.shard_counters(),
        }
        with open(args.bench_json, "w") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
