"""Injectors: arm a :class:`~repro.faults.plan.FaultPlan` on live objects.

All arming is *instance-level*: the wrapper shadows the original bound
method on one object and delegates to it, so product classes carry no
fault hooks at all (fidelint FID009 enforces this).  ``disarm()``
deletes the shadowing attributes, restoring the pristine class methods.

Armed boundaries:

* ``Fidelius.firmware_call`` — any SEV command can fail with an
  ``INJECTED_FAULT`` :class:`~repro.common.errors.SevError`;
* ``MemoryController.dma_read`` / ``dma_write`` — a DMA transaction can
  flip a byte or be dropped on the bus;
* ``AttestationAuthority.quote`` — a quote can come back with a garbled
  signature or a stale nonce;
* ``BlkRing.pop_request`` / ``push_response`` — a PV-IO ring slot can be
  dropped or duplicated.

Every firing is appended to ``fired`` with its site, occurrence index
and action; :func:`schedule_bytes` serializes the combined log so two
runs of the same seed can be compared byte for byte.
"""

import hashlib

from repro.common.errors import SevError
from repro.core.attestation import Quote

#: Firmware status code carried by every injected command failure.
INJECTED_STATUS = "INJECTED_FAULT"

#: The stale nonce an ``attest.quote stale`` fault replays.
STALE_NONCE = bytes(16)


class FireWindow:
    """Admit only a contiguous slice of a run's would-be fault firings.

    The time-travel bisector (:mod:`repro.checkpoint.bisect`) narrows a
    failing soak down to a minimal fault window by re-running with
    ``FireWindow(skip, limit)``: hits with global index < ``skip`` or
    >= ``limit`` are *suppressed* — they still consume the spec budget,
    still advance occurrence counters and still draw from the RNG (the
    trigger schedule stays replay-identical), but their action is not
    applied and they land in the injector's ``suppressed`` log instead
    of ``fired``.  One window is shared by every injector of a run, so
    the index is the chronological firing order across the whole fleet.
    """

    def __init__(self, skip=0, limit=None):
        self.skip = skip
        self.limit = limit
        #: Hits seen so far across every injector sharing this window.
        self.seen = 0

    def admit(self):
        index = self.seen
        self.seen += 1
        if index < self.skip:
            return False
        return self.limit is None or index < self.limit


class HostInjector:
    """Arms one host's boundaries; deterministic given the host's RNG."""

    def __init__(self, plan, machine, label="host"):
        self.plan = plan
        self.machine = machine
        self.label = label
        #: Chronological firing log: (label, site, occurrence, action).
        self.fired = []
        #: Hits a :class:`FireWindow` held back (same entry shape).
        self.suppressed = []
        #: Shared admission window, or None for fire-everything.
        self.window = None
        self._counts = {}
        self._budget = {i: spec.count for i, spec in enumerate(plan.specs)}
        self._restorers = []
        self._dup_request = None

    # -- trigger evaluation ------------------------------------------------------

    def fire(self, site):
        """The action to apply at this call of ``site``, or None.

        Counts every call per site; nth-triggers compare against that
        counter, probability-triggers draw from the machine's RNG so the
        whole schedule replays from the seeds alone.
        """
        occurrence = self._counts.get(site, 0) + 1
        self._counts[site] = occurrence
        for index, spec in self.plan.for_site(site):
            if self._budget[index] <= 0:
                continue
            if spec.nth:
                hit = occurrence == spec.nth
            else:
                hit = self.machine.rng.random() < spec.probability
            if hit:
                self._budget[index] -= 1
                entry = (self.label, site, occurrence, spec.action)
                if self.window is not None and not self.window.admit():
                    self.suppressed.append(entry)
                    return None
                self.fired.append(entry)
                return spec.action
        return None

    def _flip(self, data):
        """Deterministically corrupt one byte of ``data``."""
        if not data:
            return data
        index = self.machine.rng.randrange(len(data))
        out = bytearray(data)
        out[index] ^= 0x40
        return bytes(out)

    # -- arming ------------------------------------------------------------------

    def _shadow(self, obj, attr, wrapper):
        setattr(obj, attr, wrapper)
        self._restorers.append(lambda: delattr(obj, attr))

    def _mark(self, obj):
        if getattr(obj, "_fault_injector", None) is None:
            setattr(obj, "_fault_injector", self)
            self._restorers.append(lambda: delattr(obj, "_fault_injector"))

    def arm_fidelius(self, fidelius):
        """Arm the SEV command boundary (``Fidelius.firmware_call``)."""
        original = fidelius.firmware_call
        injector = self

        def firmware_call(method, *args, **kwargs):
            action = injector.fire("firmware." + method)
            if action == "error":
                raise SevError(INJECTED_STATUS,
                               "injected failure of SEV command %s"
                               % method.upper())
            return original(method, *args, **kwargs)

        self._shadow(fidelius, "firmware_call", firmware_call)
        self._mark(fidelius)
        return self

    def arm_memctrl(self, memctrl):
        """Arm the DMA port (bit flips and dropped bus transactions)."""
        orig_read = memctrl.dma_read
        orig_write = memctrl.dma_write
        injector = self

        def dma_read(pa, length):
            action = injector.fire("dma.read")
            if action == "drop":
                return bytes(length)
            data = orig_read(pa, length)
            if action == "flip":
                return injector._flip(data)
            return data

        def dma_write(pa, data):
            action = injector.fire("dma.write")
            if action == "drop":
                return None
            if action == "flip":
                data = injector._flip(bytes(data))
            return orig_write(pa, data)

        self._shadow(memctrl, "dma_read", dma_read)
        self._shadow(memctrl, "dma_write", dma_write)
        self._mark(memctrl)
        return self

    def arm_attestation(self, authority):
        """Arm the quote engine (garbage signatures, stale nonces)."""
        original = authority.quote
        injector = self

        def quote(fidelius, nonce):
            action = injector.fire("attest.quote")
            good = original(fidelius, nonce)
            if action == "garbage":
                return Quote(good.fidelius_measurement, good.xen_measurement,
                             good.nonce, injector._flip(good.signature))
            if action == "stale":
                return Quote(good.fidelius_measurement, good.xen_measurement,
                             STALE_NONCE, good.signature)
            return good

        self._shadow(authority, "quote", quote)
        self._mark(authority)
        return self

    def arm_ring(self, ring):
        """Arm a PV-IO ring (dropped and duplicated slots)."""
        orig_pop = ring.pop_request
        orig_push = ring.push_response
        injector = self

        def pop_request():
            if injector._dup_request is not None:
                request = injector._dup_request
                injector._dup_request = None
                return request
            request = orig_pop()
            if request is None:
                return None
            action = injector.fire("ring.pop_request")
            if action == "drop":
                return orig_pop()
            if action == "dup":
                injector._dup_request = request
            return request

        def push_response(response):
            action = injector.fire("ring.push_response")
            if action == "drop":
                return None
            orig_push(response)
            if action == "dup":
                orig_push(response)
            return None

        self._shadow(ring, "pop_request", pop_request)
        self._shadow(ring, "push_response", push_response)
        self._mark(ring)
        return self

    # -- checkpoint support ------------------------------------------------------

    def replay_state(self):
        """Everything needed to resume this injector's trigger schedule
        mid-run: per-site occurrence counters, remaining spec budgets,
        the firing logs, and any in-flight duplicated ring request.
        The shadowing wrappers themselves are *not* state — a resumed
        run re-arms fresh wrappers on the restored objects."""
        return {
            "counts": dict(self._counts),
            "budget": dict(self._budget),
            "fired": list(self.fired),
            "suppressed": list(self.suppressed),
            "dup_request": self._dup_request,
        }

    def restore_replay_state(self, state):
        self._counts = dict(state["counts"])
        self._budget = dict(state["budget"])
        self.fired = [tuple(entry) for entry in state["fired"]]
        self.suppressed = [tuple(entry) for entry in state["suppressed"]]
        self._dup_request = state["dup_request"]

    # -- teardown ----------------------------------------------------------------

    def disarm(self):
        """Restore every wrapped instance to its pristine class methods."""
        while self._restorers:
            self._restorers.pop()()

    def schedule_lines(self):
        return ["%s %s #%d %s" % entry for entry in self.fired]


def arm_system(system, plan, label="host", window=None):
    """Arm one host: firmware commands and the DMA port."""
    injector = HostInjector(plan, system.machine, label=label)
    injector.window = window
    injector.arm_fidelius(system.fidelius)
    injector.arm_memctrl(system.machine.memctrl)
    return injector


def arm_cloud(cloud, plan, window=None):
    """Arm a whole fleet: one injector per host (each draws trigger
    probabilities from its own machine's seeded RNG), attestation
    included.  Returns the injectors in host order.  ``window`` (a
    :class:`FireWindow`) is shared by every injector when given."""
    injectors = []
    for index in range(len(cloud)):
        injector = arm_system(cloud.host(index), plan,
                              label="host%d" % index, window=window)
        injector.arm_attestation(cloud.authority(index))
        injectors.append(injector)
    return injectors


def schedule_bytes(injectors):
    """The combined fault schedule, serialized for byte-for-byte
    comparison across runs of the same seed."""
    lines = []
    for injector in injectors:
        lines.extend(injector.schedule_lines())
    return "\n".join(lines).encode()


def schedule_digest(injectors):
    return hashlib.sha256(schedule_bytes(injectors)).hexdigest()
