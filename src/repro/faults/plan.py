"""Fault plans: deterministic, seed-driven schedules of injected faults.

A plan is a tuple of :class:`FaultSpec` entries.  Each spec names an
injection *site* (a layer boundary the injectors know how to arm), an
*action* the site supports, and a trigger predicate: either the nth
matching call at that site, or a per-call probability.  Probability
draws come from the armed machine's own seeded RNG, so a (machine seed,
plan) pair reproduces the identical fault schedule byte for byte —
the FID007 determinism discipline extends to the chaos itself.
"""

import random
from dataclasses import dataclass

from repro.common.errors import ReproError

#: SEV firmware commands the injector can fail (the migration and
#: lifecycle surface; LAUNCH is covered through receive/activate).
FIRMWARE_METHODS = (
    "send_start",
    "send_update",
    "send_finish",
    "receive_start",
    "receive_update",
    "receive_finish",
    "activate",
)

#: site -> actions the injector supports there.
SITE_ACTIONS = dict(
    [("firmware.%s" % method, ("error",)) for method in FIRMWARE_METHODS]
    + [
        ("dma.read", ("flip", "drop")),
        ("dma.write", ("flip", "drop")),
        ("attest.quote", ("garbage", "stale")),
        ("ring.pop_request", ("drop", "dup")),
        ("ring.push_response", ("drop", "dup")),
    ]
)

DEFAULT_SITES = tuple(sorted(SITE_ACTIONS))


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where, what, and when it fires.

    ``nth > 0`` fires on exactly the nth matching call; ``nth == 0``
    fires per call with ``probability`` (drawn from the armed machine's
    RNG).  ``count`` bounds how many times the spec may fire in total.
    """

    site: str
    action: str
    nth: int = 0
    probability: float = 0.0
    count: int = 1

    def __post_init__(self):
        actions = SITE_ACTIONS.get(self.site)
        if actions is None:
            raise ReproError("unknown fault site %r" % (self.site,))
        if self.action not in actions:
            raise ReproError("site %r does not support action %r "
                             "(supported: %s)" % (self.site, self.action,
                                                  ", ".join(actions)))
        if self.nth < 0 or not 0.0 <= self.probability <= 1.0:
            raise ReproError("bad trigger for %r" % (self.site,))
        if self.nth == 0 and self.probability == 0.0:
            raise ReproError("spec for %r can never fire: give nth or "
                             "probability" % (self.site,))

    def describe(self):
        trigger = ("call #%d" % self.nth if self.nth
                   else "p=%.3f" % self.probability)
        return "%s %s (%s, up to %d)" % (self.site, self.action, trigger,
                                         self.count)


class FaultPlan:
    """An immutable schedule of faults, shared by every armed injector."""

    def __init__(self, specs=()):
        self.specs = tuple(specs)

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_site(self, site):
        """(index, spec) pairs targeting ``site``, in plan order."""
        return [(i, s) for i, s in enumerate(self.specs) if s.site == site]

    def sites(self):
        return sorted({s.site for s in self.specs})

    def describe(self):
        return "; ".join(s.describe() for s in self.specs) or "(empty plan)"

    @classmethod
    def random(cls, seed, nfaults=3, sites=DEFAULT_SITES):
        """A deterministic plan drawn from ``seed``.

        The same seed always yields the same plan; the soak harness uses
        one plan per scenario seed so a failing schedule can be replayed
        exactly from its seed alone.
        """
        rng = random.Random(seed)
        specs = []
        for _ in range(nfaults):
            site = rng.choice(list(sites))
            action = rng.choice(list(SITE_ACTIONS[site]))
            if rng.random() < 0.5:
                specs.append(FaultSpec(site, action,
                                       nth=rng.randrange(1, 6)))
            else:
                specs.append(FaultSpec(
                    site, action,
                    probability=round(rng.uniform(0.05, 0.35), 3),
                    count=rng.randrange(1, 3)))
        return cls(specs)
