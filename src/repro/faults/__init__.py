"""Deterministic fault injection (the chaos subsystem).

Fidelius's threat model assumes the hypervisor can fail or misbehave at
*any* point, so the reproduction must survive more than happy paths.
This package turns "no tenant lost, no plaintext leaked, under any
injected fault" into a continuously tested property:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a seed-driven schedule
  of faults with trigger predicates (call-site, nth occurrence,
  probability drawn from the machine's RNG);
* :mod:`repro.faults.inject` — :class:`HostInjector`: arms a plan at the
  existing layer boundaries (SEV firmware commands, the DMA port,
  attestation quotes, the PV-IO ring) by wrapping live *instances*;
* :mod:`repro.faults.soak` — the chaos soak harness: a scripted fleet
  workload across many seeds, asserting the placement and no-plaintext
  invariants after every injected fault.

Containment rule (enforced by fidelint FID009): all injection state
lives here.  Product code carries no fault hooks — injectors wrap
instances from the outside and are disarmed by restoring the original
bound methods, so a production import graph can never reach a fault.
"""

from repro.faults.inject import (
    HostInjector,
    arm_cloud,
    arm_system,
    schedule_bytes,
)
from repro.faults.plan import DEFAULT_SITES, FaultPlan, FaultSpec

__all__ = [
    "DEFAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "HostInjector",
    "arm_cloud",
    "arm_system",
    "schedule_bytes",
]
