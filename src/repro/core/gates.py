"""The three gate types securing Xen -> Fidelius transitions
(paper Section 4.1.3, Figure 3).

* **Type 1 — disable WP** (306 cycles): for the common case (updating
  write-protected structures: page tables, NPTs, grant tables).  No
  address-space change, no TLB traffic: interrupts off, stack switch,
  clear ``CR0.WP`` through the monopolized ``mov CR0``, sanity check,
  enforce the PIT/GIT policy, perform the write, restore.
* **Type 2 — checking loop** (16 cycles): not a transition at all but
  validation logic placed physically adjacent to each monopolized
  privileged instruction, so even a control-flow-hijacked execution
  passes through it.  Implemented as the CPU's post-execution hooks.
* **Type 3 — add new mapping** (339 cycles = one PTE write ~2 + one TLB
  entry flush 128 + checks): for resources unmapped from the
  hypervisor (VMRUN / ``mov CR3`` instructions, shadow area, SEV
  metadata).  Maps the pre-allocated page transiently, runs the body,
  withdraws the mapping and flushes the stale TLB entry.

The rejected design — a full CR3 switch per transition — is also
implemented (``cr3_switch_transition``) for the ablation benchmark.
"""

from contextlib import contextmanager

from repro.common.constants import (
    CACHE_WRITE_CYCLES,
    CR0_WP,
    FULL_TLB_FLUSH_CYCLES,
    GATE1_CYCLES,
    GATE2_CYCLES,
    GATE3_CYCLES,
    PTE_NX,
    PTE_PRESENT,
    TLB_ENTRY_FLUSH_CYCLES,
)
from repro.common.errors import GateViolation
from repro.common.types import PrivOp
from repro.hw.pagetable import make_entry


class GateKeeper:
    """Implements the transitions for one Fidelius instance."""

    def __init__(self, fidelius):
        self._fid = fidelius
        self._machine = fidelius.machine
        self._cpu = fidelius.machine.cpu

    # -- shared sanity checking (the "disable interrupts, switch stacks,
    #    and do sanity checks" part of every gate) --------------------------------

    def _enter(self, kind):
        cpu = self._cpu
        # check, then commit: a refused entry must leave the CPU state
        # untouched, so both refusals precede the first mutation
        if cpu.gate_active is not None:
            raise GateViolation(kind, "nested gate entry")
        if cpu.cr3_root not in self._fid.valid_roots:
            raise GateViolation(kind, "gate entered from a rogue address space")
        self._saved_irq = cpu.interrupts_enabled
        cpu.interrupts_enabled = False
        self._saved_stack = cpu.current_stack
        cpu.current_stack = "fidelius"
        cpu.gate_active = kind
        self._sanity(kind)

    def _exit(self, kind):
        cpu = self._cpu
        cpu.gate_active = None
        cpu.current_stack = self._saved_stack
        cpu.interrupts_enabled = self._saved_irq

    def _sanity(self, kind):
        cpu = self._cpu
        if cpu.interrupts_enabled:
            raise GateViolation(kind, "interrupts enabled inside gate")
        if cpu.current_stack != "fidelius":
            raise GateViolation(kind, "gate running on the wrong stack")
        if cpu.cr3_root not in self._fid.valid_roots:
            raise GateViolation(kind, "gate entered from a rogue address space")

    # -- type 1: disable WP ----------------------------------------------------------

    @contextmanager
    def type1(self):
        """Clear CR0.WP so write-protected structures become writable to
        the (policy-checked) body; the measured cost is 306 cycles."""
        self._machine.cycles.charge(GATE1_CYCLES, "gate1")
        self._enter("type1")
        cpu = self._cpu
        old_cr0 = cpu.cr0
        try:
            self._fid.exec_monopolized(PrivOp.MOV_CR0, old_cr0 & ~CR0_WP)
            yield
        finally:
            # the gate must close even if restoring CR0 itself faults
            try:
                self._fid.exec_monopolized(PrivOp.MOV_CR0, old_cr0)
            finally:
                self._exit("type1")

    def guarded_write(self, va, data):
        """The gated write path installed as the hypervisor's
        ``word_writer``: policy first, then the write with WP clear."""
        from repro.common.errors import PolicyViolation
        with self.type1():
            try:
                self._fid.write_policy.check(va, bytes(data))
            except PolicyViolation as exc:
                self._fid.audit_event("denied", policy=exc.policy,
                                      detail=str(exc), va=va)
                raise
            self._cpu.store(va, bytes(data))
            self._machine.cycles.charge(CACHE_WRITE_CYCLES, "gate1-write")

    # -- type 2: checking loops --------------------------------------------------------

    def charge_type2(self):
        """Cycle cost of one checking-loop pass (16 cycles)."""
        self._machine.cycles.charge(GATE2_CYCLES, "gate2")

    # -- type 3: transient mappings ------------------------------------------------------

    @contextmanager
    def type3(self, pfn, executable=False):
        """Temporarily map ``pfn`` at its identity VA in the host space.

        One raw PTE write into the (write-protected) page-table-page —
        Fidelius's own action in its own context — plus a TLB flush of
        the stale entry on withdrawal.
        """
        self._machine.cycles.charge(
            GATE3_CYCLES - TLB_ENTRY_FLUSH_CYCLES, "gate3")
        self._enter("type3")
        va = pfn << 12
        walker = self._machine.walker
        root = self._machine.host_root
        flags = PTE_PRESENT if executable else PTE_PRESENT | PTE_NX
        try:
            walker.write_entry(root, va, make_entry(pfn, flags))
            yield va
        finally:
            # the gate must close even if the withdrawal itself faults
            try:
                walker.write_entry(root, va, 0)
                # Mapping freshness: flush the stale entry (128 cycles,
                # already part of the measured 339-cycle gate cost).
                self._machine.tlb.flush_page(root, pfn)
            finally:
                self._exit("type3")

    @contextmanager
    def firmware_gate(self):
        """Type 3 gate wrapping SEV firmware command submission: the
        command-issuing code and the SEV metadata pages are unmapped
        from the hypervisor and only reachable here (Section 4.2.3)."""
        with self.type3(self._fid.sev_metadata_pfns[0]) as va:
            yield va

    # -- the rejected alternative, for the ablation study --------------------------------

    @contextmanager
    def cr3_switch_transition(self):
        """Full address-space switch per transition (the design the
        paper rejects in Section 4.1.3): costs a full TLB flush."""
        self._machine.cycles.charge(FULL_TLB_FLUSH_CYCLES, "cr3-switch-gate")
        self._enter("cr3-switch")
        try:
            yield
        finally:
            self._exit("cr3-switch")
