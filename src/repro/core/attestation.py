"""Remote attestation of the Fidelius host (paper Section 4.3.1).

"Xen remains booting up itself as usual until it boots Fidelius and
leverages existing hardware support to issue a measurement on its
integrity, which can be used in remote attestation to verify its
validity.  During the booting process of Fidelius, it measures the
integrity of the hypervisor's code."

We model the hardware root of trust (a TPM/PSP-style quote key) inside
the SEV firmware's machine: the quote binds the Fidelius text
measurement, the hypervisor text measurement and a verifier-chosen
nonce under a key the host software never sees.  A guest owner checks
the quote against known-good ("golden") measurements before handing
over an encrypted image.
"""

import hashlib
from dataclasses import dataclass

from repro.common import crypto
from repro.common.errors import ReproError
from repro.core.binscan import measure_text


@dataclass(frozen=True)
class Quote:
    """One attestation quote."""

    fidelius_measurement: bytes
    xen_measurement: bytes
    nonce: bytes
    signature: bytes


class AttestationAuthority:
    """The hardware quote engine of one machine.

    The quote key is generated inside the "secure processor" (derived
    from the machine RNG at construction) and is only ever used to MAC
    quotes; ``public_verifier`` hands a verification oracle to remote
    parties, standing in for certificate-chain verification.
    """

    def __init__(self, machine):
        self._machine = machine
        self._quote_key = crypto.random_key(machine.rng)

    def quote(self, fidelius, nonce):
        """Measure the running system and sign the result."""
        fid_measurement = measure_text(self._machine, fidelius.text_image)
        xen_measurement = measure_text(self._machine,
                                       fidelius.hypervisor.text)
        signature = self._sign(fid_measurement, xen_measurement, nonce)
        return Quote(fid_measurement, xen_measurement, nonce, signature)

    def _sign(self, fid_measurement, xen_measurement, nonce):
        h = hashlib.sha256()
        h.update(fid_measurement)
        h.update(xen_measurement)
        h.update(nonce)
        return crypto.hmac_measure(self._quote_key, h.digest())

    def public_verifier(self):
        """The remote party's verification oracle for this machine."""
        return QuoteVerifier(self)


class QuoteVerifier:
    """Signature-verification oracle for one authority's quotes.

    A plain class rather than a closure so a :class:`RemoteVerifier`
    holding it stays picklable (``repro.checkpoint`` serializes whole
    clouds, verifiers included).  It never exposes the quote key: the
    oracle recomputes the MAC inside the authority and compares.
    """

    def __init__(self, authority):
        self._authority = authority

    def __call__(self, quote):
        expected = self._authority._sign(
            quote.fidelius_measurement, quote.xen_measurement, quote.nonce)
        return crypto.constant_time_equal(expected, quote.signature)


class RemoteVerifier:
    """The guest owner's side: golden values + freshness."""

    def __init__(self, golden_fidelius, golden_xen, verify_signature):
        self.golden_fidelius = golden_fidelius
        self.golden_xen = golden_xen
        self._verify_signature = verify_signature
        self._used_nonces = set()

    def fresh_nonce(self, rng):
        nonce = bytes(rng.getrandbits(8) for _ in range(16))
        return nonce

    def explain(self, quote, nonce):
        """Why the quote is unacceptable, or None if it verifies.

        A fresh nonce is consumed exactly when it passes the replay
        checks, so a rejected quote still burns its nonce — replaying
        the same challenge later can never succeed.
        """
        if quote.nonce != nonce:
            return "attestation: stale or replayed quote"
        if nonce in self._used_nonces:
            return "attestation: nonce reuse"
        self._used_nonces.add(nonce)
        if not self._verify_signature(quote):
            return "attestation: bad quote signature"
        if quote.fidelius_measurement != self.golden_fidelius:
            return ("attestation: Fidelius text does not match "
                    "the golden measurement")
        if quote.xen_measurement != self.golden_xen:
            return ("attestation: hypervisor text does not match "
                    "the golden measurement")
        return None

    def check(self, quote, nonce):
        """Raises :class:`ReproError` unless the quote is acceptable."""
        reason = self.explain(quote, nonce)
        if reason is not None:
            raise ReproError(reason)
        return True


def golden_measurements(system):
    """The reference measurements of a known-good install.

    In deployment these come from the distributor of the Fidelius and
    Xen builds; here we take them from a pristine host of the same
    build, which is how the test suite models the supply chain.
    """
    fid = system.fidelius
    return (measure_text(system.machine, fid.text_image),
            measure_text(system.machine, fid.hypervisor.text))
