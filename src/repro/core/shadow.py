"""Shadowing of guest runtime state (paper Sections 4.2.1 and 5.1).

This is Fidelius's software rendition of SEV-ES.  On every exit from a
protected guest, Fidelius:

1. copies the VMCB and the live register file into its private shadow
   area (memory unmapped from the hypervisor);
2. masks the live copies down to what the exit-reason policy says the
   hypervisor legitimately needs;

and before the next VMRUN it:

3. diffs the hypervisor-facing VMCB against the shadow, allowing only
   the fields the policy marks writable for that exit reason — any
   other change is tampering and aborts the entry;
4. restores the registers from the shadow, taking only the
   policy-writable registers (e.g. RAX for a hypercall return) from the
   hypervisor's copy.

The measured cost of one shadow+check round trip is 661 cycles
(Section 7.2); we split it between the two halves.
"""

from repro.common.constants import SHADOW_CHECK_CYCLES
from repro.common.errors import PolicyViolation
from repro.hw.vmcb import SAVE_FIELDS
from repro.core.policies import (
    ALWAYS_VISIBLE_VMCB,
    ALWAYS_WRITABLE_VMCB,
    exit_policy,
)

SHADOW_EXIT_CYCLES = 330
VERIFY_ENTRY_CYCLES = SHADOW_CHECK_CYCLES - SHADOW_EXIT_CYCLES


class ShadowKeeper:
    """Per-vCPU shadow state and the exit/entry boundary logic.

    The shadow copies conceptually live in the Fidelius shadow-area
    frames, which the install step unmaps from the hypervisor; the
    isolation of those frames is enforced (and tested) at the memory
    level, while the copies themselves are kept as structured objects
    for clarity.
    """

    def __init__(self, fidelius):
        self._fid = fidelius
        self._machine = fidelius.machine
        self._shadows = {}

    def has_shadow(self, vcpu):
        return vcpu in self._shadows

    # -- exit side ---------------------------------------------------------------------

    def on_exit(self, vcpu):
        """Replacement for the hypervisor's register saver."""
        cpu = self._machine.cpu
        if vcpu.domain not in self._fid.protected_domains:
            # Unprotected guests keep baseline Xen behaviour.
            self._fid.hypervisor._save_regs_direct(vcpu)
            return
        self._machine.cycles.charge(SHADOW_EXIT_CYCLES, "shadow-exit")
        shadow_vmcb = vcpu.vmcb.copy()
        shadow_regs = cpu.regs.copy()
        self._shadows[vcpu] = (shadow_vmcb, shadow_regs)
        policy = exit_policy(vcpu.vmcb.exit_reason)
        # Mask the live register file: the hypervisor sees only what the
        # exit reason requires.
        cpu.regs.mask_except(policy.visible_regs)
        # Mask guest state in the hypervisor-facing VMCB.
        masked = [name for name in SAVE_FIELDS
                  if name not in ALWAYS_VISIBLE_VMCB]
        vcpu.vmcb.mask_fields(masked)
        vcpu.saved_gprs = cpu.regs.copy()

    # -- entry side ---------------------------------------------------------------------

    def pre_entry(self, vcpu):
        """Replacement for the hypervisor's register restorer."""
        cpu = self._machine.cpu
        if vcpu.domain not in self._fid.protected_domains:
            self._fid.hypervisor._restore_regs_direct(vcpu)
            return
        shadow = self._shadows.get(vcpu)
        if shadow is None:
            # First entry of this vCPU: nothing shadowed yet.
            self._fid.hypervisor._restore_regs_direct(vcpu)
            return
        self._machine.cycles.charge(VERIFY_ENTRY_CYCLES, "shadow-verify")
        shadow_vmcb, shadow_regs = shadow
        policy = exit_policy(shadow_vmcb.exit_reason)
        self._verify_vmcb(vcpu, shadow_vmcb, policy)
        self._restore(vcpu, shadow_vmcb, shadow_regs, policy)

    def _verify_vmcb(self, vcpu, shadow_vmcb, policy):
        """Detect tampering: only policy-writable fields may change."""
        allowed = policy.writable_vmcb | ALWAYS_WRITABLE_VMCB
        live = vcpu.vmcb
        for name, shadow_value in shadow_vmcb.fields().items():
            if name in allowed:
                continue
            live_value = live.read(name)
            if name in ALWAYS_VISIBLE_VMCB:
                expected = shadow_value      # visible but read-only
            else:
                expected = self._masked_value(name)
            if live_value != expected:
                self._fid.audit_event(
                    "vmcb-tamper", field=name, vcpu=vcpu,
                    value=live_value)
                raise PolicyViolation(
                    "exit-reason",
                    "VMCB field %r tampered while in the hypervisor "
                    "(exit reason %s)" % (name, shadow_vmcb.exit_reason))

    @staticmethod
    def _masked_value(name):
        return frozenset() if name == "intercepts" else 0

    #: Longest legal x86 instruction: a RIP update on an emulated-
    #: instruction exit may advance by at most this much.
    MAX_INSTRUCTION_LENGTH = 15

    def _restore(self, vcpu, shadow_vmcb, shadow_regs, policy):
        cpu = self._machine.cpu
        # RIP is policy-writable on emulation exits (the hypervisor must
        # advance past CPUID/VMMCALL/...), but only by an instruction
        # length: anything else is a control-flow hijack of the guest.
        if "rip" in policy.writable_vmcb:
            old_rip = shadow_vmcb.read("rip")
            new_rip = vcpu.vmcb.read("rip")
            if not 0 <= new_rip - old_rip <= self.MAX_INSTRUCTION_LENGTH:
                self._fid.audit_event("vmcb-tamper", field="rip",
                                      vcpu=vcpu, value=new_rip)
                raise PolicyViolation(
                    "exit-reason",
                    "RIP moved from %#x to %#x: not an instruction "
                    "advance" % (old_rip, new_rip))
        # VMCB: shadow wins everywhere except the policy-writable fields.
        keep = policy.writable_vmcb | ALWAYS_WRITABLE_VMCB
        restore_fields = [name for name in shadow_vmcb.fields()
                          if name not in keep]
        vcpu.vmcb.restore_from(shadow_vmcb, fields=restore_fields)
        # Registers: shadow wins except the policy-writable ones, which
        # carry legitimate results (e.g. the hypercall return in RAX).
        hypervisor_regs = vcpu.saved_gprs
        cpu.regs.load_from(shadow_regs)
        for name in policy.writable_regs:
            cpu.regs[name] = hypervisor_regs[name]
        self._check_iago(vcpu, shadow_vmcb, shadow_regs)
        # VMRUN loads RAX/RSP from the VMCB: keep them coherent.
        vcpu.vmcb.write("rax", cpu.regs["rax"])
        vcpu.vmcb.write("rsp", cpu.regs["rsp"])

    def _check_iago(self, vcpu, shadow_vmcb, shadow_regs):
        """The Iago defence (Section 6.2): Fidelius sits between the
        hypervisor and the guest, so registered policies can vet the
        hypercall return value before VMRUN."""
        from repro.common.types import ExitReason
        if shadow_vmcb.exit_reason is not ExitReason.HYPERCALL:
            return
        nr = shadow_regs["rax"]
        validator = self._fid.return_validators.get(nr)
        if validator is None:
            return
        value = self._machine.cpu.regs["rax"]
        try:
            validator(value, vcpu)
        except PolicyViolation:
            self._fid.audit_event("iago-blocked", hypercall=nr, value=value)
            raise

    def drop(self, vcpu):
        self._shadows.pop(vcpu, None)
