"""Full VM life-cycle protection (paper Section 4.3).

The guest owner prepares, in a trusted environment, an *encrypted kernel
image* by running the SEV SEND APIs against a scratch machine, plus a
disk image encrypted under ``K_blk`` (which is embedded inside the
kernel image, so it never reaches the host in the clear).  Booting on
the Fidelius host is then a RECEIVE: the firmware re-encrypts the image
in place under a fresh ``K_vek`` and verifies the measurement, so the
hypervisor that loaded the bytes cannot have tampered with them.

The paper's Section 8 complaint is reproduced faithfully: the image is
sealed to one pre-identified target machine, because the SEND key
agreement needs the target's platform key in advance.
"""

from dataclasses import dataclass

from repro.common import crypto
from repro.common.constants import KEY_BYTES, PAGE_SIZE
from repro.common.errors import ReproError, SevError
from repro.hw.machine import Machine
from repro.sev.firmware import SevFirmware

KERNEL_MAGIC = b"FIDELIUS-KERNEL!"
KBLK_OFFSET = len(KERNEL_MAGIC)
PAYLOAD_OFFSET = 64


def sector_tweak(sector):
    return b"sector|" + sector.to_bytes(8, "little")


def page_tweak(index):
    return b"page|" + index.to_bytes(8, "little")


@dataclass(frozen=True)
class EncryptedGuestImage:
    """The deliverables of Section 4.3.2, bundled."""

    records: tuple          # ((page_index, transport_bytes), ...)
    kwrap: object           # WrappedKeys for the *target* machine
    measurement: bytes      # M_vm
    origin_public: int      # trusted environment's platform DH public
    nonce: bytes            # N_vm
    pages: int
    policy: int = 0         # SEV launch-policy bits (NODBG/NOSEND/...)


@dataclass
class GuestOwner:
    """The guest owner's trusted offline tooling."""

    seed: int = 0x0511E12
    #: SEV launch-policy bits the owner demands (see repro.sev.state).
    policy: int = 0

    def __post_init__(self):
        import random
        self.rng = random.Random(self.seed)
        self.dh = crypto.DiffieHellman(self.rng)
        self.nonce = bytes(self.rng.getrandbits(8) for _ in range(16))
        #: The disk encryption key, pre-defined by the owner (§4.3.2).
        self.kblk = crypto.random_key(self.rng)

    # -- kernel image ------------------------------------------------------------

    def build_kernel(self, payload):
        """Lay out the kernel image: magic, embedded K_blk, payload."""
        if len(payload) > 64 * PAGE_SIZE:
            raise ReproError("kernel payload too large for this layout")
        image = bytearray(KERNEL_MAGIC)
        image += self.kblk
        image += bytes(PAYLOAD_OFFSET - len(image))
        image += payload
        if len(image) % PAGE_SIZE:
            image += bytes(PAGE_SIZE - len(image) % PAGE_SIZE)
        return bytes(image)

    def prepare_encrypted_image(self, payload, target_public):
        """Generate the encrypted kernel image in a trusted environment.

        Runs LAUNCH + SEND against a scratch SEV machine.  The SEND key
        agreement uses ``target_public`` — the pre-identified target
        machine's platform key (the Section 8 limitation).
        """
        kernel = self.build_kernel(payload)
        pages = len(kernel) // PAGE_SIZE
        env = Machine(frames=pages + 8, seed=self.rng.getrandbits(32))
        firmware = SevFirmware(env)
        origin_public = firmware.init()
        # the trusted environment must SEND once to produce the image,
        # so the NOSEND bit is applied only at the receiving target
        from repro.sev.state import POLICY_NOSEND
        handle = firmware.launch_start(policy=self.policy & ~POLICY_NOSEND)
        base_pa = 4 * PAGE_SIZE
        for index in range(pages):
            firmware.launch_update_data(
                handle, base_pa + index * PAGE_SIZE,
                kernel[index * PAGE_SIZE:(index + 1) * PAGE_SIZE])
        firmware.launch_finish(handle)
        kwrap = firmware.send_start(handle, target_public, self.nonce)
        records = tuple(
            (index, firmware.send_update(
                handle, base_pa + index * PAGE_SIZE, PAGE_SIZE,
                tweak=page_tweak(index)))
            for index in range(pages)
        )
        measurement = firmware.send_finish(handle)
        return EncryptedGuestImage(
            records=records, kwrap=kwrap, measurement=measurement,
            origin_public=origin_public, nonce=self.nonce, pages=pages,
            policy=self.policy)

    # -- disk image -------------------------------------------------------------------

    def encrypt_disk_image(self, plaintext):
        """Encrypt a disk image under K_blk, sector by sector."""
        from repro.common.constants import SECTOR_SIZE
        if len(plaintext) % SECTOR_SIZE:
            plaintext = plaintext + bytes(
                SECTOR_SIZE - len(plaintext) % SECTOR_SIZE)
        out = bytearray()
        for sector in range(len(plaintext) // SECTOR_SIZE):
            chunk = plaintext[sector * SECTOR_SIZE:(sector + 1) * SECTOR_SIZE]
            out += crypto.xex_encrypt(self.kblk, sector_tweak(sector), chunk)
        return bytes(out)


def boot_protected_guest(fidelius, name, image, guest_frames, tamper=None,
                         vcpus=1):
    """VM bootup (paper Section 4.3.3).

    1. RECEIVE_START with K_wrap, N_vm and the origin's public key;
    2. the *hypervisor* loads the encrypted image into guest memory —
       its one window of write permission;
    3. RECEIVE_UPDATE re-encrypts each page in place under K_vek;
    4. RECEIVE_FINISH verifies the measurement (so step 2 tampering is
       caught — ``tamper`` lets tests exercise exactly that);
    5. ACTIVATE installs the key, the domain is enrolled for protection.

    Returns ``(domain, ctx)`` with the guest ready to run.
    """
    if guest_frames < image.pages:
        raise ReproError("guest smaller than its kernel image")
    hypervisor = fidelius.hypervisor
    machine = fidelius.machine
    domain = hypervisor.create_domain(name, guest_frames, sev=True,
                                      vcpus=vcpus)

    try:
        handle = fidelius.firmware_call(
            "receive_start", image.kwrap, image.origin_public, image.nonce,
            policy=image.policy)
        domain.sev_handle = handle
        fidelius.record_sev_metadata(
            domain, handle=handle, asid=domain.asid, nonce=image.nonce.hex())

        # The hypervisor loads the transport bytes (still mapped: the
        # domain is not yet protected, so it temporarily has write
        # permission).
        loaded = []
        for index, transport in image.records:
            pa = hypervisor.guest_frame_hpfn(domain, index) * PAGE_SIZE
            machine.cpu.store(pa, transport)
            loaded.append((index, pa))
        if tamper is not None:
            tamper(machine, domain)

        for index, pa in loaded:
            transport = machine.memctrl.dma_read(pa, PAGE_SIZE)
            fidelius.firmware_call(
                "receive_update", handle, transport, page_tweak(index), pa)
        fidelius.firmware_call(
            "receive_finish", handle, image.measurement)
        fidelius.firmware_call("activate", handle, domain.asid)
    except SevError:
        # Fail closed: a boot that dies anywhere between RECEIVE_START
        # and ACTIVATE leaves no half-built guest behind — the firmware
        # context is decommissioned and the domain destroyed.
        fidelius.audit_event("boot-integrity-failure", domid=domain.domid)
        if domain.sev_handle is not None \
                and domain.sev_handle in fidelius.firmware.handles():
            fidelius.firmware_call("decommission", domain.sev_handle)
        domain.sev_handle = None
        fidelius.drop_sev_metadata(domain.domid)
        hypervisor.destroy_domain(domain)
        raise
    # The guest kernel boots with its image pages marked encrypted in
    # its own page tables (C-bits).
    domain.encrypted_gfns.update(range(image.pages))
    fidelius.protect_domain(domain)
    fidelius.audit_event("guest-booted", domid=domain.domid,
                         pages=image.pages)
    return domain, domain.context()


def read_embedded_kblk(ctx):
    """The front-end driver reads K_blk out of the (decrypted) kernel
    image during disk initialization (Section 4.3.3 step 4)."""
    magic = ctx.read(0, len(KERNEL_MAGIC))
    if magic != KERNEL_MAGIC:
        raise ReproError("kernel image not booted or corrupted")
    return ctx.read(KBLK_OFFSET, KEY_BYTES)


def read_kernel_payload(ctx, length):
    return ctx.read(PAYLOAD_OFFSET, length)
