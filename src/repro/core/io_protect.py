"""Runtime I/O protection: the two para-virtualized interfaces of
Section 4.3.5 (Figure 4), plus the software baseline of Section 7.2.

All three implement the front end's encoder interface: data handed to
the shared (plaintext-visible) buffer is encrypted per 512-byte sector,
tweaked by the absolute sector number so random access decodes.

Cycle accounting encodes the paper's Table 3 analysis:

* write encryption happens in a *batch* and sits apart from the write
  critical path, so only a fraction of its cost lands on the response
  time;
* read decryption is on the critical path ("the driver has to wait for
  decrypted data") and is duplicated by sector granularity.
"""

from repro.common import crypto
from repro.common.constants import (
    AESNI_IO_CPB,
    PAGE_SIZE,
    SECTOR_SIZE,
    SEV_IO_COMMAND_CYCLES,
    SEV_IO_CPB,
    SOFTWARE_IO_CPB,
)
from repro.common.errors import ReproError
from repro.core.lifecycle import sector_tweak

#: Fraction of write-side encryption cost on the critical path (batched,
#: off the response path — Table 3 discussion).
WRITE_CRITICAL_FRACTION = 0.10
#: Read-side duplication factor from sector-granularity decryption.
READ_DUPLICATION_FACTOR = 1.35


def _per_sector(data, sector, key, label):
    if len(data) % SECTOR_SIZE:
        raise ReproError("%s: I/O data must be sector aligned" % label)
    out = bytearray()
    for i in range(len(data) // SECTOR_SIZE):
        chunk = data[i * SECTOR_SIZE:(i + 1) * SECTOR_SIZE]
        out += crypto.xex_encrypt(key, sector_tweak(sector + i), chunk)
    return bytes(out)


class AesNiIoEncoder:
    """AES-NI based I/O protection (Figure 4, left): the guest encrypts
    block data with K_blk using the AES instruction set directly."""

    name = "aes-ni"

    def __init__(self, kblk, cycles, cycles_per_byte=AESNI_IO_CPB):
        self._kblk = kblk
        self._cycles = cycles
        self._cpb = cycles_per_byte

    def encode_write(self, data, sector):
        self._cycles.charge(
            int(len(data) * self._cpb * WRITE_CRITICAL_FRACTION),
            "io-encrypt-%s" % self.name)
        return _per_sector(data, sector, self._kblk, self.name)

    def decode_read(self, data, sector):
        self._cycles.charge(
            int(len(data) * self._cpb * READ_DUPLICATION_FACTOR),
            "io-decrypt-%s" % self.name)
        return _per_sector(data, sector, self._kblk, self.name)


class SoftwareIoEncoder(AesNiIoEncoder):
    """Software-emulated AES, for machines with neither AES-NI nor the
    SEV trick available — the >20x baseline of the Section 7.2 micro
    benchmark."""

    name = "software"

    def __init__(self, kblk, cycles):
        super().__init__(kblk, cycles, cycles_per_byte=SOFTWARE_IO_CPB)


class SevApiIoEncoder:
    """SEV-API based I/O protection (Figure 4, right).

    For processors without AES-NI.  Two helper SEV contexts are created
    for the protected guest: the *s-dom* (sharing K_vek, pinned in the
    SENDING state) and the *r-dom* (sharing K_vek and K_tek, pinned in
    RECEIVING) — required because SEND_UPDATE / RECEIVE_UPDATE only work
    in those states while the guest itself is RUNNING.

    On write, the front end copies data into the dedicated buffer M_d
    (ordinary *encrypted* guest memory) and the retrofitted
    event-channel path has the firmware SEND_UPDATE it: decrypt with
    K_vek, re-encrypt with K_tek into the shared I/O buffer.  Reads run
    the mirror image through the r-dom.  (We invoke the firmware from
    the encoder at the kick point rather than hooking the channel object
    itself; the commands issued are identical.)
    """

    name = "sev-api"

    def __init__(self, fidelius, domain, ctx, md_gfns):
        self._fid = fidelius
        self._domain = domain
        self._ctx = ctx
        self._md_gfns = list(md_gfns)
        self._cycles = fidelius.machine.cycles
        for gfn in self._md_gfns:
            ctx.set_page_encrypted(gfn)
        nonce = bytes(fidelius.machine.rng.getrandbits(8) for _ in range(16))
        firmware = fidelius.firmware
        self.s_handle = fidelius.firmware_call(
            "launch_start", share_kvek_with=domain.sev_handle)
        fidelius.firmware_call("launch_finish", self.s_handle)
        platform_public = firmware.platform_public_key
        wrapped = fidelius.firmware_call(
            "send_start", self.s_handle, platform_public, nonce)
        self.r_handle = fidelius.firmware_call(
            "receive_start", wrapped, platform_public, nonce,
            share_kvek_with=domain.sev_handle)
        fidelius.record_sev_metadata(
            domain, s_dom=self.s_handle, r_dom=self.r_handle)

    @classmethod
    def create(cls, fidelius, domain, ctx, pages=4):
        """Reserve the M_d buffer just below the shared I/O buffer."""
        top = domain.guest_frames
        md_gfns = range(top - 2 * pages, top - pages)
        return cls(fidelius, domain, ctx, md_gfns)

    @property
    def md_capacity(self):
        return len(self._md_gfns) * PAGE_SIZE

    def _md_chunks(self, length):
        """Page-batched (gfn, offset_within_md, take) pieces.

        One firmware command covers up to a page of M_d; the firmware
        applies the transport tweak per 512-byte sector internally, so
        any sector range decodes independently (the at-rest format stays
        sector-granular) while the command and memory traffic stay
        batched — the batching that keeps the SEV path competitive.
        """
        if length > self.md_capacity:
            raise ReproError("request larger than the M_d buffer")
        if length % SECTOR_SIZE:
            raise ReproError("I/O data must be sector aligned")
        chunks = []
        offset = 0
        while offset < length:
            take = min(length - offset, PAGE_SIZE - offset % PAGE_SIZE)
            chunks.append((self._md_gfns[offset // PAGE_SIZE], offset, take))
            offset += take
        return chunks

    def _charge(self, length, fraction):
        self._cycles.charge(
            SEV_IO_COMMAND_CYCLES
            + int(length * SEV_IO_CPB * fraction),
            "io-crypt-%s" % self.name)

    def encode_write(self, data, sector):
        self._charge(len(data), WRITE_CRITICAL_FRACTION)
        out = bytearray()
        hypervisor = self._fid.hypervisor
        for gfn, offset, take in self._md_chunks(len(data)):
            page_off = offset % PAGE_SIZE
            self._ctx.write(gfn * PAGE_SIZE + page_off,
                            data[offset:offset + take])
            pa = hypervisor.guest_frame_hpfn(self._domain, gfn) * PAGE_SIZE \
                + page_off
            out += self._fid.firmware_call(
                "send_update_sectors", self.s_handle, pa, take,
                base_sector=sector + offset // SECTOR_SIZE)
        return bytes(out)

    def decode_read(self, data, sector):
        self._charge(len(data), READ_DUPLICATION_FACTOR)
        out = bytearray()
        hypervisor = self._fid.hypervisor
        for gfn, offset, take in self._md_chunks(len(data)):
            page_off = offset % PAGE_SIZE
            pa = hypervisor.guest_frame_hpfn(self._domain, gfn) * PAGE_SIZE \
                + page_off
            self._fid.firmware_call(
                "receive_update_sectors", self.r_handle,
                data[offset:offset + take],
                base_sector=sector + offset // SECTOR_SIZE, pa=pa)
            out += self._ctx.read(gfn * PAGE_SIZE + page_off, take)
        return bytes(out)

    def teardown(self):
        for handle in (self.s_handle, self.r_handle):
            self._fid.firmware_call("decommission", handle)
