"""Fidelius: the trusted sibling context (paper Sections 3-5).

One :class:`Fidelius` instance retrofits a booted Xen host.  After
``install()`` (the late-launch of Section 4.3.1):

* the hypervisor's page-table-pages, every guest NPT and every grant
  table are read-only to the hypervisor; updates flow through the type 1
  gate where PIT/GIT policies run;
* the VMCB and guest registers of protected guests are shadowed across
  every exit and verified against exit-reason policies before re-entry
  (the software SEV-ES);
* the restricted privileged instructions exist exactly once, in
  Fidelius's text, guarded by checking loops (type 2 gates); VMRUN and
  ``mov CR3`` are unmapped and only executable inside type 3 gates;
* the SEV firmware only accepts commands from inside a type 3 gate, and
  the SEV metadata lives in pages unmapped from the hypervisor;
* the ``pre_sharing_op`` hypercall exists for guests to declare sharing
  contexts into the GIT.
"""

from repro.common.constants import (
    CR0_PG,
    CR0_WP,
    CR4_SMEP,
    EFER_NXE,
    EFER_SVME,
    MSR_EFER,
    SEV_METADATA_PAGES,
    SHADOW_AREA_PAGES,
)
from repro.common.errors import (
    GateViolation,
    PolicyViolation,
    ReproError,
    SevError,
)
from repro.common.types import Owner, PageUsage, PrivOp, pfn_of
from repro.core import isolation
from repro.core.binscan import measure_text
from repro.core.gates import GateKeeper
from repro.core.git import GitEntry, GrantInfoTable
from repro.core.pit import PageInfoTable
from repro.core.policies import WritePolicyEngine
from repro.core.shadow import ShadowKeeper
from repro.xen import hypercalls as hc
from repro.xen.image import default_fidelius_image


class Fidelius:
    """The Fidelius trusted context for one host."""

    def __init__(self, machine, hypervisor, firmware):
        self.machine = machine
        self.hypervisor = hypervisor
        self.firmware = firmware
        self.installed = False
        #: True when running on SEV-ES hardware (state protection is
        #: the hardware's job; Fidelius keeps everything else).
        self.hardware_es = False
        #: Tamper-evident log of everything Fidelius blocked or noted.
        self.audit = []
        self._audit_digests = []
        self._audit_head = bytes(32)
        self.protected_domains = set()
        #: Domain ids mid-teardown that were protected: their frame
        #: releases must still scrub even after the enrollment is gone.
        self._dying_protected = set()
        self.valid_roots = set()
        self.text_image = None
        self.text_pfns = []
        self.shadow_area_pfns = []
        self.sev_metadata_pfns = []
        self.xen_measurement = None
        self.pit = None
        self.git = None
        #: SEV metadata (handles, nonces, owner keys) — see
        #: ``_sync_sev_metadata`` for the in-memory (unmapped) copy.
        self.sev_meta = {}
        #: Idempotency registry for RECEIVE: package import-key -> domid,
        #: so a replayed migration package cannot mint a duplicate domain.
        self.received_imports = {}
        self.gates = GateKeeper(self)
        self.shadow = ShadowKeeper(self)
        self.write_policy = WritePolicyEngine(self)
        self._write_once_regions = []
        #: Iago defence (Section 6.2): per-hypercall validators checking
        #: the hypervisor's return value before VMRUN re-enters.
        self.return_validators = {}
        self._install_snapshot = None

    def register_return_validator(self, hypercall_nr, validator):
        """Install a policy checking the hypervisor's return value for
        one hypercall before the guest re-enters (Iago defence)."""
        self.return_validators[hypercall_nr] = validator

    # ------------------------------------------------------------------ install

    def install(self):
        """Late launch: measure, isolate, rewrite, take over the gates."""
        if self.installed:
            raise ReproError("Fidelius already installed")
        machine = self.machine
        hypervisor = self.hypervisor
        if hypervisor.text is None:
            raise ReproError("install Fidelius after the hypervisor boots")

        # 1. Measure the hypervisor's code for remote attestation.
        self.xen_measurement = measure_text(machine, hypervisor.text)

        # 2. Fidelius text: monopoly copies of the privileged instructions.
        self.text_pfns = self._alloc_contiguous(2)
        base_va = self.text_pfns[0] << 12
        self.text_image = default_fidelius_image(base_va, pages=2)
        machine.memory.write(base_va, self.text_image.to_bytes())

        # 3. Private pages: shadow area and SEV metadata.
        self.shadow_area_pfns = machine.allocator.alloc_many(SHADOW_AREA_PAGES)
        self.sev_metadata_pfns = machine.allocator.alloc_many(SEV_METADATA_PAGES)

        # 4. PIT and GIT, in Fidelius-owned frames.
        self.pit = PageInfoTable(machine, machine.allocator.alloc)
        self.git = GrantInfoTable(machine, machine.allocator.alloc)

        # 5. Classify the world, then seal it.
        isolation.classify_world(self)
        isolation.map_fidelius_text(self)
        for pfn in self.shadow_area_pfns + self.sev_metadata_pfns:
            isolation.unmap_frame(machine, pfn)
        isolation.write_protect_world(self)
        isolation.rewrite_hypervisor_binary(self)

        # 6. Arm the CPU: SMEP on, then hooks and the fault handler.
        self._exec_at_fidelius(PrivOp.MOV_CR4, machine.cpu.cr4 | CR4_SMEP)
        self._install_hooks()

        # 7. Take over the hypervisor's indirections.
        hypervisor.priv_executor = self._gated_priv
        hypervisor.vmrun_executor = self._gated_vmrun
        hypervisor.word_writer = self.gates.guarded_write
        self._install_exit_boundary()
        hypervisor.add_hook("npt_table_alloc", self._on_npt_table_alloc)
        hypervisor.add_hook("iommu_table_alloc", self._on_iommu_table_alloc)
        hypervisor.add_hook("guest_frame_alloc", self._on_guest_frame_alloc)
        hypervisor.add_hook("guest_frame_release", self._on_guest_frame_release)
        hypervisor.add_hook("table_frame_release", self._on_table_frame_release)
        hypervisor.add_hook("grant_table_created", self._on_grant_table_created)
        hypervisor.add_hook("domain_destroyed", self._on_domain_destroyed)
        hypervisor.register_hypercall(hc.HC_PRE_SHARING, self._hc_pre_sharing)
        hypervisor.register_hypercall(hc.HC_ENCRYPT_FREE_PAGES,
                                      self._hc_encrypt_free_pages)

        # 8. Seal the firmware interface and initialize the platform.
        self.valid_roots = {machine.host_root}
        self.firmware.gate_check = self._fw_gate_check
        if self.firmware.platform_state.name == "UNINIT":
            with self.gates.firmware_gate():
                self.firmware.init()
        self.installed = True
        self.audit_event("installed",
                         measurement=self.xen_measurement.hex()[:16])
        return self

    def _install_exit_boundary(self):
        """Take over the exit/entry boundary.

        On plain-SEV hardware, Fidelius shadows and verifies guest state
        itself (Section 4.2.1).  On SEV-ES hardware — the forward
        configuration the paper anticipates ("shadowing VMCB and
        registers can be regarded as a software version of SEV-ES,
        while others will solve the remaining issues") — the hardware
        already protects the state, so Fidelius keeps only its Iago
        return-value policy on the entry path and saves the 661-cycle
        shadow round trip per exit.
        """
        hypervisor = self.hypervisor
        boundary = getattr(hypervisor, "sev_es_boundary", None)
        if boundary is None:
            hypervisor.regs_saver = self.shadow.on_exit
            hypervisor.regs_restorer = self.shadow.pre_entry
            return
        self.hardware_es = True

        def restorer(vcpu):
            vmsa = boundary._vmsas.get(vcpu)
            boundary.pre_entry(vcpu)
            if vmsa is not None and vcpu.domain in self.protected_domains:
                self.shadow._check_iago(vcpu, vmsa[0], vmsa[1])

        hypervisor.regs_saver = boundary.on_exit
        hypervisor.regs_restorer = restorer

    def _alloc_contiguous(self, count):
        allocator = self.machine.allocator
        for _ in range(64):
            pfns = allocator.alloc_many(count)
            if all(pfns[i + 1] == pfns[i] + 1 for i in range(count - 1)):
                return pfns
            for pfn in pfns:
                allocator.free(pfn)
        raise ReproError("could not allocate contiguous frames")

    def _exec_at_fidelius(self, op, arg):
        self.machine.cpu.exec_privileged(
            op, arg, rip=self.text_image.va_of(op))

    # ------------------------------------------------------------------ audit

    def audit_event(self, kind, **details):
        """Append to the audit log and extend its tamper-evidence chain.

        Every entry is hash-chained onto the previous head, so a
        compromised hypervisor that later gains a write primitive cannot
        silently rewrite history — it can only truncate, which
        ``verify_audit_chain`` also exposes via the stored head.
        """
        import hashlib
        self.audit.append((kind, details))
        h = hashlib.sha256()
        h.update(self._audit_head)
        h.update(repr((kind, sorted(details.items()))).encode())
        self._audit_head = h.digest()
        self._audit_digests.append(self._audit_head)

    @property
    def audit_head(self):
        """The current chain head (what a verifier would pin)."""
        return self._audit_head

    def verify_audit_chain(self, expected_head=None):
        """Recompute the chain over the stored entries; returns True if
        it is internally consistent and (optionally) ends at
        ``expected_head``."""
        import hashlib
        head = bytes(32)
        for index, (kind, details) in enumerate(self.audit):
            h = hashlib.sha256()
            h.update(head)
            h.update(repr((kind, sorted(details.items()))).encode())
            head = h.digest()
            if self._audit_digests[index] != head:
                return False
        if expected_head is not None and head != expected_head:
            return False
        return head == self._audit_head

    def audit_kinds(self):
        return [kind for kind, _ in self.audit]

    def stats(self):
        """Operational counters for dashboards and tests: gate
        crossings, shadow round trips, and everything blocked."""
        from collections import Counter
        events = self.machine.cycles.events
        audit_counts = Counter(kind for kind, _ in self.audit)
        return {
            "gate1_crossings": events.get("gate1", 0),
            "gate2_checks": events.get("gate2", 0),
            "gate3_crossings": events.get("gate3", 0),
            "shadow_roundtrips": events.get("shadow-verify", 0),
            "denials": audit_counts.get("denied", 0),
            "faults_blocked": audit_counts.get("fault-blocked", 0),
            "vmcb_tampers_detected": audit_counts.get("vmcb-tamper", 0),
            "iago_blocked": audit_counts.get("iago-blocked", 0),
            "protected_domains": len(self.protected_domains),
            "audit_entries": len(self.audit),
        }

    def protected_domids(self):
        return {domain.domid for domain in self.protected_domains}

    # ------------------------------------------------------------------ gates / hooks

    def exec_monopolized(self, op, arg):
        """Execute the single sanctioned instance of ``op`` (type 2)."""
        self._exec_at_fidelius(op, arg)

    def _gated_priv(self, op, arg):
        """Replacement ``priv_executor``: route to the monopoly copies."""
        if op in (PrivOp.VMRUN,):
            raise ReproError("VMRUN goes through the vmrun executor")
        if op is PrivOp.MOV_CR3:
            with self.gates.type3(self.text_pfns[1], executable=True):
                self._exec_at_fidelius(op, arg)
            return
        self._exec_at_fidelius(op, arg)

    def _gated_vmrun(self, vcpu):
        """Replacement ``vmrun_executor``: type 3 gate around VMRUN."""
        with self.gates.type3(self.text_pfns[1], executable=True):
            self.machine.cpu.vmrun(
                vcpu.vmcb, rip=self.text_image.va_of(PrivOp.VMRUN))

    def _install_hooks(self):
        cpu = self.machine.cpu
        cpu.fault_handler = self._on_fault
        # the checking loops live physically next to the monopoly copies
        for op in PrivOp:
            if op is not PrivOp.VMRUN:
                cpu.priv_hook_sites[op] = self.text_image.va_of(op)
        cpu.priv_post_hooks[PrivOp.MOV_CR0] = self._hook_mov_cr0
        cpu.priv_post_hooks[PrivOp.MOV_CR4] = self._hook_mov_cr4
        cpu.priv_post_hooks[PrivOp.WRMSR] = self._hook_wrmsr
        cpu.priv_post_hooks[PrivOp.LGDT] = self._hook_execute_once
        cpu.priv_post_hooks[PrivOp.LIDT] = self._hook_execute_once
        cpu.priv_post_hooks[PrivOp.MOV_CR3] = self._hook_mov_cr3
        cpu.priv_post_hooks[PrivOp.VMRUN] = self._hook_vmrun

    # The checking loops of Table 2.

    def _hook_mov_cr0(self, cpu, op, arg, old):
        self.gates.charge_type2()
        if not arg & CR0_PG:
            self._deny("type2", "MOV CR0 clearing PG")
        if not arg & CR0_WP and cpu.gate_active != "type1":
            self._deny("type2", "MOV CR0 clearing WP outside a gate")

    def _hook_mov_cr4(self, cpu, op, arg, old):
        self.gates.charge_type2()
        if old is not None and old["cr4"] & CR4_SMEP and not arg & CR4_SMEP:
            self._deny("type2", "MOV CR4 clearing SMEP")

    def _hook_wrmsr(self, cpu, op, arg, old):
        self.gates.charge_type2()
        msr, value = arg
        if msr == MSR_EFER:
            if not value & EFER_NXE:
                self._deny("type2", "WRMSR clearing EFER.NXE")
            if not value & EFER_SVME:
                self._deny("type2", "WRMSR clearing EFER.SVME")

    def _hook_execute_once(self, cpu, op, arg, old):
        """lgdt/lidt already ran once during Xen's initialization; the
        execute-once policy (Section 5.3) forbids any further run."""
        self.gates.charge_type2()
        self._deny("execute-once", "%s after initialization" % op.value)

    def _hook_mov_cr3(self, cpu, op, arg, old):
        self.gates.charge_type2()
        if cpu.gate_active != "type3":
            self._deny("type3", "mov CR3 outside its gate")
        if arg not in self.valid_roots:
            self._deny("type3", "mov CR3 to unvalidated root %#x" % arg)

    def _hook_vmrun(self, cpu, op, vmcb, old):
        self.gates.charge_type2()
        if cpu.gate_active != "type3":
            self._deny("type3", "VMRUN outside its gate")
        vcpu = self._find_vcpu(vmcb)
        if vcpu is None:
            self._deny("type3", "VMRUN with an unknown VMCB")
        domain = vcpu.domain
        if vmcb.read("asid") != domain.asid:
            self._deny("type3", "VMCB ASID does not match its domain")
        if vmcb.read("nested_cr3") != domain.npt.root_pfn:
            self._deny("type3", "VMCB nested CR3 does not match the NPT")
        if domain.sev_handle is not None:
            from repro.sev.state import GuestState
            state = self.firmware.guest_state(domain.sev_handle)
            if state is not GuestState.RUNNING:
                self._deny("type3", "VMRUN of a guest in state %s "
                           "(e.g. mid-migration)" % state.value)

    def _find_vcpu(self, vmcb):
        for domain in self.hypervisor.domains.values():
            for vcpu in domain.vcpus:
                if vcpu.vmcb is vmcb:
                    return vcpu
        return None

    def _deny(self, policy, detail):
        self.audit_event("denied", policy=policy, detail=detail)
        if policy in ("type2", "type3", "execute-once"):
            raise GateViolation(policy, detail)
        raise PolicyViolation(policy, detail)

    # ------------------------------------------------------------------ faults

    def _on_fault(self, fault, op):
        """The page-fault handler for the hypervisor context."""
        kind = op[0]
        pfn = pfn_of(fault.vaddr)
        info = self.pit.lookup(pfn) if self.pit else None
        if kind == "write" and info is not None and info.usage in (
                PageUsage.START_INFO, PageUsage.SHARED_INFO):
            self.check_write_once(fault.vaddr, len(op[2]))
            self.machine.memory.write(fault.vaddr, op[2])
            self.audit_event("write-once-mediated", va=fault.vaddr)
            return True
        usage = info.usage.name if info is not None else "unknown"
        self.audit_event("fault-blocked", access=kind, va=fault.vaddr,
                         usage=usage)
        raise PolicyViolation(
            "non-bypassable-isolation",
            "%s of protected %s page at %#x outside the gates"
            % (kind, usage, fault.vaddr))

    # -- write-once regions (Section 5.3) -------------------------------------------

    def register_write_once_region(self, base, size, usage, name):
        from repro.common.bitvector import OncePolicy
        region = OncePolicy(base, size, name=name)
        self._write_once_regions.append(region)
        self.pit.classify(pfn_of(base), Owner.XEN, usage)
        isolation.write_protect_frame(self.machine, pfn_of(base))
        return region

    def check_write_once(self, va, length):
        for region in self._write_once_regions:
            if region.covers(va, length):
                try:
                    region.use(va, length)
                except ReproError as exc:
                    self.audit_event("write-once-denied", va=va)
                    raise PolicyViolation("write-once", str(exc))
                return
        raise PolicyViolation("write-once",
                              "no write-once region covers %#x" % va)

    # ------------------------------------------------------------------ firmware sealing

    def _fw_gate_check(self, command):
        if self.machine.cpu.gate_active != "type3":
            self.audit_event("denied", policy="sev-command", detail=command)
            raise SevError(
                "COMMAND_BLOCKED",
                "SEV command %s issued outside the type 3 gate" % command)

    def firmware_call(self, method, *args, **kwargs):
        """Issue one SEV firmware command from inside a type 3 gate."""
        with self.gates.firmware_gate():
            return getattr(self.firmware, method)(*args, **kwargs)

    def record_sev_metadata(self, domain, **fields):
        """Self-maintained SEV metadata (Section 4.2.3): bookkeeping kept
        in pages unmapped from the hypervisor."""
        self.sev_meta.setdefault(domain.domid, {}).update(fields)
        self._sync_sev_metadata()

    def drop_sev_metadata(self, domid):
        """Discard a domain's metadata (rollback of a failed RECEIVE)."""
        if self.sev_meta.pop(domid, None) is not None:
            self._sync_sev_metadata()

    def _sync_sev_metadata(self):
        """Serialize the metadata into the unmapped frames so the
        isolation is literal: a hypervisor read of these pages faults."""
        blob = repr(sorted(self.sev_meta.items())).encode()
        blob = blob[: SEV_METADATA_PAGES * 4096]
        pa = self.sev_metadata_pfns[0] << 12
        self.machine.memory.write(pa, blob)

    # ------------------------------------------------------------------ domain protection

    def protect_domain(self, domain):
        """Enroll a guest for full protection: shadowing on (or SEV-ES
        on ES hardware), its RAM unmapped from the hypervisor
        (Section 4.3.4)."""
        self.protected_domains.add(domain)
        if self.hardware_es:
            domain.sev_es = True
        for _, entry in domain.npt.leaf_mappings():
            from repro.hw.pagetable import entry_pfn
            isolation.unmap_frame(self.machine, entry_pfn(entry))
        self.audit_event("domain-protected", domid=domain.domid)

    def _on_npt_table_alloc(self, domain, pfn):
        if not self.installed:
            return
        self.pit.classify(pfn, Owner.XEN, PageUsage.NPT_PAGE,
                          tag=domain.domid)
        isolation.write_protect_frame(self.machine, pfn)

    def _on_iommu_table_alloc(self, pfn):
        if not self.installed:
            return
        self.pit.classify(pfn, Owner.XEN, PageUsage.IOMMU_PAGE)
        isolation.write_protect_frame(self.machine, pfn)

    def _on_guest_frame_alloc(self, domain, pfn):
        if not self.installed:
            return
        self.pit.classify(pfn, Owner.GUEST, PageUsage.GUEST_RAM,
                          tag=domain.domid)
        if domain in self.protected_domains:
            isolation.unmap_frame(self.machine, pfn)

    def _on_guest_frame_release(self, domain, pfn):
        """A guest returns a frame to the host pool (ballooning or
        teardown): scrub it before the allocator can recycle it — the
        page-revocation duty of Section 4.3.8 — and map it back into
        the hypervisor's space as ordinary free memory."""
        if not self.installed:
            return
        if domain in self.protected_domains \
                or domain.domid in self._dying_protected:
            # fidelint: ignore[FID001] -- Fidelius-context scrub: a
            # protected guest's frame must be zeroed before reuse (§4.2.1).
            self.machine.memory.zero_frame(pfn)
        self._release_host_frame(pfn)
        self.audit_event("frame-released", domid=domain.domid, pfn=pfn)

    def _on_table_frame_release(self, domain, pfn):
        """An NPT table page or grant table returns to the pool: drop
        its PIT classification and make it plain writable memory again."""
        if not self.installed:
            return
        # fidelint: ignore[FID001] -- Fidelius-context scrub of a
        # write-protected table page returning to the free pool.
        self.machine.memory.zero_frame(pfn)
        self._release_host_frame(pfn)

    def _release_host_frame(self, pfn):
        from repro.common.constants import PTE_NX, PTE_PRESENT, PTE_WRITABLE
        from repro.hw.pagetable import make_entry
        self.pit.invalidate(pfn)
        self.machine.walker.write_entry(
            self.machine.host_root, pfn << 12,
            make_entry(pfn, PTE_PRESENT | PTE_WRITABLE | PTE_NX))
        self.machine.tlb.flush_page(self.machine.host_root, pfn)

    def _on_grant_table_created(self, domain, pfn):
        if not self.installed:
            return
        self.pit.classify(pfn, Owner.XEN, PageUsage.GRANT_TABLE,
                          tag=domain.domid)
        isolation.write_protect_frame(self.machine, pfn)

    def _on_domain_destroyed(self, domain):
        if not self.installed:
            return
        self.git.remove_for_domain(domain.domid)
        if domain not in self.protected_domains:
            return
        self._dying_protected.add(domain.domid)
        self.shutdown_guest(domain)

    def shutdown_guest(self, domain):
        """VM shutdown (Section 4.3.8): DEACTIVATE + DECOMMISSION, scrub
        the guest's *own* pages (never grant-mapped foreign ones), fix
        the PIT and GIT, delete the SEV metadata.  The frames themselves
        are handed back through the hypervisor's release hooks."""
        if domain.sev_handle is not None:
            try:
                self.firmware_call("deactivate", domain.sev_handle)
                self.firmware_call("decommission", domain.sev_handle)
            except SevError:
                pass
            domain.sev_handle = None
        for helper_key in ("s_dom", "r_dom"):
            handle = self.sev_meta.get(domain.domid, {}).get(helper_key)
            if handle is not None and handle in self.firmware.handles():
                self.firmware_call("decommission", handle)
        for pfn in domain.owned_hpfns:
            # fidelint: ignore[FID001] -- teardown scrub of protected
            # guest RAM, in Fidelius's own context (§4.2.1).
            self.machine.memory.zero_frame(pfn)
        for vcpu in domain.vcpus:
            self.shadow.drop(vcpu)
        self.git.remove_for_domain(domain.domid)
        self.sev_meta.pop(domain.domid, None)
        self._sync_sev_metadata()
        self.protected_domains.discard(domain)
        self.audit_event("domain-shutdown", domid=domain.domid)

    # ------------------------------------------------------------------ hypercalls

    def _hc_pre_sharing(self, vcpu, target_domid, first_gfn, nframes,
                        readonly, *_):
        """``pre_sharing_op`` (Section 4.3.7): the initiator guest
        declares its sharing context before creating grants."""
        domain = vcpu.domain
        if nframes <= 0 or first_gfn + nframes > domain.guest_frames:
            return hc.E_INVAL
        if target_domid not in self.hypervisor.domains:
            return hc.E_INVAL
        self.git.record(GitEntry(
            initiator_domid=domain.domid,
            target_domid=target_domid,
            first_gfn=first_gfn,
            nframes=nframes,
            readonly=bool(readonly),
        ))
        self.audit_event("pre-sharing", domid=domain.domid,
                         target=target_domid, gfn=first_gfn, n=nframes)
        return hc.E_OK

    def _hc_encrypt_free_pages(self, vcpu, first_gfn, nframes, *_):
        """The SME-simulation hypercall of Section 7.1: set the C-bit in
        the guest's NPT entries so subsequently used pages are encrypted
        by the host engine."""
        from repro.common.constants import PTE_C_BIT
        domain = vcpu.domain
        if nframes <= 0 or first_gfn + nframes > domain.guest_frames:
            return hc.E_INVAL
        for gfn in range(first_gfn, first_gfn + nframes):
            self.hypervisor.set_npt_flags(domain, gfn, set_mask=PTE_C_BIT)
        self.audit_event("enc-free-pages", domid=domain.domid,
                         gfn=first_gfn, n=nframes)
        return hc.E_OK
