"""The paper's Section 8 hardware suggestions, implemented as proposed.

Fidelius's experience exposes two gaps the authors suggest fixing in
hardware:

1. **Hardware-based integrity checking** — SEV has no integrity, so a
   physical attacker (Rowhammer, malicious DMA) can corrupt encrypted
   memory undetected (the guest just reads garbage).  The suggested fix
   is a Bonsai Merkle Tree in the secure processor;
   :class:`BonsaiMerkleTree` implements it over guest frames.

2. **Customized keys** — the SEND/RECEIVE reuse is awkward: encrypted
   kernel images are sealed to one pre-identified machine, and the
   SEV-API I/O path needs the s-dom/r-dom state dance.  The suggested
   ``SETENC_GEK`` / ``ENC`` / ``DEC`` instructions let software mint a
   customized guest encryption key and run bulk memory encryption with
   it directly; :class:`CustomKeyEngine` implements them.
"""

import hashlib
from dataclasses import dataclass

from repro.common import crypto
from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError, SevError


class CustomKeyEngine:
    """The SETENC_GEK / ENC / DEC instruction family (Section 8)."""

    def __init__(self, firmware):
        self._firmware = firmware
        self._machine = firmware._machine
        self._geks = {}
        self._next_id = 1

    def setenc_gek(self):
        """SETENC_GEK: generate a customized guest encryption key; the
        key stays in the secure processor, software gets an id."""
        gek_id = self._next_id
        self._next_id += 1
        self._geks[gek_id] = crypto.random_key(self._machine.rng)
        return gek_id

    def _key(self, gek_id):
        key = self._geks.get(gek_id)
        if key is None:
            raise SevError("INVALID_GEK", "no customized key %r" % (gek_id,))
        return key

    def enc(self, gek_id, pa, length, tweak):
        """ENC: encrypt [pa, pa+length) under the GEK into a buffer.

        Unlike SEND_UPDATE, no guest-state requirements and no helper
        domains: any memory range, any time.
        """
        key = self._key(gek_id)
        raw = self._machine.memctrl.dma_read(pa, length)
        from repro.hw.memctrl import decrypt_region
        return crypto.xex_encrypt(key, b"gek|" + tweak, raw)

    def dec(self, gek_id, data, tweak, pa):
        """DEC: decrypt a GEK-encrypted buffer into memory at ``pa``."""
        key = self._key(gek_id)
        plaintext = crypto.xex_decrypt(key, b"gek|" + tweak, data)
        # DEC is the proposed hardware instruction: the decrypt happens
        # inside the memory controller, below the encryption boundary,
        # and lands in C-bit-protected guest frames — the bus write here
        # stands in for that internal datapath, not a host-visible leak.
        # fidelint: ignore[FID010]
        self._machine.memctrl.dma_write(pa, plaintext)
        return len(plaintext)

    def enc_guest_region(self, gek_id, guest_key, pa, length, tweak):
        """ENC over *guest-encrypted* memory: decrypt with the guest key
        first (inside the secure processor), then wrap under the GEK —
        the one-instruction replacement for the whole s-dom dance."""
        key = self._key(gek_id)
        raw = self._machine.memctrl.dma_read(pa, length)
        from repro.hw.memctrl import decrypt_region
        plaintext = decrypt_region(guest_key, pa, raw)
        return crypto.xex_encrypt(key, b"gek|" + tweak, plaintext)

    def export_wrapped(self, gek_id, kek):
        """Wrap a GEK for an external party — this is what frees the
        encrypted-image workflow from pre-identifying one target
        machine: the owner can wrap the same GEK for many platforms."""
        return crypto.wrap_key(kek, self._key(gek_id))

    def import_wrapped(self, wrapped, kek):
        gek_id = self._next_id
        self._next_id += 1
        self._geks[gek_id] = crypto.unwrap_key(kek, wrapped)
        return gek_id


@dataclass(frozen=True)
class PortableGuestImage:
    """An encrypted kernel image sealed to a *key*, not a machine.

    Section 8's complaint about the SEND/RECEIVE boot flow is that "the
    encrypted kernel image can only be loaded into one pre-defined
    machine".  With customized keys the owner encrypts the image once
    under a GEK and wraps that GEK separately for each platform — the
    image itself never has to be regenerated.
    """

    records: tuple       # ((page_index, gek_ciphertext), ...)
    measurement: bytes
    pages: int
    policy: int = 0


def prepare_portable_image(owner, payload):
    """Owner side: build the kernel and encrypt it under a fresh GEK.

    Returns ``(image, gek_bytes)``; the owner keeps the GEK and wraps it
    per target with :func:`wrap_gek_for_platform`.
    """
    from repro.common.constants import PAGE_SIZE
    kernel = owner.build_kernel(payload)
    pages = len(kernel) // PAGE_SIZE
    gek = crypto.random_key(owner.rng)
    records = []
    digest = hashlib.sha256()
    for index in range(pages):
        page = kernel[index * PAGE_SIZE:(index + 1) * PAGE_SIZE]
        digest.update(page)
        tweak = b"page|" + index.to_bytes(8, "little")
        records.append((index, crypto.xex_encrypt(gek, b"gek|" + tweak,
                                                  page)))
    image = PortableGuestImage(records=tuple(records),
                               measurement=digest.digest(), pages=pages,
                               policy=owner.policy)
    return image, gek


def wrap_gek_for_platform(owner, gek, platform_public):
    """Wrap the GEK for one target platform (repeatable per machine —
    the step that was impossible with SEND-sealed images)."""
    master = owner.dh.shared_secret(platform_public, owner.nonce)
    kek = crypto.derive_key(master, "gek-kek")
    return crypto.wrap_key(kek, gek)


def boot_portable_guest(fidelius, name, image, wrapped_gek, owner_public,
                        owner_nonce, guest_frames):
    """Target side: unwrap the GEK inside the secure processor, DEC the
    image straight into guest memory under K_vek, verify, run.

    The SETENC_GEK/DEC flow replaces the whole RECEIVE dance — no
    transport state machine, and the same image boots on any machine
    whose platform key the owner wrapped for.
    """
    from repro.common.constants import PAGE_SIZE
    from repro.common.errors import ReproError
    if guest_frames < image.pages:
        raise ReproError("guest smaller than its kernel image")
    hypervisor = fidelius.hypervisor
    firmware = fidelius.firmware
    domain = hypervisor.create_domain(name, guest_frames, sev=True)

    engine = CustomKeyEngine(firmware)
    master = firmware._dh.shared_secret(owner_public, owner_nonce)
    kek = crypto.derive_key(master, "gek-kek")
    with fidelius.gates.firmware_gate():
        gek_id = engine.import_wrapped(wrapped_gek, kek)
        handle = firmware.launch_start(policy=image.policy)
        digest = hashlib.sha256()
        for index, ciphertext in image.records:
            tweak = b"page|" + index.to_bytes(8, "little")
            plaintext = crypto.xex_decrypt(engine._geks[gek_id],
                                           b"gek|" + tweak, ciphertext)
            digest.update(plaintext)
            pa = hypervisor.guest_frame_hpfn(domain, index) * PAGE_SIZE
            firmware.launch_update_data(handle, pa, plaintext)
        if digest.digest() != image.measurement:
            firmware.decommission(handle)
            hypervisor.destroy_domain(domain)
            raise ReproError("portable image failed its measurement")
        firmware.launch_finish(handle)
        firmware.activate(handle, domain.asid)
    domain.sev_handle = handle
    domain.encrypted_gfns.update(range(image.pages))
    fidelius.record_sev_metadata(domain, handle=handle, asid=domain.asid)
    fidelius.protect_domain(domain)
    fidelius.audit_event("portable-guest-booted", domid=domain.domid)
    return domain, domain.context()


class BonsaiMerkleTree:
    """Page-granular Merkle tree over a set of frames (Section 8.1).

    ``build`` hashes every covered frame and folds the digests into a
    binary tree whose root models the on-chip register.  ``verify``
    recomputes and reports every corrupted frame — catching Rowhammer
    flips and raw DMA tampering that plain SEV silently turns into
    garbage plaintext.
    """

    def __init__(self, machine, pfns):
        self._machine = machine
        self.pfns = sorted(set(pfns))
        if not self.pfns:
            raise ReproError("integrity tree over an empty set of frames")
        self._leaf_digests = {}
        self.root = None
        self.build()

    def _hash_frame(self, pfn):
        # fidelint: ignore[FID001] -- the integrity tree must measure
        # the raw DRAM bytes, exactly like the binary scanner.
        return hashlib.sha256(self._machine.memory.read_frame(pfn)).digest()

    def build(self):
        self._leaf_digests = {pfn: self._hash_frame(pfn) for pfn in self.pfns}
        self.root = self._fold([self._leaf_digests[p] for p in self.pfns])

    @staticmethod
    def _fold(level):
        while len(level) > 1:
            paired = []
            for i in range(0, len(level), 2):
                block = level[i] + (level[i + 1] if i + 1 < len(level) else b"")
                paired.append(hashlib.sha256(block).digest())
            level = paired
        return level[0]

    def update(self, pfn):
        """Legitimate write path: refresh one leaf and the root."""
        if pfn not in self._leaf_digests:
            raise ReproError("frame %#x not covered by the tree" % pfn)
        self._leaf_digests[pfn] = self._hash_frame(pfn)
        self.root = self._fold([self._leaf_digests[p] for p in self.pfns])

    def verify(self):
        """Recompute everything; returns the list of corrupted frames."""
        corrupted = [pfn for pfn in self.pfns
                     if self._hash_frame(pfn) != self._leaf_digests[pfn]]
        return corrupted

    def intact(self):
        return not self.verify()
