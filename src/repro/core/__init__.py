"""Fidelius — the paper's primary contribution.

``Fidelius`` retrofits a booted Xen host with sibling-based protection:
non-bypassable memory isolation behind three gate types, VMCB/register
shadowing with exit-reason policies, PIT/GIT-checked updates of every
memory-mapping structure, a sealed SEV firmware interface, and the full
VM life cycle (encrypted-image boot, protected disk I/O, migration,
memory sharing, shutdown).
"""

from repro.core.fidelius import Fidelius
from repro.core.gates import GateKeeper
from repro.core.git import GitEntry, GrantInfoTable
from repro.core.hwext import BonsaiMerkleTree, CustomKeyEngine
from repro.core.io_protect import (
    AesNiIoEncoder,
    SevApiIoEncoder,
    SoftwareIoEncoder,
)
from repro.core.lifecycle import (
    EncryptedGuestImage,
    GuestOwner,
    boot_protected_guest,
    read_embedded_kblk,
)
from repro.core.migration import MigrationPackage, migrate_guest
from repro.core.pit import PageInfoTable, PitEntry
from repro.core.policies import EXIT_POLICIES, ExitPolicy, WritePolicyEngine
from repro.core.shadow import ShadowKeeper

__all__ = [
    "Fidelius",
    "GateKeeper",
    "GitEntry",
    "GrantInfoTable",
    "BonsaiMerkleTree",
    "CustomKeyEngine",
    "AesNiIoEncoder",
    "SevApiIoEncoder",
    "SoftwareIoEncoder",
    "EncryptedGuestImage",
    "GuestOwner",
    "boot_protected_guest",
    "read_embedded_kblk",
    "MigrationPackage",
    "migrate_guest",
    "PageInfoTable",
    "PitEntry",
    "EXIT_POLICIES",
    "ExitPolicy",
    "WritePolicyEngine",
    "ShadowKeeper",
]
