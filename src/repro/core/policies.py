"""Policy definitions and the gated-write policy engine (paper Section 5).

Three policy families:

* **Exit-reason policies** (Section 5.1) drive the VMCB/register
  shadowing: per exit reason, which registers the hypervisor may see,
  which it may legitimately update, and which VMCB fields it may write.
* **PIT-based policies** (Section 5.2) validate every hypervisor update
  of memory-mapping structures — its own page tables and guest NPTs.
* **GIT-based policies** (Sections 4.3.7, 5.2) validate grant-table
  updates against the initiating guest's declared sharing context.

Plus the write-once / execute-once / write-forbidding policies of
Section 5.3.
"""

from repro.common.constants import (
    PTE_PRESENT,
    PTE_WRITABLE,
)
from repro.common.errors import PolicyViolation
from repro.common.types import Owner, PageUsage, pfn_of
from repro.hw.pagetable import entry_pfn
from repro.xen.grant_table import ENTRY_SIZE as GRANT_ENTRY_SIZE, GrantEntry

# ---------------------------------------------------------------------------
# Exit-reason policies (Section 5.1)
# ---------------------------------------------------------------------------

# The exposure table itself lives in the SEV layer (it is the GHCB
# hardware contract, shared with repro.sev.es); re-exported here because
# Fidelius's shadow keeper and policy engine consume it.
from repro.sev.exit_policy import (  # noqa: F401
    ALWAYS_VISIBLE_VMCB,
    ALWAYS_WRITABLE_VMCB,
    EXIT_POLICIES,
    ExitPolicy,
    exit_policy,
)


# ---------------------------------------------------------------------------
# PIT / GIT based write policies (Section 5.2)
# ---------------------------------------------------------------------------

#: Frame usages that must never become writable (or mapped at all) in
#: the hypervisor through a page-table update it performs itself.
PROTECTED_USAGES = frozenset({
    PageUsage.PAGE_TABLE_L4, PageUsage.PAGE_TABLE_L3,
    PageUsage.PAGE_TABLE_L2, PageUsage.PAGE_TABLE_L1,
    PageUsage.NPT_PAGE, PageUsage.GRANT_TABLE,
    PageUsage.PIT_PAGE, PageUsage.GIT_PAGE, PageUsage.CODE,
    PageUsage.SHADOW_AREA, PageUsage.SEV_METADATA,
    PageUsage.IOMMU_PAGE,
})


class WritePolicyEngine:
    """Validates writes arriving through the type 1 gate.

    One instance per Fidelius; consults the PIT, the GIT, the set of
    protected domains and the hypervisor's domain table.
    """

    def __init__(self, fidelius):
        self._fid = fidelius

    # -- entry point -------------------------------------------------------------

    def check(self, va, data):
        """Raise :class:`PolicyViolation` if the gated write is illegal."""
        pit = self._fid.pit
        info = pit.lookup(pfn_of(va))
        usage = info.usage
        if usage.is_page_table:
            self._check_host_pte(info, va, data)
        elif usage is PageUsage.NPT_PAGE:
            self._check_npt(info, va, data)
        elif usage is PageUsage.IOMMU_PAGE:
            self._check_iommu(info, va, data)
        elif usage is PageUsage.GRANT_TABLE:
            self._check_grant(info, va, data)
        elif usage in (PageUsage.PIT_PAGE, PageUsage.GIT_PAGE,
                       PageUsage.SHADOW_AREA, PageUsage.SEV_METADATA):
            raise PolicyViolation("pit", "hypervisor write to Fidelius "
                                  "structure (%s)" % usage.name)
        elif usage is PageUsage.CODE:
            # Write-forbidding policy for code pages (Section 5.3).
            raise PolicyViolation("write-forbidding",
                                  "attempt to modify code page at %#x" % va)
        elif usage in (PageUsage.START_INFO, PageUsage.SHARED_INFO):
            self._fid.check_write_once(va, len(data))
        # Anything else is ordinary data the hypervisor owns.

    # -- host page tables ----------------------------------------------------------

    @staticmethod
    def _as_entry(data):
        if len(data) != 8:
            raise PolicyViolation("pit", "page-table writes must be one PTE")
        return int.from_bytes(data, "little")

    def _check_host_pte(self, info, va, data):
        if info.owner is not Owner.XEN:
            raise PolicyViolation("pit", "page-table-page not owned by Xen")
        value = self._as_entry(data)
        if not value & PTE_PRESENT:
            return  # unmapping is availability, not confidentiality
        target = self._fid.pit.lookup(entry_pfn(value))
        if target.owner is Owner.FIDELIUS:
            raise PolicyViolation(
                "pit", "mapping a Fidelius frame (%s) into the hypervisor"
                % target.usage.name)
        if target.owner is Owner.GUEST and \
                target.tag in self._fid.protected_domids():
            raise PolicyViolation(
                "pit", "mapping protected guest memory (dom %d) into the "
                "hypervisor" % target.tag)
        if value & PTE_WRITABLE and target.usage in PROTECTED_USAGES:
            raise PolicyViolation(
                "pit", "making a protected %s frame writable"
                % target.usage.name)

    # -- nested page tables -----------------------------------------------------------

    def _check_npt(self, info, va, data):
        value = self._as_entry(data)
        if not value & PTE_PRESENT:
            return
        domid = info.tag
        target = self._fid.pit.lookup(entry_pfn(value))
        if target.owner is Owner.FIDELIUS:
            raise PolicyViolation("pit", "NPT maps a Fidelius frame")
        if target.owner is Owner.XEN:
            if target.usage is PageUsage.NPT_PAGE and target.tag == domid:
                return  # interior entry pointing at this guest's own table
            raise PolicyViolation(
                "pit", "NPT of dom %d maps hypervisor frame (%s)"
                % (domid, target.usage.name))
        if target.owner is Owner.GUEST:
            if target.tag == domid:
                self._check_npt_replay(info, va, value, domid)
                return
            self._check_cross_domain(domid, value, target)
            return
        if target.owner is Owner.FREE:
            raise PolicyViolation(
                "pit", "NPT maps an unclassified free frame %#x"
                % entry_pfn(value))
        raise PolicyViolation("pit", "NPT maps %s-owned frame"
                              % target.owner.name)

    def _check_npt_replay(self, info, va, value, domid):
        """Replay defence: a present leaf of a *protected* guest may not
        be silently redirected to a different frame, and a frame may not
        be double-mapped at two guest-physical addresses (Section 4.2.2,
        defeating the attacks of [Hetzelt & Buhren 2017])."""
        if domid not in self._fid.protected_domids():
            return
        memory = self._fid.machine.memory
        old = memory.read_u64(va)
        new_pfn = entry_pfn(value)
        if old & PTE_PRESENT:
            if entry_pfn(old) != new_pfn:
                raise PolicyViolation(
                    "pit", "redirecting a present NPT leaf of protected "
                    "dom %d (replay attack)" % domid)
            return
        domain = self._fid.hypervisor.domains.get(domid)
        if domain is not None:
            for _, leaf in domain.npt.leaf_mappings():
                if leaf & PTE_PRESENT and entry_pfn(leaf) == new_pfn:
                    raise PolicyViolation(
                        "pit", "double-mapping frame %#x in protected "
                        "dom %d (replay attack)" % (new_pfn, domid))

    def _check_cross_domain(self, mapper_domid, value, target):
        """Cross-domain NPT mapping needs a GIT-declared grant when the
        granter is protected (the inter-VM remapping defence)."""
        granter_domid = target.tag
        if granter_domid not in self._fid.protected_domids():
            return  # unprotected granter: baseline Xen semantics
        granter = self._fid.hypervisor.domains.get(granter_domid)
        gfn = None
        if granter is not None:
            wanted = entry_pfn(value)
            for g_va, leaf in granter.npt.leaf_mappings():
                if leaf & PTE_PRESENT and entry_pfn(leaf) == wanted:
                    gfn = pfn_of(g_va)
                    break
        declaration = None
        if gfn is not None:
            declaration = self._fid.git.find_match(
                granter_domid, mapper_domid, gfn)
        if declaration is None:
            raise PolicyViolation(
                "git", "mapping protected dom %d memory into dom %d "
                "without a declared sharing context"
                % (granter_domid, mapper_domid))
        if declaration.readonly and value & PTE_WRITABLE:
            raise PolicyViolation(
                "git", "mapping a read-only share writable")

    # -- IOMMU device tables (extension) ---------------------------------------------

    def _check_iommu(self, info, va, data):
        """Devices act for the driver domain: an IOMMU mapping of a
        protected guest's frame is only legal when the guest declared a
        sharing context with dom0 covering that frame (its I/O buffers)
        — which is what closes the DMA replay/snoop window."""
        value = self._as_entry(data)
        if not value & PTE_PRESENT:
            return
        target = self._fid.pit.lookup(entry_pfn(value))
        if target.owner is Owner.FIDELIUS:
            raise PolicyViolation("pit", "IOMMU maps a Fidelius frame")
        if target.owner is Owner.XEN:
            if target.usage is PageUsage.IOMMU_PAGE:
                return  # interior entry
            if target.usage in PROTECTED_USAGES:
                raise PolicyViolation(
                    "pit", "IOMMU maps a protected %s frame"
                    % target.usage.name)
            return
        if target.owner is Owner.GUEST and \
                target.tag in self._fid.protected_domids():
            dom0_id = self._fid.hypervisor.dom0.domid
            self._check_cross_domain(dom0_id, value, target)

    # -- grant tables -------------------------------------------------------------------

    def _check_grant(self, info, va, data):
        if len(data) != GRANT_ENTRY_SIZE:
            raise PolicyViolation("git", "grant writes must be one entry")
        granter_domid = info.tag
        entry = GrantEntry.unpack(data)
        if not entry.permit:
            return  # revocation narrows access; always fine
        if granter_domid not in self._fid.protected_domids():
            return
        declaration = self._fid.git.find_match(
            granter_domid, entry.target_domid, entry.gfn)
        if declaration is None:
            raise PolicyViolation(
                "git", "grant by protected dom %d to dom %d for gfn %d "
                "has no declared sharing context"
                % (granter_domid, entry.target_domid, entry.gfn))
        if declaration.readonly and not entry.readonly:
            raise PolicyViolation(
                "git", "grant widens a declared read-only share to "
                "writable")
