"""Non-bypassable memory isolation: the install-time mechanics
(paper Section 4.1).

These functions run in Fidelius's trusted context during late launch:
they classify every physical frame into the PIT, write-protect the
memory-mapping structures and grant tables in the hypervisor's address
space, unmap the private Fidelius resources, and rewrite the
hypervisor's binary so each restricted privileged instruction exists
exactly once — in Fidelius's text.
"""

from repro.common.constants import PTE_NX, PTE_WRITABLE
from repro.common.errors import PolicyViolation
from repro.common.types import Owner, PageUsage, PrivOp, page_table_usage_for_level
from repro.core.binscan import verify_monopoly
from repro.hw.pagetable import entry_pfn


def classify_world(fidelius):
    """Populate the PIT with the ownership of every frame in use.

    'It also updates the PIT to track the used physical pages, e.g.,
    whether they are used as page-table-pages, Xen pages, or Fidelius
    pages.' (Section 4.3.1)
    """
    machine = fidelius.machine
    hypervisor = fidelius.hypervisor
    pit = fidelius.pit

    for level, pfn in machine.host_table_pages():
        pit.classify(pfn, Owner.XEN, page_table_usage_for_level(level))
    for va in hypervisor.text.page_vas():
        pit.classify(va >> 12, Owner.XEN, PageUsage.CODE)
    for pfn in fidelius.text_pfns:
        pit.classify(pfn, Owner.FIDELIUS, PageUsage.CODE)
    pit.classify_many(fidelius.shadow_area_pfns, Owner.FIDELIUS,
                      PageUsage.SHADOW_AREA)
    pit.classify_many(fidelius.sev_metadata_pfns, Owner.FIDELIUS,
                      PageUsage.SEV_METADATA)
    pit.classify_many(fidelius.git.table_pfns, Owner.FIDELIUS,
                      PageUsage.GIT_PAGE)

    for domain in hypervisor.domains.values():
        classify_domain(fidelius, domain)

    if hypervisor.iommu is not None:
        pit.classify_many(hypervisor.iommu.table.all_table_pfns(),
                          Owner.XEN, PageUsage.IOMMU_PAGE)

    # Everything else that is allocated belongs to plain Xen data.
    for pfn in range(machine.frames):
        if not pit.lookup(pfn).valid and (
                machine.allocator.is_allocated(pfn)
                or pfn < machine.allocator.reserved):
            pit.classify(pfn, Owner.XEN, PageUsage.DATA)

    # The PIT grows lazily while classifying; fold its own pages in last
    # (repeat once: classifying a PIT page may allocate another leaf).
    for _ in range(3):
        unclassified = [pfn for pfn in pit.table_pfns
                        if pit.lookup(pfn).usage is not PageUsage.PIT_PAGE]
        if not unclassified:
            break
        pit.classify_many(unclassified, Owner.FIDELIUS, PageUsage.PIT_PAGE)


def classify_domain(fidelius, domain):
    """PIT entries for one domain's NPT pages, grant table and RAM."""
    pit = fidelius.pit
    for pfn in domain.npt.all_table_pfns():
        pit.classify(pfn, Owner.XEN, PageUsage.NPT_PAGE, tag=domain.domid)
    pit.classify(domain.grant_table.frame_pfn, Owner.XEN,
                 PageUsage.GRANT_TABLE, tag=domain.domid)
    for _, entry in domain.npt.leaf_mappings():
        pit.classify(entry_pfn(entry), Owner.GUEST, PageUsage.GUEST_RAM,
                     tag=domain.domid)


def write_protect_world(fidelius):
    """Remap the critical structures read-only in the hypervisor
    (Table 1): its page-table-pages, every NPT page, every grant table,
    and the PIT/GIT pages."""
    machine = fidelius.machine
    hypervisor = fidelius.hypervisor
    targets = set()
    targets.update(pfn for _, pfn in machine.host_table_pages())
    for domain in hypervisor.domains.values():
        targets.update(domain.npt.all_table_pfns())
        targets.add(domain.grant_table.frame_pfn)
    targets.update(fidelius.pit.table_pfns)
    targets.update(fidelius.git.table_pfns)
    if hypervisor.iommu is not None:
        targets.update(hypervisor.iommu.table.all_table_pfns())
    for pfn in sorted(targets):
        write_protect_frame(machine, pfn)
    machine.tlb.flush_all("fidelius-install")


def write_protect_frame(machine, pfn):
    """Clear the WRITABLE bit on the identity mapping of ``pfn``."""
    machine.walker.set_flags(machine.host_root, pfn << 12,
                             clear_mask=PTE_WRITABLE)
    machine.tlb.flush_page(machine.host_root, pfn)


def unmap_frame(machine, pfn):
    """Remove ``pfn`` from the hypervisor's address space entirely."""
    machine.walker.write_entry(machine.host_root, pfn << 12, 0)
    machine.tlb.flush_page(machine.host_root, pfn)


def rewrite_hypervisor_binary(fidelius):
    """Erase every restricted-instruction encoding from Xen's text and
    verify the monopoly rule with the binary scanner (Section 4.1.2)."""
    machine = fidelius.machine
    xen_image = fidelius.hypervisor.text
    for op in list(PrivOp):
        if xen_image.has(op):
            xen_image.erase(op)
    machine.memory.write(xen_image.base_va, xen_image.to_bytes())

    allowed = {op: fidelius.text_image.va_of(op) for op in PrivOp}
    violations = verify_monopoly(machine, machine.host_root, allowed)
    if violations:
        raise PolicyViolation(
            "monopoly", "stray privileged encodings remain: %s"
            % [(hit.op.value, hex(hit.va)) for hit in violations])
    return allowed


def map_fidelius_text(fidelius):
    """Map Fidelius text page 0 executable/read-only in the shared
    space; leave page 1 (VMRUN / mov CR3) unmapped — type 3 gates remap
    it transiently."""
    machine = fidelius.machine
    image = fidelius.text_image
    page0_va = image.page_vas()[0]
    machine.walker.set_flags(machine.host_root, page0_va,
                             clear_mask=PTE_NX | PTE_WRITABLE)
    for va in image.page_vas()[1:]:
        unmap_frame(machine, va >> 12)
    machine.tlb.flush_all("fidelius-text")
