"""Whole-system invariant checking.

``check_invariants(system)`` audits a running Fidelius host against the
security invariants the design promises, returning a list of violation
strings (empty = healthy).  The integration tests call it after every
phase of complex scenarios; it is also a useful debugging tool when
extending the system:

I1. every allocated physical frame is classified in the PIT;
I2. every page-table-page, NPT page, grant table and PIT/GIT page is
    read-only (or unmapped) in the hypervisor's address space;
I3. no protected guest's RAM is mapped in the hypervisor's space;
I4. the privileged-instruction monopoly holds over all executable pages;
I5. every GIT entry references live domains;
I6. Fidelius private pages (shadow area, SEV metadata) are unmapped;
I7. every active SEV handle maps to exactly one domain and its ASID
    slot agrees with the firmware's bookkeeping.
"""

from repro.common.constants import PTE_PRESENT, PTE_WRITABLE
from repro.common.errors import PageFault
from repro.common.types import PrivOp
from repro.core.binscan import verify_monopoly


def _host_leaf(machine, pfn):
    """The host PTE mapping frame ``pfn`` (identity map), or None."""
    try:
        return machine.walker.read_entry(machine.host_root, pfn << 12)
    except PageFault:
        return None


def check_invariants(system):
    """Returns the list of invariant violations (empty = healthy)."""
    if system.fidelius is None:
        raise ValueError("invariant checking applies to Fidelius hosts")
    violations = []
    violations += _check_classification(system)
    violations += _check_write_protection(system)
    violations += _check_guest_unmapping(system)
    violations += _check_monopoly(system)
    violations += _check_git_liveness(system)
    violations += _check_private_pages(system)
    violations += _check_sev_bookkeeping(system)
    return violations


def _check_classification(system):
    machine = system.machine
    pit = system.fidelius.pit
    out = []
    for pfn in range(machine.frames):
        if machine.allocator.is_allocated(pfn) and not pit.lookup(pfn).valid:
            out.append("I1: allocated frame %#x unclassified in the PIT"
                       % pfn)
    return out


def _protected_frames(system):
    machine = system.machine
    fid = system.fidelius
    frames = set()
    frames.update(pfn for _, pfn in machine.host_table_pages())
    for domain in system.hypervisor.domains.values():
        frames.update(domain.npt.all_table_pfns())
        frames.add(domain.grant_table.frame_pfn)
    frames.update(fid.pit.table_pfns)
    frames.update(fid.git.table_pfns)
    return frames


def _check_write_protection(system):
    machine = system.machine
    out = []
    for pfn in sorted(_protected_frames(system)):
        entry = _host_leaf(machine, pfn)
        if entry is None or not entry & PTE_PRESENT:
            continue  # unmapped is stricter than read-only: fine
        if entry & PTE_WRITABLE:
            out.append("I2: protected frame %#x is writable in the "
                       "hypervisor" % pfn)
    return out


def _check_guest_unmapping(system):
    from repro.hw.pagetable import entry_pfn
    machine = system.machine
    out = []
    for domain in system.fidelius.protected_domains:
        for _, leaf in domain.npt.leaf_mappings():
            pfn = entry_pfn(leaf)
            entry = _host_leaf(machine, pfn)
            if entry is not None and entry & PTE_PRESENT:
                out.append("I3: protected dom %d frame %#x mapped in the "
                           "hypervisor" % (domain.domid, pfn))
    return out


def _check_monopoly(system):
    fid = system.fidelius
    allowed = {op: fid.text_image.va_of(op) for op in PrivOp}
    hits = verify_monopoly(system.machine, system.machine.host_root, allowed)
    return ["I4: stray %s encoding at %#x" % (hit.op.value, hit.va)
            for hit in hits]


def _check_git_liveness(system):
    fid = system.fidelius
    domains = system.hypervisor.domains
    out = []
    for index in range(fid.git.capacity):
        entry = fid.git.read(index)
        if entry is None:
            continue
        for domid in (entry.initiator_domid, entry.target_domid):
            if domid not in domains:
                out.append("I5: GIT entry %d references dead dom %d"
                           % (index, domid))
    return out


def _check_private_pages(system):
    machine = system.machine
    fid = system.fidelius
    out = []
    private = list(fid.shadow_area_pfns) + list(fid.sev_metadata_pfns)
    for pfn in private:
        entry = _host_leaf(machine, pfn)
        if entry is not None and entry & PTE_PRESENT:
            out.append("I6: Fidelius private frame %#x mapped in the "
                       "hypervisor" % pfn)
    return out


def _check_sev_bookkeeping(system):
    firmware = system.firmware
    out = []
    by_handle = {}
    helper_handles = set()
    for meta in system.fidelius.sev_meta.values():
        helper_handles.update(
            meta[k] for k in ("s_dom", "r_dom") if k in meta)
    for domain in system.hypervisor.domains.values():
        if domain.sev_handle is None:
            continue
        if domain.sev_handle in by_handle:
            out.append("I7: handle %r owned by two domains"
                       % domain.sev_handle)
        by_handle[domain.sev_handle] = domain
        if domain.sev_handle not in firmware.handles():
            out.append("I7: dom %d references decommissioned handle %r"
                       % (domain.domid, domain.sev_handle))
        elif firmware.guest_asid(domain.sev_handle) != domain.asid:
            out.append("I7: dom %d ASID disagrees with the firmware"
                       % domain.domid)
    for handle in firmware.handles():
        if handle not in by_handle and handle not in helper_handles:
            out.append("I7: orphan firmware handle %r" % handle)
    return out
