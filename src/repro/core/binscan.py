"""The binary scanner (paper Section 4.1.2).

Fidelius's monopoly rule says each restricted privileged instruction may
exist exactly once, in Fidelius's own text.  A byte-pattern scan over
every executable page enforces it — crucially at *any* byte offset, not
just instruction boundaries, because x86 can jump into the middle of an
innocent instruction whose tail bytes happen to encode ``mov cr0``.
"""

import hashlib
from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE, PTE_NX
from repro.common.types import PRIV_OPCODES
from repro.hw.pagetable import entry_pfn


@dataclass(frozen=True)
class ScanHit:
    op: object          # PrivOp
    va: int


def scan_bytes(blob, base_va, ops=None):
    """All occurrences of restricted encodings in ``blob`` (any offset).

    Overlapping occurrences are all reported (the scan advances one byte
    past each hit, not past the whole encoding), and hits come back
    sorted by VA so downstream reports are deterministic regardless of
    the iteration order over ``PRIV_OPCODES``.
    """
    targets = ops or list(PRIV_OPCODES)
    hits = []
    for op in targets:
        encoding = PRIV_OPCODES[op]
        start = 0
        while True:
            index = blob.find(encoding, start)
            if index < 0:
                break
            hits.append(ScanHit(op, base_va + index))
            start = index + 1
    hits.sort(key=lambda hit: (hit.va, hit.op.value))
    return hits


def scan_executable_pages(machine, root_pfn):
    """Scan every executable page of an address space.

    Pages are read *raw* from physical memory — the scanner runs in
    Fidelius's context before protection is sealed, on the very bytes
    the CPU would fetch.

    Known limitation: the scan is page-granular.  Each executable page
    is matched independently, so an encoding whose bytes straddle a page
    boundary (tail of one page + head of the next) is not detected even
    when the two pages are virtually contiguous.  Real x86 can fetch
    across the boundary; closing this requires stitching adjacent
    executable pages before matching.  Tests document the gap
    (``test_binscan_adversarial.py``).
    """
    walker = machine.walker
    hits = []
    for va, entry in walker.leaf_mappings(root_pfn):
        if entry & PTE_NX:
            continue
        # fidelint: ignore[FID001] -- the scanner *is* the sanctioned raw
        # reader: it must see the exact bytes the CPU would fetch.
        blob = machine.memory.read_frame(entry_pfn(entry))
        hits.extend(scan_bytes(blob, va))
    return hits


def verify_monopoly(machine, root_pfn, allowed_vas):
    """Check the monopoly rule; returns the list of violating hits.

    ``allowed_vas`` maps each PrivOp to the VA of its single sanctioned
    instance (Fidelius's copy).  Any other occurrence — including an
    unaligned one hiding inside other bytes — is a violation.
    """
    violations = []
    for hit in scan_executable_pages(machine, root_pfn):
        if allowed_vas.get(hit.op) != hit.va:
            violations.append(hit)
    return violations


def measure_text(machine, image):
    """Integrity measurement of a text image as loaded in memory."""
    digest = hashlib.sha256()
    for va in image.page_vas():
        digest.update(machine.memory.read(va, PAGE_SIZE))
    return digest.digest()
