"""VM migration (paper Section 4.3.6).

Snapshot/restore/migration reuse the SEND and RECEIVE APIs: the source
firmware decrypts each guest page with K_vek and re-encrypts it with a
transport key; the target firmware reverses the process under its own
fresh K_vek, verifying the transport-integrity measurement.  The key to
unwrap TEK/TIK is agreed between the two *platforms* (their DH keys), so
neither hypervisor in the middle learns it.

Live migration is not supported: SEND_START moves the guest context out
of the RUNNING state, which stops execution — Fidelius's VMRUN gate
refuses to re-enter a guest that is not RUNNING.

Crash safety (fail closed): every operation here is transactional.
``send_guest`` cancels the SEND on any mid-stream failure, so the source
returns to RUNNING; ``receive_guest`` rolls the half-built target domain
back (decommission + destroy) on any failure and is idempotent under
replay (a package already imported returns the existing domain instead
of minting a duplicate); ``migrate_guest`` only tears the source down
*after* the target has verified the measurement and activated.  A failed
migration therefore always leaves the tenant exactly where it was,
re-enterable.

One modelling note: SEV transport only makes sense for the pages the
guest encrypts with K_vek.  Pages the guest deliberately keeps
*unencrypted* (the shared I/O buffers) carry no secrets by construction
and are copied verbatim by the hypervisor, exactly as on unprotected
hosts.
"""

import dataclasses
from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.core.lifecycle import page_tweak
from repro.xen.domain import GuestLedger


@dataclass(frozen=True)
class MigrationPackage:
    """What travels from the source host to the target host."""

    name: str
    guest_frames: int
    encrypted_records: tuple   # ((gfn, transport_bytes), ...)
    plain_records: tuple       # ((gfn, raw_bytes), ...)
    kwrap: object
    measurement: bytes
    origin_public: int
    nonce: bytes
    encrypted_gfns: frozenset
    policy: int = 0
    #: Exported :class:`~repro.xen.domain.GuestLedger` — the guest's
    #: lifetime accounting travels with its memory image.
    ledger: tuple = ()

    def import_key(self):
        """What makes a replayed package recognizable on the target."""
        return (self.name, self.nonce, self.measurement)


def send_guest(source_fidelius, domain, target_public):
    """Source half: stop the guest and produce a migration package.

    Transactional: if any step after SEND_START fails, the SEND is
    cancelled and the guest returns to RUNNING before the error
    propagates — the source is never stranded mid-SEND.
    """
    if domain.sev_handle is None:
        raise ReproError("domain has no SEV context to migrate")
    machine = source_fidelius.machine
    hypervisor = source_fidelius.hypervisor
    nonce = bytes(machine.rng.getrandbits(8) for _ in range(16))
    handle = domain.sev_handle

    kwrap = source_fidelius.firmware_call(
        "send_start", handle, target_public, nonce)
    try:
        encrypted_records = []
        plain_records = []
        for gfn in range(domain.guest_frames):
            pa = hypervisor.guest_frame_hpfn(domain, gfn) * PAGE_SIZE
            if gfn in domain.encrypted_gfns:
                transport = source_fidelius.firmware_call(
                    "send_update", handle, pa, PAGE_SIZE,
                    tweak=page_tweak(gfn))
                encrypted_records.append((gfn, transport))
            else:
                plain_records.append(
                    (gfn, machine.memctrl.dma_read(pa, PAGE_SIZE)))
        measurement = source_fidelius.firmware_call("send_finish", handle)
    except ReproError:
        source_fidelius.firmware_call("send_cancel", handle)
        source_fidelius.audit_event("migration-send-failed",
                                    domid=domain.domid)
        raise

    origin_public = source_fidelius.firmware.platform_public_key
    policy = source_fidelius.firmware.guest_policy(handle)
    package = MigrationPackage(
        name=domain.name,
        guest_frames=domain.guest_frames,
        encrypted_records=tuple(encrypted_records),
        plain_records=tuple(plain_records),
        kwrap=kwrap,
        measurement=measurement,
        origin_public=origin_public,
        nonce=nonce,
        encrypted_gfns=frozenset(domain.encrypted_gfns),
        policy=policy,
        ledger=domain.ledger.export(),
    )
    source_fidelius.audit_event("migration-sent", domid=domain.domid,
                                pages=domain.guest_frames)
    return package


def cancel_send(source_fidelius, domain):
    """Abort a completed-but-uncommitted SEND: the source guest goes back
    to RUNNING and its next VMRUN passes the gate again."""
    if domain.sev_handle is None:
        raise ReproError("domain has no SEV context")
    source_fidelius.firmware_call("send_cancel", domain.sev_handle)
    source_fidelius.audit_event("migration-cancelled", domid=domain.domid)
    return domain


def _find_existing_import(target_fidelius, package):
    """The live domain a replayed package already produced, if any."""
    domid = target_fidelius.received_imports.get(package.import_key())
    if domid is None:
        return None
    domain = target_fidelius.hypervisor.domains.get(domid)
    if domain is None or domain.name != package.name:
        # Stale registry entry: the earlier import has been destroyed,
        # so a fresh import is legitimate (e.g. restore after shutdown).
        del target_fidelius.received_imports[package.import_key()]
        return None
    return domain


def receive_guest(target_fidelius, package):
    """Target half: rebuild the guest from a migration package.

    Idempotent: replaying a package that already produced a live domain
    returns that domain instead of creating a duplicate.  Crash safe:
    any failure rolls the half-built domain back (context decommissioned,
    domain destroyed) before the error propagates.
    """
    existing = _find_existing_import(target_fidelius, package)
    if existing is not None:
        target_fidelius.audit_event("migration-replay-ignored",
                                    domid=existing.domid)
        return existing, existing.context()

    hypervisor = target_fidelius.hypervisor
    machine = target_fidelius.machine
    domain = hypervisor.create_domain(
        package.name, package.guest_frames, sev=True)

    try:
        handle = target_fidelius.firmware_call(
            "receive_start", package.kwrap, package.origin_public,
            package.nonce, policy=package.policy)
        domain.sev_handle = handle
        target_fidelius.record_sev_metadata(
            domain, handle=handle, asid=domain.asid)

        for gfn, transport in package.encrypted_records:
            pa = hypervisor.guest_frame_hpfn(domain, gfn) * PAGE_SIZE
            target_fidelius.firmware_call(
                "receive_update", handle, transport, page_tweak(gfn), pa)
        target_fidelius.firmware_call(
            "receive_finish", handle, package.measurement)
        for gfn, raw in package.plain_records:
            pa = hypervisor.guest_frame_hpfn(domain, gfn) * PAGE_SIZE
            machine.memctrl.dma_write(pa, raw)

        target_fidelius.firmware_call("activate", handle, domain.asid)
    except ReproError:
        target_fidelius.audit_event("migration-receive-failed",
                                    domid=domain.domid)
        if domain.sev_handle is not None \
                and domain.sev_handle in target_fidelius.firmware.handles():
            target_fidelius.firmware_call("decommission", domain.sev_handle)
        domain.sev_handle = None
        target_fidelius.drop_sev_metadata(domain.domid)
        hypervisor.destroy_domain(domain)
        raise

    domain.encrypted_gfns.update(package.encrypted_gfns)
    if package.ledger:
        domain.ledger = GuestLedger.from_export(package.ledger)
    # A migrated/restored guest starts on a cold TLB: new incarnation.
    # The ledger records it, and the hardware TLB retires anything a
    # previous incarnation on this host may have cached for the same
    # NPT root — an epoch bump, not a charged INVLPG walk, because the
    # entries (if any) belonged to the dead incarnation.
    domain.ledger.tlb_epoch += 1
    hypervisor.machine.tlb.new_incarnation(domain.npt.root_pfn)
    target_fidelius.protect_domain(domain)
    target_fidelius.received_imports[package.import_key()] = domain.domid
    target_fidelius.audit_event("migration-received", domid=domain.domid)
    return domain, domain.context()


def migrate_guest(source_fidelius, domain, target_fidelius):
    """Full migration, two-phase: the source is torn down only *after*
    the target has verified the measurement and activated the guest.

    Any target-side failure cancels the SEND, leaving the source domain
    intact, RUNNING, and re-enterable — the tenant is never lost.
    """
    package = send_guest(
        source_fidelius, domain,
        target_fidelius.firmware.platform_public_key)
    try:
        received = receive_guest(target_fidelius, package)
    except ReproError:
        cancel_send(source_fidelius, domain)
        raise
    source_fidelius.hypervisor.destroy_domain(domain)
    return received


def snapshot_guest(fidelius, domain):
    """VM snapshot (Section 4.3.6): the SEND flow targeted at the local
    platform itself.  Like migration, taking a snapshot stops the guest
    (SEND_START leaves the RUNNING state); the snapshot package can be
    restored later on this host with :func:`restore_guest`."""
    package = send_guest(fidelius, domain,
                         fidelius.firmware.platform_public_key)
    fidelius.audit_event("snapshot-taken", domid=domain.domid)
    return package


def restore_guest(fidelius, package, name=None):
    """VM restore: RECEIVE the snapshot back as a fresh domain (new
    handle, new ASID, fresh K_vek) on the same host."""
    if name is not None:
        package = dataclasses.replace(package, name=name)
    domain, ctx = receive_guest(fidelius, package)
    fidelius.audit_event("snapshot-restored", domid=domain.domid)
    return domain, ctx
