"""VM migration (paper Section 4.3.6).

Snapshot/restore/migration reuse the SEND and RECEIVE APIs: the source
firmware decrypts each guest page with K_vek and re-encrypts it with a
transport key; the target firmware reverses the process under its own
fresh K_vek, verifying the transport-integrity measurement.  The key to
unwrap TEK/TIK is agreed between the two *platforms* (their DH keys), so
neither hypervisor in the middle learns it.

Live migration is not supported: SEND_START moves the guest context out
of the RUNNING state, which stops execution — Fidelius's VMRUN gate
refuses to re-enter a guest that is not RUNNING.

One modelling note: SEV transport only makes sense for the pages the
guest encrypts with K_vek.  Pages the guest deliberately keeps
*unencrypted* (the shared I/O buffers) carry no secrets by construction
and are copied verbatim by the hypervisor, exactly as on unprotected
hosts.
"""

from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.core.lifecycle import page_tweak


@dataclass(frozen=True)
class MigrationPackage:
    """What travels from the source host to the target host."""

    name: str
    guest_frames: int
    encrypted_records: tuple   # ((gfn, transport_bytes), ...)
    plain_records: tuple       # ((gfn, raw_bytes), ...)
    kwrap: object
    measurement: bytes
    origin_public: int
    nonce: bytes
    encrypted_gfns: frozenset
    policy: int = 0


def send_guest(source_fidelius, domain, target_public):
    """Source half: stop the guest and produce a migration package."""
    if domain.sev_handle is None:
        raise ReproError("domain has no SEV context to migrate")
    machine = source_fidelius.machine
    hypervisor = source_fidelius.hypervisor
    nonce = bytes(machine.rng.getrandbits(8) for _ in range(16))
    handle = domain.sev_handle

    kwrap = source_fidelius.firmware_call(
        "send_start", handle, target_public, nonce)

    encrypted_records = []
    plain_records = []
    for gfn in range(domain.guest_frames):
        pa = hypervisor.guest_frame_hpfn(domain, gfn) * PAGE_SIZE
        if gfn in domain.encrypted_gfns:
            transport = source_fidelius.firmware_call(
                "send_update", handle, pa, PAGE_SIZE, tweak=page_tweak(gfn))
            encrypted_records.append((gfn, transport))
        else:
            plain_records.append((gfn, machine.memctrl.dma_read(pa, PAGE_SIZE)))
    measurement = source_fidelius.firmware_call("send_finish", handle)

    origin_public = source_fidelius.firmware.platform_public_key
    policy = source_fidelius.firmware.guest_policy(handle)
    package = MigrationPackage(
        name=domain.name,
        guest_frames=domain.guest_frames,
        encrypted_records=tuple(encrypted_records),
        plain_records=tuple(plain_records),
        kwrap=kwrap,
        measurement=measurement,
        origin_public=origin_public,
        nonce=nonce,
        encrypted_gfns=frozenset(domain.encrypted_gfns),
        policy=policy,
    )
    source_fidelius.audit_event("migration-sent", domid=domain.domid,
                                pages=domain.guest_frames)
    return package


def receive_guest(target_fidelius, package):
    """Target half: rebuild the guest from a migration package."""
    hypervisor = target_fidelius.hypervisor
    machine = target_fidelius.machine
    domain = hypervisor.create_domain(
        package.name, package.guest_frames, sev=True)

    handle = target_fidelius.firmware_call(
        "receive_start", package.kwrap, package.origin_public,
        package.nonce, policy=package.policy)
    domain.sev_handle = handle
    target_fidelius.record_sev_metadata(
        domain, handle=handle, asid=domain.asid)

    for gfn, transport in package.encrypted_records:
        pa = hypervisor.guest_frame_hpfn(domain, gfn) * PAGE_SIZE
        target_fidelius.firmware_call(
            "receive_update", handle, transport, page_tweak(gfn), pa)
    target_fidelius.firmware_call(
        "receive_finish", handle, package.measurement)
    for gfn, raw in package.plain_records:
        pa = hypervisor.guest_frame_hpfn(domain, gfn) * PAGE_SIZE
        machine.memctrl.dma_write(pa, raw)

    target_fidelius.firmware_call("activate", handle, domain.asid)
    domain.encrypted_gfns.update(package.encrypted_gfns)
    target_fidelius.protect_domain(domain)
    target_fidelius.audit_event("migration-received", domid=domain.domid)
    return domain, domain.context()


def migrate_guest(source_fidelius, domain, target_fidelius):
    """Full migration: send, tear down the source, receive on the target."""
    package = send_guest(
        source_fidelius, domain,
        target_fidelius.firmware.platform_public_key)
    source_fidelius.hypervisor.destroy_domain(domain)
    return receive_guest(target_fidelius, package)


def snapshot_guest(fidelius, domain):
    """VM snapshot (Section 4.3.6): the SEND flow targeted at the local
    platform itself.  Like migration, taking a snapshot stops the guest
    (SEND_START leaves the RUNNING state); the snapshot package can be
    restored later on this host with :func:`restore_guest`."""
    package = send_guest(fidelius, domain,
                         fidelius.firmware.platform_public_key)
    fidelius.audit_event("snapshot-taken", domid=domain.domid)
    return package


def restore_guest(fidelius, package, name=None):
    """VM restore: RECEIVE the snapshot back as a fresh domain (new
    handle, new ASID, fresh K_vek) on the same host."""
    if name is not None:
        import dataclasses
        package = dataclasses.replace(package, name=name)
    domain, ctx = receive_guest(fidelius, package)
    fidelius.audit_event("snapshot-restored", domid=domain.domid)
    return domain, ctx
