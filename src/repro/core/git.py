"""The grant information table (paper Sections 4.3.7 and 5.2).

Before a protected guest offers memory through the grant mechanism, it
declares the sharing context to Fidelius with the ``pre_sharing_op``
hypercall: target domain, shared address, number of frames, and whether
the share is read-only.  Fidelius records the declaration here — in
frames of its own, read-only to the hypervisor — and later checks every
hypervisor-performed grant-table update for consistency: the untrusted
host can no longer widen permissions or redirect a grant to an
accomplice domain.

Entry layout (32 bytes):
  [0:4)   initiator domain id
  [4:8)   target domain id
  [8:16)  first shared guest frame number
  [16:24) number of frames
  [24:25) flags — bit 0 VALID, bit 1 READONLY
  [25:32) reserved
"""

from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.common.types import frame_addr

ENTRY_SIZE = 32
ENTRIES_PER_PAGE = PAGE_SIZE // ENTRY_SIZE

_F_VALID = 1 << 0
_F_READONLY = 1 << 1


@dataclass(frozen=True)
class GitEntry:
    initiator_domid: int
    target_domid: int
    first_gfn: int
    nframes: int
    readonly: bool

    def pack(self):
        flags = _F_VALID | (_F_READONLY if self.readonly else 0)
        return (
            self.initiator_domid.to_bytes(4, "little")
            + self.target_domid.to_bytes(4, "little")
            + self.first_gfn.to_bytes(8, "little")
            + self.nframes.to_bytes(8, "little")
            + bytes([flags])
            + bytes(7)
        )

    @classmethod
    def unpack(cls, raw):
        flags = raw[24]
        if not flags & _F_VALID:
            return None
        return cls(
            initiator_domid=int.from_bytes(raw[0:4], "little"),
            target_domid=int.from_bytes(raw[4:8], "little"),
            first_gfn=int.from_bytes(raw[8:16], "little"),
            nframes=int.from_bytes(raw[16:24], "little"),
            readonly=bool(flags & _F_READONLY),
        )

    def covers(self, gfn):
        return self.first_gfn <= gfn < self.first_gfn + self.nframes


class GrantInfoTable:
    """The GIT, backed by Fidelius-owned frames."""

    def __init__(self, machine, alloc_frame, pages=2):
        self._memory = machine.memory
        self.table_pfns = set()
        self._frames = []
        for _ in range(pages):
            pfn = alloc_frame()
            # fidelint: ignore[FID001] -- boot-time construction of
            # Fidelius-owned GIT frames, before protection is sealed.
            machine.memory.zero_frame(pfn)
            self.table_pfns.add(pfn)
            self._frames.append(pfn)
        self.capacity = pages * ENTRIES_PER_PAGE

    def _entry_pa(self, index):
        if not 0 <= index < self.capacity:
            raise ReproError("GIT index %r out of range" % (index,))
        frame = self._frames[index // ENTRIES_PER_PAGE]
        return frame_addr(frame) + (index % ENTRIES_PER_PAGE) * ENTRY_SIZE

    def read(self, index):
        return GitEntry.unpack(self._memory.read(self._entry_pa(index), ENTRY_SIZE))

    def record(self, entry):
        """Store a declaration (Fidelius-context write); returns its index."""
        for index in range(self.capacity):
            if self.read(index) is None:
                self._memory.write(self._entry_pa(index), entry.pack())
                return index
        raise ReproError("GIT full")

    def remove(self, index):
        self._memory.write(self._entry_pa(index), bytes(ENTRY_SIZE))

    def remove_for_domain(self, domid):
        removed = 0
        for index in range(self.capacity):
            entry = self.read(index)
            if entry and (entry.initiator_domid == domid
                          or entry.target_domid == domid):
                self.remove(index)
                removed += 1
        return removed

    def entries_for(self, initiator_domid):
        out = []
        for index in range(self.capacity):
            entry = self.read(index)
            if entry and entry.initiator_domid == initiator_domid:
                out.append(entry)
        return out

    def find_match(self, initiator_domid, target_domid, gfn):
        """The declaration covering (initiator, target, gfn), if any."""
        for entry in self.entries_for(initiator_domid):
            if entry.target_domid == target_domid and entry.covers(gfn):
                return entry
        return None
