"""The page information table (paper Section 5.2).

A three-level radix tree over physical frame numbers, stored in real
frames owned by Fidelius (mapped read-only in the hypervisor).  Each
last-level page holds 1024 PFNs' worth of 32-bit entries recording the
owner, usage, domain tag and validity of the corresponding frame —
everything the PIT-based policies need to decide whether a page-table,
NPT or grant-table update is legal.

Entry layout (32 bits):
  [0:3)   owner  (Owner enum)
  [3:8)   usage  (PageUsage enum)
  [8:24)  tag    (owning domain id for guest/NPT/grant frames; the paper
                  stores the ASID — domain ids are our stand-in because
                  they stay unique for non-SEV domains too)
  [24]    valid
"""

from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ReproError
from repro.common.types import Owner, PageUsage, frame_addr

ENTRY_SIZE = 4
ENTRIES_PER_LEAF = PAGE_SIZE // ENTRY_SIZE  # 1024, as in the paper
FANOUT = PAGE_SIZE // 8  # interior levels store 8-byte pointers

_VALID = 1 << 24


@dataclass(frozen=True)
class PitEntry:
    owner: Owner
    usage: PageUsage
    tag: int
    valid: bool

    def pack(self):
        value = (self.owner.value & 0x7) | ((self.usage.value & 0x1F) << 3) \
            | ((self.tag & 0xFFFF) << 8)
        if self.valid:
            value |= _VALID
        return value

    @classmethod
    def unpack(cls, value):
        return cls(
            owner=Owner(value & 0x7),
            usage=PageUsage((value >> 3) & 0x1F),
            tag=(value >> 8) & 0xFFFF,
            valid=bool(value & _VALID),
        )


FREE_ENTRY = PitEntry(Owner.FREE, PageUsage.NONE, 0, False)


class PageInfoTable:
    """The PIT: Fidelius's authoritative map of frame ownership."""

    def __init__(self, machine, alloc_frame):
        self._memory = machine.memory
        self._alloc = alloc_frame
        #: Every frame backing the PIT itself (root + interior + leaves);
        #: Fidelius maps these read-only in the hypervisor.
        self.table_pfns = set()
        self._root = self._new_table()

    def _new_table(self):
        pfn = self._alloc()
        # fidelint: ignore[FID001] -- the PIT stores itself in raw
        # Fidelius-owned frames (mapped read-only to the hypervisor).
        self._memory.zero_frame(pfn)
        self.table_pfns.add(pfn)
        return pfn

    @staticmethod
    def _indices(pfn):
        if pfn < 0:
            raise ReproError("negative pfn")
        leaf_index = pfn % ENTRIES_PER_LEAF
        mid = pfn // ENTRIES_PER_LEAF
        return mid // FANOUT, mid % FANOUT, leaf_index

    def _pointer(self, table_pfn, index, create):
        slot_pa = frame_addr(table_pfn) + index * 8
        value = self._memory.read_u64(slot_pa)
        if value:
            return value - 1  # stored as pfn+1 so 0 means empty
        if not create:
            return None
        child = self._new_table()
        self._memory.write_u64(slot_pa, child + 1)
        return child

    def entry_pa(self, pfn, create=False):
        """Physical address of the 32-bit entry for ``pfn``."""
        top, mid, leaf = self._indices(pfn)
        level2 = self._pointer(self._root, top, create)
        if level2 is None:
            return None
        level1 = self._pointer(level2, mid, create)
        if level1 is None:
            return None
        return frame_addr(level1) + leaf * ENTRY_SIZE

    def lookup(self, pfn):
        pa = self.entry_pa(pfn)
        if pa is None:
            return FREE_ENTRY
        raw = int.from_bytes(self._memory.read(pa, ENTRY_SIZE), "little")
        if not raw & _VALID:
            return FREE_ENTRY
        return PitEntry.unpack(raw)

    def classify(self, pfn, owner, usage, tag=0):
        """Record frame ownership (Fidelius-context write, raw path)."""
        entry = PitEntry(owner, usage, tag, valid=True)
        pa = self.entry_pa(pfn, create=True)
        self._memory.write(pa, entry.pack().to_bytes(ENTRY_SIZE, "little"))
        return entry

    def invalidate(self, pfn):
        pa = self.entry_pa(pfn)
        if pa is not None:
            self._memory.write(pa, bytes(ENTRY_SIZE))

    def classify_many(self, pfns, owner, usage, tag=0):
        for pfn in pfns:
            self.classify(pfn, owner, usage, tag)

    def frames_with(self, predicate, limit_pfn):
        """Scan [0, limit_pfn) for frames whose entry satisfies ``predicate``."""
        return [pfn for pfn in range(limit_pfn) if predicate(self.lookup(pfn))]
