"""Source-tree loading: modules, ASTs, imports and suppressions.

The analyzer operates on a :class:`Project` — every ``*.py`` file under
one root directory (the directory *containing* the ``repro`` package),
parsed once and shared by all rules.  Nothing here imports the analyzed
code; the analysis is purely syntactic, which is the point: it must be
able to reason about modules (attacks, broken fixtures) that would be
unsafe or impossible to import.
"""

import ast
import hashlib
import os
import re

_SUPPRESS_RE = re.compile(
    r"#\s*fidelint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*fidelint:\s*skip-file")
_COMMENT_LINE_RE = re.compile(r"^\s*(#|$)")


class ModuleInfo:
    """One parsed source module.

    The AST is built lazily: a fully-warm incremental run
    (:mod:`repro.analysis.cache`) serves every finding from the cache
    by content hash alone and never needs to parse anything, which is
    where most of its speedup over a cold run comes from.
    """

    def __init__(self, name, path, rel_path, source):
        self.name = name                  # "repro.xen.npt"
        self.path = path                  # absolute path
        self.rel_path = rel_path          # path relative to the root
        self.source = source
        self.lines = source.splitlines()
        self._tree = None
        #: cache key for derived artifacts (CFGs): survives reloads of
        #: identical content, invalidates on any edit
        self.content_hash = hashlib.sha256(
            source.encode("utf-8")).hexdigest()
        self.skip_file = bool(_SKIP_FILE_RE.search(source[:2048]))
        #: line number -> set of suppressed rule ids ("*" = all rules)
        self.suppressions = self._parse_suppressions()

    @property
    def tree(self):
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=self.path)
        return self._tree

    @property
    def subpackage(self):
        """First component under ``repro`` ("xen" for repro.xen.npt;
        the bare module name for top-level modules like repro.system;
        "" for the ``repro`` package itself)."""
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else ""

    def line_text(self, lineno):
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _parse_suppressions(self):
        table = {}
        for index, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            if match.group(1):
                rules = {r.strip().upper()
                         for r in match.group(1).split(",") if r.strip()}
            else:
                rules = {"*"}
            table[index] = rules
        return table

    def is_suppressed(self, rule_id, lineno):
        """True if ``rule_id`` is suppressed at ``lineno``.

        A suppression comment applies to its own line and, when written
        as a standalone comment (possibly spanning several pure-comment
        lines), to the next statement below it.
        """
        if self.skip_file:
            return True
        probe = lineno
        while probe >= 1:
            rules = self.suppressions.get(probe)
            if rules and ("*" in rules or rule_id in rules):
                return True
            probe -= 1
            # keep walking up only across pure comment/blank lines
            if probe < 1 or not _COMMENT_LINE_RE.match(self.lines[probe - 1]):
                break
        return False

    def imported_modules(self):
        """Absolute dotted names this module imports (repro.* only),
        as (dotted_name, lineno) pairs.  Relative imports are resolved
        against this module's package."""
        out = []
        package_parts = self.name.split(".")
        if not self.path.endswith("__init__.py"):
            package_parts = package_parts[:-1]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.append((alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package_parts[:len(package_parts) - node.level + 1]
                    target = ".".join(base + ([node.module] if node.module
                                              else []))
                else:
                    target = node.module or ""
                if target:
                    out.append((target, node.lineno))
        return [(name, line) for name, line in out
                if name == "repro" or name.startswith("repro.")]


class Project:
    """All modules under one root, plus shared lookups for rules."""

    def __init__(self, root, modules):
        self.root = root
        self.modules = modules            # name -> ModuleInfo
        self._dataflow = None

    @property
    def dataflow(self):
        """The per-run CFG/summary cache, built on first use so a run
        of purely syntactic rules never pays for it.

        The context remembers the content hash of every module it was
        built over; if any module has been swapped mid-process (via
        :meth:`reload_module` or direct replacement in ``modules``)
        the stale shared state — function index, call graph, summary
        and effect fixpoints, plus the changed modules' CFG entries —
        is invalidated and the context rebuilt, so a second analysis
        of the same :class:`Project` can never see first-run summaries
        for rewritten source.
        """
        if self._dataflow is not None and self._dataflow.is_stale():
            self._dataflow = self._dataflow.rebuilt()
        if self._dataflow is None:
            from repro.analysis.dataflow.context import DataflowContext
            self._dataflow = DataflowContext(self)
        return self._dataflow

    def reload_module(self, name):
        """Re-read one module's source from disk; returns True if the
        content changed.  Derived dataflow state is invalidated lazily
        on the next :attr:`dataflow` access."""
        old = self.modules[name]
        with open(old.path, "r", encoding="utf-8") as handle:
            source = handle.read()
        if hashlib.sha256(source.encode("utf-8")).hexdigest() == \
                old.content_hash:
            return False
        self.modules[name] = ModuleInfo(
            name, old.path, old.rel_path, source)
        return True

    @classmethod
    def load(cls, root):
        """Parse every ``*.py`` under ``root`` (the dir containing
        the ``repro`` package)."""
        root = os.path.abspath(root)
        modules = {}
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__" and
                                 not d.startswith("."))
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                name = cls._module_name(rel)
                if not (name == "repro" or name.startswith("repro.")):
                    continue
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                modules[name] = ModuleInfo(name, path, rel, source)
        return cls(root, modules)

    @staticmethod
    def _module_name(rel_path):
        parts = rel_path.replace(os.sep, "/").split("/")
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][:-3]
        return ".".join(parts)

    def sorted_modules(self):
        return [self.modules[name] for name in sorted(self.modules)]
