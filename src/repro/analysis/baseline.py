"""The committed baseline of grandfathered findings.

A baseline entry records the *fingerprint* of one accepted finding
(rule id + module + offending line text + occurrence counter — see
:class:`repro.analysis.findings.Finding`).  Findings whose fingerprint
appears in the baseline are reported as "baselined" and never fail the
run; baseline entries that no longer match any finding are *stale* and
reported so the file shrinks monotonically toward empty.

The file is JSON so diffs review cleanly:

    {"version": 1,
     "entries": [{"rule": "FID001", "module": "repro.xen.hypervisor",
                  "line": "...", "fingerprint": "..."}]}
"""

import json
import os

BASELINE_VERSION = 1
DEFAULT_BASENAME = "fidelint.baseline.json"


def default_baseline_path(root):
    """``<repo>/fidelint.baseline.json`` for a ``<repo>/src`` root;
    next to the root otherwise."""
    parent = os.path.dirname(os.path.abspath(root))
    if os.path.basename(os.path.abspath(root)) == "src":
        return os.path.join(parent, DEFAULT_BASENAME)
    return os.path.join(os.path.abspath(root), DEFAULT_BASENAME)


def load_baseline(path):
    """fingerprint -> entry dict; empty when the file does not exist."""
    if not path or not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError("unsupported baseline version %r"
                         % data.get("version"))
    return {entry["fingerprint"]: entry for entry in data.get("entries", [])}


def write_baseline(path, findings):
    """Write a baseline accepting every (unsuppressed) finding given.

    Entries are sorted on (rule, module, line *text*, occurrence) — the
    same inputs the fingerprint hashes — so regenerating the file after
    unrelated edits that only shift line numbers produces a byte-stable
    result."""
    entries = [
        {
            "rule": finding.rule_id,
            "module": finding.module,
            "line": finding.line_text,
            "occurrence": finding.occurrence,
            "fingerprint": finding.fingerprint,
        }
        for finding in sorted(
            findings,
            key=lambda f: (f.rule_id, f.module, f.line_text, f.occurrence))
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entries
