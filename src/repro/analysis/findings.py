"""Finding and severity types shared by the fidelint rules and engine."""

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad an unsuppressed finding is.

    ``ERROR`` findings fail the default CLI run; ``WARNING`` findings
    fail only under ``--strict`` (CI runs strict).
    """

    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self):
        return 0 if self is Severity.ERROR else 1


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    rule_name: str
    severity: Severity
    module: str          # dotted module name, e.g. "repro.xen.npt"
    path: str            # path relative to the analysis root
    line: int            # 1-based source line
    message: str
    #: Occurrence index among findings of the same (rule, module, source
    #: line text); filled by the engine so fingerprints stay unique.
    occurrence: int = 0
    #: The stripped text of the offending source line (fingerprint input:
    #: stable across unrelated insertions that shift line numbers).
    line_text: str = ""
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self):
        """Stable identity used by the baseline file.

        Derived from the rule, the module, the *text* of the offending
        line and an occurrence counter — not the line number — so a
        baselined finding survives edits elsewhere in the file.
        """
        raw = "%s|%s|%s|%d" % (
            self.rule_id, self.module, self.line_text, self.occurrence)
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self):
        return {
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": self.severity.value,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def render(self):
        return "%s:%d: %s [%s] %s (%s)" % (
            self.path, self.line, self.rule_id, self.severity.value,
            self.message, self.rule_name)
