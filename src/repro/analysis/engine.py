"""The fidelint engine: load, run rules, fold in suppressions + baseline."""

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.baseline import load_baseline
from repro.analysis.findings import Severity
from repro.analysis.project import Project
from repro.analysis.registry import all_rules


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: list = field(default_factory=list)      # active (fail-worthy)
    suppressed: list = field(default_factory=list)    # inline-ignored
    baselined: list = field(default_factory=list)     # grandfathered
    stale_baseline: list = field(default_factory=list)  # unmatched entries
    modules_scanned: int = 0
    rules_run: int = 0

    @property
    def error_count(self):
        return sum(1 for f in self.findings
                   if f.severity is Severity.ERROR)

    @property
    def warning_count(self):
        return sum(1 for f in self.findings
                   if f.severity is Severity.WARNING)

    def exit_code(self, strict=False):
        """0 = clean.  Errors always fail; ``--strict`` also fails on
        warnings and on stale baseline entries (so the baseline cannot
        rot silently in CI)."""
        if self.error_count:
            return 1
        if strict and (self.warning_count or self.stale_baseline):
            return 1
        return 0

    def to_dict(self):
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "counts": {
                "error": self.error_count,
                "warning": self.warning_count,
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "modules": self.modules_scanned,
                "rules": self.rules_run,
            },
        }


def _collect_raw_findings(project, rules):
    """Run every rule over every module; assign occurrence counters so
    fingerprints of identical lines stay distinct."""
    raw = []
    for module in project.sorted_modules():
        for rule_obj in rules:
            for finding in rule_obj.run(module, project):
                finding.line_text = module.line_text(finding.line)
                raw.append((module, finding))
    occurrences = Counter()
    for module, finding in raw:
        key = (finding.rule_id, finding.module, finding.line_text)
        finding.occurrence = occurrences[key]
        occurrences[key] += 1
    return raw


def analyze(root, rules=None, baseline_path=None, select=None):
    """Analyze the tree under ``root`` and return an AnalysisResult.

    ``select`` limits the run to an iterable of rule ids;
    ``baseline_path`` points at the committed baseline (None = none).
    """
    project = root if isinstance(root, Project) else Project.load(root)
    rules = list(rules if rules is not None else all_rules())
    if select:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            raise ValueError("unknown rule ids: %s"
                             % ", ".join(sorted(unknown)))
        rules = [r for r in rules if r.rule_id in wanted]

    if any(getattr(r, "needs_dataflow", False) for r in rules):
        # build the shared CFG/summary cache once, up front; a run of
        # purely syntactic rules never touches it
        project.dataflow.summaries

    baseline = load_baseline(baseline_path)
    matched_fingerprints = set()
    result = AnalysisResult(
        modules_scanned=len(project.modules), rules_run=len(rules))

    for module, finding in _collect_raw_findings(project, rules):
        if module.is_suppressed(finding.rule_id, finding.line):
            finding.suppressed = True
            result.suppressed.append(finding)
        elif finding.fingerprint in baseline:
            finding.baselined = True
            matched_fingerprints.add(finding.fingerprint)
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    result.stale_baseline = [
        entry for fingerprint, entry in sorted(baseline.items())
        if fingerprint not in matched_fingerprints
    ]
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return result
