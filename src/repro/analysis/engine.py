"""The fidelint engine: load, run rules, fold in suppressions + baseline.

The run is structured so serial and ``jobs=N`` analysis are *the same
computation*: a shard-safe worker (:func:`_analyze_worker`) produces
raw findings — line text, occurrence counter and suppression flag all
resolved, everything module-local — for a contiguous chunk of modules,
and the parent folds the concatenated stream through the baseline and
sorts.  Occurrence counters (the fingerprint disambiguator) are keyed
per ``(rule, module, line text)``, so per-module sharding cannot
perturb them, and the merged findings digest is byte-identical
whatever ``jobs`` was — the same contract ``repro.runner`` makes for
the simulator's own work, checked in CI for fidelint itself.
"""

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.baseline import load_baseline
from repro.analysis.findings import Severity
from repro.analysis.project import Project
from repro.analysis.registry import all_rules


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: list = field(default_factory=list)      # active (fail-worthy)
    suppressed: list = field(default_factory=list)    # inline-ignored
    baselined: list = field(default_factory=list)     # grandfathered
    stale_baseline: list = field(default_factory=list)  # unmatched entries
    modules_scanned: int = 0
    rules_run: int = 0
    #: incremental-cache counters (None on uncached runs).  Deliberately
    #: NOT part of :meth:`to_dict`: the findings digest must be
    #: byte-identical between cold, warm and uncached runs, and hit/miss
    #: ratios obviously differ between them.
    cache_stats: dict = field(default=None, compare=False)

    @property
    def error_count(self):
        return sum(1 for f in self.findings
                   if f.severity is Severity.ERROR)

    @property
    def warning_count(self):
        return sum(1 for f in self.findings
                   if f.severity is Severity.WARNING)

    def exit_code(self, strict=False):
        """0 = clean.  Errors always fail; ``--strict`` also fails on
        warnings and on stale baseline entries (so the baseline cannot
        rot silently in CI)."""
        if self.error_count:
            return 1
        if strict and (self.warning_count or self.stale_baseline):
            return 1
        return 0

    def to_dict(self):
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "counts": {
                "error": self.error_count,
                "warning": self.warning_count,
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "modules": self.modules_scanned,
                "rules": self.rules_run,
            },
        }


def findings_digest(result):
    """Canonical SHA-256 over the full result dict — the key CI
    compares between ``--jobs N`` and serial runs."""
    from repro.runner.merge import digest
    return digest(result.to_dict())


def _select_rules(rules, select):
    if not select:
        return list(rules)
    wanted = {rule_id.upper() for rule_id in select}
    unknown = wanted - {r.rule_id for r in rules}
    if unknown:
        raise ValueError("unknown rule ids: %s"
                         % ", ".join(sorted(unknown)))
    return [r for r in rules if r.rule_id in wanted]


def _prepare_capabilities(project, rules):
    """Build the shared caches the selected rules declare a need for —
    once, up front; a purely syntactic run never touches them."""
    if any(getattr(r, "needs_dataflow", False) for r in rules):
        project.dataflow.summaries
    if any(getattr(r, "needs_effects", False) for r in rules):
        project.dataflow.effects


def _assign_occurrences(raw):
    """(Re)number occurrence counters over an ordered finding stream.
    The key is module-local and intra-module order is deterministic,
    so the numbering is identical whether findings came from one
    process, N shards, or the incremental cache — idempotent by
    construction."""
    occurrences = Counter()
    for finding in raw:
        key = (finding.rule_id, finding.module, finding.line_text)
        finding.occurrence = occurrences[key]
        occurrences[key] += 1
    return raw


def _raw_findings(project, rules, module_names):
    """Raw findings for a subset of modules, in deterministic order,
    with line text, occurrence counter and suppression flag resolved.
    Everything here is module-local, which is what makes per-module
    sharding exact."""
    raw = []
    for name in module_names:
        module = project.modules[name]
        for rule_obj in rules:
            for finding in rule_obj.run(module, project):
                finding.line_text = module.line_text(finding.line)
                finding.suppressed = module.is_suppressed(
                    finding.rule_id, finding.line)
                raw.append(finding)
    return _assign_occurrences(raw)


def _analyze_worker(root, module_names, select, cache_dir=None):
    """Shard worker: findings for one chunk of modules.

    Module-level and picklable on purpose — it is submitted to
    ``repro.runner`` as a :class:`WorkUnit`, which also makes it
    subject to fidelint's own FID013 shard-purity rule: it loads a
    fresh project per chunk (summaries are project-wide) precisely so
    it needs no process-global caching.

    Returns ``(raw_findings, cache_stats_or_None)``.  With a cache the
    worker computes keys for *every* module (keys need the whole-tree
    graph anyway) but serves/recomputes only its own chunk.
    """
    project = Project.load(root)
    rules = _select_rules(all_rules(), select)
    if cache_dir:
        from repro.analysis.cache import run_cached
        raw, cache = run_cached(project, rules, select, cache_dir,
                                module_subset=module_names)
        return _assign_occurrences(raw), cache.stats()
    _prepare_capabilities(project, rules)
    return _raw_findings(project, rules, list(module_names)), None


def _chunk(names, jobs):
    count = max(1, min(jobs, len(names)))
    size, extra = divmod(len(names), count)
    out, start = [], 0
    for index in range(count):
        end = start + size + (1 if index < extra else 0)
        if start < end:
            out.append(tuple(names[start:end]))
        start = end
    return out


def _parallel_raw(root, module_names, select, jobs, cache_dir=None,
                  reuse_workers=True):
    from repro.runner import WorkUnit, execute
    chunks = _chunk(module_names, jobs)
    if not chunks:
        return [], None
    units = [WorkUnit.of(("modules", index), _analyze_worker,
                         root, chunk, select, cache_dir)
             for index, chunk in enumerate(chunks)]
    report = execute(units, jobs=jobs, reuse_workers=reuse_workers)
    raw, stats = [], None
    for chunk_findings, chunk_stats in report.values():
        raw.extend(chunk_findings)
        if chunk_stats is not None:
            if stats is None:
                stats = dict.fromkeys(chunk_stats, 0)
            for key, value in chunk_stats.items():
                stats[key] += value
    return _assign_occurrences(raw), stats


def analyze(root, rules=None, baseline_path=None, select=None, jobs=1,
            cache_dir=None, reuse_workers=True):
    """Analyze the tree under ``root`` and return an AnalysisResult.

    ``select`` limits the run to an iterable of rule ids;
    ``baseline_path`` points at the committed baseline (None = none);
    ``jobs > 1`` shards the analysis over worker processes via
    ``repro.runner`` (registry rules only — a custom ``rules`` list is
    not picklable and forces the serial path).  ``cache_dir`` enables
    the sound incremental cache (:mod:`repro.analysis.cache`; registry
    rules only — a custom rules list is invisible to the cache key).
    Output is byte-identical whatever ``jobs`` or the cache state was.
    """
    custom_rules = rules is not None
    project = root if isinstance(root, Project) else Project.load(root)
    rules = list(rules if custom_rules else all_rules())
    select_normalized = None
    if select:
        select_normalized = tuple(sorted(
            rule_id.upper() for rule_id in select))
    rules = _select_rules(rules, select_normalized)
    if custom_rules:
        cache_dir = None

    module_names = sorted(project.modules)
    cache_stats = None
    if jobs and jobs > 1 and not custom_rules:
        raw, cache_stats = _parallel_raw(
            project.root, module_names, select_normalized, jobs,
            cache_dir, reuse_workers=reuse_workers)
    elif cache_dir:
        from repro.analysis.cache import run_cached
        raw, cache = run_cached(project, rules, select_normalized,
                                cache_dir)
        _assign_occurrences(raw)
        cache_stats = cache.stats()
    else:
        _prepare_capabilities(project, rules)
        raw = _raw_findings(project, rules, module_names)

    baseline = load_baseline(baseline_path)
    matched_fingerprints = set()
    result = AnalysisResult(
        modules_scanned=len(project.modules), rules_run=len(rules),
        cache_stats=cache_stats)

    for finding in raw:
        if finding.suppressed:
            result.suppressed.append(finding)
        elif finding.fingerprint in baseline:
            finding.baselined = True
            matched_fingerprints.add(finding.fingerprint)
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    result.stale_baseline = [
        entry for fingerprint, entry in sorted(baseline.items())
        if fingerprint not in matched_fingerprints
    ]
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return result
