"""The ``fidelint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 clean, 1 findings (errors; plus warnings/stale baseline
under ``--strict``), 2 usage error.
"""

import argparse
import importlib
import json
import os
import sys
import textwrap

from repro.analysis.baseline import default_baseline_path, load_baseline, \
    write_baseline
from repro.analysis.engine import analyze, findings_digest
from repro.analysis.project import Project
from repro.analysis.registry import all_rules
from repro.runner import add_jobs_argument


def _default_root():
    """The ``src`` directory this installed package lives under."""
    here = os.path.dirname(os.path.abspath(__file__))   # .../src/repro/analysis
    return os.path.dirname(os.path.dirname(here))       # .../src


def _rules_epilog():
    lines = ["rules:"]
    for rule_obj in all_rules():
        lines.append("  %s  %-22s %s" % (
            rule_obj.rule_id, rule_obj.name, rule_obj.severity.value))
    lines.append("")
    lines.append("use --explain FIDxxx for the full rationale and a "
                 "fixed example")
    return "\n".join(lines)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="fidelint",
        description="Static architecture & capability checker for the "
                    "Fidelius reproduction: proves at the source level "
                    "that no code path sidesteps the enforcement layers.",
        epilog=_rules_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="directory containing the repro package "
                             "(default: the src/ this tool runs from)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings and stale baseline entries "
                             "too (CI mode)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "<repo>/fidelint.baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline file from every "
                             "current finding (stable ordering; stale "
                             "entries are pruned) and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(e.g. FID001,FID003)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--explain", nargs="+", default=None, metavar="ID",
                        help="print a rule's full rationale (its module "
                             "docstring) plus a fixed example, and exit")
    parser.add_argument("--state-report", default=None, metavar="PATH",
                        help="write the snapshot-state inventory "
                             "(registered/unregistered/stale module-global "
                             "mutables, see FID014) as JSON and exit; "
                             "non-zero if anything is unregistered or "
                             "stale")
    add_jobs_argument(parser)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_obj in all_rules():
            print("%s  %-16s %-7s %s" % (
                rule_obj.rule_id, rule_obj.name, rule_obj.severity.value,
                rule_obj.description))
        return 0

    if args.explain:
        return _explain(args.explain)

    root = os.path.abspath(args.root or _default_root())
    if not os.path.isdir(os.path.join(root, "repro")):
        print("fidelint: no 'repro' package under %s" % root,
              file=sys.stderr)
        return 2

    if args.state_report:
        return _write_state_report(root, args.state_report)

    baseline_path = None
    if not args.no_baseline:
        baseline_path = args.baseline or default_baseline_path(root)

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]

    try:
        result = analyze(root, baseline_path=None if args.write_baseline
                         else baseline_path, select=select,
                         jobs=args.jobs)
    except ValueError as exc:
        print("fidelint: %s" % exc, file=sys.stderr)
        return 2

    if args.write_baseline:
        path = baseline_path or default_baseline_path(root)
        previous = load_baseline(path)
        entries = write_baseline(path, result.findings)
        current = {entry["fingerprint"] for entry in entries}
        pruned = sum(1 for fingerprint in previous
                     if fingerprint not in current)
        print("fidelint: wrote %d baseline entries to %s (%d stale "
              "pruned)" % (len(entries), path, pruned))
        return 0

    if args.format == "json":
        payload = result.to_dict()
        payload["digest"] = findings_digest(result)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _render_human(result)
    return result.exit_code(strict=args.strict)


def _write_state_report(root, path):
    """The machine-readable snapshot-state inventory (FID014's view),
    the seed artifact for deterministic snapshot/restore."""
    from repro.analysis.rules.state_inventory import inventory
    project = Project.load(root)
    registered, unregistered, stale = inventory(project)
    payload = {
        "schema": "fidelint-state-report/1",
        "registered": registered,
        "unregistered": unregistered,
        "stale": stale,
        "counts": {
            "registered": len(registered),
            "unregistered": len(unregistered),
            "stale": len(stale),
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("fidelint: state report: %d registered, %d unregistered, "
          "%d stale -> %s" % (len(registered), len(unregistered),
                              len(stale), path))
    return 0 if not (unregistered or stale) else 1


def _explain(rule_ids):
    rules_by_id = {r.rule_id: r for r in all_rules()}
    for raw_id in rule_ids:
        rule_obj = rules_by_id.get(raw_id.upper())
        if rule_obj is None:
            print("fidelint: unknown rule %s" % raw_id, file=sys.stderr)
            return 2
        doc = importlib.import_module(rule_obj.module).__doc__ or ""
        print("%s %s (%s)%s" % (
            rule_obj.rule_id, rule_obj.name, rule_obj.severity.value,
            " [dataflow]" if rule_obj.needs_dataflow else ""))
        print()
        print(doc.strip())
        if rule_obj.example:
            print()
            print("Fixed example:")
            print(textwrap.indent(
                textwrap.dedent(rule_obj.example).strip(), "    "))
        print()
    return 0


def _render_human(result):
    for finding in result.findings:
        print(finding.render())
    for entry in result.stale_baseline:
        print("stale baseline entry: %s in %s (%s) — remove it"
              % (entry["rule"], entry["module"], entry["fingerprint"]))
    print("fidelint: %d modules, %d rules: %d error(s), %d warning(s)"
          " [%d suppressed, %d baselined, %d stale baseline]"
          % (result.modules_scanned, result.rules_run,
             result.error_count, result.warning_count,
             len(result.suppressed), len(result.baselined),
             len(result.stale_baseline)))
    print("fidelint: findings digest sha256=%s" % findings_digest(result))


if __name__ == "__main__":
    sys.exit(main())
