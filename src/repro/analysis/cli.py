"""The ``fidelint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 clean, 1 findings (errors; plus warnings/stale baseline
under ``--strict``), 2 usage error.
"""

import argparse
import importlib
import json
import os
import sys
import textwrap

from repro.analysis.baseline import default_baseline_path, load_baseline, \
    write_baseline
from repro.analysis.engine import analyze, findings_digest
from repro.analysis.project import Project
from repro.analysis.registry import all_rules
from repro.runner import add_jobs_argument


def _default_root():
    """The ``src`` directory this installed package lives under."""
    here = os.path.dirname(os.path.abspath(__file__))   # .../src/repro/analysis
    return os.path.dirname(os.path.dirname(here))       # .../src


def _rules_epilog():
    lines = ["rules:"]
    for rule_obj in all_rules():
        lines.append("  %s  %-22s %s" % (
            rule_obj.rule_id, rule_obj.name, rule_obj.severity.value))
    lines.append("")
    lines.append("use --explain FIDxxx for the full rationale and a "
                 "fixed example")
    return "\n".join(lines)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="fidelint",
        description="Static architecture & capability checker for the "
                    "Fidelius reproduction: proves at the source level "
                    "that no code path sidesteps the enforcement layers.",
        epilog=_rules_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="directory containing the repro package "
                             "(default: the src/ this tool runs from)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings and stale baseline entries "
                             "too (CI mode)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "<repo>/fidelint.baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline file from every "
                             "current finding (stable ordering; stale "
                             "entries are pruned) and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(e.g. FID001,FID003)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent incremental-analysis cache: "
                             "modules whose content-addressed key "
                             "(source + transitive dependency closure + "
                             "analyzer environment) matches are served "
                             "from DIR; output is byte-identical to an "
                             "uncached run")
    parser.add_argument("--changed-since", default=None, metavar="REV",
                        help="report which modules the diff against git "
                             "revision REV can affect (reporting only; "
                             "finding correctness always comes from the "
                             "cache keys)")
    parser.add_argument("--impacted-modules", default=None, metavar="REV",
                        help="print the modules impacted by the diff "
                             "against REV, one per line, and exit")
    parser.add_argument("--impacted-tests", default=None, metavar="REV",
                        help="print the test files impacted by the diff "
                             "against REV (static test->module "
                             "reachability), one per line, and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--explain", nargs="+", default=None, metavar="ID",
                        help="print a rule's full rationale (its module "
                             "docstring) plus a fixed example, and exit; "
                             "'all' explains every registered rule")
    parser.add_argument("--state-report", default=None, metavar="PATH",
                        help="write the snapshot-state inventory "
                             "(registered/unregistered/stale module-global "
                             "mutables, see FID014) as JSON and exit; "
                             "non-zero if anything is unregistered or "
                             "stale")
    add_jobs_argument(parser)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_obj in all_rules():
            print("%s  %-16s %-7s %s" % (
                rule_obj.rule_id, rule_obj.name, rule_obj.severity.value,
                rule_obj.description))
        return 0

    if args.explain:
        return _explain(args.explain)

    root = os.path.abspath(args.root or _default_root())
    if not os.path.isdir(os.path.join(root, "repro")):
        print("fidelint: no 'repro' package under %s" % root,
              file=sys.stderr)
        return 2

    if args.state_report:
        return _write_state_report(root, args.state_report)

    baseline_path = None
    if not args.no_baseline:
        baseline_path = args.baseline or default_baseline_path(root)

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]

    impact = None
    rev = args.changed_since or args.impacted_modules or \
        args.impacted_tests
    if rev:
        impact = _compute_impact(root, rev)
        if impact is None:
            return 2
    if args.impacted_modules is not None:
        for name in impact.impacted_modules:
            print(name)
        return 0
    if args.impacted_tests is not None:
        for path in impact.impacted_tests:
            print(path)
        return 0

    try:
        result = analyze(root, baseline_path=None if args.write_baseline
                         else baseline_path, select=select,
                         jobs=args.jobs, cache_dir=args.cache_dir,
                         reuse_workers=not args.fresh_workers)
    except ValueError as exc:
        print("fidelint: %s" % exc, file=sys.stderr)
        return 2

    if args.write_baseline:
        path = baseline_path or default_baseline_path(root)
        previous = load_baseline(path)
        entries = write_baseline(path, result.findings)
        current = {entry["fingerprint"] for entry in entries}
        pruned = sum(1 for fingerprint in previous
                     if fingerprint not in current)
        print("fidelint: wrote %d baseline entries to %s (%d stale "
              "pruned)" % (len(entries), path, pruned))
        return 0

    if args.format == "json":
        payload = result.to_dict()
        payload["digest"] = findings_digest(result)
        # outside the digest on purpose: hit ratios differ between
        # cold/warm runs whose findings are byte-identical
        if result.cache_stats is not None:
            payload["cache_stats"] = result.cache_stats
        if impact is not None:
            payload["impact"] = impact.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _render_human(result)
        if result.cache_stats is not None:
            stats = result.cache_stats
            print("fidelint: cache: %d hit(s), %d miss(es), "
                  "%d invalidation(s), %d module(s) re-analyzed, "
                  "graph %s" % (
                      stats["entry_hits"], stats["entry_misses"],
                      stats["invalidations"], stats["modules_reanalyzed"],
                      "hit" if stats["graph_hits"] else "miss"))
        if impact is not None:
            if impact.force_full:
                print("fidelint: changed-since: full run forced (%s)"
                      % impact.force_reason)
            else:
                print("fidelint: changed-since: %d changed module(s) -> "
                      "%d impacted module(s), %d impacted test file(s)"
                      % (len(impact.changed_modules),
                         len(impact.impacted_modules),
                         len(impact.impacted_tests)))
    return result.exit_code(strict=args.strict)


def _compute_impact(root, rev):
    """The diff-impact report for ``--changed-since`` and friends, or
    None (usage error) when git cannot produce the diff."""
    from repro.analysis.impact import (
        ImpactError, ImpactGraph, assess, git_changed_paths)
    repo_root = os.path.dirname(root)
    try:
        changed = git_changed_paths(repo_root, rev)
    except ImpactError as exc:
        print("fidelint: %s" % exc, file=sys.stderr)
        return None
    project = Project.load(root)
    return assess(project, ImpactGraph.build(project), changed,
                  repo_root)


def _write_state_report(root, path):
    """The machine-readable snapshot-state inventory (FID014's view),
    the seed artifact for deterministic snapshot/restore."""
    from repro.analysis.rules.state_inventory import inventory
    project = Project.load(root)
    registered, unregistered, stale = inventory(project)
    payload = {
        "schema": "fidelint-state-report/1",
        "registered": registered,
        "unregistered": unregistered,
        "stale": stale,
        "counts": {
            "registered": len(registered),
            "unregistered": len(unregistered),
            "stale": len(stale),
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("fidelint: state report: %d registered, %d unregistered, "
          "%d stale -> %s" % (len(registered), len(unregistered),
                              len(stale), path))
    return 0 if not (unregistered or stale) else 1


def _explain(rule_ids):
    rules_by_id = {r.rule_id: r for r in all_rules()}
    if any(raw_id.lower() == "all" for raw_id in rule_ids):
        rule_ids = sorted(rules_by_id)
    for raw_id in rule_ids:
        rule_obj = rules_by_id.get(raw_id.upper())
        if rule_obj is None:
            print("fidelint: unknown rule %s" % raw_id, file=sys.stderr)
            return 2
        doc = importlib.import_module(rule_obj.module).__doc__ or ""
        print("%s %s (%s)%s" % (
            rule_obj.rule_id, rule_obj.name, rule_obj.severity.value,
            " [dataflow]" if rule_obj.needs_dataflow else ""))
        print()
        print(doc.strip())
        if rule_obj.example:
            print()
            print("Fixed example:")
            print(textwrap.indent(
                textwrap.dedent(rule_obj.example).strip(), "    "))
        print()
    return 0


def _render_human(result):
    for finding in result.findings:
        print(finding.render())
    for entry in result.stale_baseline:
        print("stale baseline entry: %s in %s (%s) — remove it"
              % (entry["rule"], entry["module"], entry["fingerprint"]))
    print("fidelint: %d modules, %d rules: %d error(s), %d warning(s)"
          " [%d suppressed, %d baselined, %d stale baseline]"
          % (result.modules_scanned, result.rules_run,
             result.error_count, result.warning_count,
             len(result.suppressed), len(result.baselined),
             len(result.stale_baseline)))
    print("fidelint: findings digest sha256=%s" % findings_digest(result))


if __name__ == "__main__":
    sys.exit(main())
