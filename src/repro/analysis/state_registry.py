"""Tooling-facing alias of the snapshot-state registry.

The canonical registry moved to :mod:`repro.common.state_registry`
(layer 0) so :mod:`repro.checkpoint` can fingerprint it into every
manifest without a layering back-edge; fidelint's rules now import it
from there too.  This alias keeps the long-standing tooling path
``repro.analysis.state_registry`` working for docs, baselines and
external scripts.
"""

from repro.common.state_registry import (  # noqa: F401
    CLASSIFICATIONS,
    REGISTRY,
    StateEntry,
    all_entries,
    entries_for,
    lookup,
)

__all__ = [
    "CLASSIFICATIONS",
    "REGISTRY",
    "StateEntry",
    "all_entries",
    "entries_for",
    "lookup",
]
