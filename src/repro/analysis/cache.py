"""The persistent, content-addressed analysis cache behind
``fidelint --cache-dir``.

Layout of one cache directory (the :mod:`repro.checkpoint.store`
object-store pattern: immutable fanout objects, atomic replace-only
writes, fail-closed reads)::

    entries/ab/abcdef....json   one module's artifacts, named by key
    graph/ab/abcdef....json     one impact-graph snapshot, by tree hash
    latest.json                 module -> key map from the last run
                                (only feeds the invalidation counter)

**The key is the soundness argument.**  A module's entry is keyed by
:meth:`repro.analysis.impact.ImpactGraph.module_key`: a hash over the
environment fingerprint (every analyzer source file, the live state
registry, ``pyproject.toml``, the rule selection), the module's own
content hash, and the ``(name, hash)`` pair of every module in its
transitive dependency closure — absent (phantom) dependencies hash as
``"ABSENT"``.  Everything a finding can read — its own source, resolved
callees' sources (summary/effect fixpoints), dispatch-table and
WorkUnit targets, the registry couplings, rule code itself — is inside
that hash, so a hit can be replayed verbatim and a cold run over the
same tree produces a byte-identical findings digest.  Anything *not*
covered (a new colliding definition changing unique-name resolution, a
dependency appearing or vanishing) changes the freshly rebuilt graph's
closure and therefore misses.

Entries for *clean* modules also carry their functions' fixpoint
summaries and effects; these are handed to the solvers as presets so an
incremental run iterates only dirty functions (see
:func:`repro.analysis.dataflow.summaries.compute_summaries`).

The whole-tree graph snapshot exists purely for speed: on a fully-warm
run it spares the analyzer from parsing a single AST — keys come from
file hashes plus the cached adjacency, findings from cached entries.
"""

import hashlib
import json
import os

from repro.analysis.findings import Finding, Severity
from repro.analysis.impact import ImpactGraph
from repro.checkpoint.store import atomic_write

ENTRY_SCHEMA = "fidelint-cache-entry/1"
GRAPH_SCHEMA = "fidelint-cache-graph/1"


# ------------------------------------------------------------- fingerprints

def _hash_file(hasher, path):
    try:
        with open(path, "rb") as handle:
            hasher.update(handle.read())
    except OSError:
        hasher.update(b"ABSENT")


def environment_fingerprint(root, select):
    """Hash of every analyzer input that is not an analyzed module:
    all ``repro.analysis`` source (rules, dataflow, engine, this file),
    the *live* state registry FID014/FID016 import, the
    ``pyproject.toml`` adjacent to the analyzed tree, and the rule
    selection.  Changing any of these misses every key — the cache's
    "force a full run" behaviour needs no special case."""
    import repro.analysis as analysis_pkg
    from repro.common import state_registry

    hasher = hashlib.sha256()
    pkg_dir = os.path.dirname(os.path.abspath(analysis_pkg.__file__))
    for dirpath, dirnames, filenames in os.walk(pkg_dir):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                rel = os.path.relpath(
                    os.path.join(dirpath, filename), pkg_dir)
                hasher.update(rel.replace(os.sep, "/").encode("utf-8"))
                _hash_file(hasher, os.path.join(dirpath, filename))
    hasher.update(b"state_registry")
    _hash_file(hasher, os.path.abspath(state_registry.__file__))
    hasher.update(b"pyproject")
    _hash_file(hasher, os.path.join(os.path.dirname(os.path.abspath(root)),
                                    "pyproject.toml"))
    hasher.update(json.dumps(sorted(select or ())).encode("utf-8"))
    return hasher.hexdigest()


def tree_fingerprint(salt, project):
    """Key of the impact-graph snapshot: the whole tree's
    ``(name, content hash)`` table plus the environment salt."""
    items = [[name, module.content_hash]
             for name, module in sorted(project.modules.items())]
    payload = json.dumps([GRAPH_SCHEMA, salt, items],
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ------------------------------------------------------------ serialization

def _finding_to_json(finding):
    return {
        "rule": finding.rule_id,
        "name": finding.rule_name,
        "severity": finding.severity.value,
        "module": finding.module,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
        "line_text": finding.line_text,
        "suppressed": finding.suppressed,
    }


def _finding_from_json(payload):
    finding = Finding(
        rule_id=payload["rule"], rule_name=payload["name"],
        severity=Severity(payload["severity"]),
        module=payload["module"], path=payload["path"],
        line=payload["line"], message=payload["message"])
    finding.line_text = payload["line_text"]
    finding.suppressed = payload["suppressed"]
    return finding


def _summary_to_json(summary):
    return list(summary)


def _summary_from_json(values):
    from repro.analysis.dataflow.summaries import Summary
    return Summary(*values)


def _effects_to_json(effects):
    return {
        "writes": sorted(list(t) for t in effects.writes),
        "reads": sorted(list(t) for t in effects.reads),
        "rng": sorted(list(t) for t in effects.rng),
        "clock": sorted(list(t) for t in effects.clock),
        "io": sorted(list(t) for t in effects.io),
        "spawn": sorted(list(t) for t in effects.spawn),
        "returns_param": effects.returns_param,
        "returns_entropy": effects.returns_entropy,
    }


def _effects_from_json(payload):
    from repro.analysis.dataflow.effects import EffectSummary
    return EffectSummary(
        *(frozenset(tuple(item) for item in payload[key])
          for key in ("writes", "reads", "rng", "clock", "io", "spawn")),
        payload["returns_param"], payload["returns_entropy"])


# ------------------------------------------------------------------- store

class AnalysisCache:
    """Fail-closed object store for per-module artifacts and graph
    snapshots, with flat integer counters in the
    ``keystream_cache_stats`` shape."""

    def __init__(self, cache_dir):
        self.root = os.path.abspath(cache_dir)
        self.entry_hits = 0
        self.entry_misses = 0
        self.entries_written = 0
        self.invalidations = 0
        self.graph_hits = 0
        self.graph_misses = 0
        self.modules_reanalyzed = 0

    def stats(self):
        return {
            "entry_hits": self.entry_hits,
            "entry_misses": self.entry_misses,
            "entries_written": self.entries_written,
            "invalidations": self.invalidations,
            "graph_hits": self.graph_hits,
            "graph_misses": self.graph_misses,
            "modules_reanalyzed": self.modules_reanalyzed,
        }

    def _object_path(self, kind, digest):
        return os.path.join(self.root, kind, digest[:2],
                            "%s.json" % digest)

    def _read_object(self, kind, digest, schema):
        """Absent, torn, corrupt, mis-keyed or wrong-schema objects all
        read as a miss — never as stale data."""
        try:
            with open(self._object_path(kind, digest), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or \
                payload.get("schema") != schema or \
                payload.get("key") != digest:
            return None
        return payload

    def _write_object(self, kind, digest, payload):
        path = self._object_path(kind, digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write(path, json.dumps(
            payload, sort_keys=True).encode("utf-8"))

    # -- graph snapshots ---------------------------------------------------------

    def load_graph(self, project, tree_fp):
        payload = self._read_object("graph", tree_fp, GRAPH_SCHEMA)
        if payload is None or not isinstance(payload.get("deps"), dict):
            self.graph_misses += 1
            return None
        self.graph_hits += 1
        return ImpactGraph.from_dict(project, payload["deps"])

    def store_graph(self, graph, tree_fp):
        self._write_object("graph", tree_fp, {
            "schema": GRAPH_SCHEMA, "key": tree_fp,
            "deps": graph.to_dict()})

    # -- per-module entries ------------------------------------------------------

    def load_entry(self, key, module_name, need_summaries, need_effects):
        payload = self._read_object("entries", key, ENTRY_SCHEMA)
        if payload is None or payload.get("module") != module_name:
            return None
        if need_summaries and not isinstance(
                payload.get("summaries"), dict):
            return None
        if need_effects and not isinstance(payload.get("effects"), dict):
            return None
        try:
            findings = [_finding_from_json(item)
                        for item in payload["findings"]]
        except (KeyError, TypeError, ValueError):
            return None
        summaries = {
            qual: _summary_from_json(values)
            for qual, values in (payload.get("summaries") or {}).items()}
        effects = {
            qual: _effects_from_json(values)
            for qual, values in (payload.get("effects") or {}).items()}
        return {"findings": findings, "summaries": summaries,
                "effects": effects}

    def store_entry(self, key, module_name, findings,
                    summaries=None, effects=None):
        self._write_object("entries", key, {
            "schema": ENTRY_SCHEMA, "key": key, "module": module_name,
            "findings": [_finding_to_json(f) for f in findings],
            "summaries": None if summaries is None else {
                qual: _summary_to_json(s)
                for qual, s in summaries.items()},
            "effects": None if effects is None else {
                qual: _effects_to_json(e)
                for qual, e in effects.items()},
        })
        self.entries_written += 1

    # -- invalidation bookkeeping ------------------------------------------------

    def load_latest(self):
        try:
            with open(os.path.join(self.root, "latest.json"), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def store_latest(self, keys_by_module):
        os.makedirs(self.root, exist_ok=True)
        atomic_write(os.path.join(self.root, "latest.json"),
                     json.dumps(keys_by_module,
                                sort_keys=True).encode("utf-8"))


# ------------------------------------------------------------ the warm path

def _rule_findings(project, rules, name):
    # mirrors the per-module body of engine._raw_findings (occurrence
    # assignment stays with the engine so cached and fresh findings go
    # through the identical counter)
    module = project.modules[name]
    out = []
    for rule_obj in rules:
        for finding in rule_obj.run(module, project):
            finding.line_text = module.line_text(finding.line)
            finding.suppressed = module.is_suppressed(
                finding.rule_id, finding.line)
            out.append(finding)
    return out


def run_cached(project, rules, select, cache_dir, module_subset=None):
    """Raw findings (occurrence *not* yet assigned) for
    ``module_subset`` (default: every module) in sorted module order,
    served from ``cache_dir`` where keys match and recomputed — with
    dirty-only fixpoints — where they don't.

    Returns ``(raw_findings, cache)`` so the engine can fold the
    counters into the report.
    """
    cache = AnalysisCache(cache_dir)
    salt = environment_fingerprint(project.root, select)
    need_summaries = any(getattr(r, "needs_dataflow", False)
                         for r in rules)
    need_effects = any(getattr(r, "needs_effects", False) for r in rules)

    tree_fp = tree_fingerprint(salt, project)
    graph = cache.load_graph(project, tree_fp)
    if graph is None:
        graph = ImpactGraph.build(project)
        cache.store_graph(graph, tree_fp)

    latest = cache.load_latest()
    subset = sorted(project.modules) if module_subset is None \
        else sorted(module_subset)
    keys, entries, dirty = {}, {}, []
    for name in sorted(project.modules):
        key = graph.module_key(name, salt)
        keys[name] = key
        entry = cache.load_entry(key, name, need_summaries, need_effects)
        if entry is not None:
            cache.entry_hits += 1
            entries[name] = entry
        else:
            cache.entry_misses += 1
            if latest.get(name) not in (None, key):
                cache.invalidations += 1
            if name in subset:
                dirty.append(name)

    if dirty:
        ctx = project.dataflow
        if need_summaries:
            ctx.preset_summaries = {
                qual: summary for entry in entries.values()
                for qual, summary in entry["summaries"].items()}
            ctx.summaries
        if need_effects:
            ctx.preset_effects = {
                qual: effects for entry in entries.values()
                for qual, effects in entry["effects"].items()}
            ctx.effects
        cache.modules_reanalyzed = len(dirty)

    dirty_set = set(dirty)
    raw = []
    for name in subset:
        if name in entries:
            raw.extend(entries[name]["findings"])
            continue
        if name not in dirty_set:
            continue      # a worker's subset never computes other shards
        findings = _rule_findings(project, rules, name)
        raw.extend(findings)
        ctx = project.dataflow if (need_summaries or need_effects) \
            else None
        functions = ctx.index.functions_in(name) if ctx else ()
        cache.store_entry(
            keys[name], name, findings,
            summaries={fi.qualname: ctx.summaries[fi.qualname]
                       for fi in functions} if need_summaries else None,
            effects={fi.qualname: ctx.effects[fi.qualname]
                     for fi in functions} if need_effects else None)

    if module_subset is None:
        cache.store_latest(keys)
    return raw, cache
