"""A generic forward worklist solver over small join semilattices.

An analysis provides:

* ``initial(cfg)`` — the fact at the entry node;
* ``transfer(fact, node)`` — the fact *after* a node, given the fact
  before it (used for normal, back and bypass edges);
* ``transfer_exc(fact, node)`` — the fact flowing along the node's
  exceptional edge (defaults to ``transfer``; the gate analysis
  overrides it so an ``_enter`` call that raises is not treated as
  having opened the gate);
* ``join(a, b)`` — the least upper bound (all analyses here use set
  union over ``frozenset`` facts);
* ``follow`` — optional set of edge kinds to propagate along (``None``
  follows everything; FID012 drops ``"bypass"`` edges to adopt the
  loops-run-at-least-once approximation).

Facts must be hashable and the lattices finite (they are: taint tags
are bounded by source sites, gate facts by open sites, charge facts by
four states), so the worklist terminates.
"""

from collections import deque

from repro.analysis.dataflow.cfg import EXC


class ForwardAnalysis:
    """Base class; subclasses override the hooks above."""

    follow = None

    def initial(self, cfg):
        raise NotImplementedError

    def join(self, a, b):
        return a | b

    def transfer(self, fact, node):
        return fact

    def transfer_exc(self, fact, node):
        return self.transfer(fact, node)


def solve_forward(cfg, analysis):
    """Least fixpoint of ``analysis`` over ``cfg``; returns the dict
    ``nid -> fact before that node`` (unreachable nodes are absent)."""
    facts = {cfg.entry: analysis.initial(cfg)}
    work = deque([cfg.entry])
    queued = {cfg.entry}
    while work:
        nid = work.popleft()
        queued.discard(nid)
        node = cfg.nodes[nid]
        before = facts[nid]
        after_normal = analysis.transfer(before, node)
        after_exc = None
        for dst, kind in cfg.succs.get(nid, ()):
            if analysis.follow is not None and kind not in analysis.follow:
                continue
            if kind == EXC:
                if after_exc is None:
                    after_exc = analysis.transfer_exc(before, node)
                flowing = after_exc
            else:
                flowing = after_normal
            old = facts.get(dst)
            new = flowing if old is None else analysis.join(old, flowing)
            if new != old:
                facts[dst] = new
                if dst not in queued:
                    work.append(dst)
                    queued.add(dst)
    return facts


def fact_after(cfg, analysis, facts, nid):
    """The fact *after* node ``nid`` (normal out-edge), or None if the
    node was unreachable."""
    before = facts.get(nid)
    if before is None:
        return None
    return analysis.transfer(before, cfg.nodes[nid])
