"""Statement-level control-flow graphs over Python AST.

One :class:`CfgNode` per simple statement or compound-statement header;
edges carry a *kind*:

* ``"normal"`` — ordinary fall-through / branch edges;
* ``"exc"``    — the statement may raise and control transfers to the
  innermost handler, ``finally`` block or the function's raise-exit;
* ``"back"``   — a loop back-edge (body frontier or ``continue`` back to
  the loop header);
* ``"bypass"`` — the zero-iteration edge of a loop (header straight to
  the code after the loop).  Marked separately so an analysis may adopt
  the "loops run at least once" approximation (FID012 does) without
  losing the edge for analyses that want it (FID010/FID011 follow it).

Every CFG has three synthetic nodes: ``entry``, ``exit`` (reached by
normal completion — falling off the end or ``return``) and
``raise_exit`` (reached by escaping exceptions).

``finally`` blocks are built once and shared by every way of reaching
them (fall-through, exception, ``return``/``break``/``continue``
unwinding); the builder records *pending continuations* on a
``_FinallyFrame`` while the protected code is built and wires them from
the ``finally`` body's frontier afterwards.  ``with`` statements are a
``try``/``finally`` whose cleanup is one synthetic node — which is what
makes "``with``-gates are balanced by construction" true downstream.

Which statements can raise is deliberately coarse: anything whose
header contains a call, a ``yield``/``await``, a subscript, a division
or an ``assert`` gets an ``exc`` edge; ``raise`` always transfers.
Attribute access and arithmetic are treated as non-raising — the
analyses here care about call-shaped control flow, not about modelling
every conceivable ``TypeError``.
"""

import ast

NORMAL = "normal"
EXC = "exc"
BACK = "back"
BYPASS = "bypass"


class CfgNode:
    """One CFG node: a synthetic marker or one statement (header)."""

    __slots__ = ("nid", "kind", "stmt", "label")

    def __init__(self, nid, kind, stmt=None, label=""):
        self.nid = nid
        self.kind = kind      # entry/exit/raise/stmt/test/loop-head/with/
        self.stmt = stmt      # cleanup/dispatch/handler/join
        self.label = label

    @property
    def lineno(self):
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self):
        return "<CfgNode %d %s L%d%s>" % (
            self.nid, self.kind, self.lineno,
            " " + self.label if self.label else "")


class Cfg:
    """The graph for one function: nodes, kinded edges, three exits."""

    def __init__(self, name):
        self.name = name
        self.nodes = []
        self.succs = {}           # nid -> [(dst_nid, edge_kind)]
        self.entry = self._add_node("entry").nid
        self.exit = self._add_node("exit").nid
        self.raise_exit = self._add_node("raise").nid

    def _add_node(self, kind, stmt=None, label=""):
        node = CfgNode(len(self.nodes), kind, stmt, label)
        self.nodes.append(node)
        self.succs[node.nid] = []
        return node

    def add_edge(self, src, dst, kind=NORMAL):
        if (dst, kind) not in self.succs[src]:
            self.succs[src].append((dst, kind))

    def preds(self, nid):
        out = []
        for src, edges in self.succs.items():
            for dst, kind in edges:
                if dst == nid:
                    out.append((src, kind))
        return out

    def iter_stmt_nodes(self):
        for node in self.nodes:
            if node.stmt is not None:
                yield node


def header_exprs(node):
    """The expressions *evaluated at* a CFG node (never a compound
    statement's body — bodies are their own nodes)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "test":
        return [stmt.test]
    if node.kind == "loop-head":
        return [stmt.iter]
    if node.kind == "with":
        return [item.context_expr for item in stmt.items]
    if node.kind in ("cleanup", "dispatch", "handler", "join"):
        return []
    # simple statements
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [e for e in (stmt.test, stmt.msg) if e is not None]
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    return []


def calls_in(node):
    """Every ast.Call evaluated at this node, in source order.  Nested
    function/lambda bodies are skipped: they run later, not here."""
    out = []
    for expr in header_exprs(node):
        out.extend(_calls_in_expr(expr))
    out.sort(key=lambda c: (c.lineno, c.col_offset))
    return out


def _calls_in_expr(expr):
    out = []
    stack = [expr]
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(item, ast.Call):
            out.append(item)
        stack.extend(ast.iter_child_nodes(item))
    return out


_RAISE_PRONE_OPS = (ast.Div, ast.FloorDiv, ast.Mod)


def _expr_can_raise(exprs):
    stack = list(exprs)
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(item, (ast.Call, ast.Yield, ast.YieldFrom,
                             ast.Await, ast.Subscript)):
            return True
        if isinstance(item, ast.BinOp) and \
                isinstance(item.op, _RAISE_PRONE_OPS):
            return True
        stack.extend(ast.iter_child_nodes(item))
    return False


def node_can_raise(node):
    stmt = node.stmt
    if isinstance(stmt, (ast.Raise, ast.Assert, ast.Import,
                         ast.ImportFrom, ast.Delete)):
        return True
    return _expr_can_raise(header_exprs(node))


def _is_catch_all(handler):
    if handler.type is None:
        return True
    name = None
    if isinstance(handler.type, ast.Name):
        name = handler.type.id
    elif isinstance(handler.type, ast.Attribute):
        name = handler.type.attr
    return name in ("Exception", "BaseException")


class _FinallyFrame:
    """A finally (or with-cleanup) block being built: jumps out of the
    protected region stop here first; ``pending`` records where each
    one continues once the block's own frontier is known."""

    __slots__ = ("head", "pending")

    def __init__(self, head):
        self.head = head
        self.pending = set()      # {(target_nid, edge_kind)}


class _LoopFrame:
    __slots__ = ("header", "after", "fin_depth")

    def __init__(self, header, after, fin_depth):
        self.header = header
        self.after = after
        self.fin_depth = fin_depth


class _Builder:
    def __init__(self, func):
        self.func = func
        self.cfg = Cfg(func.name)
        self.fin_frames = []      # innermost last
        self.loops = []

    def build(self):
        preds = [(self.cfg.entry, NORMAL)]
        frontier = self._body(self.func.body, preds, self.cfg.raise_exit)
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    # -- plumbing -------------------------------------------------------------

    def _node(self, kind, stmt=None, label=""):
        return self.cfg._add_node(kind, stmt, label)

    def _connect(self, preds, dst_nid):
        for src, kind in preds:
            self.cfg.add_edge(src, dst_nid, kind)

    def _route_jump(self, src_nid, target_nid, kind, fin_depth):
        """Route a return/break/continue through every enclosing
        finally frame deeper than ``fin_depth``."""
        frames = self.fin_frames[fin_depth:]
        if not frames:
            self.cfg.add_edge(src_nid, target_nid, kind)
            return
        chain = frames[::-1]      # innermost first
        self.cfg.add_edge(src_nid, chain[0].head, NORMAL)
        for frame, outer in zip(chain, chain[1:]):
            frame.pending.add((outer.head, NORMAL))
        chain[-1].pending.add((target_nid, kind))

    # -- statement dispatch ----------------------------------------------------

    def _body(self, stmts, preds, exc):
        frontier = preds
        for stmt in stmts:
            if not frontier:
                break             # unreachable code after return/raise
            frontier = self._stmt(stmt, frontier, exc)
        return frontier

    def _stmt(self, stmt, preds, exc):
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, exc)
        if isinstance(stmt, (ast.While,)):
            return self._loop(stmt, preds, exc, kind="test")
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, exc, kind="loop-head")
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, exc)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, exc)
        if isinstance(stmt, ast.Return):
            node = self._node("stmt", stmt)
            self._connect(preds, node.nid)
            if node_can_raise(node):
                self.cfg.add_edge(node.nid, exc, EXC)
            self._route_jump(node.nid, self.cfg.exit, NORMAL, 0)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._node("stmt", stmt)
            self._connect(preds, node.nid)
            self.cfg.add_edge(node.nid, exc, EXC)
            return []
        if isinstance(stmt, ast.Break):
            node = self._node("stmt", stmt)
            self._connect(preds, node.nid)
            if self.loops:
                loop = self.loops[-1]
                self._route_jump(node.nid, loop.after.nid, NORMAL,
                                 loop.fin_depth)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._node("stmt", stmt)
            self._connect(preds, node.nid)
            if self.loops:
                loop = self.loops[-1]
                self._route_jump(node.nid, loop.header.nid, BACK,
                                 loop.fin_depth)
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # a nested def executes later; the def statement itself is
            # a plain (non-raising) binding here
            node = self._node("stmt", stmt)
            self._connect(preds, node.nid)
            return [(node.nid, NORMAL)]
        node = self._node("stmt", stmt)
        self._connect(preds, node.nid)
        if node_can_raise(node):
            self.cfg.add_edge(node.nid, exc, EXC)
        return [(node.nid, NORMAL)]

    # -- compound statements ---------------------------------------------------

    def _if(self, stmt, preds, exc):
        test = self._node("test", stmt)
        self._connect(preds, test.nid)
        if node_can_raise(test):
            self.cfg.add_edge(test.nid, exc, EXC)
        then_frontier = self._body(stmt.body, [(test.nid, NORMAL)], exc)
        if stmt.orelse:
            else_frontier = self._body(stmt.orelse, [(test.nid, NORMAL)], exc)
        else:
            else_frontier = [(test.nid, NORMAL)]
        return then_frontier + else_frontier

    def _loop(self, stmt, preds, exc, kind):
        head = self._node(kind, stmt)
        self._connect(preds, head.nid)
        if node_can_raise(head):
            self.cfg.add_edge(head.nid, exc, EXC)
        after = self._node("join", stmt, label="loop-after")
        self.loops.append(_LoopFrame(head, after, len(self.fin_frames)))
        body_frontier = self._body(stmt.body, [(head.nid, NORMAL)], exc)
        self.loops.pop()
        for src, _edge_kind in body_frontier:
            self.cfg.add_edge(src, head.nid, BACK)
        # loop exits: the zero-iteration bypass plus each completed
        # iteration's frontier (both through the else clause if present)
        exit_preds = [(head.nid, BYPASS)]
        exit_preds += [(src, NORMAL) for src, _k in body_frontier]
        if stmt.orelse:
            exit_preds = self._body(stmt.orelse, exit_preds, exc)
        self._connect(exit_preds, after.nid)
        return [(after.nid, NORMAL)]

    def _try(self, stmt, preds, exc):
        fin = None
        if stmt.finalbody:
            fin_head = self._node("join", stmt, label="finally")
            fin = _FinallyFrame(fin_head.nid)
        dispatch = None
        if stmt.handlers:
            dispatch = self._node("dispatch", stmt)
        if dispatch is not None:
            body_exc = dispatch.nid
        elif fin is not None:
            body_exc = fin.head
        else:
            body_exc = exc
        outer_exc = fin.head if fin is not None else exc

        if fin is not None:
            self.fin_frames.append(fin)
        body_frontier = self._body(stmt.body, preds, body_exc)
        if stmt.orelse:
            # exceptions in else are *not* caught by this try's handlers
            body_frontier = self._body(stmt.orelse, body_frontier, outer_exc)

        handler_frontier = []
        if dispatch is not None:
            for handler in stmt.handlers:
                head = self._node("handler", handler)
                self.cfg.add_edge(dispatch.nid, head.nid, NORMAL)
                handler_frontier += self._body(
                    handler.body, [(head.nid, NORMAL)], outer_exc)
            if not any(_is_catch_all(h) for h in stmt.handlers):
                # an unmatched exception propagates past the handlers
                if fin is not None:
                    self.cfg.add_edge(dispatch.nid, fin.head, EXC)
                    fin.pending.add((exc, EXC))
                else:
                    self.cfg.add_edge(dispatch.nid, exc, EXC)

        if fin is None:
            return body_frontier + handler_frontier

        self.fin_frames.pop()
        normal_in = body_frontier + handler_frontier
        self._connect(normal_in, fin.head)
        # exceptional entries into the finally continue propagating
        fin.pending.add((exc, EXC))
        fin_frontier = self._body(stmt.finalbody,
                                  [(fin.head, NORMAL)], exc)
        for src, _k in fin_frontier:
            for target, kind in sorted(fin.pending):
                self.cfg.add_edge(src, target, kind)
        return fin_frontier if normal_in else []

    def _with(self, stmt, preds, exc):
        head = self._node("with", stmt)
        self._connect(preds, head.nid)
        if node_can_raise(head):
            # a failing context expression skips __exit__
            self.cfg.add_edge(head.nid, exc, EXC)
        cleanup = self._node("cleanup", stmt, label="with-exit")
        frame = _FinallyFrame(cleanup.nid)
        frame.pending.add((exc, EXC))
        self.fin_frames.append(frame)
        body_frontier = self._body(stmt.body, [(head.nid, NORMAL)],
                                   cleanup.nid)
        self.fin_frames.pop()
        self._connect(body_frontier, cleanup.nid)
        for target, kind in sorted(frame.pending):
            self.cfg.add_edge(cleanup.nid, target, kind)
        return [(cleanup.nid, NORMAL)]


def build_cfg(func):
    """The CFG of one ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``."""
    return _Builder(func).build()
