"""The shared per-run dataflow cache.

One :class:`DataflowContext` lives on the :class:`~repro.analysis
.project.Project` for the duration of one analyzer run.  It is built
lazily — a run selecting only syntactic rules never constructs it —
and shared by every rule that declares ``needs_dataflow``, so:

* each module's AST is parsed exactly once (by ``Project.load``; the
  context only ever reuses ``module.tree``);
* each function's CFG is built exactly once, keyed by the module's
  content hash plus the function's position (``cfg_builds`` /
  ``cfg_hits`` counters make this testable);
* the function index and the summary fixpoint are computed once and
  reused by FID010/FID011/FID012.

Two extensions support the incremental engine
(:mod:`repro.analysis.cache`):

* **staleness detection** — the context records the content hash of
  every module at build time; ``Project.dataflow`` asks
  :meth:`is_stale` on each access and swaps in :meth:`rebuilt` when a
  module was reloaded mid-process, migrating only the CFG entries of
  *unchanged* modules (CFG keys embed the content hash, so entries for
  rewritten source are dropped, not served);
* **summary presets** — ``preset_summaries`` / ``preset_effects`` hold
  cache-restored fixpoint values for clean modules; the solvers treat
  them as constants and iterate only the remaining (dirty) functions.
  Soundness: a preset function's summary depends only on its own source
  and its transitive callees' summaries, all of which are covered by
  the cache key that produced the preset (see docs/static_analysis.md).
"""

from repro.analysis.dataflow.cfg import build_cfg


class DataflowContext:
    def __init__(self, project, migrated_cfgs=None):
        self.project = project
        self._cfgs = dict(migrated_cfgs or {})
        self.cfg_builds = 0
        self.cfg_hits = 0
        self._index = None
        self._summaries = None
        self._callgraph = None
        self._effects = None
        #: cache-restored fixpoint values (qualname -> Summary /
        #: EffectSummary) treated as constants by the solvers
        self.preset_summaries = None
        self.preset_effects = None
        #: content hashes the shared state was built over
        self._stamp = {name: module.content_hash
                       for name, module in project.modules.items()}

    def is_stale(self):
        """True if any module was reloaded/replaced since this context
        captured its hashes — the shared index/summaries would lie."""
        modules = self.project.modules
        if len(modules) != len(self._stamp):
            return True
        for name, module in modules.items():
            if self._stamp.get(name) != module.content_hash:
                return True
        return False

    def rebuilt(self):
        """A fresh context over the project's *current* modules,
        keeping CFG entries whose content hash still matches a live
        module (they are immutable per content) and dropping the rest."""
        live_hashes = {module.content_hash
                       for module in self.project.modules.values()}
        kept = {key: cfg for key, cfg in self._cfgs.items()
                if key[0] in live_hashes}
        return DataflowContext(self.project, migrated_cfgs=kept)

    @property
    def index(self):
        if self._index is None:
            from repro.analysis.dataflow.summaries import FunctionIndex
            self._index = FunctionIndex(self.project)
        return self._index

    @property
    def summaries(self):
        if self._summaries is None:
            from repro.analysis.dataflow.summaries import compute_summaries
            self._summaries = compute_summaries(self)
        return self._summaries

    @property
    def callgraph(self):
        """Project-wide call edges (built once, shared with effects)."""
        if self._callgraph is None:
            from repro.analysis.dataflow.callgraph import CallGraph
            self._callgraph = CallGraph(self)
        return self._callgraph

    @property
    def effects(self):
        """qualname -> EffectSummary, the transitive-effect fixpoint.
        Independent of :attr:`summaries`: a FID013-only run builds the
        call graph and effects but never the taint/gate summaries."""
        if self._effects is None:
            from repro.analysis.dataflow.effects import compute_effects
            self._effects = compute_effects(self)
        return self._effects

    def module_of(self, fi):
        return self.project.modules[fi.module]

    def cfg_for(self, module, func_node):
        key = (module.content_hash, func_node.lineno,
               func_node.col_offset, func_node.name)
        cfg = self._cfgs.get(key)
        if cfg is None:
            cfg = build_cfg(func_node)
            self._cfgs[key] = cfg
            self.cfg_builds += 1
        else:
            self.cfg_hits += 1
        return cfg

    def resolver_for(self, fi):
        """A ``call -> Summary | None`` closure for one caller, backed
        by the fixpoint summaries."""
        sums = self.summaries
        index = self.index

        def resolve(call):
            target = index.resolve(call, fi)
            if target is None:
                return None
            return sums.get(target.qualname)
        return resolve

    def stats(self):
        return {"cfg_builds": self.cfg_builds, "cfg_hits": self.cfg_hits}
