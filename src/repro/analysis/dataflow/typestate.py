"""Gate typestate: every ``_enter`` is matched by ``_exit`` on every path.

The paper's gates (Section 4.1.3) briefly suspend an enforcement
mechanism — clear ``CR0.WP``, map an unmapped page — and must restore
it before control can leave Fidelius, *including when the body raises*.
The syntactic rules can check who may call the mutators (FID002) but
not that the re-protect call dominates every exit.

The lattice: a fact is a ``frozenset`` of ``(kind, open_line)`` pairs —
the gates that may be open at this program point.  Join is union (open
on *some* path is a finding).  Transfer details:

* a call named ``_enter`` adds ``(kind, line)``; the first positional
  argument gives the kind when it is a string literal, else the open is
  dynamic (``kind=None``);
* a call named ``_exit`` removes matching opens — a literal kind closes
  that kind plus any dynamic open; a dynamic close closes everything
  (optimistic: fewer false positives, the close is at least attempted);
* along **exceptional** edges, closes still apply but opens do not:
  an ``_enter`` that raises is treated as not having opened (the
  primitive is check-then-commit — see ``GateKeeper._enter``);
* calls in a ``with`` header are ignored entirely: a context-manager
  gate closes in ``__exit__`` by construction, which the CFG models as
  the cleanup node on every path out of the block;
* a resolved helper whose summary says it opens a gate counts as an
  open; one whose summary closes applies its close first.

``_enter``/``_exit`` themselves are exempt — they are the primitive
being modelled, not users of it.
"""

import ast

from repro.analysis.dataflow.cfg import calls_in
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward

OPEN_CALLS = frozenset({"_enter"})
CLOSE_CALLS = frozenset({"_exit"})


def _callee_name(call):
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _kind_arg(call):
    if call.args and isinstance(call.args[0], ast.Constant) and \
            isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


def _close(fact, kind):
    if kind is None:
        return frozenset()
    return frozenset(pair for pair in fact
                     if pair[0] not in (kind, None))


class GateAnalysis(ForwardAnalysis):
    def __init__(self, resolver):
        self.resolver = resolver

    def initial(self, cfg):
        return frozenset()

    def transfer(self, fact, node):
        return self._apply(fact, node, include_opens=True)

    def transfer_exc(self, fact, node):
        return self._apply(fact, node, include_opens=False)

    def _apply(self, fact, node, include_opens):
        if node.kind == "with":
            return fact      # with-gates are balanced by construction
        for call in calls_in(node):
            name = _callee_name(call)
            if name in CLOSE_CALLS:
                fact = _close(fact, _kind_arg(call))
            elif name in OPEN_CALLS:
                if include_opens:
                    fact = fact | {(_kind_arg(call), call.lineno)}
            else:
                summary = self.resolver(call) if self.resolver else None
                if summary is None:
                    continue
                if summary.closes_gate:
                    fact = frozenset()
                if summary.opens_gate and include_opens:
                    fact = fact | {("via %s()" % name, call.lineno)}
        return fact


def unbalanced_opens(fi, module, ctx, resolver):
    """[(open_line, kind, how_it_escapes)] for gates left open on some
    path out of the function."""
    cfg = ctx.cfg_for(module, fi.node)
    facts = solve_forward(cfg, GateAnalysis(resolver))
    normal = facts.get(cfg.exit, frozenset())
    exceptional = facts.get(cfg.raise_exit, frozenset())
    escapes = {}
    for kind, line in exceptional:
        escapes[(kind, line)] = "an exceptional path"
    for kind, line in normal:
        # normal-path escapes trump in the message: they are the
        # plainer bug
        escapes[(kind, line)] = "a fall-through/return path"
    return sorted((line, kind, how)
                  for (kind, line), how in escapes.items())


def opens_unbalanced(fi, module, ctx, resolver):
    """Summary bit: calling this function may leave a gate open (that
    is the helper's *job* — its callers inherit the obligation)."""
    return bool(unbalanced_opens(fi, module, ctx, resolver))
