"""The project-wide call graph behind the effect-summary engine.

:mod:`~repro.analysis.dataflow.summaries` resolves calls one at a time
while a flow analysis walks a single function.  The effect engine
(:mod:`~repro.analysis.dataflow.effects`) needs the opposite view — the
whole ``caller -> callee`` relation at once, plus its reverse — so the
transitive-effect fixpoint can run a worklist over call edges instead
of re-walking every AST each round.

Edges come from the same deliberately narrow resolution policy FID010's
summaries use (:meth:`FunctionIndex.resolve`): ``self.helper`` to the
caller's own class, bare names to the caller's module or a project-wide
unique function, ``x.attr`` only when unique.  One addition on top:
**dispatch tables**.  A module-level ``TABLE = {"k": fn, ...}`` whose
values are module-level functions, called as ``TABLE[key](...)``, adds
an edge to *every* value — the over-approximation that lets the
shard-purity rule see through ``perfbench``'s ``BENCH_FNS`` indirection.

Unresolved calls simply contribute no edge; the effect analyses treat
them as effect-free, which is the documented under-approximation of the
whole dataflow layer (docs/dataflow.md).
"""

import ast


def _dispatch_tables(project, index):
    """(module, dict-name) -> tuple of callee qualnames, for module-level
    dict displays whose values name module-level functions."""
    tables = {}
    for module in project.sorted_modules():
        for item in module.tree.body:
            if not isinstance(item, ast.Assign) or len(item.targets) != 1:
                continue
            target = item.targets[0]
            if not isinstance(target, ast.Name) or \
                    not isinstance(item.value, ast.Dict):
                continue
            quals = []
            for value in item.value.values:
                if not isinstance(value, (ast.Name, ast.Attribute)):
                    continue
                fi = index.resolve_ref(value, module.name)
                if fi is not None:
                    quals.append(fi.qualname)
            if quals:
                tables[(module.name, target.id)] = tuple(sorted(set(quals)))
    return tables


class CallGraph:
    """Forward and reverse call edges over every indexed function."""

    def __init__(self, ctx):
        index = ctx.index
        self.dispatch_tables = _dispatch_tables(ctx.project, index)
        self._callees = {}
        self._callers = {}
        for fi in index.functions:
            callees = set()
            for node in ast.walk(fi.node):
                if not isinstance(node, ast.Call):
                    continue
                target = index.resolve(node, fi)
                if target is not None:
                    callees.add(target.qualname)
                    continue
                func = node.func
                if isinstance(func, ast.Subscript) and \
                        isinstance(func.value, ast.Name):
                    quals = self.dispatch_tables.get(
                        (fi.module, func.value.id))
                    if quals:
                        callees.update(quals)
            self._callees[fi.qualname] = frozenset(callees)
            for callee in callees:
                self._callers.setdefault(callee, set()).add(fi.qualname)

    def callees(self, qualname):
        return self._callees.get(qualname, frozenset())

    def callers(self, qualname):
        return self._callers.get(qualname, frozenset())

    def __len__(self):
        return sum(len(edges) for edges in self._callees.values())
