"""Interprocedural effect summaries: who mutates what, who draws what.

The determinism story (byte-identical sharded merges, replayable soaks,
the planned snapshot/restore) is a claim about *effects*: a function
handed to the sharded runner must not mutate process-global state the
restore path does not know about, must not draw ambient entropy, and
must not read the host clock into modelled results.  This module
computes, for every indexed function, an :class:`EffectSummary` —

* ``writes`` / ``reads`` — module-global bindings mutated / read,
  as ``(module, name, qualname-of-the-actual-writer)`` triples;
* ``rng`` — ambient entropy draws (``os.urandom``, ``secrets``,
  ``uuid4``, module-level ``random.*``, unseeded ``random.Random()``),
  including bare *references* to such functions (aliasing a reader is
  as bad as calling it);
* ``clock`` — host wall-clock reads (``time.*``, ``datetime.now``...);
* ``io`` / ``spawn`` — file-system access and process creation
  (informational: fidelint's own parallel worker legitimately reads
  the tree it analyzes);
* ``returns_param`` — syntactic "some return mentions a parameter"
  (the laundering hint the taint summaries also use);
* ``returns_entropy`` — may the return value derive from ambient
  entropy or the clock (flow-computed, see below).

Summaries are propagated to a least fixpoint over the
:class:`~repro.analysis.dataflow.callgraph.CallGraph` — plain monotone
set union, so recursion terminates — which is what lets FID013 reject a
shard function whose *helper's helper* bumps an unregistered counter.

The second half is the flow-sensitive ambient-entropy analysis behind
FID015: a forward taint pass (same lattice machinery as FID010) whose
sources are clock/entropy calls, aliased references to them, and calls
to ``returns_entropy`` functions; its sinks are RNG seeding
(``random.Random(x)`` / ``rng.seed(x)``) and stores into simulation
state (``self.attr`` or a module-global container).

Known narrowness, inherited from the resolution policy and documented
in docs/dataflow.md: calls that do not resolve contribute no effects,
and effects behind ``obj.method(...)`` on non-unique names are unseen.
The rules built on top are therefore strict only about what the engine
can actually prove.
"""

import ast
from collections import deque, namedtuple

from repro.analysis.astutil import dotted_name
from repro.analysis.dataflow.cfg import calls_in
from repro.analysis.dataflow.solver import solve_forward
from repro.analysis.dataflow.summaries import (
    MAX_ROUNDS, _returns_mention_param, called_names)
from repro.analysis.dataflow.taint import (
    CLEAN_CALL_NAMES, TaintAnalysis, _env_at)


class EffectSummary(namedtuple(
        "EffectSummary",
        "writes reads rng clock io spawn returns_param returns_entropy")):
    """Transitive effects of one function (all fields but the last two
    are frozensets; see the module docstring for element shapes)."""

    __slots__ = ()

    def writes_global(self, name=None):
        if name is None:
            return bool(self.writes)
        return any(n == name or "%s:%s" % (m, n) == name
                   for m, n, _writer in self.writes)

    def reads_global(self, name=None):
        if name is None:
            return bool(self.reads)
        return any(n == name or "%s:%s" % (m, n) == name
                   for m, n, _reader in self.reads)

    @property
    def unseeded_rng(self):
        return bool(self.rng)

    @property
    def reads_clock(self):
        return bool(self.clock)

    @property
    def does_io(self):
        return bool(self.io)

    @property
    def spawns_process(self):
        return bool(self.spawn)


EMPTY_EFFECTS = EffectSummary(
    frozenset(), frozenset(), frozenset(), frozenset(), frozenset(),
    frozenset(), False, False)

#: constructor calls whose result is a mutable container
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray", "OrderedDict", "defaultdict",
    "deque", "Counter",
})

#: method names that mutate their receiver in place
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "clear",
    "update", "pop", "popitem", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "extendleft", "popleft", "subtract",
})

CLOCK_MODULES = frozenset({"time"})
CLOCK_CALLS = frozenset({
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})
ENTROPY_MODULES = frozenset({"secrets"})
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})
IO_CALLS = frozenset({
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.mkdir",
    "os.makedirs", "os.rmdir",
})
IO_MODULES = frozenset({"shutil", "tempfile"})
SPAWN_MODULES = frozenset({"subprocess", "multiprocessing"})
SPAWN_CALLS = frozenset({
    "os.fork", "os.system", "os.popen", "os.execv", "os.spawnv",
})

#: identifiers whose presence makes an entropy flow-solve worth running
_AMBIENT_PREFILTER_IDS = frozenset({
    "time", "uuid", "secrets", "random", "datetime", "urandom",
    "perf_counter", "monotonic", "now", "utcnow", "today", "seed",
    "Random",
})


def ambient_aliases(module):
    """(fn_aliases, module_aliases): local names bound by imports to
    ambient functions / modules, so ``from os import urandom as r`` and
    ``import time as t`` cannot dodge classification."""
    fn_aliases = {}
    module_aliases = {}
    interesting = (CLOCK_MODULES | ENTROPY_MODULES |
                   frozenset({"os", "uuid", "random", "datetime"}))
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in interesting:
                    module_aliases[alias.asname or top] = top
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if top in interesting:
                for alias in node.names:
                    fn_aliases[alias.asname or alias.name] = \
                        "%s.%s" % (node.module, alias.name)
    return fn_aliases, module_aliases


def _canonical_dotted(dotted, module_aliases):
    if not dotted:
        return dotted
    parts = dotted.split(".")
    parts[0] = module_aliases.get(parts[0], parts[0])
    return ".".join(parts)


def classify_ambient_ref(dotted):
    """("rng"|"clock"|"io"|"spawn", description) for a reference to an
    ambient function, or None.  ``random.Random`` itself is excluded —
    only its unseeded *call* is ambient."""
    if not dotted:
        return None
    parts = dotted.split(".")
    top = parts[0]
    tail2 = ".".join(parts[-2:])
    if top in CLOCK_MODULES or tail2 in CLOCK_CALLS:
        return ("clock", dotted)
    if top in ENTROPY_MODULES or tail2 in ENTROPY_CALLS:
        return ("rng", dotted)
    if top == "random" and len(parts) >= 2 and parts[1] != "Random":
        return ("rng", dotted + " (hidden module-global RNG state)")
    if dotted == "open" or top in IO_MODULES or tail2 in IO_CALLS:
        return ("io", dotted)
    if top in SPAWN_MODULES or tail2 in SPAWN_CALLS:
        return ("spawn", dotted)
    return None


def classify_ambient_call(call, fn_aliases, module_aliases,
                          shadowed=frozenset()):
    """Like :func:`classify_ambient_ref`, for a call site — adds the
    unseeded-``random.Random()`` case, sees through import aliases, and
    refuses to classify when the root name is a local/parameter
    (``secrets.append(...)`` on a list *called* secrets is not the
    secrets module)."""
    dotted = dotted_name(call.func) or ""
    if dotted.split(".")[0] in shadowed:
        return None
    if isinstance(call.func, ast.Name):
        dotted = fn_aliases.get(dotted, dotted)
    dotted = _canonical_dotted(dotted, module_aliases)
    tail2 = ".".join(dotted.split(".")[-2:])
    if tail2 == "random.Random":
        if not call.args and not call.keywords:
            return ("rng", "unseeded random.Random()")
        return None
    return classify_ambient_ref(dotted)


def module_mutable_globals(module):
    """Module-level mutable bindings: ``name -> (lineno, kind)`` with
    kind ``"container"`` (a list/dict/set/... display or constructor)
    or ``"scalar"`` (rebound through a ``global`` declaration).
    Dunder names (``__all__``) are exempt."""
    out = {}
    bound_lines = {}
    for item in module.tree.body:
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        else:
            continue
        kind = _mutable_value_kind(value)
        for target in targets:
            if not isinstance(target, ast.Name) or \
                    target.id.startswith("__"):
                continue
            bound_lines.setdefault(target.id, item.lineno)
            if kind and target.id not in out:
                out[target.id] = (item.lineno, kind)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Global):
            continue
        for name in node.names:
            if name.startswith("__") or name in out:
                continue
            out[name] = (bound_lines.get(name, node.lineno), "scalar")
    return out


def _mutable_value_kind(value):
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return "container"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func) or ""
        if name.split(".")[-1] in MUTABLE_CONSTRUCTORS:
            return "container"
    return None


# --------------------------------------------------- local effect extraction

def _binding_names(target):
    """Names a target pattern actually *binds*: bare names, through
    tuple/list/starred nesting.  ``x[k] = v`` and ``x.a = v`` bind
    nothing — the base name keeps referring to the enclosing scope,
    which is exactly why such stores are global writes, not shadows."""
    out, stack = set(), [target]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
    return out


def _assigned_names(func_node):
    names = set()
    for node in ast.walk(func_node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                names.update(_binding_names(target))
        elif isinstance(node, ast.NamedExpr):
            names.update(_binding_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_binding_names(node.target))
        elif isinstance(node, ast.withitem) and \
                node.optional_vars is not None:
            names.update(_binding_names(node.optional_vars))
    return names


def _base_name(expr):
    """The root ``Name`` of a Subscript/Attribute chain, or None."""
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def local_effects(fi, module, mutables, fn_aliases, module_aliases):
    """The :class:`EffectSummary` of one function body alone (nested
    defs included: a closure's effects belong to whoever defines it)."""
    qual = fi.qualname
    global_decls = set()
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
    args = fi.node.args
    params = {a.arg for a in args.args + args.kwonlyargs +
              getattr(args, "posonlyargs", [])}
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            params.add(extra.arg)
    shadowed = (params | _assigned_names(fi.node)) - global_decls

    writes, reads = set(), set()
    rng, clock, io, spawn = set(), set(), set(), set()
    call_func_ids = set()

    def visible(name):
        return name in mutables and name not in shadowed

    def add_site(kind_desc, lineno):
        kind, desc = kind_desc
        {"rng": rng, "clock": clock, "io": io, "spawn": spawn}[kind].add(
            (qual, desc, lineno))

    for node in ast.walk(fi.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in global_decls:
                        writes.add((module.name, target.id, qual))
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = _base_name(target)
                    if base is not None and visible(base):
                        writes.add((module.name, base, qual))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if target.id in global_decls:
                        writes.add((module.name, target.id, qual))
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = _base_name(target)
                    if base is not None and visible(base):
                        writes.add((module.name, base, qual))
        elif isinstance(node, ast.Call):
            call_func_ids.add(id(node.func))
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in MUTATING_METHODS:
                base = _base_name(func.value)
                if base is not None and visible(base):
                    writes.add((module.name, base, qual))
            classified = classify_ambient_call(
                node, fn_aliases, module_aliases, shadowed)
            if classified is not None:
                add_site(classified, node.lineno)
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                if visible(node.id):
                    reads.add((module.name, node.id, qual))
                canonical = fn_aliases.get(node.id)
                if canonical is not None and node.id not in shadowed \
                        and id(node) not in call_func_ids:
                    classified = classify_ambient_ref(canonical)
                    if classified is not None:
                        add_site(classified, node.lineno)

    # bare references to ambient functions (``reader = os.urandom``):
    # aliasing a nondeterministic reader is an effect in itself, and
    # ast.walk visits a Call before its ``func`` child, so direct call
    # spellings were already excluded via ``call_func_ids``
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load) and \
                id(node) not in call_func_ids:
            raw = dotted_name(node) or ""
            if raw.split(".")[0] in shadowed:
                continue
            dotted = _canonical_dotted(raw, module_aliases)
            classified = classify_ambient_ref(dotted or "")
            if classified is not None:
                add_site(classified, node.lineno)

    return EffectSummary(
        frozenset(writes), frozenset(reads), frozenset(rng),
        frozenset(clock), frozenset(io), frozenset(spawn),
        _returns_mention_param(fi.node), False)


# ------------------------------------------------------- transitive fixpoint

def compute_effects(ctx):
    """qualname -> EffectSummary, to a least fixpoint over the call
    graph (monotone set union: recursion and mutual recursion simply
    converge), then a bounded flow phase for ``returns_entropy``.

    ``ctx.preset_effects`` (cache-restored values for clean modules)
    are fixpoint constants: their local extraction, the worklist and
    the entropy flow phase all run over dirty functions only.  A clean
    function can never transitively call a dirty one (it would be in
    the dirty module's reverse-dependency closure), so freezing the
    presets cannot lose propagation.
    """
    index = ctx.index
    graph = ctx.callgraph
    preset = ctx.preset_effects or {}
    alias_cache = {}

    def aliases_of(module):
        if module.name not in alias_cache:
            alias_cache[module.name] = ambient_aliases(module)
        return alias_cache[module.name]

    mutables_cache = {}

    def mutables_of(module):
        if module.name not in mutables_cache:
            mutables_cache[module.name] = frozenset(
                module_mutable_globals(module))
        return mutables_cache[module.name]

    local = {}
    for fi in index.functions:
        if fi.qualname in preset:
            continue
        module = ctx.module_of(fi)
        fn_aliases, module_aliases = aliases_of(module)
        local[fi.qualname] = local_effects(
            fi, module, mutables_of(module), fn_aliases, module_aliases)

    sums = dict(local)
    for fi in index.functions:
        if fi.qualname in preset:
            sums[fi.qualname] = preset[fi.qualname]
    work = deque(sorted(local))
    queued = set(work)
    while work:
        qual = work.popleft()
        queued.discard(qual)
        merged = _union_effects(
            local[qual],
            [sums[c] for c in graph.callees(qual) if c in sums])
        if merged != sums[qual]:
            sums[qual] = merged
            for caller in graph.callers(qual):
                if caller in local and caller not in queued:
                    work.append(caller)
                    queued.add(caller)

    _fold_returns_entropy(ctx, sums, aliases_of, mutables_of,
                          frozenset(local))
    return sums


def _union_effects(base, others):
    writes = set(base.writes)
    reads = set(base.reads)
    rng = set(base.rng)
    clock = set(base.clock)
    io = set(base.io)
    spawn = set(base.spawn)
    for other in others:
        writes |= other.writes
        reads |= other.reads
        rng |= other.rng
        clock |= other.clock
        io |= other.io
        spawn |= other.spawn
    return base._replace(
        writes=frozenset(writes), reads=frozenset(reads),
        rng=frozenset(rng), clock=frozenset(clock), io=frozenset(io),
        spawn=frozenset(spawn))


def _mentions_ambient(func_node):
    for node in ast.walk(func_node):
        if isinstance(node, ast.Name) and \
                node.id in _AMBIENT_PREFILTER_IDS:
            return True
        if isinstance(node, ast.Attribute) and \
                node.attr in _AMBIENT_PREFILTER_IDS:
            return True
    return False


def _fold_returns_entropy(ctx, sums, aliases_of, mutables_of,
                          dirty=None):
    index = ctx.index
    targets = [fi for fi in index.functions
               if dirty is None or fi.qualname in dirty]
    mention_cache = {fi.qualname: _mentions_ambient(fi.node)
                     for fi in targets}
    names_cache = {fi.qualname: called_names(fi.node)
                   for fi in targets}
    for _round in range(MAX_ROUNDS):
        entropy_names = {fi.name for fi in index.functions
                         if sums[fi.qualname].returns_entropy}
        changed = False
        for fi in targets:
            if sums[fi.qualname].returns_entropy:
                continue
            if not (mention_cache[fi.qualname] or
                    names_cache[fi.qualname] & entropy_names):
                continue
            module = ctx.module_of(fi)
            fn_aliases, module_aliases = aliases_of(module)
            analysis = AmbientEntropyAnalysis(
                fi, index, sums, fn_aliases, module_aliases)
            if _returns_entropy_flow(fi, module, ctx, analysis):
                sums[fi.qualname] = sums[fi.qualname]._replace(
                    returns_entropy=True)
                changed = True
        if not changed:
            break


# ------------------------------------------- the ambient-entropy flow (FID015)

class AmbientEntropyAnalysis(TaintAnalysis):
    """Forward ambient-entropy taint for one function.

    Reuses the FID010 lattice/transfer machinery wholesale; only the
    notion of "source" changes.  Tags are ``("entropy", what, line)``
    for values derived from the clock or an entropy pool, and
    ``("efn", dotted)`` for *references* to ambient readers, so
    ``reader = os.urandom; reader(8)`` is caught even though the call
    site itself is an innocent bare name.
    """

    def __init__(self, fi, index, effects, fn_aliases, module_aliases):
        super().__init__(fi.node, resolver=None, seed_params=False)
        self.fi = fi
        self.index = index
        self.effects = effects
        self.fn_aliases = fn_aliases
        self.module_aliases = module_aliases
        args = fi.node.args
        params = {a.arg for a in args.args + args.kwonlyargs +
                  getattr(args, "posonlyargs", [])}
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.add(extra.arg)
        self.shadowed = frozenset(params | _assigned_names(fi.node))

    def eval_expr(self, expr, env):
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.ctx, ast.Load):
            raw = dotted_name(expr) or ""
            if raw.split(".")[0] not in self.shadowed:
                dotted = _canonical_dotted(raw, self.module_aliases)
                classified = classify_ambient_ref(dotted)
                if classified is not None and \
                        classified[0] in ("rng", "clock"):
                    return frozenset({("efn", classified[1])})
        if isinstance(expr, ast.Name):
            tags = env.get(expr.id, frozenset())
            canonical = self.fn_aliases.get(expr.id)
            if canonical is not None and expr.id not in self.shadowed:
                classified = classify_ambient_ref(canonical)
                if classified is not None and \
                        classified[0] in ("rng", "clock"):
                    tags = tags | frozenset({("efn", classified[1])})
            return tags
        return super().eval_expr(expr, env)

    def _eval_call(self, call, env):
        classified = classify_ambient_call(
            call, self.fn_aliases, self.module_aliases, self.shadowed)
        if classified is not None and classified[0] in ("rng", "clock"):
            return frozenset({("entropy", classified[1], call.lineno)})
        dotted = _canonical_dotted(
            dotted_name(call.func) or "", self.module_aliases)
        if ".".join(dotted.split(".")[-2:]) == "random.Random":
            # a *seeded* RNG object is as deterministic as its seed;
            # the seed itself is checked at the sink
            return frozenset()
        if isinstance(call.func, ast.Name):
            for tag in env.get(call.func.id, frozenset()):
                if tag[0] == "efn":
                    return frozenset(
                        {("entropy", "call of aliased %s" % tag[1],
                          call.lineno)})
        name = dotted.split(".")[-1]
        if name in CLEAN_CALL_NAMES:
            return frozenset()
        target = self.index.resolve(call, self.fi)
        if target is not None:
            summary = self.effects.get(target.qualname)
            if summary is not None:
                if summary.returns_entropy:
                    return frozenset(
                        {("entropy", "return of %s()" % name,
                          call.lineno)})
                if summary.returns_param:
                    return self._union_args(call, env)
                return frozenset()
        tags = self._union_args(call, env)
        if isinstance(call.func, ast.Attribute):
            tags |= self.eval_expr(call.func.value, env)
        return frozenset(t for t in tags if t[0] in ("entropy", "efn"))


def _returns_entropy_flow(fi, module, ctx, analysis):
    cfg = ctx.cfg_for(module, fi.node)
    facts = solve_forward(cfg, analysis)
    for node in cfg.iter_stmt_nodes():
        stmt = node.stmt
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        before = facts.get(node.nid)
        if before is None:
            continue
        tags = analysis.eval_expr(stmt.value, _env_at(before))
        if any(tag[0] == "entropy" for tag in tags):
            return True
    return False


def ambient_entropy_findings(fi, module, ctx):
    """(lineno, what-flowed, where-it-went) per entropy-to-state flow
    in one function — the FID015 work-horse."""
    effects = ctx.effects
    fn_aliases, module_aliases = ambient_aliases(module)
    mutables = frozenset(module_mutable_globals(module))
    analysis = AmbientEntropyAnalysis(
        fi, ctx.index, effects, fn_aliases, module_aliases)
    cfg = ctx.cfg_for(module, fi.node)
    facts = solve_forward(cfg, analysis)
    out = []
    for node in cfg.iter_stmt_nodes():
        before = facts.get(node.nid)
        if before is None:
            continue
        env = _env_at(before)
        for call in calls_in(node):
            dotted = _canonical_dotted(
                dotted_name(call.func) or "", module_aliases)
            tail2 = ".".join(dotted.split(".")[-2:])
            is_seed_sink = (
                tail2 == "random.Random" and (call.args or call.keywords))
            is_reseed = (isinstance(call.func, ast.Attribute) and
                         call.func.attr == "seed" and call.args)
            if not (is_seed_sink or is_reseed):
                continue
            tags = frozenset()
            for arg in call.args:
                tags |= analysis.eval_expr(arg, env)
            for kw in call.keywords:
                tags |= analysis.eval_expr(kw.value, env)
            entropy = sorted(t for t in tags if t[0] == "entropy")
            if entropy:
                out.append((call.lineno, entropy[0][1],
                            "the RNG seed (determinism laundering)"))
        stmt = node.stmt
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            if value is None:
                continue
            for target in targets:
                sink = _state_sink(target, mutables)
                if sink is None:
                    continue
                tags = analysis.eval_expr(value, env)
                entropy = sorted(t for t in tags if t[0] == "entropy")
                if entropy:
                    out.append((stmt.lineno, entropy[0][1], sink))
    return out


def _state_sink(target, mutables):
    if isinstance(target, ast.Attribute) and \
            isinstance(target.value, ast.Name) and \
            target.value.id == "self":
        return "simulation state (self.%s)" % target.attr
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        base = _base_name(target)
        if base is not None and base in mutables:
            return "module-global state (%s)" % base
    return None
