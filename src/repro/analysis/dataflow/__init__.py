"""Flow-sensitive dataflow layer under the fidelint rules.

The syntactic rules (FID001–FID009) ask "does this module *contain* a
forbidden call".  The dataflow layer answers the stronger questions the
paper's invariants actually pose — "can a decrypted value *reach* a
hypervisor-visible location", "is the gate closed again on *every* path
out" — by building per-function control-flow graphs, running small
forward dataflow analyses over them, and summarizing helper functions so
flows through calls inside ``repro.*`` are tracked too.

Layout:

* :mod:`~repro.analysis.dataflow.cfg` — statement-level CFG builder
  (branches, loops, ``try``/``except``/``finally``, ``with``, early
  returns and raises);
* :mod:`~repro.analysis.dataflow.solver` — generic forward worklist
  solver over small join semilattices;
* :mod:`~repro.analysis.dataflow.summaries` — the function index, the
  name-resolution policy, and the least-fixpoint per-function summaries
  (taint-returning, gate-opening/closing, always-charging);
* :mod:`~repro.analysis.dataflow.taint`,
  :mod:`~repro.analysis.dataflow.typestate`,
  :mod:`~repro.analysis.dataflow.charges` — the three analyses behind
  rules FID010 / FID011 / FID012;
* :mod:`~repro.analysis.dataflow.context` — the shared per-run cache
  (CFGs keyed by content hash, summaries computed once).

See ``docs/dataflow.md`` for the design rationale and the documented
approximations.
"""

from repro.analysis.dataflow.context import DataflowContext  # noqa: F401
