"""Path-complete cycle accounting (the flow upgrade of FID004).

FID004 accepts a method as priced when a charge call appears *anywhere*
in its body; a fast path that returns early without charging slips
straight through.  This analysis asks the path-complete question: does
every normal path that does hardware work pass a charge call first?

The lattice: a fact is a ``frozenset`` of ``(did_work, did_charge)``
pairs — one boolean pair per distinguishable path class reaching the
program point.  Join is union.  A node contributes:

* *work* — it stores into ``self`` state, or calls anything that is
  neither charge-like, free (``len``/``range``-style queries), nor a
  resolved non-working helper;
* *charge* — it calls something whose name contains ``charge`` (the
  ``CycleCounter.charge`` / ``_charge_transfer`` convention FID004
  already keys on), or a resolved helper whose summary says it charges
  on every normal path.

Documented approximations (see ``docs/dataflow.md``):

* ``bypass`` edges are ignored — loops are assumed to run at least one
  iteration, so "the loop body charges" prices the method (a
  zero-trip loop also did no per-line work worth pricing);
* only *normal* exits are checked; paths that raise are free (the
  machine charges for work done, not for faults);
* exceptional edges carry the post-transfer fact (a statement that both
  charges and raises is not double-flagged).
"""

import ast

from repro.analysis.astutil import _is_self_state
from repro.analysis.dataflow.cfg import BACK, EXC, NORMAL, calls_in
from repro.analysis.dataflow.solver import ForwardAnalysis, fact_after, \
    solve_forward

#: call names that are pure queries / shape operations, not hardware work
FREE_CALL_NAMES = frozenset({
    "len", "range", "enumerate", "isinstance", "min", "max", "sorted",
    "reversed", "zip", "abs", "sum", "any", "all", "iter", "next",
    "getattr", "hasattr", "format", "join", "items", "keys", "values",
    "get",
})


def _callee_name(call):
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _stores_self_state(node):
    stmt = node.stmt
    if node.kind != "stmt" or stmt is None:
        return False
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = stmt.targets
    return any(_is_self_state(t) for t in targets)


class ChargeAnalysis(ForwardAnalysis):
    follow = frozenset({NORMAL, EXC, BACK})

    def __init__(self, resolver):
        self.resolver = resolver
        self._flags = {}

    def initial(self, cfg):
        return frozenset({(False, False)})

    def _node_flags(self, node):
        cached = self._flags.get(node.nid)
        if cached is not None:
            return cached
        work = _stores_self_state(node)
        charge = False
        for call in calls_in(node):
            name = _callee_name(call)
            if name is None:
                work = True
                continue
            if "charge" in name:
                charge = True
                continue
            if name in FREE_CALL_NAMES:
                continue
            summary = self.resolver(call) if self.resolver else None
            if summary is not None and summary.always_charges:
                charge = True
            work = True
        self._flags[node.nid] = (work, charge)
        return work, charge

    def transfer(self, fact, node):
        work, charge = self._node_flags(node)
        if not work and not charge:
            return fact
        return frozenset((pw or work, pc or charge) for pw, pc in fact)


def uncharged_paths(fi, module, ctx, resolver):
    """Line numbers of normal exits reachable with work done but no
    charge taken (empty when the method prices every working path)."""
    cfg = ctx.cfg_for(module, fi.node)
    analysis = ChargeAnalysis(resolver)
    facts = solve_forward(cfg, analysis)
    offenders = []
    for src, kind in cfg.preds(cfg.exit):
        if kind != NORMAL:
            continue
        out = fact_after(cfg, analysis, facts, src)
        if out is None:
            continue
        if any(work and not charged for work, charged in out):
            node = cfg.nodes[src]
            offenders.append(node.lineno or fi.node.lineno)
    return sorted(set(offenders))


def always_charges(fi, module, ctx, resolver):
    """Summary bit: every reachable *normal* exit has charged (used to
    credit helpers like ``MemoryController.dma_write`` at call sites)."""
    cfg = ctx.cfg_for(module, fi.node)
    analysis = ChargeAnalysis(resolver)
    facts = solve_forward(cfg, analysis)
    exit_preds = [(src, kind) for src, kind in cfg.preds(cfg.exit)
                  if kind == NORMAL]
    saw_exit = False
    for src, _kind in exit_preds:
        out = fact_after(cfg, analysis, facts, src)
        if out is None:
            continue
        saw_exit = True
        if any(not charged for _work, charged in out):
            return False
    return saw_exit
