"""Secret-taint analysis: guest plaintext must not reach the host.

The paper's confidentiality invariant (I1) is an information-flow
property: data that exists *below* the encryption boundary — decrypted
guest memory, unwrapped transport/measurement keys, the guest register
file — must be re-protected (C-bit write, ``xex_encrypt``/``wrap_key``,
record-layer ``seal``) before it reaches any location the hypervisor or
a device can observe.

Sources, sanitizers and sinks are classified by *call-site name*, not
by resolved target — deliberately: ``xex_decrypt`` *is* ``xex_encrypt``
(the XEX keystream is an involution), so only the name at the call site
carries the author's intent.

The lattice: a fact is a ``frozenset`` of ``(variable, tag)`` pairs,
where a tag is ``("secret", origin, line)`` or ``("param", name)``
(parameter tags are only seeded when computing helper summaries).
Join is union.  Assignments to names are strong updates; stores into
attributes/subscripts drop the taint (the analysis is intraprocedural
per function — attribute state is out of scope, documented in
``docs/dataflow.md``).  ``Compare`` results are clean (a boolean
verdict, e.g. a MAC check, declassifies), as are hashes and MACs
(one-way) and size-shaped builtins like ``len``.
"""

import ast

from repro.analysis.astutil import receiver_token
from repro.analysis.dataflow.cfg import calls_in
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward

#: call-site names producing below-the-boundary data
SOURCE_CALL_NAMES = {
    "xex_decrypt": "decrypted bytes",
    "xex_line_decrypt": "decrypted cache line",
    "decrypt_region": "decrypted guest region",
    "unwrap_key": "unwrapped key",
    "random_key": "fresh key material",
    "derive_key": "derived key material",
    "shared_secret": "DH shared secret",
    "keystream": "raw keystream",
    # The fast path's cached keystream line is key-derived secret
    # material (see the memctrl module docstring): anything XORed from
    # it outside a named sanitizer stays below the boundary.
    "line_keystream_int": "cached keystream line (key-derived)",
    "_reference_keystream": "raw keystream (reference path)",
    "_reference_xex_decrypt": "decrypted bytes (reference path)",
}

#: names whose *result* is protected again (safe to expose)
SANITIZER_CALL_NAMES = frozenset({
    "xex_encrypt", "xex_line_encrypt", "_reference_xex_encrypt",
    "encrypt_region", "wrap_key", "seal",
})

#: names whose result carries no payload information
CLEAN_CALL_NAMES = frozenset({
    "len", "range", "enumerate", "isinstance", "min", "max", "sorted",
    "reversed", "zip", "abs", "sum", "any", "all", "iter", "next",
    "getattr", "hasattr", "id", "hash", "repr",
    "constant_time_equal", "hmac_measure",
    "sha256", "sha512", "blake2b", "digest", "hexdigest",
})

#: union of names that make a flow solve worth running (prefilter)
SOURCE_PREFILTER_NAMES = frozenset(SOURCE_CALL_NAMES) | {"read", "copy",
                                                         "as_dict"}

_REGISTER_RECEIVERS = frozenset({"regs", "_regs", "saved_gprs"})
_REGISTER_SNAPSHOTS = frozenset({"copy", "as_dict"})

#: (callee name, receiver tokens or None=any, data-arg positions or
#:  None=every argument, what the sink is)
SINKS = (
    ("write", ("memory", "_memory"), (1,),
     "raw DRAM (bypasses the encrypting memory controller)"),
    ("write_frame", ("memory", "_memory"), (1,),
     "raw DRAM (bypasses the encrypting memory controller)"),
    ("dma_write", None, (1,),
     "the DMA port (device- and dom0-visible bus bytes)"),
    ("write", ("xenstore", "_xenstore", "xs", "store"), (1,),
     "XenStore (read-write for the toolstack)"),
    ("send", ("frontend", "_frontend", "backend", "_backend", "wire",
              "channel", "events"), (0,),
     "an unprotected ring/wire payload"),
    ("deliver_to_guest", ("wire",), (0,),
     "the relayed wire (driver-domain visible)"),
    ("write_sectors", ("disk", "_disk"), None,
     "dom0-visible disk blocks"),
    ("audit_event", None, None,
     "the audit log (observable by the operator)"),
    ("_fire", None, None,
     "an event-channel payload"),
)

_DATA_KWARG_NAMES = frozenset({"data", "payload", "value", "plaintext"})


def _callee_name(call):
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _literal_true_kwarg(call, name):
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return kw.value.value is True
    return False


def source_origin(call):
    """The origin description if this call is a taint source."""
    name = _callee_name(call)
    if name in SOURCE_CALL_NAMES:
        return SOURCE_CALL_NAMES[name]
    if name == "read" and _literal_true_kwarg(call, "c_bit"):
        return "C-bit plaintext read"
    if name in _REGISTER_SNAPSHOTS and \
            receiver_token(call.func) in _REGISTER_RECEIVERS:
        return "guest register snapshot"
    return None


def match_sink(call):
    """(data_positions, description) when the call is a sink."""
    name = _callee_name(call)
    if name is None:
        return None
    receiver = receiver_token(call.func)
    for sink_name, receivers, positions, description in SINKS:
        if name != sink_name:
            continue
        if receivers is not None and receiver not in receivers:
            continue
        return positions, description
    return None


def sink_data_args(call, positions):
    """The argument expressions a sink exposes."""
    if positions is None:
        return list(call.args) + [kw.value for kw in call.keywords]
    out = [call.args[i] for i in positions if i < len(call.args)]
    out += [kw.value for kw in call.keywords
            if kw.arg in _DATA_KWARG_NAMES]
    return out


class TaintAnalysis(ForwardAnalysis):
    """Forward taint propagation for one function."""

    def __init__(self, func_node, resolver, seed_params=False):
        self.func_node = func_node
        self.resolver = resolver
        self.seed_params = seed_params

    # -- lattice ---------------------------------------------------------------

    def initial(self, cfg):
        if not self.seed_params:
            return frozenset()
        args = self.func_node.args
        params = [a.arg for a in args.args + args.kwonlyargs]
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra.arg)
        return frozenset((p, ("param", p)) for p in params if p != "self")

    # -- expression evaluation -------------------------------------------------

    def eval_expr(self, expr, env):
        """The set of tags the value of ``expr`` may carry."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Constant):
            return frozenset()
        if isinstance(expr, (ast.Lambda, ast.Compare)):
            return frozenset()
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        tags = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                tags |= self.eval_expr(child, env)
        return tags

    def _eval_call(self, call, env):
        origin = source_origin(call)
        if origin is not None:
            return frozenset({("secret", origin, call.lineno)})
        name = _callee_name(call)
        if name in SANITIZER_CALL_NAMES or name in CLEAN_CALL_NAMES:
            return frozenset()
        summary = self.resolver(call) if self.resolver else None
        if summary is not None:
            if summary.returns_secret:
                return frozenset(
                    {("secret", "return of %s()" % name, call.lineno)})
            if summary.returns_param:
                return self._union_args(call, env)
            return frozenset()
        # unknown callee: the result may carry anything that went in,
        # including the receiver (``tainted.strip()`` stays tainted)
        tags = self._union_args(call, env)
        if isinstance(call.func, ast.Attribute):
            tags |= self.eval_expr(call.func.value, env)
        return tags

    def _union_args(self, call, env):
        tags = frozenset()
        for arg in call.args:
            tags |= self.eval_expr(arg, env)
        for kw in call.keywords:
            tags |= self.eval_expr(kw.value, env)
        return tags

    # -- transfer --------------------------------------------------------------

    def transfer(self, fact, node):
        stmt = node.stmt
        if stmt is None:
            return fact
        env = {}
        for var, tag in fact:
            env.setdefault(var, set()).add(tag)
        env = {var: frozenset(tags) for var, tags in env.items()}

        def rebind(bindings):
            for var, tags in bindings:
                env[var] = tags
            return frozenset((var, tag) for var, tags in env.items()
                             for tag in tags)

        if node.kind == "stmt":
            if isinstance(stmt, ast.Assign):
                tags = self.eval_expr(stmt.value, env)
                bindings = []
                for target in stmt.targets:
                    bindings += _bind_target(target, tags)
                return rebind(bindings)
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                return rebind(_bind_target(stmt.target,
                                           self.eval_expr(stmt.value, env)))
            if isinstance(stmt, ast.AugAssign) and \
                    isinstance(stmt.target, ast.Name):
                merged = env.get(stmt.target.id, frozenset()) | \
                    self.eval_expr(stmt.value, env)
                return rebind([(stmt.target.id, merged)])
            if isinstance(stmt, ast.Delete):
                bindings = [(t.id, frozenset()) for t in stmt.targets
                            if isinstance(t, ast.Name)]
                return rebind(bindings)
            return fact
        if node.kind == "loop-head" and \
                isinstance(stmt, (ast.For, ast.AsyncFor)):
            # iterating a tainted collection yields tainted elements
            return rebind(_bind_target(stmt.target,
                                       self.eval_expr(stmt.iter, env)))
        if node.kind == "with":
            bindings = []
            for item in stmt.items:
                if item.optional_vars is not None:
                    bindings += _bind_target(
                        item.optional_vars,
                        self.eval_expr(item.context_expr, env))
            return rebind(bindings)
        if node.kind == "handler" and getattr(stmt, "name", None):
            return rebind([(stmt.name, frozenset())])
        return fact


def _bind_target(target, tags):
    if isinstance(target, ast.Name):
        return [(target.id, tags)]
    if isinstance(target, (ast.Tuple, ast.List)):
        out = []
        for elt in target.elts:
            out += _bind_target(elt, tags)
        return out
    if isinstance(target, ast.Starred):
        return _bind_target(target.value, tags)
    return []      # attribute / subscript stores: taint is dropped


def _env_at(fact):
    env = {}
    for var, tag in fact:
        env.setdefault(var, set()).add(tag)
    return {var: frozenset(tags) for var, tags in env.items()}


def leaks_in_function(fi, module, ctx, resolver):
    """(lineno, origin, sink description) per secret-to-sink flow."""
    cfg = ctx.cfg_for(module, fi.node)
    analysis = TaintAnalysis(fi.node, resolver, seed_params=False)
    facts = solve_forward(cfg, analysis)
    leaks = []
    for node in cfg.iter_stmt_nodes():
        before = facts.get(node.nid)
        if before is None:
            continue
        env = _env_at(before)
        for call in calls_in(node):
            sink = match_sink(call)
            if sink is None:
                continue
            positions, description = sink
            tags = frozenset()
            for arg in sink_data_args(call, positions):
                tags |= analysis.eval_expr(arg, env)
            secrets = sorted(t for t in tags if t[0] == "secret")
            if secrets:
                _kind, origin, src_line = secrets[0]
                leaks.append((call.lineno, origin, src_line, description))
    return leaks


def returns_secret(fi, module, ctx, resolver):
    """Summary bit: may this function return secret-tainted data?"""
    cfg = ctx.cfg_for(module, fi.node)
    analysis = TaintAnalysis(fi.node, resolver, seed_params=True)
    facts = solve_forward(cfg, analysis)
    for node in cfg.iter_stmt_nodes():
        stmt = node.stmt
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        before = facts.get(node.nid)
        if before is None:
            continue
        tags = analysis.eval_expr(stmt.value, _env_at(before))
        if any(tag[0] == "secret" for tag in tags):
            return True
    return False
