"""The function index, call resolution and per-function summaries.

Flow-sensitive rules need to see *through* helper calls ("the value
came out of ``self._decrypt_block(...)``, and that helper returns
decrypted bytes").  Whole-program pointer analysis is far out of scope
for a linter, so resolution is deliberately narrow and misses on the
side of "unknown":

* ``self.helper(...)`` resolves to a method of the caller's own class
  (or, failing that, a project-wide *unique* method of that name);
* a bare ``helper(...)`` resolves to a module-level function of the
  caller's module, or a project-wide unique module-level function;
* ``anything.helper(...)`` resolves only when exactly one function of
  that name exists in the whole project.

Anything ambiguous stays unresolved, and the analyses treat unresolved
calls pessimistically for taint (arguments propagate to the result) and
neutrally for gates/charges (no credit, no blame).

Each resolved function carries a :class:`Summary` — does it *return*
secret-tainted data, does it return data derived from its parameters,
does it open/close a gate, does it charge the cycle model on every
normal path — computed to a least fixpoint so helper chains
(``a() -> b() -> xex_decrypt``) are handled.
"""

import ast
from collections import namedtuple

Summary = namedtuple(
    "Summary",
    "returns_secret returns_param opens_gate closes_gate always_charges")

EMPTY_SUMMARY = Summary(False, False, False, False, False)

#: Summary fixpoint round cap; summary lattices are tiny booleans over
#: a shallow call graph, so this is never reached in practice.
MAX_ROUNDS = 8


class FunctionInfo:
    """One top-level function or method (nested defs are not indexed)."""

    __slots__ = ("qualname", "module", "class_name", "name", "node")

    def __init__(self, module_name, class_name, node):
        self.module = module_name
        self.class_name = class_name
        self.name = node.name
        self.node = node
        if class_name:
            self.qualname = "%s:%s.%s" % (module_name, class_name, node.name)
        else:
            self.qualname = "%s:%s" % (module_name, node.name)

    def __repr__(self):
        return "<FunctionInfo %s>" % self.qualname


def _is_func(item):
    return isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))


class FunctionIndex:
    """Every indexed function plus the resolution lookup tables."""

    def __init__(self, project):
        self.functions = []
        self.by_qualname = {}
        self._by_module = {}          # module name -> [FunctionInfo]
        self._bare_by_module = {}     # (module, name) -> FunctionInfo
        self._bare_by_name = {}       # name -> [FunctionInfo] (bare only)
        self._methods_by_class = {}   # (module, class) -> {name: fi}
        self._all_by_name = {}        # name -> [FunctionInfo]
        for module in project.sorted_modules():
            for item in module.tree.body:
                if _is_func(item):
                    self._add(module.name, None, item)
                elif isinstance(item, ast.ClassDef):
                    for sub in item.body:
                        if _is_func(sub):
                            self._add(module.name, item.name, sub)

    def _add(self, module_name, class_name, node):
        fi = FunctionInfo(module_name, class_name, node)
        self.functions.append(fi)
        self.by_qualname[fi.qualname] = fi
        self._by_module.setdefault(module_name, []).append(fi)
        self._all_by_name.setdefault(fi.name, []).append(fi)
        if class_name is None:
            self._bare_by_module[(module_name, fi.name)] = fi
            self._bare_by_name.setdefault(fi.name, []).append(fi)
        else:
            self._methods_by_class.setdefault(
                (module_name, class_name), {})[fi.name] = fi

    def functions_in(self, module_name):
        return self._by_module.get(module_name, [])

    def resolve_ref(self, expr, module_name=None):
        """Resolve a *function reference* expression (not a call) —
        ``fn`` or ``mod.fn`` passed as a value, e.g. the ``fn`` argument
        of ``WorkUnit.of`` or a dispatch-table entry — with the same
        narrowness as :meth:`resolve`: own module first, then a
        project-wide unique name."""
        if isinstance(expr, ast.Name):
            if module_name is not None:
                fi = self._bare_by_module.get((module_name, expr.id))
                if fi is not None:
                    return fi
            candidates = self._bare_by_name.get(expr.id, ())
            if len(candidates) == 1:
                return candidates[0]
            return None
        if isinstance(expr, ast.Attribute):
            candidates = self._all_by_name.get(expr.attr, ())
            if len(candidates) == 1:
                return candidates[0]
        return None

    def resolve(self, call, caller):
        """The FunctionInfo a call statically targets, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if caller is not None:
                fi = self._bare_by_module.get((caller.module, name))
                if fi is not None:
                    return fi
            candidates = self._bare_by_name.get(name, ())
            if len(candidates) == 1:
                return candidates[0]
            return None
        if isinstance(func, ast.Attribute):
            name = func.attr
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self" \
                    and caller is not None and caller.class_name:
                methods = self._methods_by_class.get(
                    (caller.module, caller.class_name), {})
                fi = methods.get(name)
                if fi is not None:
                    return fi
            candidates = self._all_by_name.get(name, ())
            if len(candidates) == 1:
                return candidates[0]
        return None


def called_names(func_node):
    """Every callee name appearing anywhere in the body (coarse: used
    only as a prefilter deciding whether a dataflow solve is needed)."""
    names = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
            elif isinstance(node.func, ast.Name):
                names.add(node.func.id)
    return names


def _returns_mention_param(func_node):
    """Syntactic ``returns_param``: some return value mentions a
    parameter name (covers ``return bytes(data)``; laundering through
    a local is caught by the flow pass when a source is involved)."""
    args = func_node.args
    params = {a.arg for a in args.args + args.kwonlyargs}
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            params.add(extra.arg)
    params.discard("self")
    if not params:
        return False
    for node in ast.walk(func_node):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id in params:
                    return True
    return False


def compute_summaries(ctx):
    """qualname -> Summary, to a least fixpoint over the call graph.

    When ``ctx.preset_summaries`` carries cache-restored values for
    clean modules, those are constants of the fixpoint: only the
    remaining (dirty) functions are iterated.  A dirty function can
    depend on a preset one (the preset value is final by the cache-key
    argument), but never the reverse — a caller of dirty code is in the
    dirty code's reverse-dependency closure and therefore dirty itself.
    """
    from repro.analysis.dataflow import charges, taint, typestate

    index = ctx.index
    preset = ctx.preset_summaries or {}
    sums = {fi.qualname: preset.get(fi.qualname, EMPTY_SUMMARY)
            for fi in index.functions}
    dirty = [fi for fi in index.functions if fi.qualname not in preset]
    names_cache = {fi.qualname: called_names(fi.node) for fi in dirty}
    returns_param_cache = {fi.qualname: _returns_mention_param(fi.node)
                           for fi in dirty}

    def resolver_for(fi):
        def resolve(call):
            target = index.resolve(call, fi)
            if target is None:
                return None
            return sums.get(target.qualname, EMPTY_SUMMARY)
        return resolve

    for _round in range(MAX_ROUNDS):
        secret_names = {fi.name for fi in index.functions
                        if sums[fi.qualname].returns_secret}
        open_names = {fi.name for fi in index.functions
                      if sums[fi.qualname].opens_gate}
        charge_names = {fi.name for fi in index.functions
                        if sums[fi.qualname].always_charges}
        changed = False
        for fi in dirty:
            if fi.name in typestate.OPEN_CALLS or \
                    fi.name in typestate.CLOSE_CALLS:
                continue      # the primitives themselves stay EMPTY
            names = names_cache[fi.qualname]
            resolver = resolver_for(fi)

            returns_secret = False
            if names & taint.SOURCE_PREFILTER_NAMES or \
                    names & secret_names:
                returns_secret = taint.returns_secret(
                    fi, ctx.module_of(fi), ctx, resolver)

            opens_gate = False
            if names & typestate.OPEN_CALLS or names & open_names:
                opens_gate = typestate.opens_unbalanced(
                    fi, ctx.module_of(fi), ctx, resolver)

            closes_gate = bool(names & typestate.CLOSE_CALLS)

            always_charges = False
            if any("charge" in n for n in names) or names & charge_names:
                always_charges = charges.always_charges(
                    fi, ctx.module_of(fi), ctx, resolver)

            new = Summary(returns_secret, returns_param_cache[fi.qualname],
                          opens_gate, closes_gate, always_charges)
            if new != sums[fi.qualname]:
                sums[fi.qualname] = new
                changed = True
        if not changed:
            break
    return sums
