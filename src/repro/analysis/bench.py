"""Self-benchmark for the incremental analyzer
(``python -m repro.analysis.bench``).

Measures three in-process ``analyze()`` wall times over a *temporary
copy* of the live tree (the copy is edited; the live tree is never
touched):

* **cold** — empty cache directory, every module analyzed and written;
* **warm** — identical tree, every module served from the cache;
* **one module changed** — a comment appended to the module with the
  smallest reverse-dependency closure (deterministic tie-break by
  name), so the timing reflects the analyzer's floor for a minimal
  edit, not a lucky or unlucky blast radius.

Each timing is the best of ``--repeat`` runs (cache state is reset
appropriately between cold repeats).  The report also *proves* the
warm paths honest: the warm digest must equal the cold digest, and the
changed-run digest must equal an uncached run over the edited tree.
CI gates on ``speedup_warm >= 5`` and on the changed run re-analyzing
at most 10% of modules.

Wall-clock here is measurement of the analyzer itself — the same
carve-out as :mod:`repro.eval.perfbench`; nothing modelled is involved.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
# fidelint: ignore[FID007] -- benchmarking the analyzer's own host
# wall-clock cost is this module's entire purpose; fidelint models
# nothing here.
import time

from repro.analysis.engine import analyze, findings_digest
from repro.analysis.impact import ImpactGraph
from repro.analysis.project import Project

SCHEMA = "fidelint-bench/1"


def _timed(fn, repeat):
    best, value = None, None
    for _ in range(max(1, repeat)):
        start = time.monotonic()         # fidelint: ignore[FID007]
        value = fn()
        elapsed = time.monotonic() - start  # fidelint: ignore[FID007]
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def quietest_module(project):
    """The module whose edit dirties the fewest cache keys: smallest
    reverse closure, ties broken by name so the choice is stable run
    to run."""
    graph = ImpactGraph.build(project)
    return min(sorted(project.modules),
               key=lambda name: (len(graph.reverse_closure([name])),
                                 name))


def run_bench(root, repeat=3):
    workdir = tempfile.mkdtemp(prefix="fidelint-bench-")
    try:
        tree = os.path.join(workdir, "src")
        shutil.copytree(root, tree,
                        ignore=shutil.ignore_patterns("__pycache__"))
        cache_dir = os.path.join(workdir, "cache")

        def cold():
            if os.path.isdir(cache_dir):
                shutil.rmtree(cache_dir)
            return analyze(tree, baseline_path=None, cache_dir=cache_dir)

        cold_s, cold_result = _timed(cold, repeat)
        warm_s, warm_result = _timed(
            lambda: analyze(tree, baseline_path=None,
                            cache_dir=cache_dir), repeat)

        project = Project.load(tree)
        target = quietest_module(project)
        with open(project.modules[target].path, "a",
                  encoding="utf-8") as handle:
            handle.write("\n# fidelint-bench touch\n")

        changed_s, changed_result = _timed(
            lambda: analyze(tree, baseline_path=None,
                            cache_dir=cache_dir), 1)
        uncached_result = analyze(tree, baseline_path=None)

        modules = changed_result.modules_scanned
        reanalyzed = changed_result.cache_stats["modules_reanalyzed"]
        return {
            "schema": SCHEMA,
            "modules": modules,
            "edited_module": target,
            "seconds": {
                "cold": round(cold_s, 6),
                "warm": round(warm_s, 6),
                "one_module_changed": round(changed_s, 6),
            },
            "speedup_warm": round(cold_s / max(warm_s, 1e-9), 2),
            "speedup_one_module_changed": round(
                cold_s / max(changed_s, 1e-9), 2),
            "modules_reanalyzed": reanalyzed,
            "reanalyzed_fraction": round(reanalyzed / modules, 4),
            "digests": {
                "cold": findings_digest(cold_result),
                "warm": findings_digest(warm_result),
                "one_module_changed": findings_digest(changed_result),
                "one_module_changed_uncached":
                    findings_digest(uncached_result),
            },
            "warm_matches_cold":
                findings_digest(warm_result) ==
                findings_digest(cold_result),
            "changed_matches_uncached":
                findings_digest(changed_result) ==
                findings_digest(uncached_result),
            "warm_cache_stats": warm_result.cache_stats,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.bench",
        description="Benchmark fidelint's incremental cache: cold vs "
                    "warm vs one-module-changed, with digest proofs.")
    parser.add_argument("--root", default=None,
                        help="tree to copy and benchmark (default: the "
                             "src/ this tool runs from)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N runs per timing")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the JSON report to PATH")
    args = parser.parse_args(argv)

    from repro.analysis.cli import _default_root
    report = run_bench(os.path.abspath(args.root or _default_root()),
                       repeat=args.repeat)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    ok = report["warm_matches_cold"] and \
        report["changed_matches_uncached"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
