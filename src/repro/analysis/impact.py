"""Module-level dependency-impact engine for incremental fidelint.

The incremental cache (:mod:`repro.analysis.cache`) is sound only if a
module's cache key covers *everything its findings can depend on*.
This module computes that dependency relation — and its reverse, which
is what ``--changed-since`` and ``--impacted-tests`` need: "which
modules (and which tests) can a given diff possibly affect?"

A module ``A`` **depends on** module ``B`` when any of:

* ``A`` imports ``B`` (the FID003 layering inputs; absent targets are
  kept as *phantom* nodes so a module that later appears — or a module
  that was deleted while still imported — perturbs its importers' keys
  and shows up in reverse closures);
* a function of ``A`` has a call-graph edge into ``B`` — the same
  deliberately narrow resolution the summary/effect fixpoints use,
  including dispatch-table over-approximation, so everything a flow
  rule can read through a resolved call is covered.  The edges are
  rebuilt from *current* sources every run, which is what makes
  unique-name resolution sound here: any edit that adds or removes a
  colliding definition changes the current edge set and therefore the
  closure fingerprint;
* ``A`` constructs a :class:`~repro.runner.plan.WorkUnit` whose ``fn``
  resolves into ``B`` (FID013 reads the target's transitive effects);
* ``A`` is the state-registry module and ``B`` is a scoped
  (hw/sev/core/common) module — FID014's stale-entry findings on the
  registry scan every scoped module's globals.

Rule code, the dataflow engine, the live state registry and
``pyproject.toml`` are *not* edges: they are global inputs folded into
the environment fingerprint (:func:`repro.analysis.cache
.environment_fingerprint`), so changing any of them misses every key
— the "force a full run" behaviour the equivalence CI job relies on.
"""

import ast
import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.analysis.rules.shard_purity import workunit_sites
from repro.analysis.rules.state_inventory import (
    REGISTRY_MODULE, SCOPED_SUBPACKAGES)

_KEY_SCHEMA = "fidelint-module-key/1"

#: a change to any of these invalidates every cached artifact (they
#: are analyzer inputs, not analyzed modules)
FORCE_FULL_FILES = frozenset({"pyproject.toml", "setup.py"})
FORCE_FULL_PREFIXES = ("src/repro/analysis/",)
FORCE_FULL_MODULES = frozenset({"src/repro/common/state_registry.py"})

#: repo files whose changes are covered by the docs-consistency tests
DOC_PATHS = ("docs/", "examples/", "benchmarks/")
DOC_FILES = frozenset({"README.md", "DESIGN.md"})
DOCS_TEST = "tests/test_docs_consistency.py"


class ImpactError(ReproError):
    """Impact computation could not run (usually: git unavailable)."""


class ImpactGraph:
    """The module-level depends-on relation plus closures and keys."""

    def __init__(self, project, deps):
        self.project = project
        self.deps = deps                  # name -> frozenset(names)
        self._closures = {}
        self._dependents = None

    @classmethod
    def build(cls, project):
        """Compute the relation from current sources (parses every
        module; the cache layer snapshots the result keyed by the
        whole-tree fingerprint so fully-warm runs skip this)."""
        ctx = project.dataflow
        index = ctx.index
        callgraph = ctx.callgraph
        deps = {name: set() for name in project.modules}
        for name, module in project.modules.items():
            for target, _line in module.imported_modules():
                if target != name:
                    deps[name].add(target)
            for _call, fn_expr in workunit_sites(module):
                target = index.resolve_ref(fn_expr, name)
                if target is not None and target.module != name:
                    deps[name].add(target.module)
        for fi in index.functions:
            for callee in callgraph.callees(fi.qualname):
                callee_module = callee.split(":", 1)[0]
                if callee_module != fi.module:
                    deps[fi.module].add(callee_module)
        if REGISTRY_MODULE in deps:
            for name, module in project.modules.items():
                if name != REGISTRY_MODULE and \
                        module.subpackage in SCOPED_SUBPACKAGES:
                    deps[REGISTRY_MODULE].add(name)
        return cls(project,
                   {name: frozenset(targets)
                    for name, targets in deps.items()})

    def to_dict(self):
        return {name: sorted(targets)
                for name, targets in self.deps.items()}

    @classmethod
    def from_dict(cls, project, payload):
        return cls(project, {name: frozenset(targets)
                             for name, targets in payload.items()})

    # -- closures ----------------------------------------------------------------

    def closure(self, name):
        """Transitive dependencies of ``name`` (phantom names included,
        ``name`` itself excluded)."""
        cached = self._closures.get(name)
        if cached is not None:
            return cached
        seen = set()
        frontier = [name]
        while frontier:
            for dep in self.deps.get(frontier.pop(), ()):
                if dep != name and dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        out = frozenset(seen)
        self._closures[name] = out
        return out

    def dependents(self, name):
        if self._dependents is None:
            table = {}
            for source, targets in self.deps.items():
                for target in targets:
                    table.setdefault(target, set()).add(source)
            self._dependents = {key: frozenset(value)
                                for key, value in table.items()}
        return self._dependents.get(name, frozenset())

    def reverse_closure(self, names):
        """Every module whose findings a change to ``names`` can
        affect — the changed names themselves included (phantom and
        deleted names stay in the set for test matching)."""
        seen = set(names)
        frontier = list(names)
        while frontier:
            for dependent in self.dependents(frontier.pop()):
                if dependent not in seen:
                    seen.add(dependent)
                    frontier.append(dependent)
        return frozenset(seen)

    # -- fingerprints ------------------------------------------------------------

    def _hash_of(self, name):
        module = self.project.modules.get(name)
        return module.content_hash if module is not None else "ABSENT"

    def module_key(self, name, salt):
        """The content-addressed cache key for one module's artifacts:
        any edit to the module, to anything in its transitive
        dependency closure (including a dependency appearing or
        vanishing), or to the analyzer environment (``salt``) produces
        a different key — which is why a cache hit is sound, not
        heuristic."""
        closure_items = [[dep, self._hash_of(dep)]
                         for dep in sorted(self.closure(name))]
        payload = json.dumps(
            [_KEY_SCHEMA, salt, name, self._hash_of(name), closure_items],
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -------------------------------------------------------- diff classification

@dataclass
class Impact:
    """What one diff can reach, at module and test granularity."""

    changed_paths: list = field(default_factory=list)
    force_full: bool = False
    force_reason: str = ""
    changed_modules: list = field(default_factory=list)   # incl. deleted
    impacted_names: list = field(default_factory=list)    # incl. phantom
    impacted_modules: list = field(default_factory=list)  # existing only
    impacted_tests: list = field(default_factory=list)

    def to_dict(self):
        return {
            "changed_paths": list(self.changed_paths),
            "force_full": self.force_full,
            "force_reason": self.force_reason,
            "changed_modules": list(self.changed_modules),
            "impacted_modules": list(self.impacted_modules),
            "impacted_tests": list(self.impacted_tests),
        }


def git_changed_paths(repo_root, rev):
    """Paths (repo-relative) changed between ``rev`` and the working
    tree, untracked files included (a new module can change unique-name
    resolution in modules that never mention it)."""
    def run(*argv):
        proc = subprocess.run(
            ("git",) + argv, cwd=repo_root, capture_output=True,
            text=True)
        if proc.returncode != 0:
            raise ImpactError("git %s failed: %s"
                              % (" ".join(argv), proc.stderr.strip()))
        return [line for line in proc.stdout.splitlines() if line]

    changed = run("diff", "--name-only", "--no-renames", rev, "--")
    changed += run("ls-files", "--others", "--exclude-standard")
    return sorted(set(changed))


def _module_name_for(rel_to_src):
    parts = rel_to_src.replace(os.sep, "/").split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-len(".py")]
    return ".".join(parts)


def assess(project, graph, changed_paths, repo_root):
    """Pure classification of a changed-path list (the git layer is
    separate so tests can feed synthetic diffs)."""
    impact = Impact(changed_paths=sorted(changed_paths))
    src_prefix = os.path.relpath(project.root, repo_root).replace(
        os.sep, "/")
    if src_prefix == ".":
        src_prefix = ""
    else:
        src_prefix += "/"

    changed_modules = set()
    for path in impact.changed_paths:
        normalized = path.replace(os.sep, "/")
        if normalized in FORCE_FULL_FILES or \
                normalized in FORCE_FULL_MODULES or \
                normalized.startswith(FORCE_FULL_PREFIXES):
            impact.force_full = True
            impact.force_reason = (
                "%s is an analyzer input (rule/engine code or build "
                "configuration): every cached artifact is invalid"
                % normalized)
        if normalized.startswith(src_prefix) and \
                normalized.endswith(".py"):
            name = _module_name_for(normalized[len(src_prefix):])
            if name == "repro" or name.startswith("repro."):
                changed_modules.add(name)

    impact.changed_modules = sorted(changed_modules)
    if impact.force_full:
        impacted = frozenset(project.modules)
    elif changed_modules:
        impacted = graph.reverse_closure(changed_modules)
    else:
        impacted = frozenset()
    impact.impacted_names = sorted(impacted)
    impact.impacted_modules = sorted(
        name for name in impacted if name in project.modules)
    impact.impacted_tests = impacted_tests(
        repo_root, impact.impacted_names, impact.changed_paths,
        impact.force_full)
    return impact


# ------------------------------------------------------------ test selection

def _test_imports(path, tests_root):
    """Absolute ``repro.*`` dotted names one test file references,
    including ``from repro.pkg import submodule`` spellings (both the
    package and the candidate submodule name are recorded; non-module
    attribute names simply never match anything)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            tree = ast.parse(handle.read(), filename=path)
        except SyntaxError:
            return frozenset()
    out = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or \
                        alias.name.startswith("repro."):
                    out.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and not node.level:
            base = node.module or ""
            if base == "repro" or base.startswith("repro."):
                out.add(base)
                for alias in node.names:
                    out.add("%s.%s" % (base, alias.name))
    return frozenset(out)


def build_test_import_map(repo_root):
    """(test_files, imports_by_file, conftest_imports_by_dir) over
    ``tests/`` — the static test -> module reachability map."""
    tests_root = os.path.join(repo_root, "tests")
    test_files, imports, conftests = [], {}, {}
    if not os.path.isdir(tests_root):
        return test_files, imports, conftests
    for dirpath, dirnames, filenames in os.walk(tests_root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != "__pycache__" and
                             not d.startswith("."))
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
            refs = _test_imports(path, tests_root)
            if filename.startswith("test_"):
                test_files.append(rel)
                imports[rel] = refs
            elif filename == "conftest.py":
                rel_dir = os.path.relpath(
                    dirpath, repo_root).replace(os.sep, "/")
                conftests[rel_dir] = refs
    return sorted(test_files), imports, conftests


def impacted_tests(repo_root, impacted_names, changed_paths,
                   force_full):
    """Test files (repo-relative) a diff can affect.

    A test is selected when its own imports — or those of a conftest
    on its directory chain — reach the impacted module set (which
    already includes dispatch-table and WorkUnit indirection via the
    reverse closure), when the test file itself changed, or when a
    fixture/helper in its test directory changed.  Doc-ish changes
    select the docs-consistency tests.  ``force_full`` selects
    everything — the caller runs the entire suite.
    """
    test_files, imports, conftests = build_test_import_map(repo_root)
    if force_full:
        return list(test_files)
    impacted = frozenset(impacted_names)
    selected = set()

    def conftest_refs(test_rel):
        refs = set()
        parts = test_rel.split("/")[:-1]
        for cut in range(len(parts), 0, -1):
            refs |= conftests.get("/".join(parts[:cut]), frozenset())
        return refs

    for test_rel in test_files:
        if (imports.get(test_rel, frozenset()) |
                conftest_refs(test_rel)) & impacted:
            selected.add(test_rel)

    for path in changed_paths:
        normalized = path.replace(os.sep, "/")
        if normalized.startswith("tests/"):
            base = os.path.basename(normalized)
            if base.startswith("test_") and normalized.endswith(".py"):
                if normalized in test_files:
                    selected.add(normalized)
            else:
                # conftest, fixture or helper: everything in the same
                # top-level test directory could read it
                parts = normalized.split("/")
                scope = "/".join(parts[:2]) if len(parts) > 2 else "tests"
                selected.update(
                    test_rel for test_rel in test_files
                    if test_rel.startswith(scope + "/") or scope == "tests")
        elif normalized in DOC_FILES or \
                normalized.startswith(DOC_PATHS):
            if DOCS_TEST in test_files:
                selected.add(DOCS_TEST)
    return sorted(selected)
