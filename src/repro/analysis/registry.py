"""The fidelint rule registry.

A rule is a callable ``check(module, project)`` yielding
:class:`~repro.analysis.findings.Finding` objects, registered with the
:func:`rule` decorator.  Registration order is the stable report order;
each rule carries an id (``FIDnnn``), a short kebab-case name, a default
severity, a one-paragraph description used by ``--list-rules``, an
optional *fixed example* shown by ``--explain``, and a
``needs_dataflow`` capability flag — the engine builds the shared
per-run CFG/summary cache only when a selected rule asks for it.
"""

from dataclasses import dataclass, field

from repro.analysis.findings import Severity

_REGISTRY = {}


@dataclass(frozen=True)
class Rule:
    rule_id: str
    name: str
    severity: Severity
    description: str
    check: object
    needs_dataflow: bool = False
    needs_effects: bool = False
    example: str = ""
    module: str = field(default="")    # defining module, for --explain

    def run(self, module, project):
        return self.check(module, project)


def rule(rule_id, name, severity, description, needs_dataflow=False,
         needs_effects=False, example=""):
    """Class-less rule registration decorator."""
    def register(func):
        if rule_id in _REGISTRY:
            raise ValueError("duplicate rule id %s" % rule_id)
        _REGISTRY[rule_id] = Rule(rule_id, name, severity, description,
                                  func, needs_dataflow=needs_dataflow,
                                  needs_effects=needs_effects,
                                  example=example,
                                  module=func.__module__)
        return func
    return register


def all_rules():
    """Registered rules, in registration (= report) order."""
    import repro.analysis.rules  # noqa: F401  -- triggers registration
    return list(_REGISTRY.values())


def get_rule(rule_id):
    import repro.analysis.rules  # noqa: F401
    return _REGISTRY[rule_id]
