"""FID008: privileged-opcode literals (static twin of invariant I4).

The binary scanner proves at runtime that each restricted instruction
encoding occurs exactly once in executable memory.  Its source-level
twin: the byte encodings themselves may be *spelled* in exactly two
modules — ``repro.common.types`` (the authoritative table) and
``repro.core.binscan`` (the scanner).  Any other module that needs an
encoding must reference ``PRIV_OPCODES``, so the table stays the single
source of truth and a grep for the bytes has two known answers.
Attack modules that implant rogue encodings build them from the table —
which is exactly what a real adversary reusing Fidelius's own bytes
would do.
"""

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule
from repro.common.types import PRIV_OPCODES

ALLOWED_MODULES = frozenset({"repro.common.types", "repro.core.binscan"})

#: encoding bytes -> human name, for messages
ENCODINGS = {encoding: op.value for op, encoding in PRIV_OPCODES.items()}


@rule("FID008", "opcode-monopoly", Severity.ERROR,
      "Byte literal containing a restricted privileged-instruction "
      "encoding outside repro.common.types / repro.core.binscan.",
      example="""
      # BAD: hand-rolled privileged encoding dodges the scanner tables
      payload = b"\\x0f\\x01\\xd8"      # VMRUN
      # GOOD: reference the single source of truth
      payload = RESTRICTED_OPCODES["vmrun"]
      """)
def check(module, project):
    if module.name in ALLOWED_MODULES:
        return
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Constant) and
                isinstance(node.value, bytes)):
            continue
        for encoding, name in ENCODINGS.items():
            if encoding in node.value:
                yield Finding(
                    "FID008", "opcode-monopoly", Severity.ERROR,
                    module.name, module.rel_path, node.lineno,
                    "byte literal embeds the %s encoding %r; reference "
                    "PRIV_OPCODES instead" % (name, encoding))
                break
