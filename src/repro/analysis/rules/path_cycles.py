"""FID012: path-complete cycle accounting in the hardware layer.

The flow upgrade of FID004.  FID004 accepts a ``repro.hw`` method as
priced when a charge-like call appears *anywhere* in its body — so a
fast path added later (``if cached: return line`` before the charge)
silently stops being priced and the Table 4/5 timing claims quietly
rot.  This rule asks the path-complete question: in every public
``repro.hw`` method that participates in the cycle model (it contains a
charge-like call, directly or through an always-charging helper such as
``MemoryController.dma_write``), does **every normal path that does
hardware work** pass a charge first?

Approximations, shared with :mod:`repro.analysis.dataflow.charges`:
loops are assumed to run at least one iteration (zero-trip ``bypass``
edges are ignored); paths that raise are free; ``len``/``range``-style
pure queries are not "work".  Methods whose un-priced path is a
reviewed judgement call live in the allowlist below with the reason —
the same contract as FID004's allowlist.
"""

import ast

from repro.analysis.dataflow import charges
from repro.analysis.dataflow.summaries import called_names
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: "module:Class.method" -> why an un-priced path is acceptable.
ALLOWLIST = {}

_EXAMPLE = """\
def flush_root(self, root_pfn):
    stale = [key for key in self._entries if key[0] == root_pfn]
    if not stale:
        return                      # the free path does no work
    self.cycles.charge(TLB_ENTRY_FLUSH_CYCLES * len(stale), "flush")
    for key in stale:
        del self._entries[key]      # every working path is priced
"""


@rule("FID012", "path-cycle-accounting", Severity.WARNING,
      "A public repro.hw method that participates in the cycle model "
      "has a path that does hardware work without charging.",
      needs_dataflow=True, example=_EXAMPLE)
def check(module, project):
    if module.subpackage != "hw":
        return
    ctx = project.dataflow
    for fi in ctx.index.functions_in(module.name):
        if fi.class_name is None or fi.name.startswith("_"):
            continue
        if fi.qualname in ALLOWLIST:
            continue
        resolver = ctx.resolver_for(fi)
        if not _in_cycle_model(fi, resolver):
            continue      # not in the cycle model at all: FID004's beat
        lines = charges.uncharged_paths(fi, module, ctx, resolver)
        if lines:
            yield Finding(
                "FID012", "path-cycle-accounting", Severity.WARNING,
                module.name, module.rel_path, lines[0],
                "%s.%s has a path exiting here that does work without "
                "charging the cycle model (its charge calls sit on "
                "other paths)" % (fi.class_name, fi.name))


def _in_cycle_model(fi, resolver):
    """Whether the method participates in the cycle model: it calls
    something named like a charge, or a call *resolves* (same policy
    the transfer functions use) to an always-charging helper.  Bare
    name matching against the always-charging set is deliberately not
    enough — half the tree defines a ``read``/``write`` and only some
    of them price DRAM."""
    if any("charge" in n for n in called_names(fi.node)):
        return True
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Call):
            summary = resolver(node)
            if summary is not None and summary.always_charges:
                return True
    return False
