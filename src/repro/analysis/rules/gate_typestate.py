"""FID011: gate typestate — every ``_enter`` closed on every path.

A Fidelius gate suspends an enforcement mechanism (clears ``CR0.WP``,
maps an unmapped page, switches stacks with interrupts off); leaving
one open past a function's exit — *especially* down an exception path —
is precisely the "retrofit seam" failure mode the paper's Section 4.1.3
gates exist to prevent.  The syntactic FID002 answers "who may call the
mutators"; this rule answers "is the re-protect call reached on every
CFG path out", which no amount of call-site matching can.

Mechanics (see :mod:`repro.analysis.dataflow.typestate`): facts are
sets of possibly-open ``(kind, line)`` gates; ``_exit`` closes,
``with``-statement gates are balanced by construction (the cleanup node
sits on every path out of the block, exceptional included), and a
helper whose summary opens a gate passes the obligation to its caller.
A gate still open at the normal exit or at the raise-exit is a finding
at the ``_enter`` line.

``_enter``/``_exit`` themselves are exempt (they are the primitive),
and the attack corpus is out of scope (the adversary does not honor
gate discipline; that is the point of the attacks).
"""

from repro.analysis.dataflow import typestate
from repro.analysis.dataflow.summaries import called_names
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

EXCLUDED_SUBPACKAGES = frozenset({"attacks", "eval", "workloads",
                                  "analysis"})

_EXAMPLE = """\
self._enter("type1")
try:
    body()
finally:
    self._exit("type1")   # reached on the exception path too
"""


@rule("FID011", "gate-typestate", Severity.ERROR,
      "A gate _enter is not matched by _exit on every CFG path out of "
      "the function (exceptional paths included).",
      needs_dataflow=True, example=_EXAMPLE)
def check(module, project):
    if module.subpackage in EXCLUDED_SUBPACKAGES:
        return
    ctx = project.dataflow
    for fi in ctx.index.functions_in(module.name):
        if fi.name in typestate.OPEN_CALLS or \
                fi.name in typestate.CLOSE_CALLS:
            continue
        names = called_names(fi.node)
        if not names & typestate.OPEN_CALLS and \
                not names & _opening_names(ctx):
            continue
        resolver = ctx.resolver_for(fi)
        for line, kind, how in typestate.unbalanced_opens(
                fi, module, ctx, resolver):
            label = "gate %r" % kind if isinstance(kind, str) else "gate"
            yield Finding(
                "FID011", "gate-typestate", Severity.ERROR,
                module.name, module.rel_path, line,
                "%s opened here can leave %s without _exit "
                "(close it in a finally/with)" % (label, how))


def _opening_names(ctx):
    names = getattr(ctx, "_open_names_cache", None)
    if names is None:
        sums = ctx.summaries
        names = {fi.name for fi in ctx.index.functions
                 if sums[fi.qualname].opens_gate}
        ctx._open_names_cache = names
    return names
