"""FID015: flow-sensitive unseeded entropy — no laundered ambient bits.

FID007 is syntactic: it bans the *spelling* of ambient nondeterminism
(``import time``, ``os.urandom(...)``, unseeded ``random.Random()``).
What it cannot see is laundering — ambient bits flowing through locals
and helpers until they *look* like a sanctioned seed:

    reader = os.urandom           # an alias, not a call: FID007 blind
    seed = reader(8)
    rng = random.Random(seed)     # "seeded" — with entropy

This rule runs the ambient-entropy taint analysis
(:class:`~repro.analysis.dataflow.effects.AmbientEntropyAnalysis`) over
every function that mentions an ambient source — the same lattice and
CFG machinery as FID010, with clock/entropy calls, aliased references
to them, and calls to ``returns_entropy`` helpers as sources — and
fires when a tainted value reaches either determinism-critical sink:

* the seed of ``random.Random(...)`` or an ``rng.seed(...)`` call —
  an RNG that *pretends* to be seeded is worse than an unseeded one,
  because the differential oracles will trust it;
* simulation state — a ``self.attr`` store or a module-global
  container — outside the timing-allowlisted modules.

Direct unseeded/wall-clock *calls* stay FID007's findings; FID015 only
reports flows, so the two rules never double-report one line.
"""

from repro.analysis.dataflow.effects import (
    _mentions_ambient, ambient_entropy_findings)
from repro.analysis.dataflow.summaries import called_names
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule
from repro.analysis.rules.shard_purity import TIMING_ALLOWED_MODULES


@rule("FID015", "entropy-flow", Severity.ERROR,
      "Flow-sensitive ambient entropy: clock/urandom-derived values "
      "must not reach RNG seeds or simulation state, even through "
      "aliases and helper calls.",
      needs_effects=True,
      example="""
      # BAD: laundering — the RNG is 'seeded' with ambient entropy
      seed = int.from_bytes(os.urandom(8), 'big')
      rng = random.Random(seed)
      # GOOD: derive the seed from the run's own seed plan
      rng = random.Random(plan.seed_for('tracegen'))
      """)
def check(module, project):
    if module.name in TIMING_ALLOWED_MODULES:
        return
    ctx = project.dataflow
    entropy_names = {qual.split(":")[-1].split(".")[-1]
                     for qual, summary in ctx.effects.items()
                     if summary.returns_entropy}
    for fi in ctx.index.functions_in(module.name):
        if not (_mentions_ambient(fi.node) or
                called_names(fi.node) & entropy_names):
            continue
        for lineno, what, where in ambient_entropy_findings(
                fi, module, ctx):
            yield Finding(
                "FID015", "entropy-flow", Severity.ERROR, module.name,
                module.rel_path, lineno,
                "ambient entropy (%s) reaches %s in %s"
                % (what, where, fi.qualname))
