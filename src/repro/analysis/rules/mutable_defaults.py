"""FID006: no mutable default arguments.

A mutable default is shared across calls; in a simulator whose whole
value is reproducible state, a list default that accumulates between
domains is a silent cross-run contamination channel.
"""

import ast

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque",
     "OrderedDict", "Counter"})


def _is_mutable(node):
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func) or ""
        return name.split(".")[-1] in MUTABLE_CALLS
    return False


@rule("FID006", "mutable-default", Severity.WARNING,
      "Mutable default argument (list/dict/set/… literal or constructor) "
      "shared across calls.",
      example="""
      # BAD: one dict shared by every call
      def __init__(self, overrides={}):
          self._overrides = overrides
      # GOOD
      def __init__(self, overrides=None):
          self._overrides = dict(overrides or {})
      """)
def check(module, project):
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + \
            [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable(default):
                name = getattr(node, "name", "<lambda>")
                yield Finding(
                    "FID006", "mutable-default", Severity.WARNING,
                    module.name, module.rel_path, default.lineno,
                    "mutable default argument in %s()" % name)
