"""FID007: determinism — no ambient randomness, no wall-clock time.

Every run of the simulator must be bit-reproducible from its seeds: the
evaluation tables are diffed against committed goldens, and heisenbugs
in a security argument are disqualifying.  The *only* sanctioned source
of randomness is an explicitly seeded ``random.Random(seed)`` instance
(the workloads' seeded helpers, the machine RNG, the guest owner's
tooling); simulated time comes from the cycle counter, never the host
clock.

Forbidden anywhere under ``src/repro``: module-level ``random.*``
functions, unseeded ``random.Random()``, ``from random import ...``,
the ``time`` module, ``datetime.now``-style wall-clock reads,
``os.urandom``, ``uuid.uuid4`` and the ``secrets`` module.
"""

import ast

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

WALLCLOCK_MODULES = frozenset({"time", "secrets"})
WALLCLOCK_CALLS = frozenset({
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "os.urandom", "uuid.uuid4", "uuid.uuid1",
})


def _finding(module, lineno, message):
    return Finding("FID007", "determinism", Severity.ERROR, module.name,
                   module.rel_path, lineno, message)


@rule("FID007", "determinism", Severity.ERROR,
      "Ambient nondeterminism: unseeded random use, from-random imports, "
      "time/secrets modules, wall-clock reads, os.urandom, uuid4.",
      example="""
      # BAD: different bytes every run — results unreproducible
      nonce = os.urandom(16)
      # GOOD: draw from the machine's seeded RNG
      nonce = machine.rng.randbytes(16)
      """)
def check(module, project):
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in WALLCLOCK_MODULES:
                    yield _finding(
                        module, node.lineno,
                        "import of %r: simulated time comes from the "
                        "cycle counter, randomness from seeded "
                        "random.Random" % alias.name)
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if top in WALLCLOCK_MODULES:
                yield _finding(
                    module, node.lineno,
                    "import from %r is forbidden" % node.module)
            elif top == "random":
                yield _finding(
                    module, node.lineno,
                    "from random import ...: use a qualified, seeded "
                    "random.Random(seed) so seeding is auditable")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            tail2 = ".".join(name.split(".")[-2:])
            if tail2 == "random.Random" and not node.args and \
                    not node.keywords:
                yield _finding(
                    module, node.lineno,
                    "unseeded random.Random(): pass an explicit seed")
            elif tail2 in WALLCLOCK_CALLS:
                yield _finding(
                    module, node.lineno,
                    "wall-clock / entropy read %s()" % tail2)
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name and name.startswith("random.") and \
                    name != "random.Random":
                yield _finding(
                    module, node.lineno,
                    "%s: module-level random functions share hidden "
                    "global state; use a seeded random.Random" % name)
