"""FID014: snapshot-state inventory — no anonymous module-global state.

Snapshot/restore (ROADMAP item 5) can only be *provably* complete if
the set of process-global mutable bindings in the simulator core is a
closed, audited list.  This rule makes the list self-maintaining:
every module-level mutable binding in ``repro.hw`` / ``repro.sev`` /
``repro.core`` / ``repro.common`` — container displays, mutable
constructor calls (``dict()``, ``OrderedDict()``...), and scalars
rebound through ``global`` — must have a
:mod:`~repro.common.state_registry` entry carrying one of the four
restore classifications (``derived-cache``, ``counters``, ``rng``,
``constant``), and every registry entry must still match a real
binding (stale entries fire on the registry module itself, so the
manifest cannot rot).

A ``reset`` annotation, when present, must name a function defined in
the registered module — it is the hook FID013 accepts for shard-legal
caches and the hook restore will call.

``fidelint --state-report state.json`` emits the merged inventory
(registered + unregistered + stale) as the machine-readable seed
artifact for the snapshot work; CI uploads it and fails on any
unregistered binding via the strict FID014 step.
"""

import ast

from repro.common import state_registry
from repro.analysis.dataflow.effects import module_mutable_globals
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: the packages restore must be able to rebuild exactly ("fleet" rides
#: along so its policy dispatch table is inventoried like the others)
SCOPED_SUBPACKAGES = frozenset({"hw", "sev", "core", "common", "fleet"})

#: where stale-registry findings attach
REGISTRY_MODULE = "repro.common.state_registry"


def _finding(module, lineno, message):
    return Finding("FID014", "state-inventory", Severity.ERROR,
                   module.name, module.rel_path, lineno, message)


def inventory(project):
    """The merged view the report and the rule share:
    (registered, unregistered, stale) lists of dicts, each sorted."""
    registered, unregistered = [], []
    seen = set()
    for module in project.sorted_modules():
        if module.subpackage not in SCOPED_SUBPACKAGES:
            continue
        for name, (lineno, kind) in sorted(
                module_mutable_globals(module).items()):
            seen.add((module.name, name))
            entry = state_registry.lookup(module.name, name)
            record = {"module": module.name, "name": name,
                      "line": lineno, "kind": kind}
            if entry is None:
                unregistered.append(record)
            else:
                record.update({
                    "classification": entry.classification,
                    "reset": entry.reset, "reason": entry.reason,
                })
                registered.append(record)
    stale = []
    for entry in state_registry.all_entries():
        if entry.module in project.modules and \
                (entry.module, entry.name) not in seen:
            stale.append({"module": entry.module, "name": entry.name,
                          "classification": entry.classification})
    return registered, unregistered, stale


def _reset_defined(project, entry):
    module = project.modules.get(entry.module)
    if module is None:
        return True        # can't check what isn't in the tree
    for item in module.tree.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and item.name == entry.reset:
            return True
    return False


@rule("FID014", "state-inventory", Severity.ERROR,
      "Every module-level mutable binding in repro.hw/sev/core/common "
      "must be registered in repro.common.state_registry with a "
      "restore classification; stale entries fail too.",
      example="""
      # BAD: anonymous module-global cache — restore cannot know it
      _TLB_SCRATCH = {}
      # GOOD: register it (repro/common/state_registry.py):
      #   ("repro.hw.tlb", "_TLB_SCRATCH", "derived-cache",
      #    "clear_tlb_scratch", "recomputable walk scratchpad"),
      """)
def check(module, project):
    if module.subpackage in SCOPED_SUBPACKAGES:
        for name, (lineno, kind) in sorted(
                module_mutable_globals(module).items()):
            entry = state_registry.lookup(module.name, name)
            if entry is None:
                yield _finding(
                    module, lineno,
                    "module-level mutable binding %r (%s) is not in the "
                    "snapshot-state registry: classify it in "
                    "repro.common.state_registry (derived-cache / "
                    "counters / rng / constant)" % (name, kind))
            elif entry.reset and not _reset_defined(project, entry):
                yield _finding(
                    module, lineno,
                    "registry entry for %r names reset %r, which is not "
                    "a module-level function of %s"
                    % (name, entry.reset, module.name))
    if module.name == REGISTRY_MODULE:
        # stale entries attach to the manifest so the fix is made where
        # the rot lives
        _registered, _unregistered, stale = inventory(project)
        for record in stale:
            yield _finding(
                module, 1,
                "stale registry entry %s.%s (%s): no such module-level "
                "mutable binding exists any more — delete the entry"
                % (record["module"], record["name"],
                   record["classification"]))
