"""FID005: no bare ``except:`` and no silent broad excepts.

A bare ``except:`` (or an ``except Exception:`` whose body is only
``pass``) can swallow the very :class:`GateViolation` /
:class:`PolicyViolation` signals the security argument depends on
observing.  Broad handlers that *translate* the failure (return an
error code, log, re-raise) are fine.
"""

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(type_node):
    if isinstance(type_node, ast.Name):
        return type_node.id in BROAD
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(elt) for elt in type_node.elts)
    return False


def _is_silent(body):
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant) and \
                stmt.value.value is Ellipsis:
            continue
        return False
    return True


@rule("FID005", "silent-except", Severity.WARNING,
      "Bare except clause, or except Exception/BaseException whose body "
      "is only pass (silently swallows gate/policy violations).",
      example="""
      # BAD: a PolicyViolation vanishes here
      try:
          gate.check(cpu)
      except Exception:
          pass
      # GOOD: catch the narrow, expected failure
      try:
          gate.check(cpu)
      except MissingRootError:
          self._rebuild_root(cpu)
      """)
def check(module, project):
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Finding(
                "FID005", "silent-except", Severity.WARNING, module.name,
                module.rel_path, node.lineno,
                "bare except: catches everything, including gate and "
                "policy violations")
        elif _is_broad(node.type) and _is_silent(node.body):
            yield Finding(
                "FID005", "silent-except", Severity.WARNING, module.name,
                module.rel_path, node.lineno,
                "silent broad except (body is only pass)")
