"""FID002: the gate monopoly (static twin of invariant I2).

The runtime design write-protects the PIT, GIT, NPTs and grant tables
and forces every mutation through a type 1 gate where policies run.
Statically, calls to the mutating methods of those structures may appear
only in the core gate/bootstrap modules (and in the structures' own
defining modules).  ``repro.attacks`` is exempt by design: it exists to
*attempt* these calls so the runtime enforcement can be shown to stop
them.
"""

import ast

from repro.analysis.astutil import receiver_token
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: mutating method -> receiver tokens that identify the structure
MUTATORS = {
    "classify": {"pit"},
    "classify_many": {"pit"},
    "invalidate": {"pit"},
    "record": {"git"},
    "remove": {"git"},
    "remove_for_domain": {"git"},
    "map_raw": {"npt"},
    "unmap_raw": {"npt"},
    "set_flags_raw": {"npt"},
    "write_via": {"grant_table"},
}

#: The sanctioned callers: Fidelius's gate/bootstrap modules plus each
#: structure's defining module (their ``self.`` calls).
ALLOWED_MODULES = frozenset({
    "repro.core.fidelius",
    "repro.core.gates",
    "repro.core.isolation",
    "repro.core.pit",
    "repro.core.git",
    "repro.xen.npt",
    "repro.xen.grant_table",
})


@rule("FID002", "gate-monopoly", Severity.ERROR,
      "PIT/GIT/NPT/grant-table mutating methods invoked outside the "
      "repro.core gate modules (repro.attacks exempt by design).",
      example="""
      # BAD (in repro.xen.*): mutating the PIT directly
      machine.pit.set_owner(pfn, domid)
      # GOOD: request the transition through the gate layer
      with gates.type1(cpu, machine):
          machine.pit.set_owner(pfn, domid)
      """)
def check(module, project):
    if module.name in ALLOWED_MODULES or module.subpackage == "attacks":
        return
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Attribute)):
            continue
        tokens = MUTATORS.get(node.func.attr)
        if tokens and receiver_token(node.func) in tokens:
            yield Finding(
                "FID002", "gate-monopoly", Severity.ERROR, module.name,
                module.rel_path, node.lineno,
                "%s.%s() mutates a gate-protected structure outside the "
                "sanctioned gate modules"
                % (receiver_token(node.func), node.func.attr))
