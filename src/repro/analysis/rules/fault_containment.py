"""FID009: fault containment — injection machinery stays in repro.faults.

The chaos subsystem (:mod:`repro.faults`) arms fault plans by wrapping
live *instances* from the outside; product code must carry no fault
hooks of its own.  That containment is what makes "the production import
graph can never reach a fault" an auditable property rather than a
convention:

* no module outside ``repro.faults`` may import ``repro.faults`` (the
  layering DAG already forbids most of these, but this rule also covers
  ``repro.attacks``, which FID003 otherwise lets import anything);
* no module outside ``repro.faults`` may reference the injector's
  ``_fault_injector`` marker attribute — product code that checks
  "am I being injected?" is a fault hook by the back door.
"""

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: The instance attribute injectors plant on armed objects.
MARKER_ATTRIBUTE = "_fault_injector"


def _finding(module, lineno, message):
    return Finding("FID009", "fault-containment", Severity.ERROR,
                   module.name, module.rel_path, lineno, message)


@rule("FID009", "fault-containment", Severity.ERROR,
      "Fault-injection machinery outside repro.faults: imports of the "
      "chaos package or references to the injector marker attribute.",
      example="""
      # BAD (in repro.core.*): product code wiring in the injector
      from repro.faults.injector import FaultPlan
      # GOOD: faults wrap the product from outside (tests / repro.faults
      # only); the product module stays injection-free
      """)
def check(module, project):
    if module.subpackage == "faults":
        return
    for target_name, lineno in module.imported_modules():
        if target_name == "repro.faults" \
                or target_name.startswith("repro.faults."):
            yield _finding(
                module, lineno,
                "import of %s outside repro.faults: only the chaos "
                "subsystem (and tests) may arm faults" % target_name)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) \
                and node.attr == MARKER_ATTRIBUTE:
            yield _finding(
                module, node.lineno,
                "reference to %r outside repro.faults: product code "
                "must not know whether it is being injected"
                % MARKER_ATTRIBUTE)
