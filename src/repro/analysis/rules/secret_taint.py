"""FID010: secret taint — guest plaintext must not reach the host.

Fidelius's confidentiality invariant (I1) is an information-flow
property, not a call-site property: a value that originates *below*
the encryption boundary — the output of ``xex_decrypt`` /
``decrypt_region``, an unwrapped transport key, key material from
``derive_key``/``random_key``/``shared_secret``, a C-bit plaintext
read, a guest register snapshot — may only reach a hypervisor- or
device-visible location after passing through a sanctioner
(``xex_encrypt``/``encrypt_region``, ``wrap_key``, the record layer's
``seal``).  Sinks are raw DRAM writes that bypass the memory
controller, the DMA port, XenStore, ring/wire payloads, dom0-visible
disk blocks, the audit log and event-channel payloads.

The check is flow-sensitive per function (local variables, branches,
loops, exception paths) and follows helper calls inside ``repro.*``
through call summaries: a method that *returns* decrypted bytes taints
its callers' variables.  Flows from a function's *parameters* to a sink
are not tracked across functions — each function is analyzed with
clean parameters — which is the documented v1 limitation (see
``docs/dataflow.md``).

The attack corpus, the harnesses (``eval``, ``workloads``) and the
analyzer itself are out of scope: the adversary may exfiltrate all it
wants, and the harnesses handle plaintext by design.
"""

from repro.analysis.dataflow import taint
from repro.analysis.dataflow.summaries import called_names
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

EXCLUDED_SUBPACKAGES = frozenset({"attacks", "eval", "workloads",
                                  "analysis", "faults"})

_EXAMPLE = """\
plaintext = crypto.xex_decrypt(key, tweak, blob)
...
memctrl.dma_write(pa, encrypt_region(kvek, pa, plaintext))  # re-protected
"""


@rule("FID010", "secret-taint", Severity.ERROR,
      "A value derived from guest plaintext or key material reaches a "
      "hypervisor-visible sink without passing through a sanctioner "
      "(encrypt/wrap/seal).",
      needs_dataflow=True, example=_EXAMPLE)
def check(module, project):
    if module.subpackage in EXCLUDED_SUBPACKAGES:
        return
    ctx = project.dataflow
    for fi in ctx.index.functions_in(module.name):
        names = called_names(fi.node)
        if not names & taint.SOURCE_PREFILTER_NAMES and \
                not names & _secret_returning_names(ctx):
            continue
        resolver = ctx.resolver_for(fi)
        for line, origin, src_line, sink in taint.leaks_in_function(
                fi, module, ctx, resolver):
            yield Finding(
                "FID010", "secret-taint", Severity.ERROR,
                module.name, module.rel_path, line,
                "%s (from line %d) reaches %s without re-protection"
                % (origin, src_line, sink))


def _secret_returning_names(ctx):
    names = getattr(ctx, "_secret_names_cache", None)
    if names is None:
        sums = ctx.summaries
        names = {fi.name for fi in ctx.index.functions
                 if sums[fi.qualname].returns_secret}
        ctx._secret_names_cache = names
    return names
