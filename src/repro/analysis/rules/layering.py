"""FID003: architectural layering over the import DAG.

The simulator is a strict stack —

    common(0) < hw/runner(1) < sev(2) < xen(3) < core(4)
             < system/workloads(5) < cloud(6) < fleet(7)
             < eval/checkpoint(8) < faults(9) < analysis(10)

— and a module may import only *strictly lower* layers (or its own
subpackage).  Two special cases: ``repro.attacks`` may import anything
(adversaries see the whole machine) but may itself be imported only by
``repro.eval`` (and tests, which live outside ``src``); the top-level
``repro`` facade re-exports everything and is exempt as a source.
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

LAYERS = {
    "common": 0,
    "hw": 1,
    # The sharded execution layer is pure infrastructure over common:
    # it never learns what it runs, so eval/faults/attacks above it can
    # all hand it work units without creating back-edges.
    "runner": 1,
    "sev": 2,
    "xen": 3,
    "core": 4,
    "system": 5,
    "workloads": 5,
    "cloud": 6,
    # The discrete-event fleet model sits above cloud: its lockstep
    # differential drives a real Cloud and its hydration escape hatch
    # materializes real Systems, while eval (fleetbench) and faults
    # (the fleet soak profile) reach down into it from above.
    "fleet": 7,
    "eval": 8,
    # The serializer sits beside eval: it sees whole systems and clouds
    # (layer 7 and below) but neither imports eval nor is imported by
    # it; faults sits above so the chaos soak can checkpoint itself.
    "checkpoint": 8,
    # The chaos subsystem sits above everything it arms (it drives the
    # whole fleet plus the eval checks); FID009 separately guarantees
    # nothing imports it back.
    "faults": 9,
    # fidelint is tooling *over* the whole tree, imported by nothing in
    # src; it sits on top so it may reuse the runner for --jobs without
    # a back-edge, while no simulator layer may reach up into it.
    "analysis": 10,
}

ATTACKS_IMPORTERS = frozenset({"eval"})


def _subpackage(dotted):
    parts = dotted.split(".")
    return parts[1] if len(parts) > 1 else ""


@rule("FID003", "layering", Severity.ERROR,
      "Back-edge in the import DAG (common < hw < sev < xen < core < "
      "system < cloud < fleet < eval); nothing but eval/tests imports "
      "attacks.",
      example="""
      # BAD (in repro/hw/tlb.py): hw importing up into core
      from repro.core.gates import GateKeeper
      # GOOD: keep hw self-contained; core calls down into hw
      from repro.common.types import Access
      """)
def check(module, project):
    source = module.subpackage
    if source == "":          # the repro facade package
        return
    for target_name, lineno in module.imported_modules():
        target = _subpackage(target_name)
        if target == source:
            continue
        if target == "":
            yield Finding(
                "FID003", "layering", Severity.ERROR, module.name,
                module.rel_path, lineno,
                "import of the top-level repro facade from %s "
                "(facade imports everything: guaranteed cycle)" % source)
            continue
        if target == "attacks":
            if source not in ATTACKS_IMPORTERS:
                yield Finding(
                    "FID003", "layering", Severity.ERROR, module.name,
                    module.rel_path, lineno,
                    "repro.%s imports repro.attacks (only repro.eval and "
                    "tests may)" % source)
            continue
        if source == "attacks":
            continue          # attacks may import anything
        if target not in LAYERS:
            yield Finding(
                "FID003", "layering", Severity.ERROR, module.name,
                module.rel_path, lineno,
                "import of %s: subpackage %r has no declared layer "
                "(add it to repro.analysis.rules.layering.LAYERS)"
                % (target_name, target))
            continue
        if source not in LAYERS:
            yield Finding(
                "FID003", "layering", Severity.ERROR, module.name,
                module.rel_path, lineno,
                "module lives in undeclared layer %r" % source)
            return
        if LAYERS[target] >= LAYERS[source]:
            yield Finding(
                "FID003", "layering", Severity.ERROR, module.name,
                module.rel_path, lineno,
                "layering back-edge: repro.%s (layer %d) imports %s "
                "(layer %d)" % (source, LAYERS[source], target_name,
                                LAYERS[target]))
