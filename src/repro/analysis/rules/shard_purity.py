"""FID013: shard-purity — work handed to the runner must be effect-clean.

The sharded runner's contract (``docs/runner.md``, the parallel
equivalence soak) is that a ``jobs=N`` run aggregates to *byte-identical*
results with the serial run.  That holds only if every function
submitted as a :class:`~repro.runner.plan.WorkUnit` is transitively
free of the effects process boundaries do not replicate:

* **unregistered global mutation** — state accumulated in one worker
  process silently vanishes from the merged result.  Mutating a
  registered ``derived-cache``/``counters`` binding is legal **only**
  when its :mod:`~repro.common.state_registry` entry names a
  ``reset`` callable (the keystream caches are fine *because*
  ``clear_keystream_cache`` exists and restore/workers can invoke it);
  writing a ``constant``-classified binding is always a bug;
* **ambient entropy** — unseeded RNG draws diverge per worker;
* **host clock reads** — legal only in the allowlisted timing-only
  modules (the executor's own timeout machinery, perfbench's
  measurement loops), which never feed wall-clock into modelled
  results.

The rule scans every module for ``WorkUnit(...)`` / ``WorkUnit.of(...)``
construction sites, resolves the ``fn`` argument with the call-graph's
narrow reference resolution, and checks the *transitive*
:class:`~repro.analysis.dataflow.effects.EffectSummary` — a helper's
helper bumping an unregistered counter is caught at the submission
site.  A ``fn`` that is not a statically resolvable module-level
function (a parameter, a bound method) is skipped: the runner's own
pickling requirement already polices that shape at runtime.
"""

import ast

from repro.common import state_registry
from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: modules whose wall-clock reads are the *point* (shard timeouts,
#: straggler detection, bench timing); FID007 suppressions in these
#: modules document why the readings never enter modelled results
TIMING_ALLOWED_MODULES = frozenset({
    "repro.runner.executor",
    "repro.eval.perfbench",
})


def workunit_sites(module):
    """(call-node, fn-expression) per WorkUnit construction site."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func) or ""
        parts = dotted.split(".")
        fn_expr = None
        if parts[-2:] == ["WorkUnit", "of"] and len(node.args) >= 2:
            fn_expr = node.args[1]
        elif parts[-1:] == ["WorkUnit"] and parts[-2:] != \
                ["WorkUnit", "of"]:
            if len(node.args) >= 2:
                fn_expr = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "fn":
                        fn_expr = kw.value
        if fn_expr is not None:
            yield node, fn_expr


def _finding(module, lineno, message):
    return Finding("FID013", "shard-purity", Severity.ERROR, module.name,
                   module.rel_path, lineno, message)


@rule("FID013", "shard-purity", Severity.ERROR,
      "Functions submitted to the sharded runner must be transitively "
      "free of unregistered global mutation, ambient entropy, and "
      "non-allowlisted clock reads.",
      needs_effects=True,
      example="""
      # BAD: worker-local accumulation is lost across the process pool
      _RESULTS = []
      def shard_fn(seed):
          _RESULTS.append(run(seed))
      # GOOD: return the value; the runner's merge aggregates it
      def shard_fn(seed):
          return run(seed)
      """)
def check(module, project):
    sites = list(workunit_sites(module))
    if not sites:
        return
    ctx = project.dataflow
    effects = ctx.effects
    index = ctx.index
    for call, fn_expr in sites:
        target = index.resolve_ref(fn_expr, module.name)
        if target is None:
            continue
        summary = effects.get(target.qualname)
        if summary is None:
            continue
        label = target.qualname
        for gmod, gname, writer in sorted(summary.writes):
            entry = state_registry.lookup(gmod, gname)
            if entry is None:
                yield _finding(
                    module, call.lineno,
                    "shard function %s mutates unregistered module "
                    "global %s.%s (via %s): worker-process state is "
                    "lost by the merge; register it in "
                    "repro.common.state_registry or return the value"
                    % (label, gmod, gname, writer))
            elif entry.classification == "constant":
                yield _finding(
                    module, call.lineno,
                    "shard function %s mutates %s.%s, registered as "
                    "constant (via %s): import-time tables must never "
                    "be written by work units" % (label, gmod, gname,
                                                  writer))
            elif not entry.reset:
                yield _finding(
                    module, call.lineno,
                    "shard function %s mutates %s.%s (%s) which has no "
                    "registered reset: add one so workers and "
                    "snapshot-restore can clear it"
                    % (label, gmod, gname, entry.classification))
        for qual, desc, lineno in sorted(summary.rng):
            yield _finding(
                module, call.lineno,
                "shard function %s draws ambient entropy: %s in %s "
                "(line %d)" % (label, desc, qual, lineno))
        for qual, desc, lineno in sorted(summary.clock):
            if qual.split(":")[0] in TIMING_ALLOWED_MODULES:
                continue
            yield _finding(
                module, call.lineno,
                "shard function %s reads the host clock: %s in %s "
                "(line %d); only the timing-allowlisted modules (%s) "
                "may" % (label, desc, qual, lineno,
                         ", ".join(sorted(TIMING_ALLOWED_MODULES))))
