"""Rule modules; importing this package registers every rule.

Rule ids are stable API (baselines and suppressions reference them):

FID001 raw-memory        only repro.hw / repro.attacks touch raw frames
FID002 gate-monopoly     PIT/GIT/NPT/grant mutators called from gates only
FID003 layering          import DAG: common < hw < sev < xen < core < ...
FID004 cycle-accounting  state-touching repro.hw methods charge cycles
FID005 silent-except     no bare except / silent broad except
FID006 mutable-default   no mutable default arguments
FID007 determinism       no ambient randomness or wall-clock time
FID008 opcode-monopoly   privileged encodings live in two modules only
FID009 fault-containment fault-injection machinery stays in repro.faults
FID010 secret-taint      decrypted data sanitized before host-visible sinks
FID011 gate-typestate    every gate _enter matched by _exit on all paths
FID012 path-cycle-accounting  every working repro.hw path charges cycles
FID013 shard-purity      runner work units transitively effect-clean
FID014 state-inventory   module-global mutables registered for snapshot
FID015 entropy-flow      ambient entropy never reaches seeds or state
FID016 checkpoint-completeness  restore() resets every derived cache

FID010–FID012 are flow-sensitive: they run over the shared dataflow
layer (:mod:`repro.analysis.dataflow`) instead of bare AST matching.
FID013–FID016 additionally use the interprocedural call-graph and
effect-summary engine (:mod:`repro.analysis.dataflow.effects`) and the
snapshot-state manifest (:mod:`repro.common.state_registry`).
"""

from repro.analysis.rules import (  # noqa: F401
    raw_memory,
    gates,
    layering,
    cycles,
    exceptions,
    mutable_defaults,
    determinism,
    opcode_literals,
    fault_containment,
    secret_taint,
    gate_typestate,
    path_cycles,
    shard_purity,
    state_inventory,
    entropy_flow,
    checkpoint_completeness,
)
