"""FID004: cycle accounting in the hardware layer.

The performance claims of the reproduction rest on the cycle model:
every timed hardware operation charges ``CycleCounter``.  Statically,
a *public* method of a ``repro.hw`` class that stores into ``self``
state must either charge cycles somewhere in its body (any call whose
name contains "charge" counts, covering ``_charge_transfer`` style
helpers) or appear in the allowlist below with a reason.

This is a syntactic approximation: writes that flow through the memory
controller are priced there at runtime, and boot-time construction is
deliberately free.  The allowlist records exactly those judgements so
a new un-priced mutation path cannot appear silently.
"""

import ast

from repro.analysis.astutil import calls_method_named, has_self_store, \
    iter_methods
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: "module:Class.method" -> why this state-touching method is untimed.
ALLOWLIST = {
    # The counter itself and its snapshots are the instrument, not the
    # instrumented.
    "repro.hw.cycles:CycleCounter.charge": "the cycle model itself",
    "repro.hw.cycles:CycleCounter.charge_many": "the cycle model itself",
    "repro.hw.cycles:CycleCounter.reset": "test/benchmark harness control",
    # PhysicalMemory sits *below* the timing model: all timed traffic is
    # priced by MemoryController/Cpu; raw frame ops model DRAM contents,
    # not bus transactions.
    "repro.hw.memory:PhysicalMemory.write": "below the timing model",
    "repro.hw.memory:PhysicalMemory.write_frame": "below the timing model",
    "repro.hw.memory:PhysicalMemory.import_frames":
        "checkpoint restore path; below the timing model",
    "repro.hw.memory:PhysicalMemory.detached_frames":
        "checkpoint serialization scaffolding; below the timing model",
    "repro.hw.memory:PhysicalMemory.zero_frame": "below the timing model",
    "repro.hw.memory:FrameAllocator.alloc": "allocator bookkeeping is free "
                                            "(real Xen's is off hot paths)",
    "repro.hw.memory:FrameAllocator.free": "allocator bookkeeping is free",
    # Key-slot management is priced by the SEV firmware command costs in
    # repro.sev.firmware, not at the controller.
    "repro.hw.memctrl:MemoryController.install_key":
        "priced by SEV firmware command costs",
    "repro.hw.memctrl:MemoryController.uninstall_key":
        "priced by SEV firmware command costs",
    # TLB fills and hit/miss counters piggyback on the walk that
    # produced them (pt-walk charge in Cpu._translate).
    "repro.hw.tlb:Tlb.insert": "priced by the charging page-table walk",
    "repro.hw.tlb:Tlb.lookup": "priced by the charging page-table walk",
    "repro.hw.tlb:Tlb.new_incarnation":
        "migration/restore epoch bump: the rebuilt guest starts on a "
        "cold TLB and nobody executes INVLPG for the dead "
        "incarnation's entries (flush_root is the charged variant)",
    # Architectural register state: priced at the VMRUN/VMEXIT and
    # privileged-instruction sites that use it.
    "repro.hw.vmcb:Vmcb.write": "priced at VMRUN/VMEXIT sites",
    "repro.hw.vmcb:Vmcb.restore_from": "priced at VMRUN/VMEXIT sites",
    "repro.hw.vmcb:Vmcb.mask_fields": "priced at VMRUN/VMEXIT sites",
    "repro.hw.vmcb:Vmcb.set_exit": "priced at VMRUN/VMEXIT sites",
    "repro.hw.cpu:RegisterFile.load_from": "priced at VMRUN/VMEXIT sites",
    "repro.hw.cpu:RegisterFile.mask_except": "priced at VMRUN/VMEXIT sites",
    # World switches are priced as one VMEXIT_ROUNDTRIP_CYCLES charge at
    # the hypervisor's dispatch loop ("vmexit-roundtrip").
    "repro.hw.cpu:Cpu.vmrun": "priced at the dispatch loop",
    "repro.hw.cpu:Cpu.vmexit": "priced at the dispatch loop",
    # DMA transfer counters are diagnostics; the bytes moved are priced
    # by MemoryController.dma_read/dma_write.
    "repro.hw.dma:DmaEngine.read": "priced by MemoryController.dma_read",
    "repro.hw.dma:DmaEngine.write": "priced by MemoryController.dma_write",
    "repro.hw.iommu:ProtectedDmaEngine.read":
        "priced by MemoryController.dma_read",
    "repro.hw.iommu:ProtectedDmaEngine.write":
        "priced by MemoryController.dma_write",
    "repro.hw.iommu:Iommu.translate":
        "fault counting is diagnostics; the walk itself models an IOTLB "
        "hit (device-table walks are not on the paper's measured paths)",
    # Boot-time construction is deliberately free (the paper measures a
    # booted, protected steady state).
    "repro.hw.machine:Machine.build_host_address_space":
        "boot-time construction is untimed",
}

DUNDER_PREFIX = "__"


@rule("FID004", "cycle-accounting", Severity.WARNING,
      "Public state-touching method in repro.hw neither charges the "
      "cycle model nor appears in the reviewed allowlist.",
      example="""
      # BAD: mutates hardware state for free
      def insert(self, key, entry):
          self._entries[key] = entry
      # GOOD: price the operation in the shared cycle model
      def insert(self, key, entry):
          self._cycles.charge("tlb_insert")
          self._entries[key] = entry
      """)
def check(module, project):
    if module.subpackage != "hw":
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method, decorators in iter_methods(node):
            if method.name.startswith("_"):
                continue
            if method.name.startswith(DUNDER_PREFIX):
                continue
            key = "%s:%s.%s" % (module.name, node.name, method.name)
            if key in ALLOWLIST:
                continue
            if not has_self_store(method):
                continue
            if calls_method_named(method, _CHARGE_NAMES) or \
                    _calls_charge_like(method):
                continue
            yield Finding(
                "FID004", "cycle-accounting", Severity.WARNING,
                module.name, module.rel_path, method.lineno,
                "%s.%s mutates hardware state without charging the "
                "cycle model (charge it or allowlist it with a reason)"
                % (node.name, method.name))


_CHARGE_NAMES = frozenset({"charge"})


def _calls_charge_like(func_node):
    for node in ast.walk(func_node):
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            if name and "charge" in name:
                return True
    return False
