"""FID001: the raw-memory capability (static twin of invariant I3).

Only the hardware layer (``repro.hw``), the adversary simulations
(``repro.attacks``, which model exactly the accesses Fidelius must
defeat) and the serializer (``repro.checkpoint``, which moves DRAM
ciphertext wholesale) may touch physical frames directly.  Everything
else must go through the memory controller / CPU paths, where
encryption and cycle accounting live.  The sanctioned exceptions in core (the binary scanner,
the integrity measurer, boot-time construction of PIT/GIT/NPT frames)
carry inline ``fidelint: ignore`` justifications.
"""

import ast

from repro.analysis.astutil import dotted_name, receiver_token
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

RAW_METHODS = frozenset({"read_frame", "write_frame", "zero_frame", "dump",
                         "export_frames", "import_frames",
                         "detached_frames"})
MEMORY_TOKENS = frozenset({"memory", "_memory"})
#: repro.checkpoint holds the raw capability by design: it serializes
#: DRAM ciphertext wholesale, below any encryption or timing semantics.
ALLOWED_SUBPACKAGES = frozenset({"hw", "attacks", "checkpoint"})


@rule("FID001", "raw-memory", Severity.ERROR,
      "Raw physical-frame access (read_frame/write_frame/zero_frame/dump "
      "or PhysicalMemory._data) outside repro.hw, repro.attacks "
      "and repro.checkpoint.",
      example="""
      # BAD (in repro.xen.*): bypasses the memory controller entirely
      data = memory.read_frame(pfn)
      # GOOD: go through the controller, which enforces the C-bit
      data = machine.memctrl.read(pfn << 12, 4096)
      """)
def check(module, project):
    if module.subpackage in ALLOWED_SUBPACKAGES or module.subpackage == "":
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in RAW_METHODS and \
                receiver_token(node.func) in MEMORY_TOKENS:
            yield Finding(
                "FID001", "raw-memory", Severity.ERROR, module.name,
                module.rel_path, node.lineno,
                "raw frame access %s.%s() outside repro.hw/repro.attacks"
                % (receiver_token(node.func), node.func.attr))
        elif isinstance(node, ast.Attribute) and node.attr == "_data":
            chain = dotted_name(node.value) or ""
            last = chain.split(".")[-1] if chain else ""
            if last in MEMORY_TOKENS:
                yield Finding(
                    "FID001", "raw-memory", Severity.ERROR, module.name,
                    module.rel_path, node.lineno,
                    "direct index into physical memory backing store "
                    "(%s._data)" % chain)
