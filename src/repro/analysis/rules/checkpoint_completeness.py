"""FID016: checkpoint-completeness — restore() rebuilds every derived cache.

The checkpoint manifest deliberately omits process-global derived
caches (they are recomputable by contract), which makes restore
correct **only if** it resets them: a restored fleet sharing a process
with whatever ran before the restore must not see that run's cache
contents.  The module-state registry
(:mod:`repro.common.state_registry`) is the audited inventory of that
state, so the check is closed-loop: every entry classified
``derived-cache`` must name a ``reset`` callable, and that callable
must be reachable on the interprocedural call graph from every
top-level ``restore`` function in ``repro.checkpoint`` — not
"somewhere in the tree", but from the restore path itself.

Findings aggregate to one per restore function, listing every entry
whose reset is missing or unreachable, so a new cache registered
without wiring its reset into restore fails CI with the full repair
list in a single message.
"""

import ast

from repro.common import state_registry
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule


def _restore_defs(module):
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "restore":
            yield node


def _reachable_from(graph, root):
    seen = {root}
    frontier = [root]
    while frontier:
        for callee in graph.callees(frontier.pop()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


@rule("FID016", "checkpoint-completeness", Severity.ERROR,
      "Every state-registry entry classified derived-cache must have a "
      "reset hook reachable from repro.checkpoint restore().",
      needs_effects=True,
      example="""
      # BAD: restore rebuilds the graph but leaves stale caches behind
      def restore(manifest, store):
          return pickle.loads(store.get(manifest["graph"]))
      # GOOD: every registered derived cache is reset on the way out
      def restore(manifest, store):
          target = pickle.loads(store.get(manifest["graph"]))
          crypto.clear_keystream_cache()
          return target
      """)
def check(module, project):
    if module.subpackage != "checkpoint":
        return
    for node in _restore_defs(module):
        root = "%s:restore" % module.name
        reachable = _reachable_from(project.dataflow.callgraph, root)
        missing = []
        for entry in state_registry.all_entries():
            if entry.classification != "derived-cache":
                continue
            if not entry.reset:
                missing.append(
                    "%s.%s has no registered reset hook"
                    % (entry.module, entry.name))
                continue
            reset_qual = "%s:%s" % (entry.module, entry.reset)
            if reset_qual not in reachable:
                missing.append(
                    "%s.%s is not reset (%s not reachable from %s)"
                    % (entry.module, entry.name, reset_qual, root))
        if missing:
            yield Finding(
                "FID016", "checkpoint-completeness", Severity.ERROR,
                module.name, module.rel_path, node.lineno,
                "restore() leaves derived caches stale: "
                + "; ".join(missing))
