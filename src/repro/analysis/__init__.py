"""fidelint — static architecture & capability checking (docs/static_analysis.md).

The runtime invariants (``repro.core.invariants``) audit a *running*
host; this package proves the complementary claim over the simulator's
own source: no module outside the sanctioned layers can even *express*
a bypass — raw frame access, ungated PIT/GIT/NPT/grant mutation,
layering back-edges, stray privileged-instruction encodings.

Entry points:

* CLI: ``python -m repro.analysis`` (or the ``fidelint`` console
  script) — human or ``--format json`` output, ``--strict`` for CI,
  ``--jobs N`` to shard the run through ``repro.runner`` (digest
  byte-identical to serial), ``--state-report state.json`` for the
  snapshot-state inventory artifact.
* Library / pytest: :func:`repro.analysis.analyze` returns an
  :class:`~repro.analysis.engine.AnalysisResult`; the test suite runs
  it over the live tree (``tests/analysis/``).

Findings are silenced either inline (``# fidelint: ignore[FID001]``
with a justification) or by the committed baseline file
(``fidelint.baseline.json``) for grandfathered debt.
"""

from repro.analysis.baseline import default_baseline_path, load_baseline, \
    write_baseline
from repro.analysis.engine import AnalysisResult, analyze, findings_digest
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import Rule, all_rules, get_rule, rule

__all__ = [
    "AnalysisResult", "Finding", "ModuleInfo", "Project", "Rule",
    "Severity", "all_rules", "analyze", "default_baseline_path",
    "findings_digest", "get_rule", "load_baseline", "rule",
    "write_baseline",
]
