"""Small AST helpers shared by the fidelint rules."""

import ast


def receiver_token(call_func):
    """The last name token of a call's receiver expression.

    ``self.machine.memory.zero_frame(...)`` -> "memory";
    ``pit.classify(...)`` -> "pit"; ``memory.dump()`` -> "memory".
    Returns None for non-attribute calls (``zero_frame(...)``).
    """
    if not isinstance(call_func, ast.Attribute):
        return None
    value = call_func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Call):
        return receiver_token(value.func)
    return None


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_methods(class_node):
    """(method_node, decorator_names) for each def in a class body."""
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = []
            for decorator in item.decorator_list:
                name = dotted_name(decorator)
                if name is None and isinstance(decorator, ast.Call):
                    name = dotted_name(decorator.func)
                decorators.append(name or "")
            yield item, decorators


def has_self_store(func_node):
    """True if the function body assigns to ``self.<attr>`` (plain,
    augmented, subscript on a self attribute, or ``del``)."""
    for node in ast.walk(func_node):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            if _is_self_state(target):
                return True
    return False


def _is_self_state(target):
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_is_self_state(elt) for elt in target.elts)
    if isinstance(target, ast.Subscript):
        return _is_self_state(target.value)
    if isinstance(target, ast.Attribute):
        base = target.value
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        return isinstance(base, ast.Name) and base.id == "self"
    return False


def calls_method_named(func_node, method_names):
    """True if any call in the body is ``<anything>.<name>(...)`` for a
    name in ``method_names``."""
    for node in ast.walk(func_node):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in method_names:
            return True
    return False
