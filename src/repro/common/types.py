"""Small shared value types: access descriptors, exit reasons, owners."""

import enum
from dataclasses import dataclass

from repro.common.constants import PAGE_MASK, PAGE_SHIFT


def pfn_of(pa):
    """Physical frame number containing physical address ``pa``."""
    return pa >> PAGE_SHIFT


def page_offset(addr):
    return addr & PAGE_MASK


def page_base(addr):
    return addr & ~PAGE_MASK


def frame_addr(pfn):
    return pfn << PAGE_SHIFT


@dataclass(frozen=True)
class Access:
    """One memory access as seen by the page-table walker."""

    write: bool = False
    execute: bool = False
    user: bool = False

    @classmethod
    def read(cls):
        return cls()

    @classmethod
    def store(cls):
        return cls(write=True)

    @classmethod
    def fetch(cls):
        return cls(execute=True)


class CpuMode(enum.Enum):
    HOST = "host"
    GUEST = "guest"


class ExitReason(enum.Enum):
    """VM-exit codes the reproduction dispatches on (paper Section 5.1)."""

    NPF = "nested-page-fault"
    CPUID = "cpuid"
    HYPERCALL = "hypercall"
    IOIO = "ioio"
    MSR = "msr"
    HLT = "hlt"
    SHUTDOWN = "shutdown"
    INTR = "interrupt"


class PrivOp(enum.Enum):
    """Privileged instructions restricted by Fidelius (paper Table 2)."""

    MOV_CR0 = "mov-cr0"
    MOV_CR3 = "mov-cr3"
    MOV_CR4 = "mov-cr4"
    WRMSR = "wrmsr"
    VMRUN = "vmrun"
    LGDT = "lgdt"
    LIDT = "lidt"


#: Byte encodings of the restricted instructions (real x86 opcodes), used
#: by the binary scanner to enforce the monopoly rule even for sequences
#: not aligned to instruction boundaries (paper Section 4.1.2).
PRIV_OPCODES = {
    PrivOp.MOV_CR0: b"\x0f\x22\xc0",
    PrivOp.MOV_CR3: b"\x0f\x22\xd8",
    PrivOp.MOV_CR4: b"\x0f\x22\xe0",
    PrivOp.WRMSR: b"\x0f\x30",
    PrivOp.VMRUN: b"\x0f\x01\xd8",
    PrivOp.LGDT: b"\x0f\x01\x10",
    PrivOp.LIDT: b"\x0f\x01\x18",
}


class Owner(enum.Enum):
    """Frame ownership classes tracked by the page information table."""

    FREE = 0
    XEN = 1
    FIDELIUS = 2
    GUEST = 3
    DOM0 = 4
    FIRMWARE = 5


class PageUsage(enum.Enum):
    """Frame usage classes tracked by the page information table."""

    NONE = 0
    DATA = 1
    CODE = 2
    PAGE_TABLE_L4 = 3
    PAGE_TABLE_L3 = 4
    PAGE_TABLE_L2 = 5
    PAGE_TABLE_L1 = 6
    NPT_PAGE = 7
    GRANT_TABLE = 8
    PIT_PAGE = 9
    GIT_PAGE = 10
    SHADOW_AREA = 11
    SEV_METADATA = 12
    GUEST_RAM = 13
    IO_BUFFER = 14
    START_INFO = 15
    SHARED_INFO = 16
    IOMMU_PAGE = 17

    @property
    def is_page_table(self):
        return self in (
            PageUsage.PAGE_TABLE_L4,
            PageUsage.PAGE_TABLE_L3,
            PageUsage.PAGE_TABLE_L2,
            PageUsage.PAGE_TABLE_L1,
        )


def page_table_usage_for_level(level):
    """PIT usage class for a page-table-page at walker level 4..1."""
    return {
        4: PageUsage.PAGE_TABLE_L4,
        3: PageUsage.PAGE_TABLE_L3,
        2: PageUsage.PAGE_TABLE_L2,
        1: PageUsage.PAGE_TABLE_L1,
    }[level]
