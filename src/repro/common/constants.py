"""Global constants: geometry of the simulated machine and cycle costs.

The cycle costs in the second half of this module are *calibration
constants*: they are the numbers the paper measured on its 3.4 GHz AMD
Ryzen testbed (Section 7.2 micro benchmarks).  The macro-benchmark
results (Figures 5 and 6, Table 3) are **derived** from these constants
by running workload traces through the simulated machine; they are never
hard-coded anywhere in the evaluation harness.
"""

# ---------------------------------------------------------------------------
# Memory geometry
# ---------------------------------------------------------------------------

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

CACHE_LINE_SHIFT = 6
CACHE_LINE = 1 << CACHE_LINE_SHIFT

SECTOR_SIZE = 512
SECTORS_PER_PAGE = PAGE_SIZE // SECTOR_SIZE

#: Page-table geometry: 4 levels of 512 8-byte entries, 48-bit VA.
PTE_SIZE = 8
ENTRIES_PER_TABLE = PAGE_SIZE // PTE_SIZE
PT_LEVELS = 4
VA_BITS = 48

# Page-table entry bits.  The C-bit position follows the spirit of AMD's
# encoding (a high bit of the address field repurposed as the encryption
# flag); we place it at bit 51, above our simulated physical address space.
PTE_PRESENT = 1 << 0
PTE_WRITABLE = 1 << 1
PTE_USER = 1 << 2
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
PTE_C_BIT = 1 << 51
PTE_NX = 1 << 63
PTE_PFN_SHIFT = PAGE_SHIFT
PTE_PFN_MASK = ((1 << 51) - 1) & ~PAGE_MASK

# Control-register bits (subset relevant to the paper's Table 2).
CR0_PE = 1 << 0
CR0_PG = 1 << 31
CR0_WP = 1 << 16
CR4_SMEP = 1 << 20
EFER_NXE = 1 << 11
EFER_SVME = 1 << 12

#: MSR number of EFER, the only MSR Table 2 cares about (NXE bit).
MSR_EFER = 0xC0000080

# ---------------------------------------------------------------------------
# SEV / key geometry
# ---------------------------------------------------------------------------

KEY_BYTES = 16
MEASUREMENT_BYTES = 32
#: ASID 0 designates the host (SME) key in the memory controller slots.
HOST_ASID = 0
MAX_ASID = 127

# ---------------------------------------------------------------------------
# Cycle calibration constants (paper Section 7.2, measured on the testbed)
# ---------------------------------------------------------------------------

#: Type 1 gate: clear CR0.WP, disable interrupts, switch stacks, sanity check.
GATE1_CYCLES = 306
#: Type 2 gate: checking loop around a monopolized privileged instruction.
GATE2_CYCLES = 16
#: Type 3 gate: add a pre-allocated mapping, then flush the stale TLB entry.
GATE3_CYCLES = 339
#: Flushing one TLB entry (part of the 339-cycle type 3 cost).
TLB_ENTRY_FLUSH_CYCLES = 128
#: Writing the new PTE into the page-table-page (cache hit).
CACHE_WRITE_CYCLES = 2
#: Shadowing the VMCB + registers on exit and verifying them on entry
#: (round trip measured with a void hypercall from a guest kernel module).
SHADOW_CHECK_CYCLES = 661

#: Cost of the rejected design alternative: switching CR3 per transition
#: forces a full TLB flush on AMD (no PCID equivalent used by Xen 4.5).
FULL_TLB_FLUSH_CYCLES = 2200

#: Hardware world-switch cost of a VMEXIT/VMRUN pair (typical AMD-V figure).
VMEXIT_ROUNDTRIP_CYCLES = 1500
#: Hypervisor service time for a trivial (void) hypercall.
HYPERCALL_SERVICE_CYCLES = 400
#: Hypervisor work to service one nested page fault (allocate + fill).
NPT_FILL_CYCLES = 900

# Memory-system latencies used by the trace-driven macro model.
L1_HIT_CYCLES = 4
L2_HIT_CYCLES = 14
DRAM_LATENCY_CYCLES = 200
#: Bandwidth-style cost of streaming one cache line over the bus (the
#: functional memory controller charges this per line; the *latency*
#: figure above is what a dependent miss costs the macro model).
LINE_TRANSFER_CYCLES = 8
#: Added per-line bandwidth cost of the inline AES engine (its ~8.7%
#: throughput tax, per the Section 7.2 SME measurement).
ENC_LINE_EXTRA_CYCLES = 1
#: Extra DRAM latency added by the AES engine on an encrypted line fill.
#: Chosen so that a fully memory-bound workload slows by ~17-18%, which is
#: the asymptote the paper observes on mcf (17.3%) and canneal (14.27%).
ENCRYPTION_EXTRA_CYCLES = 36
TLB_MISS_WALK_CYCLES = 40

# Copy/encryption engines: cycles per byte (paper micro benchmark 3: on a
# 512 MB in-guest copy, AES-NI costs +11.49%, the SME/SEV engine +8.69%,
# and software AES more than 20x).
COPY_BASE_CPB = 0.25
AESNI_EXTRA_CPB = 0.1149 * COPY_BASE_CPB
SEV_ENGINE_EXTRA_CPB = 0.0869 * COPY_BASE_CPB
SOFTWARE_AES_CPB = 20.0 * COPY_BASE_CPB
#: Fixed cost of one retrofitted event-channel call into the firmware for
#: the SEV-API I/O path (SEND_UPDATE / RECEIVE_UPDATE per request batch).
SEV_IO_COMMAND_CYCLES = 1200

# Effective per-byte costs of the I/O protection paths as seen on the
# block critical path.  These are larger than the raw engine costs
# above: the I/O path adds the copy into the shared buffer, per-sector
# tweak setup, and the pipeline stall while the driver waits for
# plaintext — which is why Table 3's fio deltas are far bigger than the
# 11.49% engine figure of micro benchmark 3.
AESNI_IO_CPB = 0.21
SEV_IO_CPB = 0.18
SOFTWARE_IO_CPB = 20.0 * AESNI_IO_CPB

# ---------------------------------------------------------------------------
# Simulated host virtual-memory layout (frame numbers / virtual pages)
# ---------------------------------------------------------------------------

#: The host uses an identity direct map for physical memory: VA == PA.
DIRECTMAP_VA_BASE = 0x0
#: Xen text pages live here (identity-mapped like everything else, but we
#: name the region so the binary scanner and PIT can classify it).
XEN_TEXT_PAGES = 16
FIDELIUS_TEXT_PAGES = 4
#: Private Fidelius data (shadow area, SEV metadata) is *unmapped* from the
#: hypervisor context; type 3 gates map it transiently.
SHADOW_AREA_PAGES = 8
SEV_METADATA_PAGES = 2

DEFAULT_MACHINE_FRAMES = 4096  # 16 MiB of simulated RAM
DEFAULT_GUEST_FRAMES = 256  # 1 MiB guests for functional tests
