"""Exception hierarchy for the Fidelius reproduction.

Faults that real hardware would raise synchronously (page faults) are
exceptions so that the CPU model can dispatch them to the registered
fault handler, exactly like a fault vector.  Policy violations detected
by Fidelius are also exceptions: in the paper the corresponding code
path aborts the offending operation and logs it for auditing.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class PhysicalMemoryError(ReproError):
    """Access outside the simulated physical address space."""


class PageFault(ReproError):
    """A translation fault raised by the page-table walker.

    Attributes mirror the x86 page-fault error code: the faulting virtual
    address, whether the access was a write / instruction fetch / user
    access, and whether the fault is due to a missing mapping
    (``present=False``) or a permission violation (``present=True``).
    """

    def __init__(self, vaddr, write=False, execute=False, user=False,
                 present=False, message=""):
        self.vaddr = vaddr
        self.write = write
        self.execute = execute
        self.user = user
        self.present = present
        detail = message or (
            "page fault at va=%#x (write=%s execute=%s user=%s present=%s)"
            % (vaddr, write, execute, user, present)
        )
        super().__init__(detail)


class NestedPageFault(ReproError):
    """A violation in the second-level (GPA -> HPA) translation."""

    def __init__(self, gpa, write=False, message=""):
        self.gpa = gpa
        self.write = write
        super().__init__(message or "nested page fault at gpa=%#x" % gpa)


class SevError(ReproError):
    """An SEV firmware command failed; carries the firmware status code."""

    def __init__(self, status, message=""):
        self.status = status
        super().__init__(message or "SEV command failed: %s" % (status,))


class FirmwareStateError(SevError):
    """Command issued against a guest context in the wrong state."""

    def __init__(self, expected, actual):
        self.expected = expected
        self.actual = actual
        super().__init__(
            "INVALID_GUEST_STATE",
            "guest context is %s, command requires %s" % (actual, expected),
        )


class XenError(ReproError):
    """Generic error inside the Xen substrate."""


class HypercallError(XenError):
    """A hypercall returned an error code."""

    def __init__(self, code, message=""):
        self.code = code
        super().__init__(message or "hypercall failed: %s" % (code,))


class GrantTableError(XenError):
    """Invalid grant-table operation."""


class PolicyViolation(ReproError):
    """Fidelius detected and aborted an operation violating a policy.

    ``policy`` names the policy (e.g. ``"pit"``, ``"git"``,
    ``"exit-reason"``, ``"write-once"``), ``detail`` says what was
    attempted.  Raising this exception models the paper's behaviour of
    aborting the illegal update and logging it for auditing.
    """

    def __init__(self, policy, detail=""):
        self.policy = policy
        super().__init__("policy '%s' violated: %s" % (policy, detail))


class GateViolation(PolicyViolation):
    """Sanity check inside a gate failed (wrong entry conditions)."""

    def __init__(self, gate, detail=""):
        self.gate = gate
        super().__init__("gate-%s" % gate, detail)


class AttackFailed(ReproError):
    """Raised by attack programs when a step they rely on is impossible.

    Attack drivers catch :class:`PolicyViolation`, :class:`PageFault` and
    this exception to report an attack as *blocked*.
    """
