"""Shared primitives used by every subsystem of the Fidelius reproduction.

This package deliberately has no dependency on any other ``repro``
subpackage: it provides the constants, error hierarchy, address helpers,
simulated cryptography and small data structures that the hardware
model, the SEV firmware model, the Xen substrate and the Fidelius core
all build on.
"""

from repro.common import constants
from repro.common.errors import (
    AttackFailed,
    FirmwareStateError,
    GateViolation,
    HypercallError,
    PageFault,
    PhysicalMemoryError,
    PolicyViolation,
    ReproError,
    SevError,
    XenError,
)

__all__ = [
    "constants",
    "ReproError",
    "PhysicalMemoryError",
    "PageFault",
    "SevError",
    "FirmwareStateError",
    "XenError",
    "HypercallError",
    "PolicyViolation",
    "GateViolation",
    "AttackFailed",
]
