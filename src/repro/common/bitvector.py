"""A plain bit vector.

Fidelius uses one bit per byte of a pre-defined memory region to enforce
the write-once and execute-once policies (paper Section 5.3): the first
write or execution sets the bit; a set bit forbids any further one.
"""

from repro.common.errors import ReproError


class BitVector:
    """Fixed-size vector of bits, all clear initially."""

    def __init__(self, size):
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._words = bytearray((size + 7) // 8)

    def __len__(self):
        return self._size

    def _check(self, index):
        if not 0 <= index < self._size:
            raise IndexError("bit %d out of range [0, %d)" % (index, self._size))

    def test(self, index):
        self._check(index)
        return bool(self._words[index >> 3] & (1 << (index & 7)))

    def set(self, index):
        self._check(index)
        self._words[index >> 3] |= 1 << (index & 7)

    def clear(self, index):
        self._check(index)
        self._words[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def test_and_set(self, index):
        """Atomically record a first use; True if the bit was already set."""
        was = self.test(index)
        self.set(index)
        return was

    def any_set(self, start, length):
        """True if any bit in [start, start+length) is set."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return any(self.test(i) for i in range(start, start + length))

    def set_range(self, start, length):
        for i in range(start, start + length):
            self.set(i)

    def count(self):
        return sum(bin(w).count("1") for w in self._words)


class OncePolicy:
    """Write-once / execute-once tracker over a byte region.

    The region is identified by a base address; each byte has one bit.
    ``use`` records an operation over [addr, addr+length) and raises
    :class:`ReproError` if any byte in the range was used before.
    """

    def __init__(self, base, size, name="once"):
        self.base = base
        self.size = size
        self.name = name
        self._bits = BitVector(size)

    def covers(self, addr, length=1):
        return self.base <= addr and addr + length <= self.base + self.size

    def use(self, addr, length=1):
        if not self.covers(addr, length):
            raise ReproError(
                "%s policy: range %#x+%d outside tracked region" % (self.name, addr, length)
            )
        start = addr - self.base
        if self._bits.any_set(start, length):
            raise ReproError(
                "%s policy: range %#x+%d already used once" % (self.name, addr, length)
            )
        self._bits.set_range(start, length)

    def used(self, addr, length=1):
        if not self.covers(addr, length):
            return False
        return self._bits.any_set(addr - self.base, length)
