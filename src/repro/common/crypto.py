"""Simulated cryptography for the reproduction.

The paper's claims never depend on the strength of AES-128: they depend
on *which principal holds which key* and on the structural properties of
the SEV memory encryption mode (deterministic, physical-address-tweaked,
no integrity).  We therefore use a deterministic keyed keystream built
from SHA-256 in counter mode.  It preserves every property the paper's
attacks and defences exercise:

* the same (key, tweak) pair always produces the same ciphertext, so an
  attacker can *replay* stale ciphertext at the same physical address
  (the Hetzelt-Buhren attack of Section 2.2);
* ciphertext moved to a different physical address (different tweak)
  decrypts to garbage;
* decrypting with the wrong key yields garbage, never an error — SEV has
  no hardware integrity protection (Section 8 proposes adding a BMT).

Key agreement is classic finite-field Diffie-Hellman over the RFC 3526
1536-bit MODP group, standing in for the ECDH negotiation between the
guest owner and the SEV firmware.
"""

import hashlib
import hmac as _hmac

from repro.common.constants import KEY_BYTES, MEASUREMENT_BYTES

_DIGEST_BYTES = 32

# RFC 3526 group 5 (1536-bit MODP); generator 2.
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
DH_GENERATOR = 2


def keystream(key, tweak, length, offset=0):
    """Deterministic keystream bytes for (key, tweak), starting at offset."""
    out = bytearray()
    first_block = offset // _DIGEST_BYTES
    last_block = (offset + length - 1) // _DIGEST_BYTES
    for block in range(first_block, last_block + 1):
        h = hashlib.sha256()
        h.update(key)
        h.update(b"|")
        h.update(tweak)
        h.update(b"|")
        h.update(block.to_bytes(8, "little"))
        out.extend(h.digest())
    skip = offset - first_block * _DIGEST_BYTES
    return bytes(out[skip:skip + length])


def xex_encrypt(key, tweak, data, offset=0):
    """Encrypt (or decrypt: the operation is an involution) ``data``.

    ``offset`` is the byte position of ``data`` within the tweaked unit,
    which makes the cipher byte-addressable: partial writes to an
    encrypted cache line need no read-modify-write in the model.
    """
    ks = keystream(key, tweak, len(data), offset)
    return bytes(a ^ b for a, b in zip(data, ks))


xex_decrypt = xex_encrypt


def hmac_measure(key, data):
    """Integrity measurement (the paper's ``M_vm``), HMAC-SHA256."""
    return _hmac.new(key, data, hashlib.sha256).digest()[:MEASUREMENT_BYTES]


def constant_time_equal(a, b):
    return _hmac.compare_digest(a, b)


def derive_key(secret, label):
    """Derive a 16-byte subkey from a secret for the given label."""
    h = hashlib.sha256()
    h.update(secret)
    h.update(b"|derive|")
    h.update(label if isinstance(label, bytes) else label.encode())
    return h.digest()[:KEY_BYTES]


class DiffieHellman:
    """One party of a DH key agreement (guest owner or SEV firmware)."""

    def __init__(self, rng):
        self._private = rng.randrange(2, DH_PRIME - 2)
        self.public = pow(DH_GENERATOR, self._private, DH_PRIME)

    def shared_secret(self, peer_public, nonce):
        """The master secret ``S_m``: DH(shared) mixed with the guest nonce.

        Only the two parties holding a private key can compute it; the
        hypervisor relaying ``peer_public`` and ``nonce`` in the middle
        cannot (Section 4.3.2).
        """
        if not 2 <= peer_public <= DH_PRIME - 2:
            raise ValueError("invalid DH public value")
        z = pow(peer_public, self._private, DH_PRIME)
        h = hashlib.sha256()
        h.update(z.to_bytes((DH_PRIME.bit_length() + 7) // 8, "big"))
        h.update(b"|master|")
        h.update(nonce)
        return h.digest()


def wrap_key(kek, key):
    """Wrap ``key`` under ``kek``; returns (ciphertext, tag)."""
    ct = xex_encrypt(kek, b"key-wrap", key)
    tag = hmac_measure(kek, b"key-wrap-tag" + ct)
    return ct, tag


def unwrap_key(kek, wrapped):
    """Unwrap a (ciphertext, tag) pair; raises ValueError on a bad tag."""
    ct, tag = wrapped
    expect = hmac_measure(kek, b"key-wrap-tag" + ct)
    if not constant_time_equal(tag, expect):
        raise ValueError("key unwrap failed: integrity tag mismatch")
    return xex_decrypt(kek, b"key-wrap", ct)


def random_key(rng):
    """A fresh 16-byte key drawn from the supplied ``random.Random``."""
    return bytes(rng.getrandbits(8) for _ in range(KEY_BYTES))
