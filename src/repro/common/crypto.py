"""Simulated cryptography for the reproduction.

The paper's claims never depend on the strength of AES-128: they depend
on *which principal holds which key* and on the structural properties of
the SEV memory encryption mode (deterministic, physical-address-tweaked,
no integrity).  We therefore use a deterministic keyed keystream built
from SHA-256 in counter mode.  It preserves every property the paper's
attacks and defences exercise:

* the same (key, tweak) pair always produces the same ciphertext, so an
  attacker can *replay* stale ciphertext at the same physical address
  (the Hetzelt-Buhren attack of Section 2.2);
* ciphertext moved to a different physical address (different tweak)
  decrypts to garbage;
* decrypting with the wrong key yields garbage, never an error — SEV has
  no hardware integrity protection (Section 8 proposes adding a BMT).

Key agreement is classic finite-field Diffie-Hellman over the RFC 3526
1536-bit MODP group, standing in for the ECDH negotiation between the
guest owner and the SEV firmware.

Fast path vs. reference path
----------------------------

``keystream`` / ``xex_encrypt`` sit under every protected-guest memory
access, so they are optimized for wall-clock speed: a SHA-256 midstate
is precomputed once per ``(key, tweak)`` and ``hash.copy()``-ed per
counter block, the XOR runs as one wide integer operation, and a
bounded LRU caches the keystream of whole cache lines so a repeated
touch of the same encrypted line costs one dict hit instead of two
hashes.  The kept-simple originals survive as ``_reference_keystream``
/ ``_reference_xex_encrypt``; the differential suite
(``tests/hw/test_fastpath_equivalence.py``) pins the two bit-for-bit.

The caches are *simulator* state, not architectural state: they are
keyed by the key bytes themselves and therefore hold key-derived
secret material.  ``forget_key`` drops every entry derived from a key
and is called by the memory controller on key install/uninstall, so a
rotated ASID can never be served (or retain) keystream of a retired
key.  None of this affects cycle accounting — cycles are charged per
architectural event by the hardware models, never per Python operation.
"""

import hashlib
import hmac as _hmac
from collections import OrderedDict

from repro.common.constants import CACHE_LINE, KEY_BYTES, MEASUREMENT_BYTES

_DIGEST_BYTES = 32
#: counter blocks that make up one cached keystream line
_LINE_BLOCKS = CACHE_LINE // _DIGEST_BYTES

# RFC 3526 group 5 (1536-bit MODP); generator 2.
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
DH_GENERATOR = 2


# -- keystream caches (simulator state; secret-bearing, see module doc) ------

_MIDSTATE_CACHE_MAX = 1024
_LINE_CACHE_MAX = 8192
_SPAN_CACHE_MAX = 512

#: (key, tweak) -> sha256 object primed with ``key|tweak|``
_midstate_cache = OrderedDict()
#: (key, tweak) -> keystream bytes for counter blocks [0, _LINE_BLOCKS)
_line_cache = OrderedDict()
#: (key, first_line_pa, nlines) -> keystream of the whole contiguous
#: line run as one wide little-endian integer (the batched-read XOR
#: operand; see :func:`span_keystream_int`)
_span_cache = OrderedDict()

# plain module ints, not a dict: the hit counter rides the hot path
_line_hits = 0
_line_misses = 0
_midstate_hits = 0
_midstate_misses = 0
_span_hits = 0
_span_misses = 0
_key_invalidations = 0

#: the counter keys of :func:`keystream_cache_stats` (the sizes —
#: ``*_entries`` — are gauges, not counters, and stay absolute in
#: :func:`keystream_cache_delta`)
_STAT_COUNTER_KEYS = (
    "line_hits", "line_misses", "midstate_hits", "midstate_misses",
    "span_hits", "span_misses", "key_invalidations",
)


def keystream_cache_stats():
    """Counters and sizes of the keystream caches (perfbench reads these)."""
    return {
        "line_hits": _line_hits,
        "line_misses": _line_misses,
        "midstate_hits": _midstate_hits,
        "midstate_misses": _midstate_misses,
        "span_hits": _span_hits,
        "span_misses": _span_misses,
        "key_invalidations": _key_invalidations,
        "line_entries": len(_line_cache),
        "midstate_entries": len(_midstate_cache),
        "span_entries": len(_span_cache),
    }


def keystream_cache_delta(before):
    """Stats accumulated since ``before`` (a :func:`keystream_cache_stats`
    snapshot).

    Benchmarks and persistent-pool shards must report *their own* cache
    traffic, not whatever the process accumulated before them — and they
    must not ``clear_keystream_cache`` to get that scoping, because a
    clear empties the caches a long-lived worker is keeping warm.
    Counters come back as deltas; the ``*_entries`` sizes are gauges and
    stay absolute.  A counter that went *backwards* means someone
    cleared the cache inside the window (benchmarks scope themselves
    that way); the count since that reset — the absolute value — is
    the best available answer, and keeps deltas non-negative.
    """
    after = keystream_cache_stats()
    out = dict(after)
    for key in _STAT_COUNTER_KEYS:
        prior = before.get(key, 0)
        out[key] = after[key] - prior if after[key] >= prior else after[key]
    return out


def clear_keystream_cache():
    """Drop every cached midstate and keystream line (tests/benchmarks).

    Also zeroes the hit/miss counters, so every stats read is scoped
    "since the last clear" — a benchmark that clears at its start then
    reports identical counters whether it ran in the main process or in
    a :mod:`repro.runner` worker shard.
    """
    global _line_hits, _line_misses, _midstate_hits, _midstate_misses
    global _span_hits, _span_misses, _key_invalidations
    _midstate_cache.clear()
    _line_cache.clear()
    _span_cache.clear()
    _line_hits = _line_misses = 0
    _midstate_hits = _midstate_misses = 0
    _span_hits = _span_misses = 0
    _key_invalidations = 0


def forget_key(key):
    """Purge all cached material derived from ``key``.

    Key rotation hygiene: once a key leaves a controller slot, no
    keystream derived from it may survive in simulator caches.
    """
    global _key_invalidations
    key = bytes(key)
    for cache in (_midstate_cache, _line_cache, _span_cache):
        stale = [entry for entry in cache if entry[0] == key]
        for entry in stale:
            del cache[entry]
    _key_invalidations += 1


def _midstate(key, tweak):
    """A SHA-256 primed with ``key|tweak|``, ready to ``.copy()`` per block."""
    global _midstate_hits, _midstate_misses
    entry = (key, tweak)
    mid = _midstate_cache.get(entry)
    if mid is not None:
        _midstate_hits += 1
        _midstate_cache.move_to_end(entry)
        return mid
    _midstate_misses += 1
    mid = hashlib.sha256()
    mid.update(key)
    mid.update(b"|")
    mid.update(tweak)
    mid.update(b"|")
    _midstate_cache[entry] = mid
    if len(_midstate_cache) > _MIDSTATE_CACHE_MAX:
        _midstate_cache.popitem(last=False)
    return mid


def _blocks(key, tweak, first_block, last_block):
    """Concatenated counter blocks [first_block, last_block]."""
    mid = _midstate(key, tweak)
    out = bytearray()
    for block in range(first_block, last_block + 1):
        h = mid.copy()
        h.update(block.to_bytes(8, "little"))
        out += h.digest()
    return out


def line_keystream_int(key, line_pa):
    """Keystream of the cache line at ``line_pa`` under ``key``, as one
    little-endian integer: the wide-XOR operand of the fast data path.

    LRU-cached per ``(key, line_pa)`` — the position tweak *is* the
    line's physical address, so repeated touches of the same encrypted
    line cost one dict hit instead of two SHA-256 compressions.  The
    integer form lets the memory controller encrypt or decrypt a whole
    line (or any byte range of it, by shift and mask) with a single
    ``^``.
    """
    global _line_hits, _line_misses
    entry = (key, line_pa)
    ks = _line_cache.get(entry)
    if ks is not None:
        _line_hits += 1
        _line_cache.move_to_end(entry)
        return ks
    _line_misses += 1
    tweak = line_pa.to_bytes(8, "little")
    ks = int.from_bytes(
        bytes(_blocks(key, tweak, 0, _LINE_BLOCKS - 1)), "little")
    _line_cache[entry] = ks
    if len(_line_cache) > _LINE_CACHE_MAX:
        _line_cache.popitem(last=False)
    return ks


def span_keystream_int(key, line_pa, nlines):
    """Keystream of ``nlines`` *contiguous* cache lines starting at
    ``line_pa``, as one wide little-endian integer.

    By construction this equals the per-line keystreams of
    :func:`line_keystream_int` concatenated in address order (line ``i``
    occupies bytes ``[i*CACHE_LINE, (i+1)*CACHE_LINE)`` of the little-
    endian word), so a batched decrypt ``raw ^ span_ks`` is bit-identical
    to decrypting line by line.  LRU-cached per ``(key, line_pa,
    nlines)`` — guest working sets re-read the same page-sized spans
    every round, so after the first touch a whole multi-line run costs
    one dict hit and one wide XOR.  Assembly on a miss goes through
    :func:`line_keystream_int`, which also warms the per-line cache the
    partial-line and write paths use.
    """
    global _span_hits, _span_misses
    entry = (key, line_pa, nlines)
    ks = _span_cache.get(entry)
    if ks is not None:
        _span_hits += 1
        _span_cache.move_to_end(entry)
        return ks
    _span_misses += 1
    parts = []
    pa = line_pa
    for _ in range(nlines):
        parts.append(
            line_keystream_int(key, pa).to_bytes(CACHE_LINE, "little"))
        pa += CACHE_LINE
    ks = int.from_bytes(b"".join(parts), "little")
    _span_cache[entry] = ks
    if len(_span_cache) > _SPAN_CACHE_MAX:
        _span_cache.popitem(last=False)
    return ks


def keystream(key, tweak, length, offset=0):
    """Deterministic keystream bytes for (key, tweak), starting at offset."""
    if length <= 0:
        return b""
    first_block = offset // _DIGEST_BYTES
    last_block = (offset + length - 1) // _DIGEST_BYTES
    out = _blocks(key, tweak, first_block, last_block)
    skip = offset - first_block * _DIGEST_BYTES
    return bytes(out[skip:skip + length])


def xex_line_encrypt(key, line_pa, data, offset=0):
    """XEX of ``data`` confined to the cache line at ``line_pa``.

    The fast-path spelling of ``xex_encrypt(key, line_pa tweak, data,
    offset)``: one cached-keystream lookup, one wide XOR.  Bit-identical
    to the reference construction; an involution like ``xex_encrypt``.
    Requires ``offset + len(data) <= CACHE_LINE``.
    """
    global _line_hits
    length = len(data)
    # the cache-hit path of line_keystream_int, inlined: one call fewer
    # on the per-line hot loop of the memory controller
    entry = (key, line_pa)
    ks = _line_cache.get(entry)
    if ks is None:
        ks = line_keystream_int(key, line_pa)
    else:
        _line_hits += 1
        _line_cache.move_to_end(entry)
    if length != CACHE_LINE:
        ks = (ks >> (offset * 8)) & ((1 << (length * 8)) - 1)
    word = int.from_bytes(data, "little") ^ ks
    return word.to_bytes(length, "little")


xex_line_decrypt = xex_line_encrypt


def xex_encrypt(key, tweak, data, offset=0):
    """Encrypt (or decrypt: the operation is an involution) ``data``.

    ``offset`` is the byte position of ``data`` within the tweaked unit,
    which makes the cipher byte-addressable: partial writes to an
    encrypted cache line need no read-modify-write in the model.
    """
    length = len(data)
    if length == 0:
        return b""
    ks = keystream(key, tweak, length, offset)
    word = int.from_bytes(data, "little") ^ int.from_bytes(ks, "little")
    return word.to_bytes(length, "little")


xex_decrypt = xex_encrypt


# -- kept-simple reference path (the equivalence oracle) ----------------------

def _reference_keystream(key, tweak, length, offset=0):
    """The original block-at-a-time keystream, kept verbatim as the
    differential-test oracle for the optimized :func:`keystream`."""
    out = bytearray()
    first_block = offset // _DIGEST_BYTES
    last_block = (offset + length - 1) // _DIGEST_BYTES
    for block in range(first_block, last_block + 1):
        h = hashlib.sha256()
        h.update(key)
        h.update(b"|")
        h.update(tweak)
        h.update(b"|")
        h.update(block.to_bytes(8, "little"))
        out.extend(h.digest())
    skip = offset - first_block * _DIGEST_BYTES
    return bytes(out[skip:skip + length])


def _reference_xex_encrypt(key, tweak, data, offset=0):
    """The original byte-at-a-time XOR, the oracle for :func:`xex_encrypt`."""
    ks = _reference_keystream(key, tweak, len(data), offset)
    return bytes(a ^ b for a, b in zip(data, ks))


_reference_xex_decrypt = _reference_xex_encrypt


def hmac_measure(key, data):
    """Integrity measurement (the paper's ``M_vm``), HMAC-SHA256."""
    return _hmac.new(key, data, hashlib.sha256).digest()[:MEASUREMENT_BYTES]


class ChainDigest:
    """An incrementally extendable SHA-256 chain with plain-bytes state.

    ``extend(chunk)`` advances ``state = SHA256(state || chunk)``.  Both
    sides of a stream compute the same chain, so it serves the same
    integrity role as a running ``hashlib`` object — but its entire
    state is 32 picklable bytes, which ``repro.checkpoint`` needs to
    serialize SEV contexts frozen mid-SEND/RECEIVE (the s-dom/r-dom
    helper domains live permanently in those states).
    """

    EMPTY = bytes(32)

    def __init__(self, state=None):
        self._state = self.EMPTY if state is None else bytes(state)

    def extend(self, chunk):
        h = hashlib.sha256()
        h.update(self._state)
        h.update(chunk)
        self._state = h.digest()

    def digest(self):
        return self._state


def constant_time_equal(a, b):
    return _hmac.compare_digest(a, b)


def derive_key(secret, label):
    """Derive a 16-byte subkey from a secret for the given label."""
    h = hashlib.sha256()
    h.update(secret)
    h.update(b"|derive|")
    h.update(label if isinstance(label, bytes) else label.encode())
    return h.digest()[:KEY_BYTES]


class DiffieHellman:
    """One party of a DH key agreement (guest owner or SEV firmware)."""

    def __init__(self, rng):
        self._private = rng.randrange(2, DH_PRIME - 2)
        self.public = pow(DH_GENERATOR, self._private, DH_PRIME)

    def shared_secret(self, peer_public, nonce):
        """The master secret ``S_m``: DH(shared) mixed with the guest nonce.

        Only the two parties holding a private key can compute it; the
        hypervisor relaying ``peer_public`` and ``nonce`` in the middle
        cannot (Section 4.3.2).
        """
        if not 2 <= peer_public <= DH_PRIME - 2:
            raise ValueError("invalid DH public value")
        z = pow(peer_public, self._private, DH_PRIME)
        h = hashlib.sha256()
        h.update(z.to_bytes((DH_PRIME.bit_length() + 7) // 8, "big"))
        h.update(b"|master|")
        h.update(nonce)
        return h.digest()


def wrap_key(kek, key):
    """Wrap ``key`` under ``kek``; returns (ciphertext, tag)."""
    ct = xex_encrypt(kek, b"key-wrap", key)
    tag = hmac_measure(kek, b"key-wrap-tag" + ct)
    return ct, tag


def unwrap_key(kek, wrapped):
    """Unwrap a (ciphertext, tag) pair; raises ValueError on a bad tag."""
    ct, tag = wrapped
    expect = hmac_measure(kek, b"key-wrap-tag" + ct)
    if not constant_time_equal(tag, expect):
        raise ValueError("key unwrap failed: integrity tag mismatch")
    return xex_decrypt(kek, b"key-wrap", ct)


def random_key(rng):
    """A fresh 16-byte key drawn from the supplied ``random.Random``.

    Drawn as one ``getrandbits(128)`` word instead of sixteen 8-bit
    draws.  This consumes the underlying Mersenne-Twister stream
    differently, so keys (and everything downstream of them) differ
    from pre-PR-4 runs for the same seed — the seed bump is documented
    in ``docs/performance.md``; no committed fixture pins the old bytes.
    """
    return rng.getrandbits(8 * KEY_BYTES).to_bytes(KEY_BYTES, "little")
